//! Reproduces the paper's §III-B collision study interactively: how does
//! the collided-packet receive rate (CPRR) depend on the channel
//! distance and the transmit power?
//!
//! Run with: `cargo run --release --example attacker_study [-- <power_dbm>]`

use nomc_sim::{engine, NetworkBehavior, Scenario, TrafficModel};
use nomc_topology::paper;
use nomc_units::{Dbm, Megahertz, SimDuration};

fn cprr(cfd: f64, power: f64, seed: u64) -> (f64, f64) {
    let (deployment, normal_idx, attacker_idx) =
        paper::fig4_deployment(Megahertz::new(2460.0), Megahertz::new(cfd), Dbm::new(power));
    let frame = nomc_radio::frame::FrameSpec::default_data_frame();
    let mut b = Scenario::builder(deployment);
    b.behavior(
        normal_idx,
        NetworkBehavior {
            traffic: TrafficModel::Interval(SimDuration::from_millis(9)),
            ..NetworkBehavior::attacker(SimDuration::from_millis(9))
        },
    )
    .behavior(
        attacker_idx,
        NetworkBehavior::attacker(frame.airtime() + SimDuration::from_micros(300)),
    )
    .duration(SimDuration::from_secs(12))
    .warmup(SimDuration::from_secs(2))
    .seed(seed);
    let result = engine::run(&b.build().expect("valid scenario"));
    (
        result.links[0].cprr().unwrap_or(0.0),
        result.links[1].cprr().unwrap_or(0.0),
    )
}

fn main() {
    let power: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.0);
    println!("CPRR vs CFD at {power} dBm (both links):\n");
    println!("  CFD    normal sender    attacker");
    for cfd in [1.0, 2.0, 3.0, 4.0, 5.0] {
        let (normal, attacker) = cprr(cfd, power, 11);
        println!(
            "  {cfd} MHz   {:5.1}%  {}      {:5.1}%",
            normal * 100.0,
            "#".repeat((normal * 20.0).round() as usize),
            attacker * 100.0,
        );
    }
    println!(
        "\nInterpretation: at CFD ≥ 3-4 MHz two transmissions that fully \
         overlap in time are BOTH decodable — non-orthogonal channels can \
         carry concurrent traffic, which is what DCN exploits."
    );
}
