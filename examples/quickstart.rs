//! Quickstart: simulate two neighbouring 802.15.4 networks on
//! non-orthogonal channels (CFD = 3 MHz), first with the default ZigBee
//! design and then with DCN, and compare throughput.
//!
//! Run with: `cargo run --release --example quickstart`

use nomc_sim::{engine, NetworkBehavior, Scenario};
use nomc_topology::{paper, spectrum::ChannelPlan};
use nomc_units::{Dbm, Megahertz, SimDuration};

fn main() -> Result<(), String> {
    // Two 4-mote networks, 3 MHz apart in frequency, 4.5 m apart in space.
    let plan = ChannelPlan::with_count(Megahertz::new(2461.0), Megahertz::new(3.0), 2);
    let deployment = paper::line_deployment(&plan, Dbm::new(0.0));

    // --- Default ZigBee design: fixed −77 dBm CCA threshold. ---
    let mut builder = Scenario::builder(deployment.clone());
    builder
        .duration(SimDuration::from_secs(10))
        .warmup(SimDuration::from_secs(2))
        .seed(42);
    let zigbee = engine::run(&builder.build()?);

    // --- Same deployment with the paper's DCN CCA-Adjustor. ---
    let mut builder = Scenario::builder(deployment);
    builder
        .behavior_all(NetworkBehavior::dcn_default())
        .duration(SimDuration::from_secs(10))
        .warmup(SimDuration::from_secs(2))
        .seed(42);
    let dcn = engine::run(&builder.build()?);

    println!("Two networks, CFD = 3 MHz, 10 simulated seconds:");
    println!(
        "  fixed −77 dBm threshold: {:7.1} pkt/s (PRR {:.1}%)",
        zigbee.total_throughput(),
        zigbee.total_prr().unwrap_or(0.0) * 100.0
    );
    println!(
        "  DCN                    : {:7.1} pkt/s (PRR {:.1}%)",
        dcn.total_throughput(),
        dcn.total_prr().unwrap_or(0.0) * 100.0
    );
    println!(
        "  gain                   : {:+.1}%",
        (dcn.total_throughput() / zigbee.total_throughput() - 1.0) * 100.0
    );
    println!("\nFinal CCA thresholds under DCN (per transmitter):");
    for (i, t) in dcn.final_thresholds.iter().enumerate() {
        println!("  sender {i}: {t}");
    }
    Ok(())
}
