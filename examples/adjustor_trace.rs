//! Drives the DCN CCA-Adjustor directly (no simulator) and prints the
//! threshold trajectory through its two phases — a minimal tour of the
//! `nomc-core` API for anyone embedding the adjustor in another stack.
//!
//! Run with: `cargo run --release --example adjustor_trace`

use nomc_core::{CcaAdjustor, DcnConfig, DcnPhase};
use nomc_mac::CcaThresholdProvider;
use nomc_units::{Dbm, SimTime};

fn show(dcn: &CcaAdjustor, now: SimTime, event: &str) {
    println!(
        "  {now}  {:<12}  threshold = {}   ({event})",
        format!("{:?}", dcn.phase()),
        dcn.threshold(now)
    );
}

fn main() {
    let mut dcn = CcaAdjustor::new(DcnConfig::paper_default(), Dbm::new(-77.0));
    println!("DCN CCA-Adjustor trace (T_I = 1 s, T_U = 3 s):\n");
    let t0 = SimTime::ZERO;
    show(&dcn, t0, "boot: conservative ZigBee default");

    // Initializing phase: millisecond power sensing + overheard packets.
    for ms in [5, 10, 15] {
        dcn.on_power_sense(Dbm::new(-72.0 + ms as f64 / 10.0), SimTime::from_millis(ms));
    }
    dcn.on_cochannel_packet(Dbm::new(-51.0), SimTime::from_millis(400));
    dcn.on_cochannel_packet(Dbm::new(-55.0), SimTime::from_millis(800));
    show(
        &dcn,
        SimTime::from_millis(800),
        "collecting S_i / P_j records",
    );

    // T_I elapses: Eq. 2 sets the initial threshold.
    dcn.on_tick(SimTime::from_secs(1));
    assert_eq!(dcn.phase(), DcnPhase::Updating);
    show(&dcn, SimTime::from_secs(1), "Eq. 2: min{min S, max P}");

    // Case I: a weaker co-channel competitor appears → lower immediately.
    dcn.on_cochannel_packet(Dbm::new(-74.0), SimTime::from_millis(1500));
    show(
        &dcn,
        SimTime::from_millis(1500),
        "Case I: weak competitor heard",
    );

    // The weak competitor disappears; after T_U of silence Case II raises
    // the threshold back to the strongest remaining competitor.
    dcn.on_cochannel_packet(Dbm::new(-52.0), SimTime::from_millis(4000));
    dcn.on_cochannel_packet(Dbm::new(-53.0), SimTime::from_millis(4400));
    dcn.on_tick(SimTime::from_millis(4600));
    show(
        &dcn,
        SimTime::from_millis(4600),
        "Case II: window minimum after T_U of Case-I silence",
    );

    let stats = dcn.stats();
    println!(
        "\n  adjustor activity: {} co-channel packets, {} power samples, \
         {} Case-I updates, {} Case-II updates",
        stats.cochannel_observations,
        stats.power_sense_observations,
        stats.case1_updates,
        stats.case2_updates
    );
    println!(
        "\n  Note how power sensing is only requested during initialization: \
         wants_power_sensing(now) = {}",
        dcn.wants_power_sensing(SimTime::from_secs(5))
    );
}
