//! Multi-hop data collection (the paper's motivating workload): six
//! 3-hop chains deliver sensor data to a sink under three channel
//! policies — one channel, TMCP-style orthogonal sharing, and the
//! non-orthogonal DCN design.
//!
//! Run with: `cargo run --release --example convergecast`

use nomc_sim::{engine, NetworkBehavior, Scenario, TrafficModel};
use nomc_topology::spectrum::{ChannelPlan, FitPolicy};
use nomc_topology::tree::{build, Chain, ChannelPolicy};
use nomc_topology::Point;
use nomc_units::{Dbm, Megahertz, SimDuration};

fn chains() -> Vec<Chain> {
    (0..6)
        .map(|i| {
            let angle = i as f64 * std::f64::consts::TAU / 6.0;
            Chain::straight(
                Point::new(6.0 * angle.cos(), 6.0 * angle.sin()),
                Point::ORIGIN,
                3,
                Dbm::new(0.0),
            )
        })
        .collect()
}

fn sink_rate(channels: Vec<Megahertz>, policy: ChannelPolicy, dcn: bool) -> f64 {
    let cc = build(&chains(), &channels, policy);
    let mut b = Scenario::builder(cc.deployment.clone());
    if dcn {
        b.behavior_all(NetworkBehavior::dcn_default());
    }
    for &(link, from) in &cc.forwards {
        b.link_traffic(link, TrafficModel::Forward { from_link: from });
    }
    b.duration(SimDuration::from_secs(12))
        .warmup(SimDuration::from_secs(3))
        .seed(11);
    let result = engine::run(&b.build().expect("valid convergecast"));
    cc.sink_links
        .iter()
        .map(|&l| result.links[l].throughput(result.measured))
        .sum()
}

fn main() {
    let start = Megahertz::new(2458.0);
    let width = Megahertz::new(15.0);
    let zigbee = ChannelPlan::fit(start, width, Megahertz::new(5.0), FitPolicy::InclusiveEnds)
        .expect("plan fits");
    let dcn = ChannelPlan::fit(start, width, Megahertz::new(3.0), FitPolicy::InclusiveEnds)
        .expect("plan fits");

    println!("Six 3-hop chains converging on a sink, 15 MHz band:\n");
    let single = sink_rate(vec![start], ChannelPolicy::SingleChannel, false);
    println!("  one shared channel:                 {single:7.1} pkt/s at the sink");
    let tmcp = sink_rate(zigbee.channels().to_vec(), ChannelPolicy::PerChain, false);
    println!("  4 orthogonal-ish channels (TMCP):   {tmcp:7.1} pkt/s (chains must share)");
    let non_orth = sink_rate(dcn.channels().to_vec(), ChannelPolicy::PerChain, true);
    println!("  6 non-orthogonal channels + DCN:    {non_orth:7.1} pkt/s (one per chain)");
    println!(
        "\n  non-orthogonal vs TMCP-style: {:+.1}% — channel scarcity, not\n  \
         orthogonality, is what limits collection throughput.",
        (non_orth / tmcp - 1.0) * 100.0
    );
}
