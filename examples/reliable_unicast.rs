//! Reliable (acknowledged) unicast over non-orthogonal channels: does
//! DCN's concurrency gain survive the ACK/retry machinery of ZigBee
//! reliable transfers?
//!
//! Run with: `cargo run --release --example reliable_unicast`

use nomc_mac::CsmaParams;
use nomc_rngcore::SeedableRng;
use nomc_sim::rng::Xoshiro256StarStar;
use nomc_sim::{engine, NetworkBehavior, Scenario, SimResult};
use nomc_topology::paper;
use nomc_topology::spectrum::ChannelPlan;
use nomc_units::{Dbm, Megahertz, SimDuration};

fn run(dcn: bool, acked: bool, seed: u64) -> SimResult {
    let plan = ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(3.0), 5);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let deployment = paper::vi_a_deployment(&mut rng, &plan, 2, Dbm::new(0.0));
    let mut b = Scenario::builder(deployment);
    let mut behavior = if dcn {
        NetworkBehavior::dcn_default()
    } else {
        NetworkBehavior::zigbee_default()
    };
    if acked {
        behavior.mac = CsmaParams {
            acknowledged: true,
            ..behavior.mac
        };
    }
    b.behavior_all(behavior)
        .duration(SimDuration::from_secs(12))
        .warmup(SimDuration::from_secs(3))
        .seed(seed);
    engine::run(&b.build().expect("valid scenario"))
}

fn describe(name: &str, result: &SimResult) {
    let retrans: u64 = result.links.iter().map(|l| l.retransmissions).sum();
    let abandoned: u64 = result.links.iter().map(|l| l.abandoned).sum();
    let dups: u64 = result.links.iter().map(|l| l.duplicates).sum();
    println!(
        "  {name:<22} {:7.1} pkt/s delivered   retries {:>4}   abandoned {:>3}   dup {:>3}",
        result.total_throughput(),
        retrans,
        abandoned,
        dups
    );
}

fn main() {
    println!("Five dense networks at CFD 3 MHz, 12 simulated seconds:\n");
    println!("unacknowledged (the paper's saturated streams):");
    describe("fixed −77 dBm:", &run(false, false, 5));
    describe("DCN:", &run(true, false, 5));
    println!("\nacknowledged (ZigBee reliable unicast, macMaxFrameRetries = 3):");
    describe("fixed −77 dBm + ACK:", &run(false, true, 5));
    describe("DCN + ACK:", &run(true, true, 5));
    println!(
        "\nACKs cost airtime (one Imm-ACK per frame) but DCN's concurrency gain\n\
         carries over; duplicates appear only when an ACK itself is lost."
    );
}
