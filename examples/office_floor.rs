//! Office-floor scenario (the workload the paper's introduction
//! motivates): six sensor networks, one per office room, must share a
//! 15 MHz slice of the 2.4 GHz band. Compare three designs:
//!
//! 1. the default ZigBee plan — only 4 channels fit at CFD 5 MHz, so two
//!    rooms must double up on channels;
//! 2. a non-orthogonal plan — 6 channels at CFD 3 MHz, fixed threshold;
//! 3. the same plan with DCN.
//!
//! Run with: `cargo run --release --example office_floor`

use nomc_rngcore::SeedableRng;
use nomc_sim::rng::Xoshiro256StarStar;
use nomc_sim::{engine, NetworkBehavior, Scenario, SimResult};
use nomc_topology::placement::{grid_cluster_centers, sample_link, Region};
use nomc_topology::spectrum::{ChannelPlan, FitPolicy};
use nomc_topology::{Deployment, LinkSpec, NetworkSpec};
use nomc_units::{Dbm, Megahertz, SimDuration};

/// Six rooms on a 5 m grid; each room gets a channel from `freqs`
/// (cycling when there are fewer channels than rooms).
fn office_deployment(freqs: &[Megahertz], seed: u64) -> Deployment {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let rooms = grid_cluster_centers(6, 3, 5.0);
    let mut networks: Vec<NetworkSpec> = Vec::new();
    for (room_idx, center) in rooms.into_iter().enumerate() {
        let freq = freqs[room_idx % freqs.len()];
        let region = Region::new(center.offset(-1.5, -1.5), 3.0, 3.0);
        let links: Vec<LinkSpec> = (0..2)
            .map(|_| {
                let (tx, rx) = sample_link(&mut rng, &region, 2.5);
                LinkSpec::new(tx, rx, Dbm::new(0.0))
            })
            .collect();
        // Rooms that share a frequency form one logical network.
        if let Some(existing) = networks.iter_mut().find(|n| n.frequency == freq) {
            existing.links.extend(links);
        } else {
            networks.push(NetworkSpec::new(freq, links));
        }
    }
    Deployment::new(networks)
}

fn run(freqs: &[Megahertz], dcn: bool, seed: u64) -> SimResult {
    let mut b = Scenario::builder(office_deployment(freqs, seed));
    if dcn {
        b.behavior_all(NetworkBehavior::dcn_default());
    }
    b.duration(SimDuration::from_secs(10))
        .warmup(SimDuration::from_secs(2))
        .seed(seed);
    engine::run(&b.build().expect("valid office scenario"))
}

fn main() {
    let start = Megahertz::new(2458.0);
    let width = Megahertz::new(15.0);
    let zigbee_plan = ChannelPlan::fit(start, width, Megahertz::new(5.0), FitPolicy::InclusiveEnds)
        .expect("plan fits");
    let dcn_plan = ChannelPlan::fit(start, width, Megahertz::new(3.0), FitPolicy::InclusiveEnds)
        .expect("plan fits");

    println!("Six office rooms sharing 2458-2473 MHz (10 simulated seconds):\n");
    let zig = run(zigbee_plan.channels(), false, 7);
    println!(
        "  ZigBee, 4 channels (two rooms share):   {:7.1} pkt/s",
        zig.total_throughput()
    );
    let fixed = run(dcn_plan.channels(), false, 7);
    println!(
        "  6 non-orthogonal channels, fixed CCA:   {:7.1} pkt/s",
        fixed.total_throughput()
    );
    let dcn = run(dcn_plan.channels(), true, 7);
    println!(
        "  6 non-orthogonal channels + DCN:        {:7.1} pkt/s",
        dcn.total_throughput()
    );
    println!(
        "\n  DCN vs ZigBee: {:+.1}%   (channel scarcity is the real enemy: \
         every room gets its own channel only in the non-orthogonal plans)",
        (dcn.total_throughput() / zig.total_throughput() - 1.0) * 100.0
    );
}
