//! JSON round-trip tests: every paper configuration survives JSON
//! serialization bit-exactly (the `nomc` CLI depends on this), and old
//! scenario files without the newer optional fields still load.

use nomc_rngcore::SeedableRng;
use nomc_sim::rng::Xoshiro256StarStar;
use nomc_sim::{engine, NetworkBehavior, Scenario, TrafficModel};
use nomc_topology::paper;
use nomc_topology::spectrum::ChannelPlan;
use nomc_units::{Dbm, Megahertz, SimDuration};

fn scenarios() -> Vec<Scenario> {
    let plan = ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(3.0), 5);
    let mut out = Vec::new();

    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.behavior_all(NetworkBehavior::dcn_default());
    out.push(b.build().unwrap());

    let (d, li) = paper::fig5_deployment(
        Megahertz::new(2464.0),
        Megahertz::new(3.0),
        Dbm::new(-22.0),
        Dbm::new(0.0),
    );
    let mut b = Scenario::builder(d);
    b.behavior(li, NetworkBehavior::attacker(SimDuration::from_millis(3)))
        .record_error_positions(true)
        .record_trace(true);
    out.push(b.build().unwrap());

    let mut rng = Xoshiro256StarStar::seed_from_u64(3);
    let d = paper::case1_deployment(&mut rng, &plan, 2, (-22.0, 0.0));
    let mut b = Scenario::builder(d);
    let mut beh = NetworkBehavior::zigbee_default();
    beh.mac.acknowledged = true;
    b.behavior_all(beh);
    out.push(b.build().unwrap());

    // A forwarding chain with per-link overrides.
    let d = paper::line_deployment(
        &ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(9.0), 2),
        Dbm::new(0.0),
    );
    let mut b = Scenario::builder(d);
    b.link_traffic(2, TrafficModel::Forward { from_link: 0 });
    out.push(b.build().unwrap());

    out
}

#[test]
fn every_paper_scenario_round_trips_exactly() {
    for (i, sc) in scenarios().into_iter().enumerate() {
        let json = nomc_json::to_string(&sc);
        let back: Scenario = nomc_json::from_str(&json).expect("deserializes");
        assert_eq!(back, sc, "scenario {i} did not round-trip");
    }
}

#[test]
fn serialize_parse_serialize_is_fixpoint() {
    // The CLI writes scenario files with the same codec it reads them
    // with; serialize -> parse -> serialize must be textually stable.
    for (i, sc) in scenarios().into_iter().enumerate() {
        let first = nomc_json::to_string(&sc);
        let reparsed: Scenario = nomc_json::from_str(&first).expect("parses");
        assert_eq!(first, nomc_json::to_string(&reparsed), "scenario {i}");
        let pretty = nomc_json::to_string_pretty(&sc);
        let reparsed: Scenario = nomc_json::from_str(&pretty).expect("parses");
        assert_eq!(
            pretty,
            nomc_json::to_string_pretty(&reparsed),
            "scenario {i} (pretty)"
        );
    }
}

#[test]
fn round_tripped_scenario_simulates_identically() {
    for mut sc in scenarios() {
        sc.duration = SimDuration::from_secs(2);
        sc.warmup = SimDuration::from_millis(500);
        sc.record_trace = false; // keep the comparison light
        let json = nomc_json::to_string(&sc);
        let back: Scenario = nomc_json::from_str(&json).unwrap();
        assert_eq!(engine::run(&sc), engine::run(&back));
    }
}

#[test]
fn legacy_scenario_without_new_fields_loads() {
    // Serialize a current scenario, then strip the fields that were
    // added after the first release (ACK knobs, trace flag, per-link
    // traffic) — an old file must still deserialize with the defaults.
    let sc = &scenarios()[0];
    let mut v: nomc_json::Json = nomc_json::to_value(sc);
    v.as_object_mut().unwrap().remove("record_trace");
    v.as_object_mut().unwrap().remove("link_traffic");
    for b in v["behaviors"].as_array_mut().unwrap() {
        let mac = b["mac"].as_object_mut().unwrap();
        mac.remove("acknowledged");
        mac.remove("max_frame_retries");
        mac.remove("ack_wait");
    }
    let back: Scenario = nomc_json::from_value(&v).expect("legacy file loads");
    assert!(!back.record_trace);
    assert!(back.link_traffic.is_empty());
    for b in &back.behaviors {
        assert!(!b.mac.acknowledged);
        assert_eq!(b.mac.max_frame_retries, 3);
        assert_eq!(b.mac.ack_wait, SimDuration::from_micros(864));
    }
}

#[test]
fn reports_serialize_for_regression_tooling() {
    use nomc_experiments::report::Report;
    let mut r = Report::new("t", "json smoke", &["a", "b"]);
    r.row(["1", "2"]).note("n");
    let v: nomc_json::Json = r.to_json_string().parse().unwrap();
    assert_eq!(v["columns"][1], "b");
    assert_eq!(v["notes"][0], "n");
}
