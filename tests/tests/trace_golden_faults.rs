//! Golden event-trace regression with faults injected.
//!
//! Companion to `trace_golden`: the same two-network DCN scenario, now
//! carrying a [`FaultPlan`] that exercises every fault type — a
//! crash/reboot cycle, a transient wideband jammer, an RSSI calibration
//! drift, and a stuck-CCA window. The fixture in
//! `tests/fixtures/trace_2net_dcn_faults.jsonl` pins the full faulted
//! event history byte for byte, so the fault schedule itself is covered
//! by the same seed-stability guarantee as the fault-free runtime: same
//! seed + same plan ⇒ byte-identical trace, forever.
//!
//! A second fixture, `tests/fixtures/trace_4net_partition_faults.jsonl`,
//! pins the *sharded* faulted path: a four-component scenario whose
//! fault plan is scattered across shards. Multi-component runs use
//! per-shard derived seeds, so that fixture is recorded and checked
//! through `engine::run_sharded` at every `NOMC_SHARDS` matrix value —
//! thread-count independence is what keeps it stable. A third test pins
//! the snapshot/restore contract against both fixtures: an interrupted
//! run resumed mid-flight must land on the recorded bytes.
//!
//! To re-record after an *intentional* behavior change:
//!
//! ```text
//! NOMC_UPDATE_GOLDEN=1 cargo test -p nomc-integration-tests --test trace_golden_faults
//! ```

use nomc_phy::Shadowing;
use nomc_sim::scenario::Propagation;
use nomc_sim::{
    engine, trace, CrashFault, DriftFault, FaultPlan, JammerFault, NetworkBehavior, RecoveryMeter,
    Scenario, SimObserver, StuckCcaFault,
};
use nomc_topology::spectrum::ChannelPlan;
use nomc_topology::{paper, Deployment, LinkSpec, NetworkSpec, Point};
use nomc_units::{Db, Dbm, Megahertz, SimDuration, SimTime};
use std::path::PathBuf;

fn at(millis: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(millis)
}

/// Every fault type at once: node 0 dies at 400 ms and reboots 150 ms
/// later, a −70 dBm jammer keys up on network 0's channel for 200 ms,
/// network 1's first sender (node 4) drifts +3 dB over 200 ms, and
/// node 2's CCA latches busy for 150 ms.
fn fault_plan() -> FaultPlan {
    FaultPlan {
        crashes: vec![CrashFault {
            node: 0,
            at: at(400),
            down_for: SimDuration::from_millis(150),
        }],
        jammers: vec![JammerFault {
            frequency: Megahertz::new(2458.0),
            power: Dbm::new(-70.0),
            at: at(300),
            duration: SimDuration::from_millis(200),
        }],
        drifts: vec![DriftFault {
            node: 4,
            at: at(500),
            ramp: SimDuration::from_millis(200),
            peak: Db::new(3.0),
        }],
        stuck_cca: vec![StuckCcaFault {
            node: 2,
            at: at(700),
            duration: SimDuration::from_millis(150),
        }],
    }
}

/// The `trace_golden` scenario (two DCN networks, 3 MHz apart, seed 42)
/// plus the all-types fault plan.
fn faulted_scenario() -> Scenario {
    let plan = ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(3.0), 2);
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.behavior_all(NetworkBehavior::dcn_default())
        .duration(SimDuration::from_secs(1))
        .warmup(SimDuration::from_millis(250))
        .seed(42)
        .record_trace(true)
        .faults(fault_plan());
    b.build().expect("builder-validated faulted scenario")
}

/// The sharded counterpart: four widely separated DCN networks, one
/// interaction component each, with the fault plan scattered across
/// shards — a crash in network 0, a jammer on network 0's channel, an
/// RSSI drift in network 1, and a stuck CCA in network 2. This pins the
/// *componentized* fault path (per-shard seeds, per-shard fault
/// routing, jammer replication) the single-component fixture above can
/// never reach: there, `run_sharded` just delegates to the serial
/// engine.
fn partitioned_fault_plan() -> FaultPlan {
    FaultPlan {
        crashes: vec![CrashFault {
            node: 0,
            at: at(400),
            down_for: SimDuration::from_millis(150),
        }],
        jammers: vec![JammerFault {
            frequency: Megahertz::new(2410.0),
            power: Dbm::new(-70.0),
            at: at(300),
            duration: SimDuration::from_millis(200),
        }],
        drifts: vec![DriftFault {
            node: 4,
            at: at(500),
            ramp: SimDuration::from_millis(200),
            peak: Db::new(3.0),
        }],
        stuck_cca: vec![StuckCcaFault {
            node: 8,
            at: at(700),
            duration: SimDuration::from_millis(150),
        }],
    }
}

/// Four networks 25 MHz and 60 m apart (shadowing off so distance
/// really decouples them), two links each, seed 42. Node numbering
/// puts network `i`'s first sender at node `4i`, so the fault plan
/// above lands in shards 0, 1, and 2.
fn partitioned_faulted_scenario() -> Scenario {
    let specs = (0..4)
        .map(|i| {
            let freq = Megahertz::new(2410.0 + 25.0 * i as f64);
            let x = 60.0 * i as f64;
            let links = vec![
                LinkSpec::new(Point::new(x, 0.0), Point::new(x + 2.0, 0.0), Dbm::new(0.0)),
                LinkSpec::new(Point::new(x, 1.0), Point::new(x + 2.0, 1.0), Dbm::new(0.0)),
            ];
            NetworkSpec::new(freq, links)
        })
        .collect();
    let mut b = Scenario::builder(Deployment::new(specs));
    b.behavior_all(NetworkBehavior::dcn_default())
        .duration(SimDuration::from_secs(1))
        .warmup(SimDuration::from_millis(250))
        .seed(42)
        .record_trace(true)
        .propagation(Propagation {
            shadowing: Shadowing::disabled(),
            ..Propagation::default()
        })
        .faults(partitioned_fault_plan());
    b.build().expect("builder-validated partitioned scenario")
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/trace_2net_dcn_faults.jsonl")
}

fn partitioned_fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/trace_4net_partition_faults.jsonl")
}

/// The CI matrix thread count: `NOMC_SHARDS` when set, else `None`.
fn matrix_threads() -> Option<usize> {
    std::env::var("NOMC_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// Honors the CI shard matrix: with `NOMC_SHARDS=N` set, the faulted
/// run goes through the sharded engine on `N` worker threads; the
/// fixture must stay byte-identical for every `N`.
fn run_golden(sc: &Scenario) -> nomc_sim::SimResult {
    match matrix_threads() {
        Some(threads) => engine::run_sharded(sc, threads),
        None => engine::run(sc),
    }
}

/// Re-records `path` under `NOMC_UPDATE_GOLDEN=1`, else compares byte
/// for byte and panics with the first diverging line.
fn check_or_update(jsonl: &str, path: &PathBuf) {
    if std::env::var_os("NOMC_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, jsonl).expect("cannot write golden fixture");
        eprintln!(
            "re-recorded {} ({} lines)",
            path.display(),
            jsonl.lines().count()
        );
        return;
    }
    let golden = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden fixture {}: {e}; record it with \
             NOMC_UPDATE_GOLDEN=1 cargo test --test trace_golden_faults",
            path.display()
        )
    });
    if golden != jsonl {
        let diverged = golden
            .lines()
            .zip(jsonl.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| golden.lines().count().min(jsonl.lines().count()));
        panic!(
            "faulted event trace diverged from the recorded fixture {}: \
             {} golden lines vs {} current, first difference at line {} \
             (golden: {:?}, current: {:?})",
            path.display(),
            golden.lines().count(),
            jsonl.lines().count(),
            diverged + 1,
            golden.lines().nth(diverged).unwrap_or("<eof>"),
            jsonl.lines().nth(diverged).unwrap_or("<eof>"),
        );
    }
}

#[test]
fn faulted_golden_trace_is_byte_identical() {
    let result = run_golden(&faulted_scenario());
    assert!(!result.trace.is_empty(), "trace recording must be on");
    let jsonl = trace::to_jsonl(&result.trace);
    // The plan really fired: the trace carries the crash, the reboot,
    // and both edges of the stuck-CCA window.
    for marker in ["\"down\"", "\"up\"", "\"cca_stuck\"", "\"cca_released\""] {
        assert!(
            jsonl.contains(marker),
            "faulted trace is missing the {marker} fault record"
        );
    }
    check_or_update(&jsonl, &fixture_path());
}

#[test]
fn partitioned_faulted_golden_trace_is_byte_identical() {
    let sc = partitioned_faulted_scenario();
    // The premise of this fixture: the scenario genuinely splits, so
    // the sharded engine exercises its componentized path (per-shard
    // derived seeds) instead of delegating to the serial engine.
    assert_eq!(
        engine::shard_plan(&sc).len(),
        4,
        "partitioned scenario must split into one shard per network"
    );
    // Multi-component sharded semantics differ from the serial global
    // stream by design (componentized seeds), so this fixture is always
    // recorded and checked through the sharded engine. Results are
    // thread-count independent, so any NOMC_SHARDS value — and the
    // env-unset default — must reproduce the same bytes.
    let result = engine::run_sharded(&sc, matrix_threads().unwrap_or(2));
    assert!(!result.trace.is_empty(), "trace recording must be on");
    let jsonl = trace::to_jsonl(&result.trace);
    for marker in ["\"down\"", "\"up\"", "\"cca_stuck\"", "\"cca_released\""] {
        assert!(
            jsonl.contains(marker),
            "partitioned faulted trace is missing the {marker} fault record"
        );
    }
    check_or_update(&jsonl, &partitioned_fixture_path());
}

#[test]
fn resumed_faulted_runs_reproduce_the_golden_fixtures() {
    // The snapshot contract, pinned against history: run-to-event-K,
    // snapshot, restore, run-to-end must land on the *recorded* faulted
    // fixtures — serial for the coupled scenario, sharded for the
    // partitioned one. Skipped while re-recording so fixture freshness
    // never depends on test order.
    if std::env::var_os("NOMC_UPDATE_GOLDEN").is_some() {
        return;
    }
    let resume = |sc: &Scenario, sharded: bool| -> String {
        let progress = if sharded {
            engine::run_sharded_until(sc, &mut [], u64::MAX, 4_000)
        } else {
            engine::run_until(sc, &mut [], u64::MAX, 4_000)
        };
        let paused = match progress {
            engine::RunProgress::Paused(p) => p,
            engine::RunProgress::Done(_) => panic!("faulted run finished before the pause"),
        };
        let restored = engine::restore(&engine::snapshot(&paused)).expect("snapshot round-trips");
        match engine::resume_bounded(sc, restored, &mut [], u64::MAX)
            .expect("restored snapshot resumes")
        {
            engine::RunProgress::Done(done) => trace::to_jsonl(&done.result.trace),
            engine::RunProgress::Paused(_) => panic!("unbounded resume cannot pause"),
        }
    };
    assert_eq!(
        resume(&faulted_scenario(), false),
        std::fs::read_to_string(fixture_path()).expect("coupled fixture readable"),
        "serial snapshot/resume diverged from the coupled faulted fixture"
    );
    assert_eq!(
        resume(&partitioned_faulted_scenario(), true),
        std::fs::read_to_string(partitioned_fixture_path()).expect("partitioned fixture readable"),
        "sharded snapshot/resume diverged from the partitioned faulted fixture"
    );
}

#[test]
fn faulted_run_is_deterministic_in_process() {
    // Two fresh runs of the same seed + plan, compared record for
    // record — catches nondeterminism the on-disk fixture would only
    // show after the next re-record.
    let sc = faulted_scenario();
    let a = engine::run(&sc);
    let b = engine::run(&sc);
    assert_eq!(trace::to_jsonl(&a.trace), trace::to_jsonl(&b.trace));
    assert_eq!(a, b);
}

#[test]
fn observers_do_not_perturb_faulted_runs() {
    // Observer sinks are write-only even while faults fire: attaching a
    // recovery meter to the faulted run must leave the result
    // bit-identical to the bare run.
    let sc = faulted_scenario();
    let bare = engine::run(&sc);
    let mut meter = RecoveryMeter::new(0, SimDuration::from_millis(100), at(400), sc.warmup);
    let mut sinks: Vec<&mut dyn SimObserver> = vec![&mut meter];
    let observed = engine::run_with(&sc, &mut sinks);
    assert_eq!(bare, observed);
    // And the meter saw real traffic around the fault.
    assert!(
        meter.bins().iter().sum::<u64>() > 0,
        "meter counted nothing"
    );
}
