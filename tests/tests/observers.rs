//! End-to-end tests of the pluggable observer layer.
//!
//! The contract under test: observers are write-only sinks — attaching
//! any combination of them leaves the [`SimResult`] bit-identical —
//! and the built-in sinks reproduce exactly what the engine's inline
//! collectors used to record (streamed JSONL == buffered trace,
//! streamed energy == post-hoc [`nomc_sim::energy::transmitter_energy`]).

use nomc_sim::energy::transmitter_energy;
use nomc_sim::runtime::observer::{
    PowerSample, SimObserver, ThresholdSample, TxOutcomeInfo, TxStartInfo,
};
use nomc_sim::{engine, trace, EnergyMeter, JsonlTracer, NetworkBehavior, Scenario};
use nomc_topology::paper;
use nomc_topology::spectrum::ChannelPlan;
use nomc_units::{Dbm, Megahertz, SimDuration};

/// One saturated two-link network, 2 simulated seconds.
fn small_scenario(seed: u64) -> Scenario {
    let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.duration(SimDuration::from_secs(2))
        .warmup(SimDuration::from_millis(500))
        .seed(seed);
    b.build().expect("builder-validated scenario")
}

/// A DCN network (exercises power sensing + threshold adaptation).
fn dcn_scenario(seed: u64) -> Scenario {
    let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.behavior_all(NetworkBehavior::dcn_default())
        .duration(SimDuration::from_secs(3))
        .warmup(SimDuration::from_secs(1))
        .seed(seed);
    b.build().expect("builder-validated scenario")
}

/// An interference-heavy scenario that produces CRC failures (and with
/// them, per-packet bit-error records).
fn lossy_scenario(seed: u64, record_error_records: bool) -> Scenario {
    let (mut deployment, n, a) =
        paper::fig4_deployment(Megahertz::new(2460.0), Megahertz::new(2.0), Dbm::new(0.0));
    deployment.networks[n].links[0].tx_power = Dbm::new(-12.0);
    let mut b = Scenario::builder(deployment);
    b.behavior(a, NetworkBehavior::attacker(SimDuration::from_micros(2200)))
        .duration(SimDuration::from_secs(3))
        .warmup(SimDuration::from_secs(1))
        .seed(seed)
        .record_error_records(record_error_records);
    b.build().expect("builder-validated scenario")
}

#[derive(Default)]
struct Counting {
    events: u64,
    tx_starts: u64,
    tx_outcomes: u64,
    power_samples: u64,
    threshold_changes: u64,
    outcome_monotonic: bool,
    last_outcome_end: Option<nomc_units::SimTime>,
}

impl SimObserver for Counting {
    fn wants_thresholds(&self) -> bool {
        true
    }

    fn on_event(&mut self, _now: nomc_units::SimTime, _event: &nomc_sim::events::Event) {
        self.events += 1;
    }

    fn on_tx_start(&mut self, _info: &TxStartInfo) {
        self.tx_starts += 1;
    }

    fn on_tx_outcome(&mut self, info: &TxOutcomeInfo) {
        self.tx_outcomes += 1;
        if let Some(prev) = self.last_outcome_end {
            if info.end < prev {
                self.outcome_monotonic = false;
            }
        } else {
            self.outcome_monotonic = true;
        }
        self.last_outcome_end = Some(info.end);
    }

    fn on_power_sample(&mut self, _sample: &PowerSample) {
        self.power_samples += 1;
    }

    fn on_threshold_change(&mut self, sample: &ThresholdSample) {
        self.threshold_changes += 1;
        assert!(
            sample.node.is_multiple_of(2),
            "only senders adapt thresholds"
        );
    }
}

#[test]
fn observers_do_not_perturb_the_simulation() {
    let baseline = engine::run(&dcn_scenario(11));
    let mut counting = Counting::default();
    let mut meter = EnergyMeter::new();
    let mut sink = Vec::new();
    let mut tracer = JsonlTracer::new(&mut sink);
    let observed = engine::run_with(
        &dcn_scenario(11),
        &mut [&mut counting, &mut meter, &mut tracer],
    );
    assert_eq!(
        baseline, observed,
        "write-only observers must leave the result bit-identical"
    );
    // Even though the scenario has record_trace off, the tracer's
    // wants_trace() turned record construction on for externals only.
    assert!(observed.trace.is_empty());
    assert!(tracer.records() > 0);
}

#[test]
fn counting_observer_sees_every_notification() {
    let mut counting = Counting::default();
    let result = engine::run_with(&dcn_scenario(5), &mut [&mut counting]);
    assert_eq!(counting.events, result.events, "one on_event per dispatch");
    let sent: u64 = result.links.iter().map(|l| l.sent).sum();
    assert!(
        counting.tx_starts >= sent,
        "TxStartInfo covers at least every measured frame: {} < {sent}",
        counting.tx_starts
    );
    assert!(counting.tx_outcomes > 0);
    assert!(
        counting.tx_outcomes <= counting.tx_starts,
        "every outcome belongs to a started frame"
    );
    assert!(counting.outcome_monotonic, "outcomes arrive in end order");
    // DCN initializing phase samples power; relaxing adapts thresholds.
    assert!(counting.power_samples > 0, "DCN must power-sense");
    assert!(counting.threshold_changes > 0, "DCN must adapt thresholds");
}

#[test]
fn jsonl_tracer_streams_the_exact_buffered_trace() {
    // Buffered reference: record_trace through the scenario.
    let mut sc = small_scenario(3);
    sc.record_trace = true;
    let buffered = engine::run(&sc);
    let reference = trace::to_jsonl(&buffered.trace);
    // Streaming: same scenario, but the trace goes through the sink.
    let mut bytes = Vec::new();
    let mut tracer = JsonlTracer::new(&mut bytes);
    let streamed = engine::run_with(&sc, &mut [&mut tracer]);
    let records = tracer.finish().expect("in-memory sink cannot fail");
    assert_eq!(records as usize, buffered.trace.len());
    assert_eq!(
        String::from_utf8(bytes).expect("tracer emits UTF-8"),
        reference,
        "streamed JSONL must equal the buffered trace byte for byte"
    );
    assert_eq!(buffered, streamed);
}

#[test]
fn energy_meter_matches_post_hoc_accounting() {
    let sc = small_scenario(7);
    let airtime = sc.frame.airtime();
    let mut meter = EnergyMeter::new();
    let result = engine::run_with(&sc, &mut [&mut meter]);
    assert_eq!(meter.estimates().len(), result.tx_powers.len());
    for (i, est) in meter.estimates().iter().enumerate() {
        let reference = transmitter_energy(
            &result.mac_stats[i],
            airtime,
            result.tx_powers[i],
            result.measured,
        );
        assert_eq!(est.tx_time, reference.tx_time, "link {i} tx_time");
        assert_eq!(est.rx_time, reference.rx_time, "link {i} rx_time");
        assert!(
            (est.total_mj - reference.total_mj).abs() < 1e-9,
            "link {i}: streamed {} vs post-hoc {}",
            est.total_mj,
            reference.total_mj
        );
        assert!(est.total_mj > 0.0);
    }
}

#[test]
fn error_record_collection_can_be_opted_out() {
    let with = engine::run(&lossy_scenario(3, true));
    let without = engine::run(&lossy_scenario(3, false));
    assert!(
        !with.links[0].error_records.is_empty(),
        "interference scenario must produce bit-error records"
    );
    assert!(
        without.links.iter().all(|l| l.error_records.is_empty()),
        "opted-out run must collect no records"
    );
    // Everything else is bit-identical: collection is observation only.
    let mut stripped = with.clone();
    for l in &mut stripped.links {
        l.error_records.clear();
    }
    assert_eq!(stripped, without);
}

#[test]
fn run_with_empty_slice_equals_run() {
    let a = engine::run(&small_scenario(21));
    let b = engine::run_with(&small_scenario(21), &mut []);
    assert_eq!(a, b);
}

/// Regression guard for the forwarding + observer interaction: outcome
/// notifications carry the right link for multi-network scenarios.
#[test]
fn outcome_links_are_consistent_with_metrics() {
    struct PerLink(Vec<u64>);
    impl SimObserver for PerLink {
        fn on_tx_outcome(&mut self, info: &TxOutcomeInfo) {
            if info.measured && info.outcome == nomc_sim::metrics::TxOutcome::Received {
                if self.0.len() <= info.link {
                    self.0.resize(info.link + 1, 0);
                }
                if !info.duplicate {
                    self.0[info.link] += 1;
                }
            }
        }
    }
    let plan = ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(3.0), 2);
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.duration(SimDuration::from_secs(2))
        .warmup(SimDuration::from_millis(500))
        .seed(13);
    let sc = b.build().expect("builder-validated scenario");
    let mut per_link = PerLink(Vec::new());
    let result = engine::run_with(&sc, &mut [&mut per_link]);
    per_link.0.resize(result.links.len(), 0);
    for (i, l) in result.links.iter().enumerate() {
        assert_eq!(
            per_link.0[i], l.received,
            "observer-counted deliveries diverge on link {i}"
        );
    }
}
