//! Behavioural integration tests for engine mechanisms that the paper's
//! figures rely on: oracle CCA, the 802.11b capture contrast, interval
//! pacing under overload, and warmup accounting.

use nomc_core::DcnConfig;
use nomc_phy::AcrCurve;
use nomc_radio::RadioConfig;
use nomc_sim::{engine, NetworkBehavior, Scenario, ThresholdMode, TrafficModel};
use nomc_topology::{paper, spectrum::ChannelPlan, Deployment, LinkSpec, NetworkSpec, Point};
use nomc_units::{Dbm, Megahertz, SimDuration};

fn quick(b: &mut nomc_sim::ScenarioBuilder, secs: u64) -> Scenario {
    b.duration(SimDuration::from_secs(secs))
        .warmup(SimDuration::from_secs(1))
        .build()
        .expect("valid scenario")
}

/// One link besieged by strong adjacent-channel interferers: a fixed
/// −77 dBm threshold backs off constantly, the oracle ignores the
/// inter-channel energy entirely.
#[test]
fn oracle_cca_ignores_interchannel_energy() {
    let build = |mode: ThresholdMode, seed: u64| {
        let (deployment, link_idx) = paper::fig5_deployment(
            Megahertz::new(2464.0),
            Megahertz::new(3.0),
            Dbm::new(0.0),
            Dbm::new(0.0),
        );
        let mut b = Scenario::builder(deployment);
        b.behavior(
            link_idx,
            NetworkBehavior {
                threshold: mode,
                ..NetworkBehavior::zigbee_default()
            },
        )
        .seed(seed);
        (quick(&mut b, 6), link_idx)
    };
    let (sc, li) = build(ThresholdMode::Fixed(Dbm::new(-77.0)), 2);
    let fixed = engine::run(&sc);
    let (sc, _) = build(ThresholdMode::FixedOracle(Dbm::new(-77.0)), 2);
    let oracle = engine::run(&sc);
    let rate = |r: &nomc_sim::SimResult| {
        r.links
            .iter()
            .find(|l| l.network == li)
            .expect("link")
            .send_rate(r.measured)
    };
    assert!(
        rate(&oracle) > 1.3 * rate(&fixed),
        "oracle {} vs fixed {}",
        rate(&oracle),
        rate(&fixed)
    );
}

/// The §III-B uniqueness contrast at engine level: with the 802.11b-like
/// receiver, an adjacent-channel attacker captures the victim's receiver
/// and throughput collapses; the 802.15.4 receiver shrugs it off.
#[test]
fn dot11b_receiver_is_captured_by_foreign_channel() {
    let build = |dot11b: bool| {
        // Victim link + one adjacent-channel (5 MHz) saturated attacker
        // network close by.
        let victim = NetworkSpec::new(
            Megahertz::new(2437.0),
            vec![LinkSpec::new(
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Dbm::new(0.0),
            )],
        );
        let attacker =
            paper::standard_network(Point::new(1.0, 2.5), Megahertz::new(2442.0), Dbm::new(0.0));
        let mut b = Scenario::builder(Deployment::new(vec![victim, attacker]));
        if dot11b {
            b.radio(RadioConfig::dot11b_like());
            let mut p = nomc_sim::scenario::Propagation::testbed_default();
            p.acr = AcrCurve::dot11b_like();
            b.propagation(p);
        }
        b.seed(4);
        engine::run(&quick(&mut b, 6))
    };
    let zig = build(false);
    let wifi = build(true);
    let victim_tput = |r: &nomc_sim::SimResult| r.links[0].throughput(r.measured);
    assert!(
        victim_tput(&wifi) < 0.75 * victim_tput(&zig),
        "802.11b-like victim {} vs 802.15.4 victim {}",
        victim_tput(&wifi),
        victim_tput(&zig)
    );
    // The 802.11b victim loses receptions to foreign capture
    // (receiver-busy), a failure mode the 802.15.4 receiver cannot have
    // from an adjacent channel.
    assert!(
        wifi.links[0].receiver_busy > zig.links[0].receiver_busy,
        "busy {} vs {}",
        wifi.links[0].receiver_busy,
        zig.links[0].receiver_busy
    );
}

/// Interval pacing: a period far below the service time degrades to the
/// saturated service rate without queue explosion or panic.
#[test]
fn interval_overload_degrades_to_service_rate() {
    let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
    let mut deployment = paper::line_deployment(&plan, Dbm::new(0.0));
    deployment.networks[0].links.truncate(1);
    let run_at = |period_us: u64| {
        let mut b = Scenario::builder(deployment.clone());
        b.behavior_all(NetworkBehavior {
            traffic: TrafficModel::Interval(SimDuration::from_micros(period_us)),
            ..NetworkBehavior::zigbee_default()
        })
        .seed(5);
        engine::run(&quick(&mut b, 6))
    };
    let overloaded = run_at(100); // far below the service time
    let slow = run_at(50_000);
    let over_rate = overloaded.links[0].send_rate(overloaded.measured);
    let slow_rate = slow.links[0].send_rate(slow.measured);
    assert!((15.0..=25.0).contains(&slow_rate), "slow {slow_rate}");
    // Interval sources model the paper's stripped-down attacker firmware:
    // no post-TX processing gap, so the ceiling is backoff + CCA +
    // turnaround + airtime ≈ 3.3 ms → ≈ 300 pkt/s.
    assert!(
        (250.0..=340.0).contains(&over_rate),
        "overloaded {over_rate} should saturate near the MAC service rate"
    );
}

/// Warmup accounting: halving the measured window ~halves the counters
/// but leaves the rates unchanged.
#[test]
fn warmup_scales_counters_not_rates() {
    let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
    let run_with_warmup = |warmup_s: u64| {
        let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
        b.duration(SimDuration::from_secs(11))
            .warmup(SimDuration::from_secs(warmup_s))
            .seed(6);
        engine::run(&b.build().expect("valid"))
    };
    let long = run_with_warmup(1); // 10 s window
    let short = run_with_warmup(6); // 5 s window
    let long_sent: u64 = long.links.iter().map(|l| l.sent).sum();
    let short_sent: u64 = short.links.iter().map(|l| l.sent).sum();
    let ratio = long_sent as f64 / short_sent as f64;
    assert!((1.8..=2.2).contains(&ratio), "counter ratio {ratio}");
    let rate_ratio = long.total_throughput() / short.total_throughput();
    assert!(
        (0.93..=1.07).contains(&rate_ratio),
        "rate ratio {rate_ratio}"
    );
}

/// A DCN network whose peers fall silent: Case II must raise the
/// threshold to the strongest remaining competitor, not leave it at a
/// stale low value.
#[test]
fn dcn_recovers_from_transient_weak_competitors() {
    // Start with a deployment whose co-channel RSSIs are strong; DCN's
    // final thresholds must sit near those RSSIs (≈ −50 dBm at 2-3 m),
    // proving Case II raised past the conservative initialization.
    let plan = ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(3.0), 3);
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.behavior_all(NetworkBehavior {
        threshold: ThresholdMode::Dcn(DcnConfig {
            t_update: SimDuration::from_secs(1),
            ..DcnConfig::paper_default()
        }),
        ..NetworkBehavior::zigbee_default()
    })
    .seed(7);
    let result = engine::run(&quick(&mut b, 8));
    for t in &result.final_thresholds {
        assert!(
            t.value() > -65.0,
            "threshold {t} stuck below the co-channel RSSI band"
        );
    }
}
