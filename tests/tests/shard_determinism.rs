//! Sharded-engine determinism and composition.
//!
//! The sharding contract (DESIGN.md §13) in executable form:
//!
//! 1. **Thread independence** — `run_sharded` results depend only on
//!    the scenario, never on the worker-thread count.
//! 2. **Delegation identity** — a single-component plan is executed by
//!    the serial engine with the seed untouched: `run_sharded == run`,
//!    byte for byte.
//! 3. **Composition** — a multi-component run equals running every
//!    component's sub-scenario on the serial engine and scattering the
//!    results back through the plan's index maps.
//! 4. **Bounded runs** — event budgets split over components exhaust at
//!    the same per-shard event whatever the thread count.
//!
//! Properties 1–3 are also exercised over randomized scenarios with the
//! `check` harness (`partition_independence_randomized`), covering both
//! coupled (3 MHz) and partitionable (25 MHz, shadowing off) spacings.

use nomc_phy::Shadowing;
use nomc_rngcore::check::{forall, one_of, range, zip3, G};
use nomc_rngcore::{check, check_eq};
use nomc_sim::scenario::Propagation;
use nomc_sim::{engine, NetworkBehavior, Scenario};
use nomc_topology::spectrum::ChannelPlan;
use nomc_topology::{paper, Deployment, LinkSpec, NetworkSpec, Point};
use nomc_units::{Dbm, Megahertz, SimDuration};

/// Networks far apart in frequency (25 MHz ≫ the 9 MHz ACR support and
/// every capture model's sync band) and in space, with shadowing
/// disabled so the collision-floor bound is tight: every network is its
/// own interaction component.
fn partitionable_scenario(networks: usize, seed: u64) -> Scenario {
    let specs = (0..networks)
        .map(|i| {
            let freq = Megahertz::new(2410.0 + 25.0 * i as f64);
            let x = 60.0 * i as f64;
            let links = vec![
                LinkSpec::new(Point::new(x, 0.0), Point::new(x + 2.0, 0.0), Dbm::new(0.0)),
                LinkSpec::new(Point::new(x, 1.0), Point::new(x + 2.0, 1.0), Dbm::new(0.0)),
            ];
            NetworkSpec::new(freq, links)
        })
        .collect();
    let mut b = Scenario::builder(Deployment::new(specs));
    b.behavior_all(NetworkBehavior::dcn_default())
        .duration(SimDuration::from_secs(1))
        .warmup(SimDuration::from_millis(250))
        .seed(seed)
        .propagation(Propagation {
            shadowing: Shadowing::disabled(),
            ..Propagation::default()
        });
    b.build().expect("valid partitionable scenario")
}

/// The golden-trace shape: two networks 3 MHz apart — one component.
fn coupled_scenario(seed: u64) -> Scenario {
    let plan = ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(3.0), 2);
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.behavior_all(NetworkBehavior::dcn_default())
        .duration(SimDuration::from_secs(1))
        .warmup(SimDuration::from_millis(250))
        .seed(seed);
    b.build().expect("valid coupled scenario")
}

#[test]
fn partitionable_scenario_splits_into_expected_components() {
    let sc = partitionable_scenario(4, 7);
    let plan = engine::shard_plan(&sc);
    assert_eq!(plan.len(), 4, "each network is its own component");
    for (i, spec) in plan.iter().enumerate() {
        assert_eq!(spec.networks, vec![i]);
        assert_eq!(spec.links, vec![2 * i, 2 * i + 1]);
        assert_eq!(spec.nodes, (4 * i..4 * i + 4).collect::<Vec<_>>());
        assert_eq!(spec.scenario.deployment.networks.len(), 1);
    }
}

#[test]
fn coupled_scenario_is_one_component() {
    let sc = coupled_scenario(42);
    let plan = engine::shard_plan(&sc);
    assert_eq!(plan.len(), 1, "3 MHz apart is inside the ACR support");
    // Delegation keeps the scenario verbatim — seed included.
    assert_eq!(plan[0].scenario, sc);
}

#[test]
fn sharded_results_are_thread_count_independent() {
    let sc = partitionable_scenario(4, 11);
    let base = engine::run_sharded(&sc, 1);
    for threads in [2, 4, 8] {
        assert_eq!(
            base,
            engine::run_sharded(&sc, threads),
            "results must not depend on thread count (threads = {threads})"
        );
    }
}

#[test]
fn single_component_delegates_to_serial_engine() {
    let sc = coupled_scenario(42);
    for threads in [1, 2, 8] {
        assert_eq!(engine::run(&sc), engine::run_sharded(&sc, threads));
    }
}

#[test]
fn merged_results_compose_from_per_component_serial_runs() {
    let sc = partitionable_scenario(3, 5);
    let plan = engine::shard_plan(&sc);
    assert!(plan.len() >= 2);
    let merged = engine::run_sharded(&sc, 2);
    let mut events = 0;
    for spec in &plan {
        // Each component's slice of the merged result is byte-identical
        // to a serial run of its standalone sub-scenario.
        let solo = engine::run(&spec.scenario);
        events += solo.events;
        for (local, &global) in spec.links.iter().enumerate() {
            let mut lm = solo.links[local].clone();
            lm.network = spec.networks[lm.network];
            assert_eq!(merged.links[global], lm);
            assert_eq!(merged.mac_stats[global], solo.mac_stats[local]);
            assert_eq!(merged.tx_powers[global], solo.tx_powers[local]);
            assert_eq!(
                merged.final_thresholds[global],
                solo.final_thresholds[local]
            );
        }
    }
    assert_eq!(merged.events, events, "merged event count is the sum");
}

#[test]
fn sharded_trace_merges_in_canonical_time_order() {
    let mut sc = partitionable_scenario(3, 9);
    sc.record_trace = true;
    sc.record_timeline = true;
    let merged = engine::run_sharded(&sc, 2);
    assert!(!merged.trace.is_empty());
    assert!(!merged.timeline.is_empty());
    assert!(
        merged.trace.windows(2).all(|w| w[0].at <= w[1].at),
        "merged trace must be time-ordered"
    );
    assert!(
        merged.timeline.windows(2).all(|w| w[0].end <= w[1].end),
        "merged timeline must be time-ordered"
    );
    // And identical across thread counts, like everything else.
    assert_eq!(merged, engine::run_sharded(&sc, 4));
}

#[test]
fn bounded_sharded_runs_exhaust_identically_across_thread_counts() {
    let sc = partitionable_scenario(4, 13);
    let natural = engine::run_sharded(&sc, 2).events;
    // A budget well under the natural event count must exhaust — at the
    // same global totals whatever the thread count.
    let budget = natural / 3;
    let base = engine::run_sharded_bounded(&sc, &mut [], budget, 1);
    assert!(base.exhausted, "budget {budget} must exhaust");
    assert!(base.result.events <= budget);
    for threads in [2, 4, 8] {
        let run = engine::run_sharded_bounded(&sc, &mut [], budget, threads);
        assert!(run.exhausted);
        assert_eq!(base.result, run.result);
    }
}

#[test]
fn bounded_sharded_run_with_ample_budget_matches_unbounded() {
    let sc = partitionable_scenario(3, 17);
    let unbounded = engine::run_sharded(&sc, 2);
    let bounded = engine::run_sharded_bounded(&sc, &mut [], u64::MAX, 2);
    assert!(!bounded.exhausted);
    assert_eq!(unbounded, bounded.result);
}

/// Randomized partition-independence (the `check` harness): whatever
/// the spacing regime — fully coupled, fully partitioned, or mixed —
/// merged shard results equal the serial per-component runs and are
/// thread-count independent.
#[test]
fn partition_independence_randomized() {
    fn arb_scenario() -> G<Scenario> {
        zip3(
            range(1usize..4),
            one_of(vec![
                // Coupled: inside the 9 MHz ACR support (shadowed too).
                range(1.0f64..5.0).map(|cfd| (cfd, 4.0, false)),
                // Partitionable: far channels, far apart, no shadowing.
                range(20.0f64..40.0).map(|cfd| (cfd, 80.0, true)),
            ]),
            range(0u64..1000),
        )
        .map(|(nets, (cfd, spacing, bare), seed)| {
            let specs = (0..nets)
                .map(|i| {
                    let freq = Megahertz::new(2410.0 + cfd * i as f64);
                    let x = spacing * i as f64;
                    let links = vec![LinkSpec::new(
                        Point::new(x, 0.0),
                        Point::new(x + 2.0, 0.0),
                        Dbm::new(0.0),
                    )];
                    NetworkSpec::new(freq, links)
                })
                .collect();
            let mut b = Scenario::builder(Deployment::new(specs));
            b.behavior_all(NetworkBehavior::dcn_default())
                .duration(SimDuration::from_millis(600))
                .warmup(SimDuration::from_millis(150))
                .seed(seed);
            if bare {
                b.propagation(Propagation {
                    shadowing: Shadowing::disabled(),
                    ..Propagation::default()
                });
            }
            b.build().expect("valid randomized scenario")
        })
    }

    let g = arb_scenario();
    forall("partition_independence_randomized", 10, &g, |sc| {
        let plan = engine::shard_plan(sc);
        let merged = engine::run_sharded(sc, 1);
        // Thread independence.
        check_eq!(merged, engine::run_sharded(sc, 3));
        if plan.len() == 1 {
            // Delegation identity.
            check_eq!(merged, engine::run(sc));
        } else {
            // Per-component composition.
            for spec in &plan {
                let solo = engine::run(&spec.scenario);
                for (local, &global) in spec.links.iter().enumerate() {
                    let mut lm = solo.links[local].clone();
                    lm.network = spec.networks[lm.network];
                    check_eq!(merged.links[global], lm);
                }
            }
            check!(plan.len() >= 2);
        }
        Ok(())
    });
}
