//! Snapshot/restore byte-identity (DESIGN.md §14).
//!
//! The snapshot contract in executable form: *run-to-event-K, snapshot,
//! restore, run-to-end is byte-identical to an uninterrupted run* — for
//! the serial engine, for the sharded engine (including its merged
//! external-observer stream), and with every fault type in flight. All
//! comparisons serialize through `nomc-json` and assert on the strings,
//! so "identical" means identical down to the last bit of every float.
//!
//! Corruption totality rides along: truncating, byte-flipping, or
//! version-skewing a serialized snapshot must produce a typed
//! [`engine::SnapshotError`], never a panic — that is what lets the
//! sweep supervisor quarantine a bad checkpoint and fall back to a
//! clean re-run.

use nomc_phy::Shadowing;
use nomc_sim::events::Event;
use nomc_sim::runtime::observer::{PowerSample, ThresholdSample, TxOutcomeInfo, TxStartInfo};
use nomc_sim::scenario::Propagation;
use nomc_sim::trace::TraceRecord;
use nomc_sim::{
    engine, CrashFault, DriftFault, FaultPlan, JammerFault, NetworkBehavior, Scenario, SimObserver,
    SimResult, StuckCcaFault,
};
use nomc_topology::spectrum::ChannelPlan;
use nomc_topology::{paper, Deployment, LinkSpec, NetworkSpec, Point};
use nomc_units::{Db, Dbm, Megahertz, SimDuration, SimTime};

fn at(millis: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(millis)
}

/// The golden-trace shape: two DCN networks 3 MHz apart (one
/// interaction component), full trace + timeline recording on.
fn coupled_scenario(seed: u64) -> Scenario {
    let plan = ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(3.0), 2);
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.behavior_all(NetworkBehavior::dcn_default())
        .duration(SimDuration::from_secs(1))
        .warmup(SimDuration::from_millis(250))
        .seed(seed)
        .record_trace(true)
        .record_timeline(true);
    b.build().expect("valid coupled scenario")
}

/// Widely separated networks: every network its own shard.
fn partitionable_scenario(networks: usize, seed: u64) -> Scenario {
    let specs = (0..networks)
        .map(|i| {
            let freq = Megahertz::new(2410.0 + 25.0 * i as f64);
            let x = 60.0 * i as f64;
            let links = vec![
                LinkSpec::new(Point::new(x, 0.0), Point::new(x + 2.0, 0.0), Dbm::new(0.0)),
                LinkSpec::new(Point::new(x, 1.0), Point::new(x + 2.0, 1.0), Dbm::new(0.0)),
            ];
            NetworkSpec::new(freq, links)
        })
        .collect();
    let mut b = Scenario::builder(Deployment::new(specs));
    b.behavior_all(NetworkBehavior::dcn_default())
        .duration(SimDuration::from_secs(1))
        .warmup(SimDuration::from_millis(250))
        .seed(seed)
        .record_trace(true)
        .record_timeline(true)
        .propagation(Propagation {
            shadowing: Shadowing::disabled(),
            ..Propagation::default()
        });
    b.build().expect("valid partitionable scenario")
}

/// Every fault type at once on the coupled scenario (crash/reboot,
/// transient jammer, RSSI drift, stuck CCA), same schedule as the
/// faulted golden trace.
fn faulted_scenario(seed: u64) -> Scenario {
    let plan = ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(3.0), 2);
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.behavior_all(NetworkBehavior::dcn_default())
        .duration(SimDuration::from_secs(1))
        .warmup(SimDuration::from_millis(250))
        .seed(seed)
        .record_trace(true)
        .record_timeline(true)
        .faults(FaultPlan {
            crashes: vec![CrashFault {
                node: 0,
                at: at(400),
                down_for: SimDuration::from_millis(150),
            }],
            jammers: vec![JammerFault {
                frequency: Megahertz::new(2458.0),
                power: Dbm::new(-70.0),
                at: at(300),
                duration: SimDuration::from_millis(200),
            }],
            drifts: vec![DriftFault {
                node: 4,
                at: at(500),
                ramp: SimDuration::from_millis(200),
                peak: Db::new(3.0),
            }],
            stuck_cca: vec![StuckCcaFault {
                node: 2,
                at: at(700),
                duration: SimDuration::from_millis(150),
            }],
        });
    b.build().expect("valid faulted scenario")
}

/// Canonical byte representation of a result: the `nomc-json` encoding
/// the snapshot layer itself uses, covering metrics, trace, timeline,
/// MAC stats, and final thresholds bit-for-bit.
fn bytes(result: &SimResult) -> String {
    nomc_json::to_string(result)
}

/// Pauses at `pause_after` events (asserting the run does pause),
/// round-trips the snapshot through its JSON wire format, and resumes
/// to completion.
fn interrupt_and_resume(sc: &Scenario, sharded: bool, pause_after: u64) -> SimResult {
    let progress = if sharded {
        engine::run_sharded_until(sc, &mut [], u64::MAX, pause_after)
    } else {
        engine::run_until(sc, &mut [], u64::MAX, pause_after)
    };
    let paused = match progress {
        engine::RunProgress::Paused(p) => p,
        engine::RunProgress::Done(_) => panic!("run finished before the pause at {pause_after}"),
    };
    let text = engine::snapshot(&paused);
    let restored = engine::restore(&text).expect("snapshot text round-trips");
    match engine::resume_bounded(sc, restored, &mut [], u64::MAX)
        .expect("restored snapshot resumes against its own scenario")
    {
        engine::RunProgress::Done(done) => done.result,
        engine::RunProgress::Paused(_) => panic!("unbounded resume cannot pause"),
    }
}

#[test]
fn serial_snapshot_resume_is_byte_identical() {
    let sc = coupled_scenario(42);
    let baseline = engine::run(&sc);
    let golden = bytes(&baseline);
    assert!(baseline.events > 100, "scenario must be non-trivial");
    for pause_after in [1, 137, baseline.events / 2, baseline.events - 1] {
        let resumed = interrupt_and_resume(&sc, false, pause_after);
        assert_eq!(
            bytes(&resumed),
            golden,
            "serial resume from event {pause_after} diverged"
        );
    }
}

#[test]
fn serial_resume_chains_across_many_legs() {
    let sc = coupled_scenario(7);
    let golden = bytes(&engine::run(&sc));
    // Interrupt every 1000 events, round-tripping the wire format at
    // every leg: the final result must not care how often we stopped.
    let mut progress = engine::run_until(&sc, &mut [], u64::MAX, 1000);
    let mut pause_at = 1000;
    let mut legs = 0;
    let result = loop {
        match progress {
            engine::RunProgress::Done(done) => break done.result,
            engine::RunProgress::Paused(paused) => {
                legs += 1;
                assert!(legs < 10_000, "runaway pause/resume chain");
                let text = engine::snapshot(&paused);
                let restored = engine::restore(&text).expect("leg snapshot round-trips");
                pause_at += 1000;
                progress =
                    engine::resume_bounded(&sc, restored, &mut [], pause_at).expect("leg resumes");
            }
        }
    };
    assert!(legs > 5, "the chain must actually interrupt repeatedly");
    assert_eq!(bytes(&result), golden, "chained resume diverged");
}

#[test]
fn serial_snapshot_respects_event_budget() {
    let sc = coupled_scenario(11);
    let baseline = engine::run(&sc);
    let budget = baseline.events / 2;
    let direct = engine::run_bounded(&sc, &mut [], budget);
    assert!(
        direct.exhausted,
        "half the natural event count must truncate"
    );
    // Interrupt the bounded run mid-flight: the persisted budget must
    // exhaust at exactly the same event.
    let resumed = match engine::run_until(&sc, &mut [], budget, budget / 2) {
        engine::RunProgress::Paused(paused) => {
            let restored =
                engine::restore(&engine::snapshot(&paused)).expect("bounded snapshot round-trips");
            match engine::resume_bounded(&sc, restored, &mut [], u64::MAX).expect("resumes") {
                engine::RunProgress::Done(done) => done,
                engine::RunProgress::Paused(_) => panic!("unbounded resume cannot pause"),
            }
        }
        engine::RunProgress::Done(_) => panic!("must pause before the budget"),
    };
    assert!(resumed.exhausted, "budget must survive the snapshot");
    assert_eq!(
        bytes(&resumed.result),
        bytes(&direct.result),
        "budget-truncated resume diverged"
    );
}

#[test]
fn faulted_snapshot_resume_is_byte_identical() {
    let sc = faulted_scenario(42);
    let baseline = engine::run(&sc);
    let golden = bytes(&baseline);
    // Pause points straddling the fault schedule: before any fault,
    // mid-jammer/mid-crash, and deep into the recovery tail.
    for pause_after in [
        baseline.events / 10,
        baseline.events / 2,
        (baseline.events * 9) / 10,
    ] {
        let resumed = interrupt_and_resume(&sc, false, pause_after);
        assert_eq!(
            bytes(&resumed),
            golden,
            "faulted resume from event {pause_after} diverged"
        );
    }
}

/// Records every observer callback as a line of text, so two observer
/// streams can be compared byte for byte.
#[derive(Default)]
struct StreamLog(Vec<String>);

impl SimObserver for StreamLog {
    fn wants_trace(&self) -> bool {
        true
    }
    fn wants_thresholds(&self) -> bool {
        true
    }
    fn on_event(&mut self, now: SimTime, event: &Event) {
        self.0.push(format!("event {now:?} {event:?}"));
    }
    fn on_trace(&mut self, record: &TraceRecord) {
        self.0.push(format!("trace {record:?}"));
    }
    fn on_tx_start(&mut self, info: &TxStartInfo) {
        self.0.push(format!("tx_start {info:?}"));
    }
    fn on_tx_outcome(&mut self, info: &TxOutcomeInfo) {
        self.0.push(format!("tx_outcome {info:?}"));
    }
    fn on_abandon(&mut self, link: usize, measured: bool) {
        self.0.push(format!("abandon {link} {measured}"));
    }
    fn on_threshold_change(&mut self, sample: &ThresholdSample) {
        self.0.push(format!("threshold {sample:?}"));
    }
    fn on_power_sample(&mut self, sample: &PowerSample) {
        self.0.push(format!("power {sample:?}"));
    }
}

#[test]
fn sharded_snapshot_resume_is_byte_identical() {
    let sc = partitionable_scenario(4, 42);
    assert!(engine::shard_plan(&sc).len() == 4, "must actually shard");
    let mut baseline_log = StreamLog::default();
    let baseline = engine::run_sharded_with(&sc, &mut [&mut baseline_log], 4);
    let golden = bytes(&baseline);
    for pause_after in [
        1,
        baseline.events / 3,
        baseline.events / 2,
        baseline.events - 1,
    ] {
        let resumed = interrupt_and_resume(&sc, true, pause_after);
        assert_eq!(
            bytes(&resumed),
            golden,
            "sharded resume from event {pause_after} diverged"
        );
    }
    // External observers attached at resume time see the *complete*
    // merged stream, byte-identical to the threaded run's.
    let paused = match engine::run_sharded_until(&sc, &mut [], u64::MAX, baseline.events / 2) {
        engine::RunProgress::Paused(p) => p,
        engine::RunProgress::Done(_) => panic!("must pause mid-run"),
    };
    let restored = engine::restore(&engine::snapshot(&paused)).expect("round-trips");
    let mut resumed_log = StreamLog::default();
    let resumed = match engine::resume_bounded(&sc, restored, &mut [&mut resumed_log], u64::MAX)
        .expect("resumes")
    {
        engine::RunProgress::Done(done) => done.result,
        engine::RunProgress::Paused(_) => panic!("unbounded resume cannot pause"),
    };
    assert_eq!(bytes(&resumed), golden);
    assert!(!baseline_log.0.is_empty(), "stream must be non-trivial");
    assert_eq!(
        resumed_log.0, baseline_log.0,
        "merged observer stream diverged after resume"
    );
}

#[test]
fn sharded_single_component_plan_snapshots_serially() {
    // A one-component plan delegates to the serial engine, exactly as
    // `run_sharded` does: the snapshot kind is serial and resumes fine.
    let sc = coupled_scenario(3);
    let golden = bytes(&engine::run_sharded(&sc, 4));
    let resumed = interrupt_and_resume(&sc, true, 500);
    assert_eq!(bytes(&resumed), golden);
}

#[test]
fn snapshot_rejects_scenario_mismatch() {
    let sc = coupled_scenario(42);
    let other = coupled_scenario(43);
    let paused = match engine::run_until(&sc, &mut [], u64::MAX, 100) {
        engine::RunProgress::Paused(p) => p,
        engine::RunProgress::Done(_) => panic!("must pause"),
    };
    let restored = engine::restore(&engine::snapshot(&paused)).expect("round-trips");
    match engine::resume_bounded(&other, restored, &mut [], u64::MAX) {
        Err(engine::SnapshotError::ScenarioMismatch { found, expected }) => {
            assert_ne!(found, expected);
        }
        other => panic!("expected ScenarioMismatch, got {other:?}"),
    }
}

#[test]
fn snapshot_rejects_version_skew() {
    let sc = coupled_scenario(42);
    let paused = match engine::run_until(&sc, &mut [], u64::MAX, 100) {
        engine::RunProgress::Paused(p) => p,
        engine::RunProgress::Done(_) => panic!("must pause"),
    };
    let text = engine::snapshot(&paused);
    let skewed = text.replacen("\"version\":1", "\"version\":999", 1);
    assert_ne!(text, skewed, "wire format must carry the version field");
    match engine::restore(&skewed) {
        Err(engine::SnapshotError::VersionSkew { found, expected }) => {
            assert_eq!(found, 999);
            assert_eq!(expected, 1);
        }
        other => panic!("expected VersionSkew, got {other:?}"),
    }
}

/// Exhaustive truncation sweep: every strict prefix of the snapshot
/// text (stepping through all lengths on a stride, plus the exact
/// boundaries) must fail with a typed error, never a panic.
#[test]
fn truncated_snapshots_fail_typed() {
    let sc = coupled_scenario(42);
    let paused = match engine::run_until(&sc, &mut [], u64::MAX, 200) {
        engine::RunProgress::Paused(p) => p,
        engine::RunProgress::Done(_) => panic!("must pause"),
    };
    let text = engine::snapshot(&paused);
    let stride = (text.len() / 257).max(1);
    for cut in (0..text.len())
        .step_by(stride)
        .chain([0, 1, text.len() - 1])
    {
        let truncated = &text[..cut];
        match engine::restore(truncated) {
            Err(_) => {}
            Ok(_) => panic!("truncation at {cut}/{} parsed as valid", text.len()),
        }
    }
}

/// Byte-flip sweep: corrupting single bytes all through the payload
/// either still parses (a flip inside a string or number can stay
/// structurally valid — the sweep layer's integrity hash catches those)
/// or fails with a typed error; resuming whatever still parses must
/// also never panic.
#[test]
fn byte_flipped_snapshots_never_panic() {
    let sc = coupled_scenario(42);
    let paused = match engine::run_until(&sc, &mut [], u64::MAX, 200) {
        engine::RunProgress::Paused(p) => p,
        engine::RunProgress::Done(_) => panic!("must pause"),
    };
    let text = engine::snapshot(&paused);
    let bytes = text.as_bytes();
    let stride = (bytes.len() / 509).max(1);
    for pos in (0..bytes.len()).step_by(stride) {
        for flip in [0x01u8, 0x20, 0x80] {
            let mut corrupt = bytes.to_vec();
            corrupt[pos] ^= flip;
            let Ok(corrupt) = String::from_utf8(corrupt) else {
                continue;
            };
            if let Ok(restored) = engine::restore(&corrupt) {
                // Structurally valid after the flip: resuming must
                // yield a typed error or a clean run, never a panic.
                let _ = engine::resume_bounded(&sc, restored, &mut [], 400);
            }
        }
    }
}
