//! Cross-crate integration tests: full simulations spanning topology,
//! PHY, MAC, DCN and metrics.

use nomc_sim::{engine, NetworkBehavior, Scenario, ThresholdMode};
use nomc_topology::{paper, spectrum::ChannelPlan};
use nomc_units::{Dbm, Megahertz, SimDuration};

fn small_line(count: usize, cfd: f64) -> nomc_topology::Deployment {
    let plan = ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(cfd), count);
    paper::line_deployment(&plan, Dbm::new(0.0))
}

fn quick(builder: &mut nomc_sim::ScenarioBuilder) -> Scenario {
    builder
        .duration(SimDuration::from_secs(5))
        .warmup(SimDuration::from_secs(2))
        .build()
        .expect("valid scenario")
}

#[test]
fn full_run_is_deterministic_across_invocations() {
    let mut b = Scenario::builder(small_line(3, 3.0));
    b.behavior_all(NetworkBehavior::dcn_default()).seed(99);
    let sc = quick(&mut b);
    let a = engine::run(&sc);
    let b2 = engine::run(&sc);
    assert_eq!(a, b2);
}

#[test]
fn metric_invariants_hold() {
    for seed in [1u64, 2, 3] {
        let mut b = Scenario::builder(small_line(3, 3.0));
        b.seed(seed).record_timeline(true);
        let result = engine::run(&quick(&mut b));
        for link in &result.links {
            assert!(link.received <= link.sent, "received > sent");
            assert!(link.collided_received <= link.collided);
            assert!(link.collided <= link.sent);
            assert!(link.forced_sent <= link.sent);
            assert!(
                link.received + link.crc_failed + link.sync_missed + link.receiver_busy
                    <= link.sent,
                "outcome counters exceed sent"
            );
            for rec in &link.error_records {
                assert!(rec.error_bits <= rec.total_bits);
                assert!(rec.error_bits > 0, "error record without errors");
            }
        }
        // Timeline entries are well-formed and within the run.
        for t in &result.timeline {
            assert!(t.end > t.start);
        }
        // Per-network totals must add up to the links.
        let total_links: u64 = result.links.iter().map(|l| l.received).sum();
        let total_networks: u64 = result.networks().iter().map(|n| n.totals.received).sum();
        assert_eq!(total_links, total_networks);
    }
}

#[test]
fn dcn_never_collapses_a_clean_network() {
    // A lone network gains nothing from DCN, but must not be harmed by it.
    let mut b = Scenario::builder(small_line(1, 5.0));
    b.seed(5);
    let fixed = engine::run(&quick(&mut b));
    let mut b = Scenario::builder(small_line(1, 5.0));
    b.behavior_all(NetworkBehavior::dcn_default()).seed(5);
    let dcn = engine::run(&quick(&mut b));
    let ratio = dcn.total_throughput() / fixed.total_throughput();
    assert!(
        (0.85..=1.2).contains(&ratio),
        "DCN changed a clean network by {ratio}"
    );
}

#[test]
fn dcn_relaxes_thresholds_under_interference() {
    let mut b = Scenario::builder(small_line(5, 3.0));
    b.behavior_all(NetworkBehavior::dcn_default()).seed(6);
    let result = engine::run(&quick(&mut b));
    // After initialization + updates, senders should sit near their peer
    // RSSI (−50 ± shadow), far above −77.
    let relaxed = result
        .final_thresholds
        .iter()
        .filter(|t| t.value() > -70.0)
        .count();
    assert!(
        relaxed >= result.final_thresholds.len() / 2,
        "most thresholds should relax, got {:?}",
        result.final_thresholds
    );
}

#[test]
fn oracle_classifier_runs_end_to_end() {
    let mut b = Scenario::builder(small_line(5, 3.0));
    let mut behavior = NetworkBehavior::zigbee_default();
    behavior.threshold = ThresholdMode::FixedOracle(Dbm::new(-77.0));
    b.behavior_all(behavior).seed(7);
    let oracle = engine::run(&quick(&mut b));
    let mut b = Scenario::builder(small_line(5, 3.0));
    b.seed(7);
    let plain = engine::run(&quick(&mut b));
    // The oracle ignores inter-channel energy, so it cannot send less
    // than the plain fixed design.
    assert!(
        oracle.total_throughput() >= 0.95 * plain.total_throughput(),
        "oracle {} vs plain {}",
        oracle.total_throughput(),
        plain.total_throughput()
    );
}

#[test]
fn error_positions_flow_into_recovery() {
    // Severe-interference configuration: −22 dBm link vs 0 dBm attacker
    // on an adjacent channel.
    let (deployment, _, attacker_idx) =
        paper::fig4_deployment(Megahertz::new(2460.0), Megahertz::new(2.0), Dbm::new(0.0));
    let mut deployment = deployment;
    deployment.networks[0].links[0].tx_power = Dbm::new(-22.0);
    let mut b = Scenario::builder(deployment);
    b.behavior(
        attacker_idx,
        NetworkBehavior::attacker(SimDuration::from_millis(2)),
    )
    .record_error_positions(true)
    .seed(8);
    let result = engine::run(&quick(&mut b));
    let link = &result.links[0];
    assert!(
        link.crc_failed > 0,
        "severe interference must corrupt frames"
    );
    let mut analyzed = 0;
    for rec in &link.error_records {
        let positions = rec.positions.as_ref().expect("positions recorded");
        assert_eq!(positions.len(), rec.error_bits as usize);
        let scheme = nomc_recovery::BlockScheme::ppr_default();
        let frame = nomc_radio::frame::FrameSpec::default_data_frame();
        let outcome = scheme.analyze(positions, frame.mpdu_bytes());
        assert!(outcome.total_blocks > 0);
        analyzed += 1;
    }
    assert!(analyzed > 0);
}

#[test]
fn cca_failure_policies_differ_when_blocked() {
    let mut radio = nomc_radio::RadioConfig::cc2420();
    radio.cca_threshold_range = (Dbm::new(-150.0), Dbm::new(0.0));
    radio.rssi = nomc_radio::rssi::RssiRegister::ideal();

    let mut b = Scenario::builder(small_line(1, 5.0));
    let mut behavior = NetworkBehavior::zigbee_default();
    behavior.threshold = ThresholdMode::Fixed(Dbm::new(-150.0));
    behavior.mac.on_failure = nomc_mac::CcaFailurePolicy::DropPacket;
    b.behavior_all(behavior.clone())
        .radio(radio.clone())
        .seed(9);
    let dropped = engine::run(&quick(&mut b));
    assert_eq!(dropped.total_throughput(), 0.0);

    behavior.mac.on_failure = nomc_mac::CcaFailurePolicy::TransmitAnyway;
    let mut b = Scenario::builder(small_line(1, 5.0));
    b.behavior_all(behavior).radio(radio).seed(9);
    let forced = engine::run(&quick(&mut b));
    assert!(forced.total_throughput() > 20.0);
}
