//! Property tests pinning the indexed [`Medium`] to a naive full-scan
//! reference.
//!
//! The medium keeps a per-channel id index over a monotonic-id slab so
//! power queries touch only plausibly-overlapping transmissions. These
//! properties assert the optimization is *invisible*: over randomized
//! transmission sets — including channels beyond the ACR saturation
//! cutoff and entries old enough to be pruned — every query returns
//! results **bit-identical** to a flat scan of the same registry in the
//! documented summation orders (channel-major for
//! [`Medium::sensed_components`], id order for
//! [`Medium::interference_segments`]).

use nomc_rngcore::check::{forall, range, vec_of, zip2, zip3, zip4, G};
use nomc_rngcore::{check, check_eq};
use nomc_sim::events::{NodeId, TxId};
use nomc_sim::medium::{Medium, Segment, Transmission};
use nomc_units::{Dbm, Megahertz, MilliWatts, SimDuration, SimTime};
use std::collections::VecDeque;

/// Observers / transmitters share this many node ids.
const NODES: usize = 6;

/// Mirrors the medium's retention horizon (see `Medium::new`): the
/// reference registry must prune the same prefix the medium prunes, or
/// the two would diverge on ancient history instead of on indexing bugs.
const RETENTION: SimDuration = SimDuration::from_millis(20);

/// The channel grid: 8 points at 3 MHz spacing. Distances from one end
/// to the other (21 MHz) comfortably exceed the CC2420 curve's 9 MHz
/// saturation CFD, so beyond-cutoff channels occur in every dense case.
fn grid(k: usize) -> Megahertz {
    Megahertz::new(2450.0 + 3.0 * k as f64)
}

/// One randomized transmission: (grid point, start µs, duration µs,
/// strongest received power dBm).
type Spec = (usize, u64, u64, f64);

fn arb_specs() -> G<Vec<Spec>> {
    vec_of(
        zip4(
            range(0usize..8),
            range(0u64..30_000),
            range(200u64..4_300),
            range(-90.0f64..-30.0),
        ),
        1..40,
    )
}

/// Builds the indexed medium and the flat reference registry from the
/// same specs. Specs are sorted by start (the engine registers in event
/// order) and ids minted consecutively from 1; the reference applies
/// the same prefix-only pruning `Medium::add` applies.
fn build(specs: &[Spec]) -> (Medium, VecDeque<Transmission>) {
    let mut sorted = specs.to_vec();
    sorted.sort_by_key(|&(_, start, ..)| start);
    let mut medium = Medium::new(
        nomc_phy::coupling::AcrCurve::cc2420_calibrated(),
        Dbm::new(-98.0).to_milliwatts(),
    );
    let mut flat: VecDeque<Transmission> = VecDeque::new();
    for (i, &(k, start_us, dur_us, power)) in sorted.iter().enumerate() {
        let start = SimTime::from_micros(start_us);
        let tx = Transmission {
            id: (i + 1) as TxId,
            tx_node: i % NODES,
            link: i % NODES,
            frequency: grid(k),
            start,
            mpdu_start: SimTime::from_micros(start_us + 192),
            end: SimTime::from_micros(start_us + dur_us),
            seq: 0,
            forced: false,
            rx_power: (0..NODES).map(|n| Dbm::new(power - n as f64)).collect(),
        };
        while flat
            .front()
            .is_some_and(|t| start.saturating_since(t.end) > RETENTION)
        {
            flat.pop_front();
        }
        flat.push_back(tx.clone());
        medium.add(tx);
    }
    (medium, flat)
}

/// Flat-scan reference for [`Medium::sensed_components`]: channel-major
/// (distinct frequencies ascending, ids ascending within a channel),
/// one leakage factor per channel, saturation cutoff applied.
fn naive_sensed(
    medium: &Medium,
    flat: &VecDeque<Transmission>,
    observer: NodeId,
    freq: Megahertz,
    now: SimTime,
) -> (MilliWatts, MilliWatts) {
    let cutoff = medium.acr().saturation_cfd().value();
    let mut freqs: Vec<f64> = flat.iter().map(|t| t.frequency.value()).collect();
    freqs.sort_by(f64::total_cmp);
    freqs.dedup();
    let mut co = MilliWatts::ZERO;
    let mut inter = MilliWatts::ZERO;
    for f in freqs {
        let cfd = Megahertz::new(f).distance_to(freq);
        if cfd.value() > cutoff {
            continue;
        }
        let factor = medium.acr().leakage_factor(cfd);
        for t in flat {
            if t.frequency.value() != f || t.tx_node == observer || !t.is_active_at(now) {
                continue;
            }
            let coupled = t.rx_power[observer].to_milliwatts() * factor;
            if cfd.value() < 0.5 {
                co += coupled;
            } else {
                inter += coupled;
            }
        }
    }
    (co, inter)
}

/// Flat-scan reference for [`Medium::interference_segments`]: id-order
/// candidate collection with the saturation cutoff, then the same
/// boundary construction.
fn naive_segments(
    medium: &Medium,
    flat: &VecDeque<Transmission>,
    subject: TxId,
    observer: NodeId,
    freq: Megahertz,
    from: SimTime,
    to: SimTime,
) -> Vec<Segment> {
    let cutoff = medium.acr().saturation_cfd().value();
    let mut interferers: Vec<(SimTime, SimTime, MilliWatts)> = Vec::new();
    for t in flat {
        let cfd = t.frequency.distance_to(freq);
        if cfd.value() > cutoff || t.id == subject || t.tx_node == observer {
            continue;
        }
        if let Some((s, e)) = t.overlap(from, to) {
            let coupled = t.rx_power[observer].to_milliwatts() * medium.acr().leakage_factor(cfd);
            interferers.push((s, e, coupled));
        }
    }
    let mut bounds: Vec<SimTime> = vec![from, to];
    for &(s, e, _) in &interferers {
        bounds.push(s);
        bounds.push(e);
    }
    bounds.sort();
    bounds.dedup();
    let mut segments = Vec::new();
    for (&s, &e) in bounds.iter().zip(bounds.iter().skip(1)) {
        if s == e {
            continue;
        }
        let mut power = MilliWatts::ZERO;
        for &(is, ie, p) in &interferers {
            if is <= s && e <= ie {
                power += p;
            }
        }
        segments.push(Segment {
            duration: e - s,
            interference: power,
        });
    }
    if segments.is_empty() {
        segments.push(Segment {
            duration: to - from,
            interference: MilliWatts::ZERO,
        });
    }
    segments
}

#[test]
fn sensed_components_match_full_scan() {
    let g = zip3(
        arb_specs(),
        zip2(range(0usize..NODES), range(0usize..8)),
        range(0u64..36_000),
    );
    forall(
        "sensed_components_match_full_scan",
        96,
        &g,
        |(specs, (observer, obs_k), now_us)| {
            let (medium, flat) = build(specs);
            let freq = grid(*obs_k);
            let now = SimTime::from_micros(*now_us);
            let (co, inter) = medium.sensed_components(*observer, freq, now);
            let (nco, ninter) = naive_sensed(&medium, &flat, *observer, freq, now);
            check_eq!(co, nco);
            check_eq!(inter, ninter);
            check_eq!(
                medium.sensed_total(*observer, freq, now),
                nco + ninter + medium.noise()
            );
            Ok(())
        },
    );
}

#[test]
fn interference_segments_match_full_scan() {
    let g = zip4(
        arb_specs(),
        zip2(range(0usize..NODES), range(0usize..8)),
        range(0u64..45), // subject id (may or may not exist / be pruned)
        zip2(range(0u64..36_000), range(1u64..6_000)),
    );
    forall(
        "interference_segments_match_full_scan",
        96,
        &g,
        |(specs, (observer, obs_k), subject, (from_us, len_us))| {
            let (medium, flat) = build(specs);
            let freq = grid(*obs_k);
            let (from, to) = (
                SimTime::from_micros(*from_us),
                SimTime::from_micros(*from_us + *len_us),
            );
            let got = medium.interference_segments(*subject, *observer, freq, from, to);
            let want = naive_segments(&medium, &flat, *subject, *observer, freq, from, to);
            check_eq!(got, want);
            let covered: SimDuration = got.iter().map(|s| s.duration).sum();
            check_eq!(covered, to - from);
            Ok(())
        },
    );
}

#[test]
fn collision_predicate_matches_full_scan() {
    let g = zip4(
        arb_specs(),
        zip2(range(0usize..NODES), range(0usize..8)),
        zip2(range(0u64..45), range(-110.0f64..-40.0)),
        zip2(range(0u64..36_000), range(1u64..6_000)),
    );
    forall(
        "collision_predicate_matches_full_scan",
        96,
        &g,
        |(specs, (observer, obs_k), (subject, floor), (from_us, len_us))| {
            let (medium, flat) = build(specs);
            let freq = grid(*obs_k);
            let (from, to) = (
                SimTime::from_micros(*from_us),
                SimTime::from_micros(*from_us + *len_us),
            );
            let floor = Dbm::new(*floor);
            // was_collided deliberately has *no* channel cutoff.
            let want = flat.iter().any(|t| {
                t.id != *subject
                    && t.tx_node != *observer
                    && t.overlap(from, to).is_some()
                    && (t.rx_power[*observer].to_milliwatts()
                        * medium.acr().leakage_factor(t.frequency.distance_to(freq)))
                    .to_dbm()
                        > floor
            });
            check_eq!(
                medium.was_collided(*subject, *observer, freq, from, to, floor),
                want
            );
            Ok(())
        },
    );
}

/// Regression: a transmission whose end lands on the *exact* prune
/// boundary (`now − end == retention`) must be retained and remain
/// visible to the indexed scan — the prune comparison is strict, so
/// boundary-equal history is inside the horizon, not past it. A
/// one-nanosecond-older end is pruned.
#[test]
fn prune_boundary_equal_end_stays_visible_to_indexed_scan() {
    let mk = |id: TxId, node: NodeId, start: SimTime, end: SimTime| Transmission {
        id,
        tx_node: node,
        link: node,
        frequency: grid(0),
        start,
        mpdu_start: start + SimDuration::from_micros(192),
        end,
        seq: 0,
        forced: false,
        rx_power: (0..NODES).map(|n| Dbm::new(-60.0 - n as f64)).collect(),
    };
    let boundary_end = SimTime::from_micros(1_000);
    let next_start = boundary_end + RETENTION; // now − end == retention exactly
    let mut medium = Medium::new(
        nomc_phy::coupling::AcrCurve::cc2420_calibrated(),
        Dbm::new(-98.0).to_milliwatts(),
    );
    medium.add(mk(1, 0, SimTime::ZERO, boundary_end));
    medium.add(mk(
        2,
        1,
        next_start,
        next_start + SimDuration::from_micros(3_000),
    ));
    assert_eq!(medium.tracked(), 2, "boundary-equal entry must survive");
    assert!(medium.get(1).is_some());
    // The per-channel index must agree with the slab: a segment query
    // over the retained transmission's live window still sees its energy.
    let segs = medium.interference_segments(2, 2, grid(0), SimTime::ZERO, boundary_end);
    assert_eq!(segs.len(), 1);
    assert!(
        segs[0].interference > MilliWatts::ZERO,
        "indexed scan must see the boundary-equal transmission"
    );
    // ... and matches the naive reference exactly at the boundary.
    let flat: VecDeque<Transmission> = [
        mk(1, 0, SimTime::ZERO, boundary_end),
        mk(
            2,
            1,
            next_start,
            next_start + SimDuration::from_micros(3_000),
        ),
    ]
    .into_iter()
    .collect();
    let want = naive_segments(&medium, &flat, 2, 2, grid(0), SimTime::ZERO, boundary_end);
    assert_eq!(segs, want);

    // One nanosecond past the horizon the entry is pruned from slab and
    // index alike.
    let mut medium = Medium::new(
        nomc_phy::coupling::AcrCurve::cc2420_calibrated(),
        Dbm::new(-98.0).to_milliwatts(),
    );
    medium.add(mk(1, 0, SimTime::ZERO, boundary_end));
    let late_start = next_start + SimDuration::from_nanos(1);
    medium.add(mk(
        2,
        1,
        late_start,
        late_start + SimDuration::from_micros(3_000),
    ));
    assert_eq!(medium.tracked(), 1, "past-boundary entry must be pruned");
    assert!(medium.get(1).is_none());
    let segs = medium.interference_segments(2, 2, grid(0), SimTime::ZERO, boundary_end);
    assert_eq!(segs.len(), 1);
    assert_eq!(segs[0].interference, MilliWatts::ZERO);
}

/// Pins the incremental active-set sense path to the windowed reference
/// walk (`sensed_components_naive`, compiled via the `naive-medium`
/// feature) and to the flat scan, with [`Medium::retire`] driven
/// exactly the way the engine drives it: every transmission whose end
/// is at or before the query instant has had its TxEnd fire, in event
/// (end-time, id) order. Both paths must agree bit for bit.
#[test]
fn incremental_sense_matches_naive_after_retire() {
    let g = zip3(
        arb_specs(),
        zip2(range(0usize..NODES), range(0usize..8)),
        range(0u64..36_000),
    );
    forall(
        "incremental_sense_matches_naive_after_retire",
        96,
        &g,
        |(specs, (observer, obs_k), now_us)| {
            let (mut medium, flat) = build(specs);
            let freq = grid(*obs_k);
            let now = SimTime::from_micros(*now_us);
            // Before any retire the active sets hold everything; the two
            // paths must already agree.
            check_eq!(
                medium.sensed_components(*observer, freq, now),
                medium.sensed_components_naive(*observer, freq, now)
            );
            // Fire the TxEnds the engine would have fired by `now`.
            let mut ended: Vec<(SimTime, TxId)> = flat
                .iter()
                .filter(|t| t.end <= now)
                .map(|t| (t.end, t.id))
                .collect();
            ended.sort();
            for &(_, id) in &ended {
                medium.retire(id);
            }
            let (co, inter) = medium.sensed_components(*observer, freq, now);
            check_eq!(
                (co, inter),
                medium.sensed_components_naive(*observer, freq, now)
            );
            check_eq!(
                (co, inter),
                naive_sensed(&medium, &flat, *observer, freq, now)
            );
            // Retiring is idempotent and ignores unknown/pruned ids.
            for &(_, id) in &ended {
                medium.retire(id);
            }
            medium.retire(0);
            medium.retire(9_999);
            check_eq!((co, inter), medium.sensed_components(*observer, freq, now));
            // The windowed history is untouched by retirement: late
            // segment and collision queries still see ended frames.
            let from = SimTime::from_micros(now_us.saturating_sub(5_000));
            check_eq!(
                medium.interference_segments(0, *observer, freq, from, now),
                naive_segments(&medium, &flat, 0, *observer, freq, from, now)
            );
            Ok(())
        },
    );
}

#[test]
fn get_matches_linear_find() {
    forall("get_matches_linear_find", 64, &arb_specs(), |specs| {
        let (medium, flat) = build(specs);
        check_eq!(medium.tracked(), flat.len());
        for id in 0..(specs.len() as TxId + 2) {
            let got = medium.get(id).map(|t| (t.id, t.start, t.end));
            let want = flat
                .iter()
                .find(|t| t.id == id)
                .map(|t| (t.id, t.start, t.end));
            check_eq!(got, want);
            if let Some(t) = medium.get(id) {
                check!(t.id == id, "get({id}) returned id {}", t.id);
            }
        }
        Ok(())
    });
}
