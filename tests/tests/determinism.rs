//! Determinism regression: the Fig. 4 CPRR-vs-CFD experiment (CPRR under
//! a deliberate collision schedule, the paper's core feasibility result)
//! must produce byte-identical metrics JSON when run twice with the same
//! seeds — across the multi-threaded runner, the simulator, the RNG and
//! the JSON serializer. Any nondeterminism (iteration-order dependence,
//! uninitialized state, float formatting drift) shows up here as a
//! byte-level diff.

use nomc_experiments::experiments::{fig03, fig04};
use nomc_experiments::{runner, ExpConfig};
use nomc_json::{Json, ToJson};
use nomc_units::SimDuration;

fn quick_cfg() -> ExpConfig {
    ExpConfig {
        duration: SimDuration::from_secs(2),
        warmup: SimDuration::from_millis(500),
        seeds: vec![7, 8],
    }
}

/// One full CPRR-vs-CFD sweep rendered as metrics JSON.
fn metrics_json() -> String {
    let cfg = quick_cfg();
    let points: Vec<Json> = [1.0, 2.0, 3.0]
        .iter()
        .map(|&cfd| {
            let (normal, attacker) = fig04::cprr_at(&cfg, cfd);
            Json::object([
                ("cfd_mhz", cfd.to_json()),
                ("normal_cprr", normal.to_json()),
                ("attacker_cprr", attacker.to_json()),
            ])
        })
        .collect();
    Json::object([
        ("experiment", "fig04".to_json()),
        ("points", Json::Arr(points)),
    ])
    .dump_pretty()
}

#[test]
fn fig04_metrics_json_is_byte_identical_across_runs() {
    let first = metrics_json();
    let second = metrics_json();
    assert_eq!(first, second, "Fig. 4 metrics JSON differs between runs");
    // The metrics are real numbers, not a trivially-empty report.
    let parsed: Json = first.parse().expect("valid JSON");
    let points = parsed["points"].as_array().expect("points array");
    assert_eq!(points.len(), 3);
    for p in points {
        assert!(p["normal_cprr"].as_f64().expect("number").is_finite());
    }
}

#[test]
fn fig04_report_renders_identically_across_runs() {
    // The rendered Report (the artifact `all_experiments` writes) must
    // also serialize byte-identically, including its formatted cells.
    let a = fig04::run(&quick_cfg());
    let b = fig04::run(&quick_cfg());
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.to_json_string(), rb.to_json_string());
    }
}

#[test]
fn fault_recovery_report_renders_identically_across_runs() {
    // The fault schedule is part of the scenario, so the injected
    // crash + jammer sweep must be exactly as seed-stable as the
    // fault-free experiments: two full ext_fault_recovery sweeps
    // render byte-identical reports (recovery times included).
    use nomc_experiments::experiments::extensions;
    let cfg = ExpConfig::quick();
    let a = extensions::fault_recovery(&cfg);
    let b = extensions::fault_recovery(&cfg);
    assert_eq!(a.to_json_string(), b.to_json_string());
}

#[test]
fn parallel_runner_preserves_seed_order_determinism() {
    // The scoped-thread runner must return results in seed order with
    // identical contents no matter how the OS schedules the workers.
    let cfg = quick_cfg();
    let a = runner::run_seeds(&cfg, |seed| fig03::scenario(2.0, seed));
    let b = runner::run_seeds(&cfg, |seed| fig03::scenario(2.0, seed));
    assert_eq!(a, b);
}
