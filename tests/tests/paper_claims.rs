//! Integration tests asserting the paper's headline claims end-to-end
//! through the experiment harness (quick fidelity).

use nomc_experiments::experiments::{cases, fig04, fig16, fig19, table1};
use nomc_experiments::ExpConfig;

fn cfg() -> ExpConfig {
    ExpConfig::quick()
}

#[test]
fn claim_cprr_feasibility_bands() {
    // §III-B: inter-channel collisions are tolerable at CFD ≥ 3 MHz.
    let (c3, _) = fig04::cprr_at(&cfg(), 3.0);
    let (c1, _) = fig04::cprr_at(&cfg(), 1.0);
    assert!(c3 > 0.9, "CFD 3 CPRR {c3}");
    assert!(c1 < 0.35, "CFD 1 CPRR {c1}");
}

#[test]
fn claim_dcn_improves_all_networks_and_cfd3_wins() {
    // §VI-A: with DCN everywhere, every network improves; CFD 3 beats 2.
    let o3 = fig16::outcome(&cfg(), 3.0);
    assert!(o3.total_with() > o3.total_without());
    let o2 = fig16::outcome(&cfg(), 2.0);
    assert!(o3.total_with() > o2.total_with());
}

#[test]
fn claim_headline_gain_over_zigbee() {
    // §VI-B: the DCN design beats the default ZigBee design by tens of
    // percent (paper: 38.4-55.7 % across configurations, 58 % in Fig 19).
    let o = fig19::outcome(&cfg());
    let gain = o.overall_gain();
    assert!(
        (0.2..=1.2).contains(&gain),
        "headline gain {gain} outside plausible band"
    );
}

#[test]
fn claim_fairness() {
    // §VI-B-3 / Table I: throughput spread across DCN networks is small.
    let rows = table1::by_label(&cfg());
    let values: Vec<f64> = rows.iter().map(|r| r.1).collect();
    assert!(
        table1::spread(&values) < 0.2,
        "spread {}",
        table1::spread(&values)
    );
}

#[test]
fn claim_case_ordering() {
    // §VI-B-4: DCN's relaxing gain is largest when networks share one
    // interfering region and smallest for random topology.
    let c = cfg();
    let gain = |case| {
        cases::throughput(&c, case, cases::Design::Dcn)
            / cases::throughput(&c, case, cases::Design::NonOrthogonalFixed)
    };
    let dense = gain(cases::Case::DenseRegion);
    let random = gain(cases::Case::Random);
    assert!(
        dense + 0.02 >= random,
        "dense relax gain {dense} should be ≥ random {random}"
    );
    // And all cases beat ZigBee soundly.
    for case in [
        cases::Case::DenseRegion,
        cases::Case::Clustered,
        cases::Case::Random,
    ] {
        let z = cases::throughput(&c, case, cases::Design::Zigbee);
        let d = cases::throughput(&c, case, cases::Design::Dcn);
        assert!(d > 1.1 * z, "{case:?}: {d} vs {z}");
    }
}
