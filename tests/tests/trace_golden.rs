//! Golden event-trace regression.
//!
//! The fixture in `tests/fixtures/trace_2net_dcn.jsonl` was recorded
//! before the runtime decomposition (engine split + observer layer +
//! indexed medium) and pins the *full* structured event trace of a
//! small two-network DCN scenario: every CCA reading, every TxStart,
//! every outcome, byte for byte. Unlike the Fig. 4 determinism check
//! (which compares two in-process runs), this catches any behavioral
//! drift relative to the recorded history.
//!
//! The scenario keeps both networks 3 MHz apart, well inside the ACR
//! curve's support, so the indexed medium's far-channel cutoff cannot
//! legitimately perturb it.
//!
//! To re-record after an *intentional* behavior change:
//!
//! ```text
//! NOMC_UPDATE_GOLDEN=1 cargo test -p nomc-integration-tests --test trace_golden
//! ```

use nomc_sim::{engine, trace, NetworkBehavior, Scenario};
use nomc_topology::paper;
use nomc_topology::spectrum::ChannelPlan;
use nomc_units::{Dbm, Megahertz, SimDuration};
use std::path::PathBuf;

/// Two DCN networks, 3 MHz apart, two links each, one simulated second.
fn golden_scenario() -> Scenario {
    let plan = ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(3.0), 2);
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.behavior_all(NetworkBehavior::dcn_default())
        .duration(SimDuration::from_secs(1))
        .warmup(SimDuration::from_millis(250))
        .seed(42)
        .record_trace(true);
    b.build().expect("builder-validated golden scenario")
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/trace_2net_dcn.jsonl")
}

/// Honors the CI shard matrix: with `NOMC_SHARDS=N` set, the run goes
/// through the sharded engine on `N` worker threads. The two networks
/// sit 3 MHz apart — inside the ACR support, one interaction component
/// — so the fixture must stay byte-identical for every `N`.
fn run_golden(sc: &Scenario) -> nomc_sim::SimResult {
    match std::env::var("NOMC_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(threads) => engine::run_sharded(sc, threads),
        None => engine::run(sc),
    }
}

#[test]
fn golden_trace_is_byte_identical() {
    let result = run_golden(&golden_scenario());
    assert!(!result.trace.is_empty(), "trace recording must be on");
    let jsonl = trace::to_jsonl(&result.trace);
    let path = fixture_path();
    if std::env::var_os("NOMC_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &jsonl).expect("cannot write golden fixture");
        eprintln!(
            "re-recorded {} ({} records)",
            path.display(),
            result.trace.len()
        );
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden fixture {}: {e}; record it with \
             NOMC_UPDATE_GOLDEN=1 cargo test --test trace_golden",
            path.display()
        )
    });
    if golden != jsonl {
        let diverged = golden
            .lines()
            .zip(jsonl.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| golden.lines().count().min(jsonl.lines().count()));
        panic!(
            "event trace diverged from the recorded fixture: \
             {} golden lines vs {} current, first difference at line {} \
             (golden: {:?}, current: {:?})",
            golden.lines().count(),
            jsonl.lines().count(),
            diverged + 1,
            golden.lines().nth(diverged).unwrap_or("<eof>"),
            jsonl.lines().nth(diverged).unwrap_or("<eof>"),
        );
    }
}
