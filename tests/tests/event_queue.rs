//! Event-queue edge cases, out-of-crate.
//!
//! The unit tests in `nomc-sim::events` pin the basic ordering
//! contract; these integration tests cover the edges that bit on real
//! workloads: equal-timestamp FIFO at bucket scale, far-future events
//! beyond the calendar wheel's horizon (including exact-boundary and
//! multi-revolution cases, and FIFO survival across overflow
//! migration), and engine behaviour when the deterministic event budget
//! of [`nomc_sim::engine::run_bounded`] exhausts before the queue
//! drains.

use nomc_sim::events::{BucketQueue, Event, EventQueue, HeapQueue};
use nomc_sim::{engine, Scenario};
use nomc_topology::{paper, spectrum::ChannelPlan};
use nomc_units::{Dbm, Megahertz, SimDuration, SimTime};

/// The calendar wheel spans 2048 × 16 µs = 32.768 ms (private constants
/// of `nomc-sim::events`; mirrored here so these tests exercise both
/// sides of the horizon on purpose).
const WHEEL_SPAN_NS: u64 = 16_000 * 2048;

fn both() -> [(&'static str, Box<dyn EventQueue>); 2] {
    [
        ("heap", Box::new(HeapQueue::new())),
        ("bucket", Box::new(BucketQueue::new())),
    ]
}

/// Equal-timestamp FIFO at bucket scale: hundreds of same-instant
/// events — far more than a bucket's typical occupancy — interleaved
/// with same-bucket-different-instant neighbours, must drain in
/// schedule order within each instant.
#[test]
fn equal_timestamp_fifo_at_scale() {
    for (name, mut q) in both() {
        let t = SimTime::from_micros(320); // bucket boundary (20 × 16 µs)
        let just_before = t - SimDuration::from_nanos(1); // same bucket? no: previous one
        let same_bucket_later = t + SimDuration::from_micros(3); // within the 16 µs bucket
        for i in 0..400 {
            q.schedule(t, Event::PacketReady(i));
            if i % 7 == 0 {
                q.schedule(same_bucket_later, Event::CcaDone(i));
            }
            if i % 11 == 0 {
                q.schedule(just_before, Event::TxStart(i));
            }
        }
        // Drain: all `just_before` events first (FIFO among themselves),
        // then the 400 same-instant events in schedule order, then the
        // same-bucket stragglers in schedule order.
        let mut popped = Vec::new();
        while let Some((time, ev)) = q.pop() {
            popped.push((time, ev));
        }
        let mut expect = Vec::new();
        for i in 0..400 {
            if i % 11 == 0 {
                expect.push((just_before, Event::TxStart(i)));
            }
        }
        for i in 0..400 {
            expect.push((t, Event::PacketReady(i)));
        }
        for i in 0..400 {
            if i % 7 == 0 {
                expect.push((same_bucket_later, Event::CcaDone(i)));
            }
        }
        assert_eq!(popped, expect, "{name}: equal-timestamp FIFO violated");
    }
}

/// Far-future events past the wheel horizon: exact-boundary offsets,
/// multiple wheel revolutions, and a same-instant pair split across the
/// schedule-before/schedule-after-migration divide must all pop in
/// `(time, seq)` order.
#[test]
fn far_future_past_bucket_horizon() {
    for (name, mut q) in both() {
        let near = SimTime::from_micros(100);
        // Exactly on the horizon (first nanosecond that overflows), one
        // revolution + 1 ns, and several revolutions out.
        let at_horizon = SimTime::from_nanos(WHEEL_SPAN_NS);
        let past_one = SimTime::from_nanos(WHEEL_SPAN_NS + 1);
        let far = SimTime::from_nanos(5 * WHEEL_SPAN_NS + 12_345);
        q.schedule(far, Event::ProviderTick(0));
        q.schedule(at_horizon, Event::ProviderTick(1));
        q.schedule(past_one, Event::ProviderTick(2));
        q.schedule(near, Event::CcaDone(3));
        assert_eq!(q.pop(), Some((near, Event::CcaDone(3))));
        // After the cursor has moved, schedule another event at the SAME
        // far-future instant: it must pop after the earlier-scheduled
        // one (FIFO survives overflow migration).
        q.schedule(far, Event::ProviderTick(4));
        assert_eq!(q.pop(), Some((at_horizon, Event::ProviderTick(1))));
        assert_eq!(q.pop(), Some((past_one, Event::ProviderTick(2))));
        assert_eq!(q.pop(), Some((far, Event::ProviderTick(0))));
        assert_eq!(q.pop(), Some((far, Event::ProviderTick(4))));
        assert_eq!(q.pop(), None, "{name}: queue should be drained");
    }
}

/// Repeated long idle gaps (every event beyond the horizon of the last)
/// keep working as the cursor leapfrogs: a pathological-but-legal
/// schedule for coarse provider ticks.
#[test]
fn consecutive_horizon_jumps() {
    for (name, mut q) in both() {
        let mut expect = Vec::new();
        for k in 1..=6u64 {
            let t = SimTime::from_nanos(k * (WHEEL_SPAN_NS + 7));
            q.schedule(t, Event::ProviderTick(k as usize));
            expect.push((t, Event::ProviderTick(k as usize)));
        }
        let popped: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(popped, expect, "{name}: horizon leapfrog broke ordering");
    }
}

fn tiny_scenario() -> Scenario {
    let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.duration(SimDuration::from_secs(1))
        .warmup(SimDuration::from_millis(250))
        .seed(7);
    b.build().expect("valid scenario")
}

/// Exhausting the event budget stops the run cleanly mid-queue: the
/// engine finalizes without draining, reports exhaustion, and the
/// truncated prefix stays deterministic (same budget → bit-identical
/// result).
#[test]
fn budget_exhaustion_stops_mid_queue() {
    let sc = tiny_scenario();
    let bounded = engine::run_bounded(&sc, &mut [], 500);
    assert!(bounded.exhausted, "500 events must not finish a 1 s run");
    let again = engine::run_bounded(&sc, &mut [], 500);
    assert!(again.exhausted);
    assert_eq!(
        bounded.result, again.result,
        "budget-truncated runs must be reproducible"
    );
    // A larger budget strictly extends the prefix: sent counters are
    // monotone in the budget.
    let larger = engine::run_bounded(&sc, &mut [], 5_000);
    let sent = |r: &nomc_sim::SimResult| r.links.iter().map(|l| l.sent).sum::<u64>();
    assert!(sent(&larger.result) >= sent(&bounded.result));
}

/// A budget above the natural event count changes nothing: the bounded
/// run drains the queue normally and its result is bit-identical to the
/// unbounded entry point's.
#[test]
fn oversized_budget_is_identical_to_unbounded() {
    let sc = tiny_scenario();
    let unbounded = engine::run(&sc);
    let bounded = engine::run_bounded(&sc, &mut [], u64::MAX);
    assert!(!bounded.exhausted, "oversized budget must not trip");
    assert_eq!(
        unbounded, bounded.result,
        "oversized budget perturbed the run"
    );
}
