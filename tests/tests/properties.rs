//! Property-based integration tests: randomized scenarios must simulate
//! without panics and uphold the metric invariants.

use nomc_sim::{engine, NetworkBehavior, Scenario, ThresholdMode, TrafficModel};
use nomc_topology::spectrum::ChannelPlan;
use nomc_topology::{Deployment, LinkSpec, NetworkSpec, Point};
use nomc_units::{Dbm, Megahertz, SimDuration};
use proptest::prelude::*;

/// A randomized but always-valid deployment.
fn arb_deployment() -> impl Strategy<Value = Deployment> {
    (
        1usize..=4,                 // networks
        1usize..=3,                 // links per network
        1.0f64..=5.0,               // cfd
        prop::collection::vec((-8.0f64..8.0, -8.0f64..8.0, 0.5f64..4.0, -25.0f64..0.0), 12),
    )
        .prop_map(|(nets, links, cfd, coords)| {
            let plan =
                ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(cfd), nets);
            let mut idx = 0;
            let networks = plan
                .channels()
                .iter()
                .map(|&freq| {
                    let ls = (0..links)
                        .map(|_| {
                            let (x, y, d, p) = coords[idx % coords.len()];
                            idx += 1;
                            LinkSpec::new(
                                Point::new(x, y),
                                Point::new(x + d, y),
                                Dbm::new(p),
                            )
                        })
                        .collect();
                    NetworkSpec::new(freq, ls)
                })
                .collect();
            Deployment::new(networks)
        })
}

fn arb_behavior() -> impl Strategy<Value = NetworkBehavior> {
    prop_oneof![
        Just(NetworkBehavior::zigbee_default()),
        Just(NetworkBehavior::dcn_default()),
        Just(NetworkBehavior::attacker(SimDuration::from_millis(4))),
        (-95.0f64..-40.0).prop_map(|t| NetworkBehavior {
            threshold: ThresholdMode::Fixed(Dbm::new(t)),
            ..NetworkBehavior::zigbee_default()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_scenarios_simulate_cleanly(
        deployment in arb_deployment(),
        behavior in arb_behavior(),
        seed in 0u64..1000,
    ) {
        let mut b = Scenario::builder(deployment);
        b.behavior_all(behavior)
            .duration(SimDuration::from_secs(2))
            .warmup(SimDuration::from_millis(500))
            .seed(seed);
        let result = engine::run(&b.build().expect("builder accepts valid deployment"));
        for link in &result.links {
            prop_assert!(link.received <= link.sent);
            prop_assert!(link.collided_received <= link.collided);
            prop_assert!(
                link.received + link.crc_failed + link.sync_missed + link.receiver_busy
                    <= link.sent
            );
        }
        // Throughput is finite and non-negative.
        let t = result.total_throughput();
        prop_assert!(t.is_finite() && t >= 0.0);
    }

    #[test]
    fn same_seed_same_result(deployment in arb_deployment(), seed in 0u64..100) {
        let mut b = Scenario::builder(deployment);
        b.duration(SimDuration::from_secs(1))
            .warmup(SimDuration::from_millis(200))
            .seed(seed);
        let sc = b.build().expect("valid");
        prop_assert_eq!(engine::run(&sc), engine::run(&sc));
    }

    #[test]
    fn saturated_traffic_outpaces_slow_interval(
        deployment in arb_deployment(),
        seed in 0u64..100,
    ) {
        // Saturated sources always enqueue at least as much as a slow
        // fixed-interval source on the same deployment.
        let mut b = Scenario::builder(deployment.clone());
        b.duration(SimDuration::from_secs(2))
            .warmup(SimDuration::from_millis(500))
            .seed(seed);
        let saturated = engine::run(&b.build().expect("valid"));
        let mut b = Scenario::builder(deployment);
        b.behavior_all(NetworkBehavior {
            traffic: TrafficModel::Interval(SimDuration::from_millis(50)),
            ..NetworkBehavior::zigbee_default()
        })
        .duration(SimDuration::from_secs(2))
        .warmup(SimDuration::from_millis(500))
        .seed(seed);
        let slow = engine::run(&b.build().expect("valid"));
        let sat_sent: u64 = saturated.links.iter().map(|l| l.sent).sum();
        let slow_sent: u64 = slow.links.iter().map(|l| l.sent).sum();
        prop_assert!(sat_sent >= slow_sent);
    }
}
