//! Property-based integration tests: randomized scenarios must simulate
//! without panics and uphold the metric invariants.

use nomc_rngcore::check::{forall, just, one_of, range, vec_of, zip2, zip3, zip4, G};
use nomc_rngcore::{check, check_eq};
use nomc_sim::{engine, NetworkBehavior, Scenario, ThresholdMode, TrafficModel};
use nomc_topology::spectrum::ChannelPlan;
use nomc_topology::{Deployment, LinkSpec, NetworkSpec, Point};
use nomc_units::{Dbm, Megahertz, SimDuration};

/// A randomized but always-valid deployment.
fn arb_deployment() -> G<Deployment> {
    zip4(
        range(1usize..5),   // networks
        range(1usize..4),   // links per network
        range(1.0f64..5.0), // cfd
        vec_of(
            zip4(
                range(-8.0f64..8.0),
                range(-8.0f64..8.0),
                range(0.5f64..4.0),
                range(-25.0f64..0.0),
            ),
            12..13,
        ),
    )
    .map(|(nets, links, cfd, coords)| {
        let plan = ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(cfd), nets);
        let mut idx = 0;
        let networks = plan
            .channels()
            .iter()
            .map(|&freq| {
                let ls = (0..links)
                    .map(|_| {
                        let (x, y, d, p) = coords[idx % coords.len()];
                        idx += 1;
                        LinkSpec::new(Point::new(x, y), Point::new(x + d, y), Dbm::new(p))
                    })
                    .collect();
                NetworkSpec::new(freq, ls)
            })
            .collect();
        Deployment::new(networks)
    })
}

fn arb_behavior() -> G<NetworkBehavior> {
    one_of(vec![
        just(NetworkBehavior::zigbee_default()),
        just(NetworkBehavior::dcn_default()),
        just(NetworkBehavior::attacker(SimDuration::from_millis(4))),
        range(-95.0f64..-40.0).map(|t| NetworkBehavior {
            threshold: ThresholdMode::Fixed(Dbm::new(t)),
            ..NetworkBehavior::zigbee_default()
        }),
    ])
}

#[test]
fn random_scenarios_simulate_cleanly() {
    let g = zip3(arb_deployment(), arb_behavior(), range(0u64..1000));
    forall(
        "random_scenarios_simulate_cleanly",
        12,
        &g,
        |(deployment, behavior, seed)| {
            let mut b = Scenario::builder(deployment.clone());
            b.behavior_all(behavior.clone())
                .duration(SimDuration::from_secs(2))
                .warmup(SimDuration::from_millis(500))
                .seed(*seed);
            let result = engine::run(&b.build().expect("builder accepts valid deployment"));
            for link in &result.links {
                check!(link.received <= link.sent);
                check!(link.collided_received <= link.collided);
                check!(
                    link.received + link.crc_failed + link.sync_missed + link.receiver_busy
                        <= link.sent
                );
            }
            // Throughput is finite and non-negative.
            let t = result.total_throughput();
            check!(t.is_finite() && t >= 0.0);
            Ok(())
        },
    );
}

#[test]
fn same_seed_same_result() {
    let g = zip2(arb_deployment(), range(0u64..100));
    forall("same_seed_same_result", 12, &g, |(deployment, seed)| {
        let mut b = Scenario::builder(deployment.clone());
        b.duration(SimDuration::from_secs(1))
            .warmup(SimDuration::from_millis(200))
            .seed(*seed);
        let sc = b.build().expect("valid");
        check_eq!(engine::run(&sc), engine::run(&sc));
        Ok(())
    });
}

#[test]
fn saturated_traffic_outpaces_slow_interval() {
    let g = zip2(arb_deployment(), range(0u64..100));
    forall(
        "saturated_traffic_outpaces_slow_interval",
        12,
        &g,
        |(deployment, seed)| {
            // Saturated sources always enqueue at least as much as a slow
            // fixed-interval source on the same deployment.
            let mut b = Scenario::builder(deployment.clone());
            b.duration(SimDuration::from_secs(2))
                .warmup(SimDuration::from_millis(500))
                .seed(*seed);
            let saturated = engine::run(&b.build().expect("valid"));
            let mut b = Scenario::builder(deployment.clone());
            b.behavior_all(NetworkBehavior {
                traffic: TrafficModel::Interval(SimDuration::from_millis(50)),
                ..NetworkBehavior::zigbee_default()
            })
            .duration(SimDuration::from_secs(2))
            .warmup(SimDuration::from_millis(500))
            .seed(*seed);
            let slow = engine::run(&b.build().expect("valid"));
            let sat_sent: u64 = saturated.links.iter().map(|l| l.sent).sum();
            let slow_sent: u64 = slow.links.iter().map(|l| l.sent).sum();
            check!(sat_sent >= slow_sent);
            Ok(())
        },
    );
}
