//! Property-based tests of the DCN CCA-Adjustor's safety invariant.
//!
//! The design intent of Eqs. 2-4 is that the threshold always defers to
//! every *currently active* co-channel competitor: at any time in the
//! updating phase, the threshold is at or below the minimum RSSI in the
//! live `T_U` window. Case I enforces it on arrival, Case II can only
//! raise the threshold *to* that minimum, never above it.

use nomc_core::{CcaAdjustor, DcnConfig, DcnPhase};
use nomc_mac::CcaThresholdProvider;
use nomc_rngcore::check::{forall, one_of, range, vec_of, zip2, G};
use nomc_rngcore::{check, check_eq};
use nomc_units::{Dbm, SimDuration, SimTime};

#[derive(Debug, Clone)]
enum Step {
    /// Co-channel packet with the given RSSI after the given gap (ms).
    Packet { gap_ms: u64, rssi_dbm: i32 },
    /// Housekeeping tick after the given gap.
    Tick { gap_ms: u64 },
}

fn arb_steps() -> G<Vec<Step>> {
    vec_of(
        one_of(vec![
            zip2(range(0u64..2500), range(-90i32..-40))
                .map(|(gap_ms, rssi_dbm)| Step::Packet { gap_ms, rssi_dbm }),
            range(0u64..2500).map(|gap_ms| Step::Tick { gap_ms }),
        ]),
        1..60,
    )
}

#[test]
fn threshold_never_exceeds_live_window_minimum() {
    forall(
        "threshold_never_exceeds_live_window_minimum",
        64,
        &arb_steps(),
        |steps| {
            let cfg = DcnConfig::paper_default();
            let mut dcn = CcaAdjustor::new(cfg, Dbm::new(-77.0));
            let mut now = SimTime::ZERO;
            // Complete initialization with one power sample so the run
            // starts from a deterministic threshold.
            dcn.on_power_sense(Dbm::new(-80.0), now);
            now += SimDuration::from_millis(1100);
            dcn.on_tick(now);
            check_eq!(dcn.phase(), DcnPhase::Updating);

            let mut window: Vec<(SimTime, f64)> = Vec::new();
            for step in steps {
                match *step {
                    Step::Packet { gap_ms, rssi_dbm } => {
                        now += SimDuration::from_millis(gap_ms);
                        let rssi = f64::from(rssi_dbm);
                        dcn.on_cochannel_packet(Dbm::new(rssi), now);
                        window.push((now, rssi));
                    }
                    Step::Tick { gap_ms } => {
                        now += SimDuration::from_millis(gap_ms);
                        dcn.on_tick(now);
                    }
                }
                window.retain(|&(t, _)| now.saturating_since(t) <= cfg.t_update);
                if let Some(min) = window
                    .iter()
                    .map(|&(_, r)| r)
                    .min_by(|a, b| a.partial_cmp(b).expect("finite"))
                {
                    let threshold = dcn.threshold(now).value();
                    check!(
                        threshold <= min + 1e-9,
                        "threshold {threshold} above live window minimum {min}"
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn threshold_is_bounded_by_observations() {
    forall(
        "threshold_is_bounded_by_observations",
        64,
        &arb_steps(),
        |steps| {
            // The threshold never rises above the strongest RSSI ever seen
            // (there is nothing to justify a higher setting) and never
            // sinks below the weakest (Case I stops there).
            let mut dcn = CcaAdjustor::new(DcnConfig::paper_default(), Dbm::new(-77.0));
            let mut now = SimTime::from_millis(1100);
            dcn.on_tick(now);
            let (mut lo, mut hi) = (-77.0f64, -77.0f64);
            for step in steps {
                if let Step::Packet { gap_ms, rssi_dbm } = *step {
                    now += SimDuration::from_millis(gap_ms);
                    let rssi = f64::from(rssi_dbm);
                    dcn.on_cochannel_packet(Dbm::new(rssi), now);
                    lo = lo.min(rssi);
                    hi = hi.max(rssi);
                    let t = dcn.threshold(now).value();
                    check!(t >= lo - 1e-9, "threshold {t} below floor {lo}");
                    check!(t <= hi + 1e-9, "threshold {t} above ceiling {hi}");
                }
            }
            Ok(())
        },
    );
}
