//! The §VII-C future-work direction: interference classification.
//!
//! DCN's threshold is bounded by the *minimum* co-channel RSSI, which (as
//! the paper's Case III shows) sacrifices inter-channel concurrency when
//! a weak co-channel competitor exists. If a node could *classify* the
//! energy it senses at CCA time — co-channel packet vs. inter-channel
//! leakage — it could defer only to the former. [`OracleClassifierCca`]
//! models a perfect such classifier, providing an upper bound for the
//! `ablation`/extension experiments.
//!
//! Unlike [`nomc_mac::CcaThresholdProvider`], the oracle needs the
//! decomposed sensed power; the node runtime supplies both components
//! when the oracle is active.

use nomc_units::{Dbm, SimTime};

/// A perfect interference classifier: CCA defers only when the
/// *co-channel* component of sensed power exceeds the (still
/// DCN-maintained or fixed) threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleClassifierCca {
    threshold: Dbm,
}

impl OracleClassifierCca {
    /// Creates an oracle deferring to co-channel power above `threshold`.
    pub fn new(threshold: Dbm) -> Self {
        OracleClassifierCca { threshold }
    }

    /// The classification threshold.
    pub fn threshold(&self) -> Dbm {
        self.threshold
    }

    /// The CCA verdict given the decomposed sensed powers.
    ///
    /// Inter-channel power is ignored entirely — the oracle never backs
    /// off for tolerable neighbour-channel energy, and always backs off
    /// for a co-channel competitor above threshold.
    pub fn channel_clear(&self, cochannel_power: Dbm, _interchannel_power: Dbm) -> bool {
        cochannel_power < self.threshold
    }

    /// Lower the threshold when a weaker co-channel competitor appears
    /// (same Case-I rule as DCN, so the oracle stays co-channel safe).
    pub fn observe_cochannel(&mut self, rssi: Dbm, _now: SimTime) {
        if rssi < self.threshold {
            self.threshold = rssi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ignores_interchannel_power_entirely() {
        let o = OracleClassifierCca::new(Dbm::new(-77.0));
        // Massive inter-channel energy, no co-channel: clear.
        assert!(o.channel_clear(Dbm::new(-120.0), Dbm::new(-20.0)));
        // Co-channel above threshold: busy, regardless of inter-channel.
        assert!(!o.channel_clear(Dbm::new(-60.0), Dbm::new(-120.0)));
    }

    #[test]
    fn observes_weak_competitors() {
        let mut o = OracleClassifierCca::new(Dbm::new(-77.0));
        o.observe_cochannel(Dbm::new(-85.0), SimTime::ZERO);
        assert_eq!(o.threshold(), Dbm::new(-85.0));
        o.observe_cochannel(Dbm::new(-60.0), SimTime::ZERO);
        assert_eq!(o.threshold(), Dbm::new(-85.0), "stronger ones ignored");
    }
}
