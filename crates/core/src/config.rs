//! DCN configuration.

use nomc_units::{Db, SimDuration};

/// Tunable parameters of the DCN CCA-Adjustor.
///
/// Defaults match the paper's implementation (§V-C): `T_I` = 1 s,
/// millisecond power sensing during initialization, `T_U` = 3 s, and no
/// extra safety margin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcnConfig {
    /// Length of the initializing phase.
    pub t_init: SimDuration,
    /// In-channel power-sensing period during the initializing phase.
    pub power_sense_interval: SimDuration,
    /// The Case-II silence window `T_U`.
    pub t_update: SimDuration,
    /// Extra margin subtracted below the derived threshold. The paper
    /// uses none; the `ablation_margin` bench explores small values that
    /// trade concurrency for co-channel safety.
    pub safety_margin: Db,
    /// Staleness watchdog: when non-zero and no co-channel packet has
    /// been heard for this long during the updating phase, the adjustor
    /// re-enters the initializing phase (threshold back at the
    /// conservative default, fresh `T_I` observation window). `ZERO`
    /// disables the watchdog — the paper's original controller, and the
    /// default so existing scenarios are unchanged.
    pub watchdog_silence: SimDuration,
}

nomc_json::json_struct!(DcnConfig {
    t_init: SimDuration,
    power_sense_interval: SimDuration,
    t_update: SimDuration,
    safety_margin: Db,
    watchdog_silence: SimDuration = SimDuration::ZERO,
});

impl DcnConfig {
    /// The paper's configuration.
    pub fn paper_default() -> Self {
        DcnConfig {
            t_init: SimDuration::from_secs(1),
            power_sense_interval: SimDuration::from_millis(1),
            t_update: SimDuration::from_secs(3),
            safety_margin: Db::ZERO,
            watchdog_silence: SimDuration::ZERO,
        }
    }

    /// The paper's configuration hardened for hostile channels: the
    /// staleness watchdog armed at `2·T_I` of co-channel silence.
    pub fn hardened() -> Self {
        DcnConfig {
            watchdog_silence: SimDuration::from_secs(2),
            ..DcnConfig::paper_default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message if any duration is zero or the sensing interval
    /// exceeds the initializing phase.
    pub fn validate(&self) -> Result<(), String> {
        if self.t_init.is_zero() {
            return Err("T_I must be positive".into());
        }
        if self.t_update.is_zero() {
            return Err("T_U must be positive".into());
        }
        if self.power_sense_interval.is_zero() {
            return Err("power-sense interval must be positive".into());
        }
        if self.power_sense_interval > self.t_init {
            return Err(format!(
                "power-sense interval ({}) exceeds T_I ({})",
                self.power_sense_interval, self.t_init
            ));
        }
        if self.safety_margin.value() < 0.0 {
            return Err("safety margin must be non-negative".into());
        }
        if !self.watchdog_silence.is_zero() && self.watchdog_silence < self.t_init {
            return Err(format!(
                "watchdog silence ({}) must be at least T_I ({}) when enabled",
                self.watchdog_silence, self.t_init
            ));
        }
        Ok(())
    }
}

impl Default for DcnConfig {
    fn default() -> Self {
        DcnConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = DcnConfig::paper_default();
        assert_eq!(c.t_init, SimDuration::from_secs(1));
        assert_eq!(c.t_update, SimDuration::from_secs(3));
        assert_eq!(c.power_sense_interval, SimDuration::from_millis(1));
        assert_eq!(c.safety_margin, Db::ZERO);
        assert_eq!(c.watchdog_silence, SimDuration::ZERO, "watchdog off");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn hardened_arms_the_watchdog() {
        let c = DcnConfig::hardened();
        assert_eq!(c.watchdog_silence, SimDuration::from_secs(2));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn watchdog_shorter_than_t_init_rejected() {
        let mut c = DcnConfig::paper_default();
        c.watchdog_silence = SimDuration::from_millis(500);
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut c = DcnConfig::paper_default();
        c.t_init = SimDuration::ZERO;
        assert!(c.validate().is_err());

        let mut c = DcnConfig::paper_default();
        c.t_update = SimDuration::ZERO;
        assert!(c.validate().is_err());

        let mut c = DcnConfig::paper_default();
        c.power_sense_interval = SimDuration::from_secs(2);
        assert!(c.validate().is_err());

        let mut c = DcnConfig::paper_default();
        c.safety_margin = Db::new(-1.0);
        assert!(c.validate().is_err());
    }
}
