//! DCN configuration.

use nomc_units::{Db, SimDuration};

/// Tunable parameters of the DCN CCA-Adjustor.
///
/// Defaults match the paper's implementation (§V-C): `T_I` = 1 s,
/// millisecond power sensing during initialization, `T_U` = 3 s, and no
/// extra safety margin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcnConfig {
    /// Length of the initializing phase.
    pub t_init: SimDuration,
    /// In-channel power-sensing period during the initializing phase.
    pub power_sense_interval: SimDuration,
    /// The Case-II silence window `T_U`.
    pub t_update: SimDuration,
    /// Extra margin subtracted below the derived threshold. The paper
    /// uses none; the `ablation_margin` bench explores small values that
    /// trade concurrency for co-channel safety.
    pub safety_margin: Db,
}

nomc_json::json_struct!(DcnConfig {
    t_init: SimDuration,
    power_sense_interval: SimDuration,
    t_update: SimDuration,
    safety_margin: Db,
});

impl DcnConfig {
    /// The paper's configuration.
    pub fn paper_default() -> Self {
        DcnConfig {
            t_init: SimDuration::from_secs(1),
            power_sense_interval: SimDuration::from_millis(1),
            t_update: SimDuration::from_secs(3),
            safety_margin: Db::ZERO,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message if any duration is zero or the sensing interval
    /// exceeds the initializing phase.
    pub fn validate(&self) -> Result<(), String> {
        if self.t_init.is_zero() {
            return Err("T_I must be positive".into());
        }
        if self.t_update.is_zero() {
            return Err("T_U must be positive".into());
        }
        if self.power_sense_interval.is_zero() {
            return Err("power-sense interval must be positive".into());
        }
        if self.power_sense_interval > self.t_init {
            return Err(format!(
                "power-sense interval ({}) exceeds T_I ({})",
                self.power_sense_interval, self.t_init
            ));
        }
        if self.safety_margin.value() < 0.0 {
            return Err("safety margin must be non-negative".into());
        }
        Ok(())
    }
}

impl Default for DcnConfig {
    fn default() -> Self {
        DcnConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = DcnConfig::paper_default();
        assert_eq!(c.t_init, SimDuration::from_secs(1));
        assert_eq!(c.t_update, SimDuration::from_secs(3));
        assert_eq!(c.power_sense_interval, SimDuration::from_millis(1));
        assert_eq!(c.safety_margin, Db::ZERO);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut c = DcnConfig::paper_default();
        c.t_init = SimDuration::ZERO;
        assert!(c.validate().is_err());

        let mut c = DcnConfig::paper_default();
        c.t_update = SimDuration::ZERO;
        assert!(c.validate().is_err());

        let mut c = DcnConfig::paper_default();
        c.power_sense_interval = SimDuration::from_secs(2);
        assert!(c.validate().is_err());

        let mut c = DcnConfig::paper_default();
        c.safety_margin = Db::new(-1.0);
        assert!(c.validate().is_err());
    }
}
