//! The CCA-Adjustor: DCN's two-phase threshold controller.

use crate::config::DcnConfig;
use nomc_mac::CcaThresholdProvider;
use nomc_units::{Dbm, SimTime};
use std::collections::VecDeque;

/// Which phase the adjustor is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DcnPhase {
    /// Collecting `S_i`/`P_j` observations; threshold pinned at the
    /// conservative default.
    Initializing,
    /// Normal operation: Case-I/Case-II updates from co-channel RSSIs.
    Updating,
}

/// The DCN CCA-Adjustor (paper §V).
///
/// Implements [`CcaThresholdProvider`]; plug it into a node in place of
/// [`nomc_mac::FixedThreshold`] to turn the default ZigBee design into
/// the paper's DCN design.
#[derive(Debug, Clone)]
pub struct CcaAdjustor {
    config: DcnConfig,
    phase: DcnPhase,
    /// Start of the initializing phase (first observation or t=0).
    started: SimTime,
    /// Initializing phase: minimum co-channel packet RSSI seen.
    init_min_rssi: Option<Dbm>,
    /// Initializing phase: maximum in-channel sensed power seen.
    init_max_power: Option<Dbm>,
    /// Updating phase: co-channel RSSIs of the last `T_U`.
    window: VecDeque<(SimTime, Dbm)>,
    /// Time of the last Case-I (immediate lowering) update.
    last_case1: SimTime,
    /// Time of the last Case-II evaluation.
    last_case2: SimTime,
    /// Time the last co-channel packet was heard (or the phase change
    /// that reset the staleness clock) — feeds the silence watchdog.
    last_heard: SimTime,
    /// The conservative default threshold, restored on re-initialization.
    default: Dbm,
    /// Hard bounds every derived threshold is clamped to (the radio's
    /// representable CCA range). Unbounded for a bare [`CcaAdjustor::new`].
    clamp: (Dbm, Dbm),
    current: Dbm,
    stats: AdjustorStats,
}

/// The complete mutable state of a [`CcaAdjustor`], detached from its
/// construction-time configuration. [`CcaAdjustor::save`] and
/// [`CcaAdjustor::load`] round-trip through this so a host can
/// checkpoint mid-run and resume bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct AdjustorSnapshot {
    /// Current phase.
    pub phase: DcnPhase,
    /// Start of the (current) initializing phase.
    pub started: SimTime,
    /// Initializing phase: minimum co-channel packet RSSI seen.
    pub init_min_rssi: Option<Dbm>,
    /// Initializing phase: maximum in-channel sensed power seen.
    pub init_max_power: Option<Dbm>,
    /// Updating phase: the `T_U` co-channel RSSI window, oldest first.
    pub window: Vec<(SimTime, Dbm)>,
    /// Time of the last Case-I update.
    pub last_case1: SimTime,
    /// Time of the last Case-II evaluation.
    pub last_case2: SimTime,
    /// Time the staleness clock was last fed.
    pub last_heard: SimTime,
    /// The threshold in force.
    pub current: Dbm,
    /// Activity counters.
    pub stats: AdjustorStats,
}

/// Counters describing the adjustor's activity, for experiment reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdjustorStats {
    /// Number of Case-I (immediate lowering) updates applied.
    pub case1_updates: u64,
    /// Number of Case-II (window-minimum raise) updates applied.
    pub case2_updates: u64,
    /// Co-channel packet RSSIs observed.
    pub cochannel_observations: u64,
    /// In-channel power-sense samples observed.
    pub power_sense_observations: u64,
    /// Times the adjustor re-entered the initializing phase (silence
    /// watchdog firings plus explicit [`CcaAdjustor::reinitialize`] calls).
    pub reinitializations: u64,
}

impl CcaAdjustor {
    /// Creates an adjustor that starts its initializing phase at t = 0.
    ///
    /// `conservative_default` is the threshold used until initialization
    /// completes — the ZigBee −77 dBm in all paper experiments.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`DcnConfig::validate`].
    pub fn new(config: DcnConfig, conservative_default: Dbm) -> Self {
        CcaAdjustor::with_clamp(
            config,
            conservative_default,
            (Dbm::new(f64::NEG_INFINITY), Dbm::new(f64::INFINITY)),
        )
    }

    /// Like [`CcaAdjustor::new`], but every derived threshold is hard
    /// clamped to `clamp` (floor, ceiling) — pass the radio's
    /// representable CCA range so a miscalibrated (drifted) RSSI can
    /// never wedge the threshold outside what the hardware can hold.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`DcnConfig::validate`] or the clamp
    /// range is inverted.
    pub fn with_clamp(config: DcnConfig, conservative_default: Dbm, clamp: (Dbm, Dbm)) -> Self {
        config.validate().expect("invalid DCN configuration");
        assert!(clamp.0 <= clamp.1, "inverted CCA clamp range");
        CcaAdjustor {
            config,
            phase: DcnPhase::Initializing,
            started: SimTime::ZERO,
            init_min_rssi: None,
            init_max_power: None,
            window: VecDeque::new(),
            last_case1: SimTime::ZERO,
            last_case2: SimTime::ZERO,
            last_heard: SimTime::ZERO,
            default: conservative_default,
            clamp,
            current: conservative_default.max(clamp.0).min(clamp.1),
            stats: AdjustorStats::default(),
        }
    }

    /// Clamps a derived threshold to the representable range.
    #[inline]
    fn clamped(&self, t: Dbm) -> Dbm {
        t.max(self.clamp.0).min(self.clamp.1)
    }

    /// Re-enters the initializing phase at `now`: threshold back at the
    /// conservative default, all observation state cleared, a fresh
    /// `T_I` collection window started. Called by the silence watchdog
    /// and by the simulator when a node reboots.
    pub fn reinitialize(&mut self, now: SimTime) {
        self.phase = DcnPhase::Initializing;
        self.started = now;
        self.init_min_rssi = None;
        self.init_max_power = None;
        self.window.clear();
        self.last_case1 = now;
        self.last_case2 = now;
        self.last_heard = now;
        self.current = self.clamped(self.default);
        self.stats.reinitializations += 1;
    }

    /// The current phase.
    pub fn phase(&self) -> DcnPhase {
        self.phase
    }

    /// Activity counters.
    pub fn stats(&self) -> AdjustorStats {
        self.stats
    }

    /// The adjustor's configuration.
    pub fn config(&self) -> &DcnConfig {
        &self.config
    }

    /// Captures the adjustor's complete mutable state (everything except
    /// the construction-time `config`/`default`/`clamp`), for
    /// checkpoint/restore.
    pub fn save(&self) -> AdjustorSnapshot {
        AdjustorSnapshot {
            phase: self.phase,
            started: self.started,
            init_min_rssi: self.init_min_rssi,
            init_max_power: self.init_max_power,
            window: self.window.iter().copied().collect(),
            last_case1: self.last_case1,
            last_case2: self.last_case2,
            last_heard: self.last_heard,
            current: self.current,
            stats: self.stats,
        }
    }

    /// Overwrites the mutable state with a previously [`CcaAdjustor::save`]d
    /// one. The adjustor must have been constructed with the same
    /// `config`/`default`/`clamp` as the saved one for the resumed
    /// trajectory to match.
    pub fn load(&mut self, snap: AdjustorSnapshot) {
        self.phase = snap.phase;
        self.started = snap.started;
        self.init_min_rssi = snap.init_min_rssi;
        self.init_max_power = snap.init_max_power;
        self.window = snap.window.into();
        self.last_case1 = snap.last_case1;
        self.last_case2 = snap.last_case2;
        self.last_heard = snap.last_heard;
        self.current = snap.current;
        self.stats = snap.stats;
    }

    /// Eq. 2: `CCA_I = min{ S_1, …, max{ P_1, … } }`, with the paper's
    /// implicit fallbacks when one record set is empty.
    fn initialize_threshold(&mut self, now: SimTime) {
        let derived = match (self.init_min_rssi, self.init_max_power) {
            (Some(s), Some(p)) => Some(s.min(p)),
            // No co-channel packets overheard: bound only by sensed power.
            (None, Some(p)) => Some(p),
            // Power sensing disabled/empty: bound only by co-channel RSSI.
            (Some(s), None) => Some(s),
            // Nothing observed: keep the conservative default.
            (None, None) => None,
        };
        if let Some(t) = derived {
            self.current = self.clamped(t - self.config.safety_margin);
        }
        self.phase = DcnPhase::Updating;
        self.last_case1 = now;
        self.last_case2 = now;
        self.last_heard = now;
    }

    /// Drops window entries older than `T_U`.
    fn expire_window(&mut self, now: SimTime) {
        while let Some(&(t, _)) = self.window.front() {
            if now.saturating_since(t) > self.config.t_update {
                self.window.pop_front();
            } else {
                break;
            }
        }
    }

    /// Case II (Eq. 4): raise to the window minimum after `T_U` of
    /// Case-I silence.
    fn maybe_case2(&mut self, now: SimTime) {
        if now.saturating_since(self.last_case1) < self.config.t_update
            || now.saturating_since(self.last_case2) < self.config.t_update
        {
            return;
        }
        self.expire_window(now);
        if let Some(min) = self.window.iter().map(|&(_, s)| s).reduce(Dbm::min) {
            let target = self.clamped(min - self.config.safety_margin);
            if target != self.current {
                self.current = target;
                self.stats.case2_updates += 1;
            }
            self.last_case2 = now;
        }
    }
}

impl CcaThresholdProvider for CcaAdjustor {
    fn threshold(&self, _now: SimTime) -> Dbm {
        self.current
    }

    fn on_cochannel_packet(&mut self, rssi: Dbm, now: SimTime) {
        self.stats.cochannel_observations += 1;
        self.last_heard = now;
        match self.phase {
            DcnPhase::Initializing => {
                self.init_min_rssi = Some(match self.init_min_rssi {
                    Some(s) => s.min(rssi),
                    None => rssi,
                });
                if now.saturating_since(self.started) >= self.config.t_init {
                    self.initialize_threshold(now);
                }
            }
            DcnPhase::Updating => {
                self.window.push_back((now, rssi));
                self.expire_window(now);
                // Case I (Eq. 3): immediate lowering.
                let target = self.clamped(rssi - self.config.safety_margin);
                if target < self.current {
                    self.current = target;
                    self.last_case1 = now;
                    self.stats.case1_updates += 1;
                } else {
                    self.maybe_case2(now);
                }
            }
        }
    }

    fn on_power_sense(&mut self, power: Dbm, now: SimTime) {
        self.stats.power_sense_observations += 1;
        if self.phase == DcnPhase::Initializing {
            self.init_max_power = Some(match self.init_max_power {
                Some(p) => p.max(power),
                None => power,
            });
            if now.saturating_since(self.started) >= self.config.t_init {
                self.initialize_threshold(now);
            }
        }
    }

    fn wants_power_sensing(&self, _now: SimTime) -> bool {
        // The paper's CPU-cost argument: sensing only during initialization.
        self.phase == DcnPhase::Initializing
    }

    fn on_tick(&mut self, now: SimTime) {
        match self.phase {
            DcnPhase::Initializing => {
                if now.saturating_since(self.started) >= self.config.t_init {
                    self.initialize_threshold(now);
                }
            }
            DcnPhase::Updating => {
                // Staleness watchdog: a long co-channel silence means the
                // threshold may be tuned to competitors that no longer
                // exist (or to drifted readings) — go conservative and
                // re-learn the channel instead of staying wedged.
                if !self.config.watchdog_silence.is_zero()
                    && now.saturating_since(self.last_heard) >= self.config.watchdog_silence
                {
                    self.reinitialize(now);
                } else {
                    self.maybe_case2(now);
                }
            }
        }
    }
}

impl nomc_json::ToJson for DcnPhase {
    fn to_json(&self) -> nomc_json::Json {
        let s = match self {
            DcnPhase::Initializing => "initializing",
            DcnPhase::Updating => "updating",
        };
        nomc_json::ToJson::to_json(s)
    }
}

impl nomc_json::FromJson for DcnPhase {
    fn from_json(value: &nomc_json::Json) -> Result<Self, nomc_json::Error> {
        match value
            .as_str()
            .ok_or_else(|| nomc_json::Error::new("expected string for DcnPhase"))?
        {
            "initializing" => Ok(DcnPhase::Initializing),
            "updating" => Ok(DcnPhase::Updating),
            other => Err(nomc_json::Error::new(format!("unknown DcnPhase `{other}`"))),
        }
    }
}

nomc_json::json_struct!(AdjustorStats {
    case1_updates: u64,
    case2_updates: u64,
    cochannel_observations: u64,
    power_sense_observations: u64,
    reinitializations: u64,
});

nomc_json::json_struct!(AdjustorSnapshot {
    phase: DcnPhase,
    started: SimTime,
    init_min_rssi: Option<Dbm>,
    init_max_power: Option<Dbm>,
    window: Vec<(SimTime, Dbm)>,
    last_case1: SimTime,
    last_case2: SimTime,
    last_heard: SimTime,
    current: Dbm,
    stats: AdjustorStats,
});

#[cfg(test)]
mod tests {
    use super::*;
    use nomc_units::SimDuration;

    fn dcn() -> CcaAdjustor {
        CcaAdjustor::new(DcnConfig::paper_default(), Dbm::new(-77.0))
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn starts_conservative_in_initializing_phase() {
        let d = dcn();
        assert_eq!(d.phase(), DcnPhase::Initializing);
        assert_eq!(d.threshold(SimTime::ZERO), Dbm::new(-77.0));
        assert!(d.wants_power_sensing(SimTime::ZERO));
    }

    #[test]
    fn eq2_takes_min_of_rssi_and_max_power() {
        // Paper Fig. 12(2): separated distributions — the threshold lands
        // on the inter-channel max power, below the co-channel min RSSI.
        let mut d = dcn();
        d.on_power_sense(Dbm::new(-82.0), t(1));
        d.on_power_sense(Dbm::new(-70.0), t(2)); // max P = -70
        d.on_cochannel_packet(Dbm::new(-52.0), t(100));
        d.on_cochannel_packet(Dbm::new(-58.0), t(200)); // min S = -58
        d.on_tick(t(1000));
        assert_eq!(d.phase(), DcnPhase::Updating);
        assert_eq!(d.threshold(t(1000)), Dbm::new(-70.0));
    }

    #[test]
    fn eq2_overlapped_distributions_bound_by_min_rssi() {
        // Paper Fig. 12(1): overlapped — min S below max P wins.
        let mut d = dcn();
        d.on_power_sense(Dbm::new(-60.0), t(1));
        d.on_cochannel_packet(Dbm::new(-66.0), t(100));
        d.on_tick(t(1000));
        assert_eq!(d.threshold(t(1000)), Dbm::new(-66.0));
    }

    #[test]
    fn init_without_cochannel_uses_power_only() {
        let mut d = dcn();
        d.on_power_sense(Dbm::new(-73.0), t(3));
        d.on_tick(t(1000));
        assert_eq!(d.threshold(t(1000)), Dbm::new(-73.0));
    }

    #[test]
    fn init_without_observations_keeps_default() {
        let mut d = dcn();
        d.on_tick(t(1000));
        assert_eq!(d.phase(), DcnPhase::Updating);
        assert_eq!(d.threshold(t(1000)), Dbm::new(-77.0));
    }

    #[test]
    fn power_sensing_stops_after_initialization() {
        let mut d = dcn();
        d.on_tick(t(1000));
        assert!(!d.wants_power_sensing(t(1001)));
    }

    #[test]
    fn case1_lowers_immediately() {
        let mut d = dcn();
        d.on_power_sense(Dbm::new(-60.0), t(1));
        d.on_tick(t(1000));
        assert_eq!(d.threshold(t(1000)), Dbm::new(-60.0));
        // A weaker co-channel competitor appears: lower at once (Eq. 3).
        d.on_cochannel_packet(Dbm::new(-71.0), t(1500));
        assert_eq!(d.threshold(t(1500)), Dbm::new(-71.0));
        assert_eq!(d.stats().case1_updates, 1);
    }

    #[test]
    fn case1_ignores_stronger_packets() {
        let mut d = dcn();
        d.on_power_sense(Dbm::new(-60.0), t(1));
        d.on_tick(t(1000));
        d.on_cochannel_packet(Dbm::new(-40.0), t(1500));
        assert_eq!(d.threshold(t(1500)), Dbm::new(-60.0));
        assert_eq!(d.stats().case1_updates, 0);
    }

    #[test]
    fn case2_raises_after_quiet_window() {
        let mut d = dcn();
        d.on_power_sense(Dbm::new(-90.0), t(1));
        d.on_tick(t(1000));
        assert_eq!(d.threshold(t(1000)), Dbm::new(-90.0));
        // The weak competitor departs; only a −55 dBm one remains. After
        // T_U with no Case-I update, Eq. 4 raises to the window minimum.
        d.on_cochannel_packet(Dbm::new(-55.0), t(3000));
        d.on_cochannel_packet(Dbm::new(-52.0), t(3500));
        assert_eq!(
            d.threshold(t(3500)),
            Dbm::new(-90.0),
            "not yet: window young"
        );
        d.on_tick(t(4100)); // > T_U since last_case1 (t=1000)
        assert_eq!(d.threshold(t(4100)), Dbm::new(-55.0));
        assert_eq!(d.stats().case2_updates, 1);
    }

    #[test]
    fn case2_window_expires_old_entries() {
        let mut d = dcn();
        d.on_tick(t(1000)); // -77 default
        d.on_cochannel_packet(Dbm::new(-80.0), t(1100)); // case 1 → -80
        assert_eq!(d.threshold(t(1100)), Dbm::new(-80.0));
        // Entries: -80 at 1.1s. Then strong ones later.
        d.on_cochannel_packet(Dbm::new(-50.0), t(4000));
        d.on_cochannel_packet(Dbm::new(-51.0), t(4600));
        // At 5s, the -80 entry (older than T_U=3s) must have expired, so
        // Case II raises to -51, not -80.
        d.on_tick(t(5000));
        assert_eq!(d.threshold(t(5000)), Dbm::new(-51.0));
    }

    #[test]
    fn case2_reapplies_only_after_another_window() {
        let mut d = dcn();
        d.on_tick(t(1000));
        d.on_cochannel_packet(Dbm::new(-85.0), t(1100));
        d.on_cochannel_packet(Dbm::new(-60.0), t(3900));
        d.on_tick(t(4200)); // case 2 → -60 (the -85 expired)
        assert_eq!(d.threshold(t(4200)), Dbm::new(-60.0));
        d.on_cochannel_packet(Dbm::new(-58.0), t(4300));
        // Immediately after, another tick shouldn't re-run Case II yet.
        d.on_tick(t(4400));
        assert_eq!(d.threshold(t(4400)), Dbm::new(-60.0));
        // But after another T_U of Case-I silence it may raise again.
        d.on_cochannel_packet(Dbm::new(-58.0), t(7000));
        d.on_tick(t(7500));
        assert_eq!(d.threshold(t(7500)), Dbm::new(-58.0));
    }

    #[test]
    fn safety_margin_applies_everywhere() {
        let cfg = DcnConfig {
            safety_margin: nomc_units::Db::new(2.0),
            ..DcnConfig::paper_default()
        };
        let mut d = CcaAdjustor::new(cfg, Dbm::new(-77.0));
        d.on_power_sense(Dbm::new(-60.0), t(1));
        d.on_tick(t(1000));
        assert_eq!(d.threshold(t(1000)), Dbm::new(-62.0));
        d.on_cochannel_packet(Dbm::new(-70.0), t(1500));
        assert_eq!(d.threshold(t(1500)), Dbm::new(-72.0));
    }

    #[test]
    fn observation_counters() {
        let mut d = dcn();
        d.on_power_sense(Dbm::new(-70.0), t(1));
        d.on_cochannel_packet(Dbm::new(-50.0), t(2));
        d.on_cochannel_packet(Dbm::new(-51.0), t(3));
        let s = d.stats();
        assert_eq!(s.power_sense_observations, 1);
        assert_eq!(s.cochannel_observations, 2);
    }

    #[test]
    fn init_completes_via_late_observation_too() {
        let mut d = dcn();
        d.on_power_sense(Dbm::new(-70.0), t(1));
        // An observation arriving after T_I finalizes initialization even
        // without an explicit tick.
        d.on_cochannel_packet(Dbm::new(-50.0), SimTime::from_millis(1200));
        assert_eq!(d.phase(), DcnPhase::Updating);
    }

    #[test]
    fn watchdog_reenters_initializing_after_silence() {
        let cfg = DcnConfig::hardened(); // 2 s silence window
        let mut d = CcaAdjustor::new(cfg, Dbm::new(-77.0));
        d.on_power_sense(Dbm::new(-60.0), t(1));
        d.on_tick(t(1000));
        assert_eq!(d.phase(), DcnPhase::Updating);
        assert_eq!(d.threshold(t(1000)), Dbm::new(-60.0));
        d.on_cochannel_packet(Dbm::new(-70.0), t(1500)); // case 1 → -70
                                                         // 1.9 s of silence: not yet.
        d.on_tick(t(3400));
        assert_eq!(d.phase(), DcnPhase::Updating);
        // 2 s of silence: watchdog fires, back to the conservative default.
        d.on_tick(t(3500));
        assert_eq!(d.phase(), DcnPhase::Initializing);
        assert_eq!(d.threshold(t(3500)), Dbm::new(-77.0));
        assert_eq!(d.stats().reinitializations, 1);
        assert!(d.wants_power_sensing(t(3500)), "re-init resumes sensing");
        // The fresh T_I window re-derives from new observations.
        d.on_power_sense(Dbm::new(-85.0), t(3600));
        d.on_tick(t(4500));
        assert_eq!(d.phase(), DcnPhase::Updating);
        assert_eq!(d.threshold(t(4500)), Dbm::new(-85.0));
    }

    #[test]
    fn watchdog_disabled_by_default() {
        let mut d = dcn();
        d.on_power_sense(Dbm::new(-60.0), t(1));
        d.on_tick(t(1000));
        d.on_tick(t(60_000)); // a minute of silence
        assert_eq!(d.phase(), DcnPhase::Updating, "paper controller: no dog");
        assert_eq!(d.stats().reinitializations, 0);
    }

    #[test]
    fn watchdog_quiet_while_packets_keep_arriving() {
        let mut d = CcaAdjustor::new(DcnConfig::hardened(), Dbm::new(-77.0));
        d.on_tick(t(1000));
        for i in 1..20u64 {
            d.on_cochannel_packet(Dbm::new(-55.0), t(1000 + i * 500));
            d.on_tick(t(1000 + i * 500 + 250));
        }
        assert_eq!(d.stats().reinitializations, 0);
    }

    #[test]
    fn clamp_bounds_every_derived_threshold() {
        let range = (Dbm::new(-95.0), Dbm::new(0.0));
        let mut d = CcaAdjustor::with_clamp(DcnConfig::paper_default(), Dbm::new(-77.0), range);
        // A wildly drifted reading cannot push the threshold below floor…
        d.on_power_sense(Dbm::new(-300.0), t(1));
        d.on_tick(t(1000));
        assert_eq!(d.threshold(t(1000)), Dbm::new(-95.0));
        // …and Case I lowering saturates there too.
        d.on_cochannel_packet(Dbm::new(-250.0), t(1500));
        assert_eq!(d.threshold(t(1500)), Dbm::new(-95.0));
        // Case II raising saturates at the ceiling.
        d.on_cochannel_packet(Dbm::new(40.0), t(4600));
        d.on_tick(t(4700));
        assert_eq!(d.threshold(t(4700)), Dbm::new(0.0));
    }

    #[test]
    fn unclamped_adjustor_unchanged() {
        let mut d = dcn();
        d.on_power_sense(Dbm::new(-300.0), t(1));
        d.on_tick(t(1000));
        assert_eq!(d.threshold(t(1000)), Dbm::new(-300.0));
    }

    #[test]
    fn reinitialize_resets_observation_state() {
        let mut d = dcn();
        d.on_power_sense(Dbm::new(-60.0), t(1));
        d.on_cochannel_packet(Dbm::new(-50.0), t(500));
        d.on_tick(t(1000));
        d.reinitialize(t(5000));
        assert_eq!(d.phase(), DcnPhase::Initializing);
        assert_eq!(d.threshold(t(5000)), Dbm::new(-77.0));
        // Old observations are gone: completing init with nothing new
        // keeps the default.
        d.on_tick(t(6100));
        assert_eq!(d.phase(), DcnPhase::Updating);
        assert_eq!(d.threshold(t(6100)), Dbm::new(-77.0));
    }

    #[test]
    fn window_duration_matches_config() {
        let cfg = DcnConfig {
            t_update: SimDuration::from_secs(1),
            ..DcnConfig::paper_default()
        };
        let mut d = CcaAdjustor::new(cfg, Dbm::new(-77.0));
        d.on_tick(t(1000));
        d.on_cochannel_packet(Dbm::new(-80.0), t(1100)); // case1 → -80
        d.on_cochannel_packet(Dbm::new(-50.0), t(2050));
        d.on_tick(t(2200)); // 1.1s after case1 with T_U=1s → case2 fires
        assert_eq!(d.threshold(t(2200)), Dbm::new(-50.0));
    }
}
