//! # nomc-core — DCN: Dynamic CCA-threshold for Non-orthogonal transmission
//!
//! The primary contribution of *"Design of Non-orthogonal Multi-channel
//! Sensor Networks"* (Xu, Luo & Zhang, ICDCS 2010): a CCA-Adjustor that
//! sits beside the CSMA/CA engine (the paper's Fig. 11 architecture) and
//! dynamically relaxes the clear-channel-assessment threshold so that
//! *tolerable* inter-channel interference from non-orthogonal neighbour
//! channels no longer suppresses transmissions, while *harmful* co-channel
//! interference still does.
//!
//! ## The algorithm (paper §V-B)
//!
//! Two information sources are available on a CC2420-class mote:
//!
//! * `S_i` — the RSSI of each overheard co-channel packet (free: the radio
//!   appends RSSI to every received frame),
//! * `P_j` — in-channel sensed power, which includes inter-channel leakage
//!   (costs CPU: requires polling the RSSI register).
//!
//! **Initializing phase** (duration `T_I`, default 1 s): sample `P_j`
//! every millisecond and record co-channel RSSIs; then set
//!
//! ```text
//! CCA_I = min{ S_1, S_2, …, max{ P_1, P_2, … } }        (Eq. 2)
//! ```
//!
//! i.e. the smaller of (weakest co-channel sender) and (strongest sensed
//! in-channel power) — conservative enough to still defer to any
//! co-channel competitor that might appear in the gap between the two
//! distributions (the paper's Fig. 12).
//!
//! **Updating phase**: stop power sensing (too costly) and maintain only
//! the co-channel RSSI record of the last `T_U` seconds (default 3 s):
//!
//! * **Case I** — a packet arrives with `S < CCA`: lower immediately,
//!   `CCA ← S` (Eq. 3);
//! * **Case II** — no Case-I update for `T_U`: raise to the minimum RSSI
//!   observed in the last window, `CCA ← min{S_1, S_2, …}` (Eq. 4).
//!
//! The threshold therefore always sits *just below the weakest co-channel
//! competitor*, which filters co-channel collisions while ignoring
//! (weaker, filter-attenuated) inter-channel energy.
//!
//! ## Beyond the paper
//!
//! [`classifier`] implements the §VII-C future-work direction: an oracle
//! that can distinguish co-channel from inter-channel energy at CCA time,
//! providing an upper bound on DCN's achievable concurrency.
//!
//! # Examples
//!
//! ```
//! use nomc_core::{CcaAdjustor, DcnConfig};
//! use nomc_mac::CcaThresholdProvider;
//! use nomc_units::{Dbm, SimTime};
//!
//! let mut dcn = CcaAdjustor::new(DcnConfig::default(), Dbm::new(-77.0));
//! // During the initializing phase the conservative default holds…
//! assert_eq!(dcn.threshold(SimTime::ZERO), Dbm::new(-77.0));
//! // …observations accumulate…
//! dcn.on_power_sense(Dbm::new(-70.0), SimTime::from_millis(5));
//! dcn.on_cochannel_packet(Dbm::new(-55.0), SimTime::from_millis(500));
//! // …and at T_I the threshold initializes per Eq. 2:
//! dcn.on_tick(SimTime::from_secs(1));
//! assert_eq!(dcn.threshold(SimTime::from_secs(1)), Dbm::new(-70.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjustor;
pub mod classifier;
pub mod config;

pub use adjustor::{AdjustorSnapshot, AdjustorStats, CcaAdjustor, DcnPhase};
pub use classifier::OracleClassifierCca;
pub use config::DcnConfig;
