//! `nomc` — command-line front end for the non-orthogonal multi-channel
//! simulator.
//!
//! ```text
//! nomc generate <template> [out.json]   write an example scenario file
//! nomc run <scenario.json> [--json out] [--trace out.jsonl]
//!                                       simulate a scenario file
//! nomc sweep <scenario.json> [--journal j.jsonl] [--resume] [...]
//!                                       crash-safe journaled multi-seed sweep
//! nomc serve --state-dir DIR [...]      crash-safe deterministic results server
//! nomc submit <scenario.json> --addr A  submit a sweep job to a server
//! nomc inspect <scenario.json>          print the link/interference budget
//! nomc plan [--target-cprr F] [--delta DB] [--sigma DB]
//!                                       analytic minimum-CFD planner
//! nomc assign <scenario.json> [out]     interference-aware channel re-assignment
//! ```
//!
//! Exit codes: 0 success, 1 runtime failure, 2 usage error (malformed
//! invocation — bad flags, missing arguments, out-of-range values).

mod commands;

use commands::CliError;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => commands::generate(&args[1..]),
        Some("run") => commands::run(&args[1..]),
        Some("sweep") => commands::sweep(&args[1..]),
        Some("serve") => commands::serve(&args[1..]),
        Some("submit") => commands::submit(&args[1..]),
        Some("inspect") => commands::inspect(&args[1..]),
        Some("plan") => commands::plan(&args[1..]),
        Some("assign") => commands::assign(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(CliError::usage(format!(
            "unknown command `{other}`\n\n{}",
            commands::USAGE
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("nomc: {error}");
            ExitCode::from(error.exit_code())
        }
    }
}
