//! The `nomc` subcommands.

use nomc_phy::planning::CprrModel;
use nomc_phy::{LogDistance, PathLoss};
use nomc_sim::{engine, FaultPlan, JsonlTracer, NetworkBehavior, Scenario, SimObserver};
use nomc_topology::paper;
use nomc_topology::spectrum::{ChannelPlan, FitPolicy};
use nomc_units::{Db, Dbm, Megahertz};

/// Help text.
pub const USAGE: &str = "\
nomc — non-orthogonal multi-channel 802.15.4 simulator (DCN, ICDCS 2010)

USAGE:
  nomc generate <template> [out.json]    write an example scenario file
                                         templates: line | dense | fig5 | attacker
  nomc run <scenario.json> [--json out] [--trace out.jsonl] [--faults plan.json]
           [--shards N] [--checkpoint-every EVENTS --snapshot-dir DIR]
                                         simulate a scenario file, optionally
                                         injecting a deterministic fault plan;
                                         --shards runs independent network
                                         components on N worker threads
                                         (results never depend on N);
                                         --checkpoint-every snapshots engine
                                         state every EVENTS events (atomic
                                         tmp+rename into DIR) and resumes a
                                         killed run from its last snapshot —
                                         the result is byte-identical either
                                         way
  nomc sweep <scenario.json> [--journal out.jsonl] [--resume] [--retries N]
             [--budget EVENTS] [--threads N] [--shards N]
             [--checkpoint-every EVENTS] [--snapshot-dir DIR]
             [--seeds 1,2,3 | --seed-count N]
             [--report out.json]         crash-safe multi-seed sweep: every
                                         concluded member is checkpointed to
                                         the journal (atomic tmp+rename), and
                                         --resume skips members the journal
                                         already records; --checkpoint-every
                                         additionally snapshots each member
                                         mid-run (default DIR: beside the
                                         journal), so --resume restarts long
                                         members from their last snapshot
                                         instead of their first event
  nomc inspect <scenario.json>           print the link/interference budget
  nomc plan [--target-cprr F] [--delta DB] [--sigma DB] [--frame-bits N]
                                         smallest CFD meeting a CPRR target
  nomc assign <scenario.json> [out.json] re-assign channels to minimize
                                         predicted coupled interference
  nomc serve --state-dir DIR [--addr HOST:PORT] [--max-queue N] [--workers N]
                                         crash-safe results server: jobs are
                                         journaled, deduplicated by content,
                                         shed with 429 past the queue cap, and
                                         resumed after a kill -9 when restarted
                                         on the same --state-dir; SIGTERM
                                         drains gracefully
  nomc submit <scenario.json> --addr HOST:PORT [--seeds 1,2,3 | --seed-count N]
              [--budget EVENTS] [--retries N] [--shards N]
              [--checkpoint-every EVENTS] [--wait] [--report out.json]
                                         submit a sweep job to `nomc serve`;
                                         --wait polls until it concludes,
                                         --report fetches the report bytes
  nomc help                              this text
";

/// A command failure, split by exit code: usage errors (a malformed
/// invocation the caller must fix) exit 2, runtime failures (the
/// invocation was fine but the work failed) exit 1.
#[derive(Debug)]
pub enum CliError {
    /// The invocation itself is wrong — exit code 2.
    Usage(String),
    /// The work failed — exit code 1.
    Runtime(String),
}

impl CliError {
    /// A usage-class error (exit 2).
    pub fn usage(message: impl Into<String>) -> CliError {
        CliError::Usage(message.into())
    }

    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Runtime(_) => 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(message) | CliError::Runtime(message) => write!(f, "{message}"),
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError::Runtime(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> CliError {
        CliError::Runtime(message.to_string())
    }
}

/// `nomc generate <template> [out.json]`.
pub fn generate(args: &[String]) -> Result<(), CliError> {
    let template = args.first().ok_or_else(|| {
        CliError::usage("generate needs a template name (line|dense|fig5|attacker)")
    })?;
    let scenario = template_scenario(template)?;
    let json = nomc_json::to_string_pretty(&scenario);
    match args.get(1) {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

/// Builds one of the example scenarios.
fn template_scenario(template: &str) -> Result<Scenario, String> {
    let plan = ChannelPlan::fit(
        Megahertz::new(2458.0),
        Megahertz::new(15.0),
        Megahertz::new(3.0),
        FitPolicy::InclusiveEnds,
    )
    .map_err(|e| e.to_string())?;
    match template {
        "line" => {
            let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
            b.behavior_all(NetworkBehavior::dcn_default());
            b.build()
        }
        "dense" => {
            use nomc_rngcore::SeedableRng;
            let mut rng = nomc_sim::rng::Xoshiro256StarStar::seed_from_u64(1);
            let deployment = paper::vi_a_deployment(&mut rng, &plan, 2, Dbm::new(0.0));
            let mut b = Scenario::builder(deployment);
            b.behavior_all(NetworkBehavior::dcn_default());
            b.build()
        }
        "fig5" => {
            let (deployment, _) = paper::fig5_deployment(
                Megahertz::new(2464.0),
                Megahertz::new(3.0),
                Dbm::new(0.0),
                Dbm::new(0.0),
            );
            Scenario::builder(deployment).build()
        }
        "attacker" => {
            let (deployment, n, a) =
                paper::fig4_deployment(Megahertz::new(2460.0), Megahertz::new(3.0), Dbm::new(0.0));
            let mut b = Scenario::builder(deployment);
            b.behavior(
                n,
                NetworkBehavior::attacker(nomc_units::SimDuration::from_millis(9)),
            )
            .behavior(
                a,
                NetworkBehavior::attacker(nomc_units::SimDuration::from_micros(2200)),
            );
            b.build()
        }
        other => {
            return Err(format!(
                "unknown template `{other}` (line|dense|fig5|attacker)"
            ))
        }
    }
    .map_err(|e| format!("template invalid: {e}"))
}

/// `nomc run <scenario.json> [--json out.json] [--trace out.jsonl]
/// [--faults plan.json] [--shards N]`.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let path = args
        .first()
        .ok_or_else(|| CliError::usage("run needs a scenario file"))?;
    let mut scenario = load_scenario(path)?;
    if let Some(plan_path) = flag_value(args, "--faults")? {
        scenario.faults = load_fault_plan(&plan_path)?;
        // Re-validate: the plan references nodes by deployment index, so
        // it can only be checked against the scenario it is merged into.
        scenario
            .validate()
            .map_err(|e| format!("invalid fault plan: {e}"))?;
        let n = &scenario.faults;
        eprintln!(
            "injecting faults: {} crash(es), {} jammer(s), {} drift(s), {} stuck-CCA",
            n.crashes.len(),
            n.jammers.len(),
            n.drifts.len(),
            n.stuck_cca.len()
        );
    }
    let trace_path = flag_value(args, "--trace")?;
    // Traces stream to disk through a pluggable observer sink instead of
    // buffering every record in the result — arbitrarily long runs trace
    // in constant memory.
    let mut tracer = trace_path
        .as_ref()
        .map(|out| {
            std::fs::File::create(out)
                .map(|f| JsonlTracer::new(std::io::BufWriter::new(f)))
                .map_err(|e| format!("cannot create {out}: {e}"))
        })
        .transpose()?;
    let mut sinks: Vec<&mut dyn SimObserver> = Vec::new();
    if let Some(t) = tracer.as_mut() {
        sinks.push(t);
    }
    let shards = match parse_flag::<usize>(args, "--shards")? {
        Some(0) => return Err(CliError::usage("--shards must be at least 1")),
        other => other,
    };
    let result = match parse_flag::<u64>(args, "--checkpoint-every")? {
        Some(0) => {
            return Err(CliError::usage(
                "--checkpoint-every must be at least 1 event",
            ))
        }
        Some(every) => {
            let dir = flag_value(args, "--snapshot-dir")?
                .ok_or_else(|| CliError::usage("--checkpoint-every needs --snapshot-dir <dir>"))?;
            checkpointed_run(
                &scenario,
                &mut sinks,
                shards,
                every,
                std::path::Path::new(&dir),
            )?
        }
        None => match shards {
            Some(threads) => engine::run_sharded_with(&scenario, &mut sinks, threads),
            None => engine::run_with(&scenario, &mut sinks),
        },
    };
    if let (Some(t), Some(out)) = (tracer, &trace_path) {
        let records = t.finish().map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("wrote {records} trace records to {out}");
    }
    println!(
        "simulated {:.1}s (measured {:.1}s), seed {}",
        scenario.duration.as_secs_f64(),
        result.measured.as_secs_f64(),
        scenario.seed
    );
    println!(
        "total throughput: {:.1} pkt/s   PRR: {}",
        result.total_throughput(),
        result
            .total_prr()
            .map(|p| format!("{:.1}%", p * 100.0))
            .unwrap_or_else(|| "n/a".to_string())
    );
    println!("\nper-network:");
    for net in result.networks() {
        println!(
            "  #{} @ {}: {:>7.1} pkt/s  (sent {}, crc-failed {}, sync-missed {})",
            net.index,
            net.frequency,
            net.throughput(result.measured),
            net.totals.sent,
            net.totals.crc_failed,
            net.totals.sync_missed,
        );
    }
    println!("\nfinal CCA thresholds:");
    for (i, t) in result.final_thresholds.iter().enumerate() {
        println!("  sender {i}: {t}");
    }
    if let Some(out) = flag_value(args, "--json")? {
        use nomc_json::{Json, ToJson};
        let summary = Json::object([
            ("total_throughput", result.total_throughput().to_json()),
            ("total_prr", result.total_prr().to_json()),
            (
                "networks",
                Json::Arr(
                    result
                        .networks()
                        .iter()
                        .map(|n| {
                            Json::object([
                                ("index", n.index.to_json()),
                                ("frequency_mhz", n.frequency.value().to_json()),
                                ("throughput", n.throughput(result.measured).to_json()),
                                ("sent", n.totals.sent.to_json()),
                                ("received", n.totals.received.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        std::fs::write(&out, summary.dump_pretty())
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    Ok(())
}

/// The checkpoint-supervised engine loop behind `nomc run
/// --checkpoint-every`: resume from the run's snapshot file when a
/// trustworthy one exists (any defect — corruption, version skew, a
/// snapshot of a different scenario — degrades to a clean start with a
/// notice, never a panic), then alternate run-to-pause legs with
/// atomic snapshot writes until the run completes. The snapshot file is
/// keyed by scenario content and execution mode, and removed on
/// completion.
///
/// The result is byte-identical to an uninterrupted run; a `--trace`
/// sink on a *resumed* serial run streams only the remaining suffix
/// (a resumed sharded run replays the complete merged stream at the
/// end).
fn checkpointed_run(
    scenario: &Scenario,
    sinks: &mut [&mut dyn SimObserver],
    shards: Option<usize>,
    every: u64,
    dir: &std::path::Path,
) -> Result<nomc_sim::SimResult, String> {
    use nomc_experiments::sweep::{checkpoint, hash};

    let key = hash::member_hash_with(scenario, u64::MAX, shards.is_some());
    let recovered = match checkpoint::load(dir, key) {
        Ok(found) => found,
        Err(e) => {
            eprintln!("checkpoint unusable ({e}); restarting from the beginning");
            checkpoint::discard(dir, key);
            None
        }
    };
    let mut resumed = None;
    if let Some(rec) = recovered {
        let restored = engine::restore(&rec.payload)
            .map_err(|e| e.to_string())
            .and_then(|snap| {
                let target = rec.events_done.saturating_add(every);
                engine::resume_bounded(scenario, snap, sinks, target)
                    .map(|progress| (target, progress))
                    .map_err(|e| e.to_string())
            });
        match restored {
            Ok(pair) => {
                eprintln!("resumed from checkpoint at {} events", rec.events_done);
                resumed = Some(pair);
            }
            Err(e) => {
                eprintln!("checkpoint unusable ({e}); restarting from the beginning");
                checkpoint::discard(dir, key);
            }
        }
    }
    let (mut target, mut progress) = match resumed {
        Some(pair) => pair,
        None => {
            let progress = match shards {
                Some(_) => engine::run_sharded_until(scenario, sinks, u64::MAX, every),
                None => engine::run_until(scenario, sinks, u64::MAX, every),
            };
            (every, progress)
        }
    };
    loop {
        match progress {
            engine::RunProgress::Paused(snap) => {
                if let Err(e) = checkpoint::save(dir, key, 0, target, &engine::snapshot(&snap)) {
                    // Losing durability is not losing the run.
                    eprintln!("checkpoint not saved ({e}); continuing without it");
                }
                target = target.saturating_add(every);
                progress = engine::resume_bounded(scenario, *snap, sinks, target)
                    .map_err(|e| format!("in-process resume failed: {e}"))?;
            }
            engine::RunProgress::Done(done) => {
                checkpoint::discard(dir, key);
                return Ok(done.result);
            }
        }
    }
}

/// `nomc sweep <scenario.json> [--journal out.jsonl] [--resume]
/// [--retries N] [--budget EVENTS] [--threads N] [--shards N]
/// [--seeds 1,2,3 | --seed-count N] [--report out.json]`.
pub fn sweep(args: &[String]) -> Result<(), CliError> {
    use nomc_experiments::sweep::{self, SweepConfig};

    let path = args
        .first()
        .ok_or_else(|| CliError::usage("sweep needs a scenario file"))?;
    let base = load_scenario(path)?;
    let seeds = sweep_seeds(args)?;
    let mut cfg = SweepConfig::default();
    if let Some(retries) = parse_flag::<u32>(args, "--retries")? {
        if retries > nomc_serve::MAX_RETRIES {
            return Err(CliError::usage(format!(
                "--retries {retries} exceeds the cap of {} (each retry doubles the event budget)",
                nomc_serve::MAX_RETRIES
            )));
        }
        cfg.retries = retries;
    }
    if let Some(budget) = parse_flag::<u64>(args, "--budget")? {
        if budget == 0 {
            return Err(CliError::usage("--budget must be at least 1 event"));
        }
        cfg.base_budget = budget;
    }
    if let Some(threads) = parse_flag::<usize>(args, "--threads")? {
        if threads == 0 {
            return Err(CliError::usage("--threads must be at least 1"));
        }
        cfg.threads = Some(threads);
    }
    if let Some(shards) = parse_flag::<usize>(args, "--shards")? {
        if shards == 0 {
            return Err(CliError::usage("--shards must be at least 1"));
        }
        cfg.shards = Some(shards);
    }
    let journal = flag_value(args, "--journal")?;
    let resume = args.iter().any(|a| a == "--resume");
    if resume && journal.is_none() {
        return Err(CliError::usage(
            "--resume needs --journal <path> to resume from",
        ));
    }
    if let Some(every) = parse_flag::<u64>(args, "--checkpoint-every")? {
        if every == 0 {
            return Err(CliError::usage(
                "--checkpoint-every must be at least 1 event",
            ));
        }
        let dir = match flag_value(args, "--snapshot-dir")? {
            Some(d) => std::path::PathBuf::from(d),
            // Default: a sibling directory of the journal, so resuming
            // with the same command line finds the same snapshots.
            None => match &journal {
                Some(j) => std::path::PathBuf::from(format!("{j}.snapshots")),
                None => {
                    return Err(CliError::usage(
                        "--checkpoint-every needs --journal (snapshots then live \
                         beside it) or an explicit --snapshot-dir <dir>",
                    ))
                }
            },
        };
        cfg.checkpoint_every = Some(every);
        cfg.snapshot_dir = Some(dir);
    }

    let members = sweep::seed_members(&base, &seeds);
    let report = sweep::run_sweep(
        &members,
        &cfg,
        journal.as_ref().map(std::path::Path::new),
        resume,
    )
    .map_err(|e| e.to_string())?;

    let counts = report.counts();
    println!(
        "sweep: {} members — {} ok, {} failed, {} timed out, {} retried",
        report.members.len(),
        counts.ok,
        counts.failed,
        counts.timed_out,
        counts.retried
    );
    match report.throughput_stat() {
        Ok(stat) => println!(
            "total throughput: {:.1} ± {:.1} pkt/s over {} completed members",
            stat.mean, stat.std, counts.ok
        ),
        // Typed refusal, surfaced instead of a misleading statistic.
        Err(e) => println!("no statistic: {e}"),
    }
    if let Some(j) = &journal {
        eprintln!("journal checkpointed at {j}");
    }
    if let Some(out) = flag_value(args, "--report")? {
        std::fs::write(&out, report.to_json_string())
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    Ok(())
}

/// The seed list of a sweep: `--seeds a,b,c` wins, then
/// `--seed-count N` (seeds `1..=N`), then the default `1..=5`.
fn sweep_seeds(args: &[String]) -> Result<Vec<u64>, CliError> {
    if let Some(list) = flag_value(args, "--seeds")? {
        let seeds: Vec<u64> = list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<u64>()
                    .map_err(|e| CliError::usage(format!("bad seed {s:?} in --seeds: {e}")))
            })
            .collect::<Result<_, _>>()?;
        if seeds.is_empty() {
            return Err(CliError::usage("--seeds needs at least one seed"));
        }
        return Ok(seeds);
    }
    let count = parse_flag::<u64>(args, "--seed-count")?.unwrap_or(5);
    if count == 0 {
        return Err(CliError::usage("--seed-count must be at least 1"));
    }
    Ok((1..=count).collect())
}

/// `nomc inspect <scenario.json>`.
pub fn inspect(args: &[String]) -> Result<(), CliError> {
    let path = args
        .first()
        .ok_or_else(|| CliError::usage("inspect needs a scenario file"))?;
    let scenario = load_scenario(path)?;
    let pl = LogDistance::indoor_2_4ghz();
    println!(
        "{} networks, {} links, min CFD {}",
        scenario.deployment.networks.len(),
        scenario.deployment.link_count(),
        scenario
            .deployment
            .min_cfd()
            .map(|c| c.to_string())
            .unwrap_or_else(|| "n/a".to_string())
    );
    for (ni, net) in scenario.deployment.networks.iter().enumerate() {
        println!("\nnetwork #{ni} @ {}:", net.frequency);
        for (li, link) in net.links.iter().enumerate() {
            let rssi = link.tx_power - pl.loss(link.distance());
            println!(
                "  link {li}: {} -> {}  ({}, TX {}, mean RSSI {})",
                link.tx,
                link.rx,
                link.distance(),
                link.tx_power,
                rssi
            );
            // Strongest coupled interferer at this link's receiver.
            let mut worst: Option<(usize, Dbm)> = None;
            for (oi, other) in scenario.deployment.networks.iter().enumerate() {
                if oi == ni {
                    continue;
                }
                let rejection = scenario
                    .propagation
                    .acr
                    .rejection(other.frequency.distance_to(net.frequency));
                for l2 in &other.links {
                    let coupled = l2.tx_power - pl.loss(l2.tx.distance_to(link.rx)) - rejection;
                    if worst.map(|(_, w)| coupled > w).unwrap_or(true) {
                        worst = Some((oi, coupled));
                    }
                }
            }
            if let Some((oi, coupled)) = worst {
                let sinr = rssi - coupled;
                println!(
                    "           strongest interferer: network #{oi}, coupled {coupled} \
                     (SINR margin {sinr})"
                );
            }
        }
    }
    Ok(())
}

/// `nomc plan [--target-cprr F] [--delta DB] [--sigma DB] [--frame-bits N]`.
pub fn plan(args: &[String]) -> Result<(), CliError> {
    let target: f64 = parse_flag(args, "--target-cprr")?.unwrap_or(0.95);
    let delta: f64 = parse_flag(args, "--delta")?.unwrap_or(0.0);
    let sigma: f64 = parse_flag(args, "--sigma")?.unwrap_or(4.0);
    let frame_bits: u32 = parse_flag(args, "--frame-bits")?.unwrap_or(408);
    if !(0.0 < target && target <= 1.0) {
        return Err(CliError::usage(format!(
            "--target-cprr must be in (0,1], got {target}"
        )));
    }
    let model = CprrModel {
        power_delta: Db::new(delta),
        sigma_db: Db::new(sigma),
        frame_bits,
        ..CprrModel::calibrated_default()
    };
    println!("predicted CPRR vs CFD (Δ={delta} dB, σ={sigma} dB, {frame_bits} bits):");
    for tenths in (0..=60).step_by(5) {
        let cfd = Megahertz::new(f64::from(tenths) / 10.0);
        let cprr = model.predicted_cprr(cfd);
        println!(
            "  {:>4.1} MHz: {:>5.1}%  {}",
            cfd.value(),
            cprr * 100.0,
            "#".repeat((cprr * 30.0).round() as usize)
        );
    }
    match model.min_cfd_for_cprr(target) {
        Some(cfd) => println!("\nsmallest CFD with CPRR ≥ {:.0}%: {cfd}", target * 100.0),
        None => println!(
            "\nno CFD under the curve's saturation point reaches {:.0}%",
            target * 100.0
        ),
    }
    Ok(())
}

/// `nomc assign <scenario.json> [out.json]`.
pub fn assign(args: &[String]) -> Result<(), CliError> {
    use nomc_topology::assignment::{apply_assignment, optimize_assignment};
    use nomc_topology::spectrum::ChannelPlan;

    let path = args
        .first()
        .ok_or_else(|| CliError::usage("assign needs a scenario file"))?;
    let mut scenario = load_scenario(path)?;
    let mut freqs: Vec<f64> = scenario
        .deployment
        .networks
        .iter()
        .map(|n| n.frequency.value())
        .collect();
    freqs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let cfd = freqs
        .iter()
        .zip(freqs.iter().skip(1))
        .map(|(lo, hi)| hi - lo)
        .fold(f64::MAX, f64::min);
    if !cfd.is_finite() || cfd <= 0.0 {
        return Err("assignment needs at least two networks on distinct channels".into());
    }
    let lowest = *freqs
        .first()
        .ok_or("assignment needs at least two networks on distinct channels")?;
    let plan = ChannelPlan::with_count(Megahertz::new(lowest), Megahertz::new(cfd), freqs.len());
    let assignment = optimize_assignment(
        &scenario.deployment.networks,
        &plan,
        &LogDistance::indoor_2_4ghz(),
        &scenario.propagation.acr,
    );
    println!(
        "coupled-interference cost: {:.3e} (plan order) -> {:.3e} (optimized), {:+.1}%",
        assignment.identity_cost,
        assignment.cost,
        (assignment.cost / assignment.identity_cost - 1.0) * 100.0
    );
    for (i, f) in assignment.frequencies.iter().enumerate() {
        println!("  network #{i}: {f}");
    }
    apply_assignment(&mut scenario.deployment.networks, &assignment);
    if let Some(out) = args.get(1) {
        let json = nomc_json::to_string_pretty(&scenario);
        std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    Ok(())
}

/// `nomc serve --state-dir DIR [--addr HOST:PORT] [--max-queue N]
/// [--workers N]`.
///
/// Blocks until a drain is requested (SIGTERM/SIGINT), finishes or
/// requeues in-flight work, and exits 0. Restarting on the same
/// `--state-dir` resumes every unfinished job and re-serves completed
/// reports byte-identically.
pub fn serve(args: &[String]) -> Result<(), CliError> {
    use nomc_serve::{signals, ServeConfig, Server};

    let state_dir = flag_value(args, "--state-dir")?
        .ok_or_else(|| CliError::usage("serve needs --state-dir <dir> (its durable state root)"))?;
    let mut cfg = ServeConfig::new(
        flag_value(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:0".to_string()),
        state_dir,
    );
    if let Some(max_queue) = parse_flag::<usize>(args, "--max-queue")? {
        if max_queue == 0 {
            return Err(CliError::usage(
                "--max-queue must be at least 1 (a zero-slot queue admits nothing)",
            ));
        }
        cfg.max_queue = max_queue;
    }
    if let Some(workers) = parse_flag::<usize>(args, "--workers")? {
        if workers == 0 {
            return Err(CliError::usage("--workers must be at least 1"));
        }
        cfg.workers = workers;
    }
    signals::install_drain_handler();
    let server = Server::start(cfg).map_err(|e| format!("serve: {e}"))?;
    eprintln!("nomc serve: listening on {}", server.addr());
    server.join();
    eprintln!("nomc serve: drained");
    Ok(())
}

/// `nomc submit <scenario.json> --addr HOST:PORT [...]`: the client
/// side of `nomc serve`.
pub fn submit(args: &[String]) -> Result<(), CliError> {
    use nomc_serve::http;

    let path = args
        .first()
        .ok_or_else(|| CliError::usage("submit needs a scenario file"))?;
    let scenario = load_scenario(path)?;
    let addr = flag_value(args, "--addr")?
        .ok_or_else(|| CliError::usage("submit needs --addr <host:port> (see serve.addr)"))?;
    let seeds = sweep_seeds(args)?;
    let mut spec = nomc_serve::JobSpec {
        scenario,
        seeds,
        budget: 1_000_000_000,
        retries: 1,
        shards: None,
        checkpoint_every: Some(200_000),
    };
    if let Some(budget) = parse_flag::<u64>(args, "--budget")? {
        if budget == 0 {
            return Err(CliError::usage("--budget must be at least 1 event"));
        }
        spec.budget = budget;
    }
    if let Some(retries) = parse_flag::<u32>(args, "--retries")? {
        if retries > nomc_serve::MAX_RETRIES {
            return Err(CliError::usage(format!(
                "--retries {retries} exceeds the cap of {} (each retry doubles the event budget)",
                nomc_serve::MAX_RETRIES
            )));
        }
        spec.retries = retries;
    }
    if let Some(shards) = parse_flag::<usize>(args, "--shards")? {
        if shards == 0 {
            return Err(CliError::usage("--shards must be at least 1"));
        }
        spec.shards = Some(shards);
    }
    if let Some(every) = parse_flag::<u64>(args, "--checkpoint-every")? {
        if every == 0 {
            return Err(CliError::usage(
                "--checkpoint-every must be at least 1 event",
            ));
        }
        spec.checkpoint_every = Some(every);
    }
    // Client-side validation mirrors the server's admission rules, so a
    // bad spec fails here with a usage error instead of a 400.
    spec.validate()
        .map_err(|e| CliError::usage(format!("rejected job spec: {e}")))?;

    let body = nomc_json::to_string(&spec);
    let resp = http_request(&addr, http::Method::Post, "/jobs", body.as_bytes())?;
    let resp_body = String::from_utf8_lossy(&resp.body).into_owned();
    match resp.status {
        200 | 202 => {}
        429 => {
            let hint = resp
                .header("retry-after")
                .map(|s| format!(" (Retry-After: {s}s)"))
                .unwrap_or_default();
            return Err(format!("server queue is full{hint}: {resp_body}").into());
        }
        other => return Err(format!("submit failed with {other}: {resp_body}").into()),
    }
    let job = resp_body
        .split("\"job\":\"")
        .nth(1)
        .and_then(|rest| rest.get(..16))
        .ok_or_else(|| format!("malformed server ack: {resp_body}"))?
        .to_string();
    println!("{resp_body}");
    eprintln!(
        "job {job} ({})",
        if resp.status == 200 {
            "cached"
        } else {
            "queued"
        }
    );

    let wait = args.iter().any(|a| a == "--wait");
    let report_out = flag_value(args, "--report")?;
    if !(wait || report_out.is_some()) {
        return Ok(());
    }
    // Poll until the job concludes (bounded: the server answers
    // immediately, so each round is one short exchange).
    let status_target = format!("/jobs/{job}");
    let mut concluded = false;
    for _ in 0..3000 {
        let status = http_request(&addr, http::Method::Get, &status_target, b"")?;
        let text = String::from_utf8_lossy(&status.body).into_owned();
        if status.status != 200 {
            return Err(format!("status poll failed with {}: {text}", status.status).into());
        }
        if text.contains("\"state\":\"failed\"") {
            return Err(format!("job {job} failed: {text}").into());
        }
        if text.contains("\"state\":\"done\"") {
            concluded = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    if !concluded {
        return Err(format!("job {job} did not conclude within the polling window").into());
    }
    eprintln!("job {job} done");
    if let Some(out) = report_out {
        let report = http_request(
            &addr,
            http::Method::Get,
            &format!("/jobs/{job}/report"),
            b"",
        )?;
        if report.status != 200 {
            return Err(format!(
                "report fetch failed with {}: {}",
                report.status,
                String::from_utf8_lossy(&report.body)
            )
            .into());
        }
        std::fs::write(&out, &report.body).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    Ok(())
}

/// One HTTP exchange against the results server (connect, send, read
/// to close, parse). All timeouts are bounded; a wedged server is a
/// typed error, never a hang.
fn http_request(
    addr: &str,
    method: nomc_serve::http::Method,
    target: &str,
    body: &[u8],
) -> Result<nomc_serve::http::ClientResponse, String> {
    use nomc_serve::http;
    use std::io::{Read, Write};

    let timeout = std::time::Duration::from_secs(30);
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| format!("cannot configure socket: {e}"))?;
    stream
        .write_all(&http::render_request(method, target, body))
        .map_err(|e| format!("cannot send request to {addr}: {e}"))?;
    let mut bytes = Vec::new();
    stream
        .read_to_end(&mut bytes)
        .map_err(|e| format!("cannot read response from {addr}: {e}"))?;
    match http::parse_response(&bytes).map_err(|e| format!("bad response from {addr}: {e}"))? {
        http::Parsed::Complete { value, .. } => Ok(value),
        http::Parsed::Partial => Err(format!(
            "truncated response from {addr} ({} bytes)",
            bytes.len()
        )),
    }
}

fn load_scenario(path: &str) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let scenario: Scenario =
        nomc_json::from_str(&text).map_err(|e| format!("invalid scenario JSON: {e}"))?;
    // Full semantic validation — every malformed input becomes a typed
    // ScenarioError surfaced here as exit code + message, never a panic
    // mid-run.
    scenario
        .validate()
        .map_err(|e| format!("invalid scenario: {e}"))?;
    Ok(scenario)
}

fn load_fault_plan(path: &str) -> Result<FaultPlan, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    nomc_json::from_str(&text).map_err(|e| format!("invalid fault plan JSON: {e}"))
}

/// The value following `flag`, `Ok(None)` when the flag is absent, and
/// an error when the flag is present with no value — a trailing
/// `--journal` must not silently run without journaling.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, CliError> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    match args.get(i + 1) {
        // The next `--flag` is not this flag's value (values such as
        // `--delta -9.1` keep working: one dash, not two).
        Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
        _ => Err(CliError::usage(format!("{flag} needs a value"))),
    }
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, CliError>
where
    T::Err: std::fmt::Display,
{
    match flag_value(args, flag)? {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|e| CliError::usage(format!("bad value for {flag}: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn templates_build_and_serialize() {
        for t in ["line", "dense", "fig5", "attacker"] {
            let sc = template_scenario(t).unwrap_or_else(|e| panic!("{t}: {e}"));
            // Exact round-trip: the in-tree codec emits shortest
            // representations that decode bit-faithfully.
            let json = nomc_json::to_string(&sc);
            let back: Scenario = nomc_json::from_str(&json).expect("deserializes");
            assert_eq!(back, sc, "template {t} did not round-trip");
        }
        assert!(template_scenario("nope").is_err());
    }

    #[test]
    fn run_round_trip_via_tempfile() {
        let sc = template_scenario("attacker").unwrap();
        let dir = std::env::temp_dir().join("nomc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scenario.json");
        std::fs::write(&path, nomc_json::to_string(&sc)).unwrap();
        let loaded = load_scenario(path.to_str().unwrap()).unwrap();
        assert_eq!(loaded, sc);
    }

    #[test]
    fn run_merges_and_validates_fault_plan() {
        use nomc_sim::CrashFault;
        use nomc_units::{SimDuration, SimTime};

        let mut sc = template_scenario("line").unwrap();
        sc.duration = SimDuration::from_millis(300);
        sc.warmup = SimDuration::from_millis(50);
        let dir = std::env::temp_dir().join("nomc-cli-faults");
        std::fs::create_dir_all(&dir).unwrap();
        let sc_path = dir.join("scenario.json");
        std::fs::write(&sc_path, nomc_json::to_string(&sc)).unwrap();

        // A valid plan round-trips through JSON and the run succeeds.
        let plan = FaultPlan {
            crashes: vec![CrashFault {
                node: 0,
                at: SimTime::ZERO + SimDuration::from_millis(100),
                down_for: SimDuration::from_millis(50),
            }],
            ..FaultPlan::default()
        };
        let plan_path = dir.join("plan.json");
        std::fs::write(&plan_path, nomc_json::to_string(&plan)).unwrap();
        let reread: FaultPlan =
            nomc_json::from_str(&std::fs::read_to_string(&plan_path).unwrap()).unwrap();
        assert_eq!(reread, plan);
        run(&[
            sc_path.to_str().unwrap().to_string(),
            "--faults".into(),
            plan_path.to_str().unwrap().to_string(),
        ])
        .unwrap();

        // A plan naming a node outside the deployment is rejected with a
        // typed error, not a panic mid-run.
        let bad = FaultPlan {
            crashes: vec![CrashFault {
                node: 999,
                at: SimTime::ZERO,
                down_for: SimDuration::ZERO,
            }],
            ..FaultPlan::default()
        };
        let bad_path = dir.join("bad.json");
        std::fs::write(&bad_path, nomc_json::to_string(&bad)).unwrap();
        let err = run(&[
            sc_path.to_str().unwrap().to_string(),
            "--faults".into(),
            bad_path.to_str().unwrap().to_string(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("invalid fault plan"), "{err:?}");
    }

    #[test]
    fn run_accepts_shards_and_rejects_zero() {
        let mut sc = template_scenario("line").unwrap();
        sc.duration = nomc_units::SimDuration::from_millis(300);
        sc.warmup = nomc_units::SimDuration::from_millis(50);
        let dir = std::env::temp_dir().join("nomc-cli-shards");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scenario.json");
        std::fs::write(&path, nomc_json::to_string(&sc)).unwrap();
        let base = path.to_str().unwrap().to_string();
        run(&[base.clone(), "--shards".into(), "2".into()]).unwrap();
        let err = run(&[base, "--shards".into(), "0".into()]).unwrap_err();
        assert!(err.to_string().contains("--shards"), "{err:?}");
    }

    #[test]
    fn run_checkpointed_matches_plain_and_cleans_up() {
        let mut sc = template_scenario("line").unwrap();
        sc.duration = nomc_units::SimDuration::from_millis(300);
        sc.warmup = nomc_units::SimDuration::from_millis(50);
        let dir = std::env::temp_dir().join("nomc-cli-checkpointed");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sc_path = dir.join("scenario.json");
        std::fs::write(&sc_path, nomc_json::to_string(&sc)).unwrap();
        let base = sc_path.to_str().unwrap().to_string();

        let plain_json = dir.join("plain.json");
        run(&[
            base.clone(),
            "--json".into(),
            plain_json.to_str().unwrap().to_string(),
        ])
        .unwrap();

        let snap_dir = dir.join("snapshots");
        let ckpt_json = dir.join("ckpt.json");
        run(&[
            base.clone(),
            "--checkpoint-every".into(),
            "5000".into(),
            "--snapshot-dir".into(),
            snap_dir.to_str().unwrap().to_string(),
            "--json".into(),
            ckpt_json.to_str().unwrap().to_string(),
        ])
        .unwrap();
        assert_eq!(
            std::fs::read(&plain_json).unwrap(),
            std::fs::read(&ckpt_json).unwrap(),
            "checkpointing must not change the summary by a byte"
        );
        // The run completed, so its snapshot file was removed.
        let leftovers: Vec<_> = std::fs::read_dir(&snap_dir)
            .map(|es| es.filter_map(|e| e.ok()).collect())
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "{leftovers:?}");

        // Flag validation: zero cadence and a missing dir are typed
        // errors, not silent defaults.
        let err = run(&[base.clone(), "--checkpoint-every".into(), "0".into()]).unwrap_err();
        assert!(err.to_string().contains("--checkpoint-every"), "{err:?}");
        let err = run(&[base, "--checkpoint-every".into(), "5000".into()]).unwrap_err();
        assert!(err.to_string().contains("--snapshot-dir"), "{err:?}");
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--target-cprr", "0.9", "--sigma", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            parse_flag::<f64>(&args, "--target-cprr").unwrap(),
            Some(0.9)
        );
        assert_eq!(parse_flag::<f64>(&args, "--sigma").unwrap(), Some(2.0));
        assert_eq!(parse_flag::<f64>(&args, "--missing").unwrap(), None);
        assert!(parse_flag::<f64>(&["--sigma".into(), "x".into()], "--sigma").is_err());
    }

    #[test]
    fn a_flag_without_a_value_is_an_error_not_a_silent_default() {
        // Trailing flag: nothing follows.
        assert!(flag_value(&["--journal".into()], "--journal").is_err());
        // Another flag follows: `--journal --resume` must not take
        // "--resume" as the journal path.
        assert!(flag_value(&["--journal".into(), "--resume".into()], "--journal").is_err());
        // Single-dash values (negative numbers) still parse.
        assert_eq!(
            parse_flag::<f64>(&["--delta".into(), "-9.1".into()], "--delta").unwrap(),
            Some(-9.1)
        );
    }

    #[test]
    fn plan_rejects_bad_target() {
        assert!(plan(&["--target-cprr".into(), "1.5".into()]).is_err());
    }

    #[test]
    fn assign_round_trip() {
        let sc = template_scenario("dense").unwrap();
        let dir = std::env::temp_dir().join("nomc-cli-assign");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.json");
        let output = dir.join("out.json");
        std::fs::write(&input, nomc_json::to_string(&sc)).unwrap();
        assign(&[
            input.to_str().unwrap().to_string(),
            output.to_str().unwrap().to_string(),
        ])
        .unwrap();
        let optimized = load_scenario(output.to_str().unwrap()).unwrap();
        // Same channel set, possibly permuted.
        let mut a: Vec<f64> = sc
            .deployment
            .networks
            .iter()
            .map(|n| n.frequency.value())
            .collect();
        let mut b: Vec<f64> = optimized
            .deployment
            .networks
            .iter()
            .map(|n| n.frequency.value())
            .collect();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }
}
