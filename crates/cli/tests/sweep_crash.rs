//! End-to-end crash safety of `nomc sweep`: SIGKILL the sweep process
//! mid-run, resume from its journal, and require the final report and
//! journal to be byte-identical to an uninterrupted run's.

#![cfg(unix)]

use nomc_sim::{NetworkBehavior, Scenario};
use nomc_topology::paper;
use nomc_topology::spectrum::{ChannelPlan, FitPolicy};
use nomc_units::{Dbm, Megahertz, SimDuration};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn nomc() -> &'static str {
    env!("CARGO_BIN_EXE_nomc")
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nomc-sweep-crash").join(name);
    // Start from a clean slate so reruns cannot resume stale state.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("test dir creatable");
    dir
}

/// A multi-network scenario sized so one member takes a noticeable
/// fraction of a second: long enough that a 12-member, 2-thread sweep
/// is reliably still running when the journal's first entries land.
fn scenario_file(dir: &Path) -> PathBuf {
    let plan = ChannelPlan::fit(
        Megahertz::new(2458.0),
        Megahertz::new(15.0),
        Megahertz::new(3.0),
        FitPolicy::InclusiveEnds,
    )
    .expect("plan fits");
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.behavior_all(NetworkBehavior::dcn_default());
    b.duration(SimDuration::from_secs(6))
        .warmup(SimDuration::from_secs(2));
    let scenario = b.build().expect("valid scenario");
    let path = dir.join("scenario.json");
    std::fs::write(&path, nomc_json::to_string_pretty(&scenario)).expect("scenario written");
    path
}

fn sweep_args(scenario: &Path, journal: &Path, report: &Path) -> Vec<String> {
    [
        "sweep",
        scenario.to_str().expect("utf8 path"),
        "--seed-count",
        "12",
        "--threads",
        "2",
        "--retries",
        "1",
        "--journal",
        journal.to_str().expect("utf8 path"),
        "--report",
        report.to_str().expect("utf8 path"),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn run_to_completion(args: &[String]) {
    let status = Command::new(nomc())
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("nomc spawns");
    assert!(status.success(), "nomc sweep failed: {status}");
}

/// Journal entry lines currently checkpointed (total lines minus the
/// header), or 0 while the file does not exist yet.
fn journal_entries(path: &Path) -> usize {
    std::fs::read_to_string(path)
        .map(|t| t.lines().count().saturating_sub(1))
        .unwrap_or(0)
}

#[test]
fn sigkill_mid_sweep_then_resume_is_byte_identical_to_uninterrupted() {
    let dir = test_dir("sigkill");
    let scenario = scenario_file(&dir);

    // Reference: one uninterrupted sweep.
    let full_journal = dir.join("full.jsonl");
    let full_report = dir.join("full.json");
    run_to_completion(&sweep_args(&scenario, &full_journal, &full_report));
    let members = 12;
    assert_eq!(journal_entries(&full_journal), members);

    // Victim: same sweep, SIGKILLed once the journal holds at least one
    // member but (hopefully) not yet all of them.
    let kill_journal = dir.join("killed.jsonl");
    let kill_report = dir.join("killed.json");
    let args = sweep_args(&scenario, &kill_journal, &kill_report);
    let mut child = Command::new(nomc())
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("nomc spawns");
    let checkpointed = loop {
        let n = journal_entries(&kill_journal);
        if n >= 1 {
            break n;
        }
        if child.try_wait().expect("child pollable").is_some() {
            break journal_entries(&kill_journal);
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    // SIGKILL: no destructors, no flush, no atexit — the hard case.
    child.kill().expect("SIGKILL delivered");
    child.wait().expect("child reaped");
    assert!(
        checkpointed >= 1,
        "test premise: at least one member checkpointed before the kill"
    );
    assert!(
        !kill_report.exists(),
        "the killed run must not have written its report"
    );
    // The checkpoint on disk is a valid prefix of the reference journal:
    // atomic tmp+rename never leaves a torn file behind.
    let partial = std::fs::read_to_string(&kill_journal).expect("journal readable");
    let reference = std::fs::read_to_string(&full_journal).expect("reference readable");
    let reference_lines: std::collections::BTreeSet<&str> = reference.lines().collect();
    for line in partial.lines() {
        assert!(
            reference_lines.contains(line),
            "journal line after SIGKILL is not a reference line: {line}"
        );
    }

    // Resume from the journal and finish the sweep.
    let mut resume_args = args.clone();
    resume_args.push("--resume".to_string());
    run_to_completion(&resume_args);

    // The acceptance bar: byte-identical report AND journal.
    assert_eq!(
        std::fs::read(&kill_report).expect("resumed report"),
        std::fs::read(&full_report).expect("reference report"),
        "resumed report differs from the uninterrupted run"
    );
    assert_eq!(
        std::fs::read(&kill_journal).expect("resumed journal"),
        std::fs::read(&full_journal).expect("reference journal"),
        "resumed journal differs from the uninterrupted run"
    );
}

/// `.ckpt.json` files currently present in a snapshot directory.
fn checkpoint_files(dir: &Path) -> Vec<PathBuf> {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.to_string_lossy().ends_with(".ckpt.json"))
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn sigkill_mid_member_then_resume_is_byte_identical_to_uninterrupted() {
    let dir = test_dir("sigkill-mid-member");
    let scenario = scenario_file(&dir);
    let snapshots = dir.join("snapshots");
    // Few long members on one thread: the sweep spends nearly all its
    // time *inside* a member, so a kill triggered by the appearance of
    // a mid-member checkpoint reliably lands mid-member.
    let member_args = |journal: &Path, report: &Path| -> Vec<String> {
        [
            "sweep",
            scenario.to_str().expect("utf8 path"),
            "--seed-count",
            "2",
            "--threads",
            "1",
            "--retries",
            "1",
            "--checkpoint-every",
            "20000",
            "--snapshot-dir",
            snapshots.to_str().expect("utf8 path"),
            "--journal",
            journal.to_str().expect("utf8 path"),
            "--report",
            report.to_str().expect("utf8 path"),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    };

    // Reference: one uninterrupted checkpointed sweep. It concludes
    // every member, so it leaves the snapshot directory empty for the
    // victim run (same member keys — that is the point).
    let full_journal = dir.join("full.jsonl");
    let full_report = dir.join("full.json");
    run_to_completion(&member_args(&full_journal, &full_report));
    assert_eq!(journal_entries(&full_journal), 2);
    assert_eq!(
        checkpoint_files(&snapshots),
        Vec::<PathBuf>::new(),
        "a completed sweep must discard every member checkpoint"
    );

    // Victim: same sweep, SIGKILLed as soon as a mid-member engine
    // checkpoint exists — i.e. while the first member is still running
    // (the journal has no entries yet).
    let kill_journal = dir.join("killed.jsonl");
    let kill_report = dir.join("killed.json");
    let args = member_args(&kill_journal, &kill_report);
    let mut child = Command::new(nomc())
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("nomc spawns");
    let saw_checkpoint = loop {
        if !checkpoint_files(&snapshots).is_empty() {
            break true;
        }
        if child.try_wait().expect("child pollable").is_some() {
            break false;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    // SIGKILL: no destructors, no flush, no atexit — the hard case.
    child.kill().expect("SIGKILL delivered");
    child.wait().expect("child reaped");
    assert!(
        saw_checkpoint,
        "test premise: a mid-member checkpoint existed before the kill"
    );
    assert!(
        !kill_report.exists(),
        "the killed run must not have written its report"
    );

    // Resume: journal replay skips any concluded members, and the
    // in-flight member restarts from its last snapshot rather than
    // from scratch.
    let mut resume_args = args.clone();
    resume_args.push("--resume".to_string());
    run_to_completion(&resume_args);

    // The acceptance bar: byte-identical report AND journal, and the
    // snapshot directory drained.
    assert_eq!(
        std::fs::read(&kill_report).expect("resumed report"),
        std::fs::read(&full_report).expect("reference report"),
        "resumed report differs from the uninterrupted run"
    );
    assert_eq!(
        std::fs::read(&kill_journal).expect("resumed journal"),
        std::fs::read(&full_journal).expect("reference journal"),
        "resumed journal differs from the uninterrupted run"
    );
    assert_eq!(
        checkpoint_files(&snapshots),
        Vec::<PathBuf>::new(),
        "the resumed sweep must discard every member checkpoint"
    );
}

#[test]
fn resume_on_a_completed_journal_reruns_nothing_and_reproduces_the_report() {
    let dir = test_dir("noop-resume");
    let scenario = scenario_file(&dir);
    let journal = dir.join("sweep.jsonl");
    let report = dir.join("sweep.json");
    let args = sweep_args(&scenario, &journal, &report);
    run_to_completion(&args);
    let first = std::fs::read(&report).expect("report");

    // Resuming a fully-journaled sweep runs zero members, so it is
    // near-instant — and must regenerate the identical report.
    let mut resume_args = args.clone();
    resume_args.push("--resume".to_string());
    let started = std::time::Instant::now();
    run_to_completion(&resume_args);
    let elapsed = started.elapsed();
    assert_eq!(
        std::fs::read(&report).expect("report"),
        first,
        "no-op resume changed the report"
    );
    // Generous bound: a full rerun takes several seconds; a pure replay
    // takes milliseconds.
    assert!(
        elapsed < std::time::Duration::from_secs(3),
        "no-op resume took {elapsed:?}; members were rerun"
    );
}

#[test]
fn stale_journal_is_refused_with_a_typed_message() {
    let dir = test_dir("stale");
    let scenario = scenario_file(&dir);
    let journal = dir.join("sweep.jsonl");
    let report = dir.join("sweep.json");
    run_to_completion(&sweep_args(&scenario, &journal, &report));

    // Edit the sweep (a different seed list) and try to resume.
    let output = Command::new(nomc())
        .args([
            "sweep",
            scenario.to_str().expect("utf8"),
            "--seeds",
            "100,101",
            "--journal",
            journal.to_str().expect("utf8"),
            "--resume",
        ])
        .output()
        .expect("nomc runs");
    assert!(!output.status.success(), "stale resume must fail");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("stale journal"), "stderr was: {stderr}");
}
