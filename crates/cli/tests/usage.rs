//! Exit-code contract for malformed invocations: every usage-class
//! error must exit 2 (not 1) and explain itself on stderr, so shell
//! scripts can distinguish "you called me wrong" from "the work failed".

use std::path::PathBuf;
use std::process::{Command, Output};

fn nomc() -> &'static str {
    env!("CARGO_BIN_EXE_nomc")
}

fn run(args: &[&str]) -> Output {
    Command::new(nomc())
        .args(args)
        .output()
        .expect("nomc binary runs")
}

fn stderr_text(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A real scenario file, so the failure under test is the flag — not
/// an earlier "cannot read scenario" runtime error.
fn scenario_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nomc-usage").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("test dir creatable");
    let path = dir.join("scenario.json");
    let generated = run(&["generate", "line", path.to_str().expect("utf8 path")]);
    assert!(generated.status.success(), "{}", stderr_text(&generated));
    path
}

fn assert_usage_error(args: &[&str], needle: &str) {
    let out = run(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} must exit 2, stderr: {}",
        stderr_text(&out)
    );
    let stderr = stderr_text(&out);
    assert!(stderr.contains(needle), "{args:?} stderr: {stderr}");
}

#[test]
fn zero_checkpoint_cadence_is_a_usage_error() {
    let scenario = scenario_file("ckpt");
    let scenario = scenario.to_str().expect("utf8 path");
    assert_usage_error(
        &[
            "run",
            scenario,
            "--checkpoint-every",
            "0",
            "--snapshot-dir",
            "/tmp/x",
        ],
        "--checkpoint-every",
    );
    assert_usage_error(
        &["sweep", scenario, "--seeds", "1", "--checkpoint-every", "0"],
        "--checkpoint-every",
    );
}

#[test]
fn zero_shards_is_a_usage_error() {
    let scenario = scenario_file("shards");
    let scenario = scenario.to_str().expect("utf8 path");
    assert_usage_error(&["run", scenario, "--shards", "0"], "--shards");
    assert_usage_error(
        &["sweep", scenario, "--seeds", "1", "--shards", "0"],
        "--shards",
    );
}

#[test]
fn retry_cap_is_a_usage_error() {
    let scenario = scenario_file("retries");
    let scenario = scenario.to_str().expect("utf8 path");
    assert_usage_error(
        &["sweep", scenario, "--seeds", "1", "--retries", "17"],
        "exceeds the cap",
    );
    assert_usage_error(
        &[
            "submit",
            scenario,
            "--addr",
            "127.0.0.1:1",
            "--seeds",
            "1",
            "--retries",
            "17",
        ],
        "exceeds the cap",
    );
}

#[test]
fn serve_flag_validation_is_a_usage_error() {
    assert_usage_error(&["serve"], "--state-dir");
    assert_usage_error(
        &["serve", "--state-dir", "/tmp/x", "--max-queue", "0"],
        "--max-queue",
    );
    assert_usage_error(
        &["serve", "--state-dir", "/tmp/x", "--workers", "0"],
        "--workers",
    );
}

#[test]
fn unknown_command_is_a_usage_error() {
    assert_usage_error(&["frobnicate"], "unknown command");
}

#[test]
fn runtime_failures_still_exit_1() {
    // A well-formed invocation whose work fails (missing file) must
    // stay on exit code 1 so scripts can tell the classes apart.
    let out = run(&["run", "/nonexistent/scenario.json"]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr_text(&out));
}
