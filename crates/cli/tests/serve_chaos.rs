//! Chaos testing for `nomc serve`: SIGKILL the server mid-job and
//! require the restarted server to finish the job with byte-identical
//! results; throw malformed clients at it and require it to keep
//! serving; SIGTERM it and require a clean drain (exit code 0).

#![cfg(unix)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::Duration;

use nomc_serve::http::{self, ClientResponse, Method, Parsed};
use nomc_sim::{NetworkBehavior, Scenario};
use nomc_topology::paper;
use nomc_topology::spectrum::{ChannelPlan, FitPolicy};
use nomc_units::{Dbm, Megahertz, SimDuration};

fn nomc() -> &'static str {
    env!("CARGO_BIN_EXE_nomc")
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nomc-serve-chaos").join(name);
    // Clean slate: a reused state dir would let a rerun "recover" the
    // previous run's results instead of exercising this run's crash.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("test dir creatable");
    dir
}

/// A scenario sized so each sweep member takes a noticeable fraction
/// of a second: long enough that a six-member job on one worker is
/// reliably still in flight when we pull the plug.
fn scenario_file(dir: &Path) -> PathBuf {
    let plan = ChannelPlan::fit(
        Megahertz::new(2458.0),
        Megahertz::new(15.0),
        Megahertz::new(3.0),
        FitPolicy::InclusiveEnds,
    )
    .expect("plan fits");
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.behavior_all(NetworkBehavior::dcn_default());
    b.duration(SimDuration::from_secs(6))
        .warmup(SimDuration::from_secs(2));
    let scenario = b.build().expect("valid scenario");
    let path = dir.join("scenario.json");
    std::fs::write(&path, nomc_json::to_string_pretty(&scenario)).expect("scenario written");
    path
}

/// Starts `nomc serve` on an ephemeral port and waits for it to
/// publish its bound address, so tests never race the bind.
fn start_server(state: &Path) -> (Child, std::net::SocketAddr) {
    let addr_file = state.join("serve.addr");
    let _ = std::fs::remove_file(&addr_file);
    let mut child = Command::new(nomc())
        .args([
            "serve",
            "--state-dir",
            state.to_str().expect("utf8 path"),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    for _ in 0..200 {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if let Ok(addr) = text.trim().parse() {
                return (child, addr);
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let _ = child.kill();
    let _ = child.wait();
    panic!("server never published its address");
}

fn exchange(
    addr: std::net::SocketAddr,
    method: Method,
    target: &str,
    body: &[u8],
) -> ClientResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(15)))
        .unwrap();
    stream
        .write_all(&http::render_request(method, target, body))
        .expect("send request");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read response");
    match http::parse_response(&bytes).expect("valid response") {
        Parsed::Complete { value, .. } => value,
        Parsed::Partial => panic!("truncated response: {:?}", String::from_utf8_lossy(&bytes)),
    }
}

fn body_text(resp: &ClientResponse) -> String {
    String::from_utf8_lossy(&resp.body).into_owned()
}

fn submit_args(scenario: &Path, addr: std::net::SocketAddr) -> Vec<String> {
    [
        "submit",
        scenario.to_str().expect("utf8 path"),
        "--addr",
        &addr.to_string(),
        "--seeds",
        "1,2,3,4,5,6",
        "--checkpoint-every",
        "50000",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn job_id_from(out: &Output) -> String {
    let stdout = String::from_utf8_lossy(&out.stdout);
    stdout
        .split("\"job\":\"")
        .nth(1)
        .and_then(|rest| rest.get(..16))
        .unwrap_or_else(|| panic!("no job id in: {stdout}"))
        .to_string()
}

/// Extracts `"name":<u64>` from a JSON body (fields the server emits
/// are never nested under a same-named key, so a flat scan suffices).
fn field_u64(body: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":");
    let rest = body.split(&key).nth(1)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn sigterm(child: &mut Child) {
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill -TERM failed");
}

#[test]
fn sigkill_mid_job_then_restart_yields_byte_identical_results() {
    let work = test_dir("work");
    let scenario = scenario_file(&work);

    // Control: the same job run to completion on an undisturbed server.
    let control_state = test_dir("control-state");
    let (mut control_server, control_addr) = start_server(&control_state);
    let control_report_path = work.join("control_report.json");
    let mut args = submit_args(&scenario, control_addr);
    args.push("--wait".to_string());
    args.push("--report".to_string());
    args.push(control_report_path.to_str().expect("utf8 path").to_string());
    let control_out = Command::new(nomc())
        .args(&args)
        .output()
        .expect("submit runs");
    assert!(
        control_out.status.success(),
        "control submit failed: {}",
        String::from_utf8_lossy(&control_out.stderr)
    );
    let job_hex = job_id_from(&control_out);
    let control_report = std::fs::read(&control_report_path).expect("control report");
    let control_journal = std::fs::read_to_string(
        control_state
            .join("jobs")
            .join(&job_hex)
            .join("journal.jsonl"),
    )
    .expect("control journal");

    // SIGTERM is a graceful drain: the control server must exit 0.
    sigterm(&mut control_server);
    let status = control_server.wait().expect("control server exits");
    assert_eq!(status.code(), Some(0), "SIGTERM drain must exit cleanly");

    // Chaos: same spec on a fresh server, killed without warning once
    // at least one member has concluded (so the journal is non-trivial
    // and a mid-member checkpoint likely exists).
    let chaos_state = test_dir("chaos-state");
    let (mut chaos_server, chaos_addr) = start_server(&chaos_state);
    let chaos_out = Command::new(nomc())
        .args(submit_args(&scenario, chaos_addr))
        .output()
        .expect("submit runs");
    assert!(
        chaos_out.status.success(),
        "chaos submit failed: {}",
        String::from_utf8_lossy(&chaos_out.stderr)
    );
    assert_eq!(job_id_from(&chaos_out), job_hex, "same spec, same job id");

    let status_target = format!("/jobs/{job_hex}");
    let mut caught_running = false;
    for _ in 0..600 {
        let status = exchange(chaos_addr, Method::Get, &status_target, b"");
        let text = body_text(&status);
        assert!(!text.contains("\"state\":\"failed\""), "job failed: {text}");
        assert!(
            !text.contains("\"state\":\"done\""),
            "job finished before the kill — make the scenario slower"
        );
        if field_u64(&text, "members_done").is_some_and(|done| done >= 1) {
            caught_running = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(caught_running, "job never reported a concluded member");
    chaos_server.kill().expect("SIGKILL delivered");
    chaos_server.wait().expect("killed server reaped");

    // Restart on the same state dir: the job must be re-admitted and
    // finished from its journal, not restarted from scratch or lost.
    let (mut restarted, restarted_addr) = start_server(&chaos_state);
    let mut done = false;
    for _ in 0..1200 {
        let status = exchange(restarted_addr, Method::Get, &status_target, b"");
        let text = body_text(&status);
        assert!(!text.contains("\"state\":\"failed\""), "job failed: {text}");
        if text.contains("\"state\":\"done\"") {
            done = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(done, "restarted server never finished the recovered job");

    // The crashed-and-recovered report must be byte-identical to the
    // undisturbed control's, both over HTTP and on disk.
    let report_target = format!("/jobs/{job_hex}/report");
    let served = exchange(restarted_addr, Method::Get, &report_target, b"");
    assert_eq!(served.status, 200);
    assert_eq!(
        served.body, control_report,
        "recovered report differs from the control run's"
    );
    let job_dir = chaos_state.join("jobs").join(&job_hex);
    let on_disk = std::fs::read(job_dir.join("report.json")).expect("chaos report file");
    assert_eq!(on_disk, control_report);

    // Journal member lines must match byte-for-byte; the header line
    // is excluded only because it embeds each state dir's snapshot
    // path, which legitimately differs between the two servers.
    let chaos_journal =
        std::fs::read_to_string(job_dir.join("journal.jsonl")).expect("chaos journal");
    let control_members: Vec<&str> = control_journal.lines().skip(1).collect();
    let chaos_members: Vec<&str> = chaos_journal.lines().skip(1).collect();
    assert_eq!(
        chaos_members, control_members,
        "recovered journal diverges from the control run's"
    );

    // Every member concluded, so every mid-member checkpoint must have
    // been discarded: a drained snapshot dir is the done state.
    let leftovers: Vec<_> = std::fs::read_dir(job_dir.join("snapshots"))
        .expect("snapshot dir exists")
        .collect();
    assert!(
        leftovers.is_empty(),
        "snapshot dir not drained: {leftovers:?}"
    );

    // Resubmitting the identical spec is now a cache hit.
    let resubmit = Command::new(nomc())
        .args(submit_args(&scenario, restarted_addr))
        .output()
        .expect("submit runs");
    assert!(resubmit.status.success());
    assert!(
        String::from_utf8_lossy(&resubmit.stdout).contains("\"cached\":true"),
        "resubmit after recovery must hit the cache"
    );

    sigterm(&mut restarted);
    let status = restarted.wait().expect("restarted server exits");
    assert_eq!(status.code(), Some(0), "SIGTERM drain must exit cleanly");
}

#[test]
fn flaky_clients_never_wedge_the_server() {
    let state = test_dir("flaky-state");
    let scenario_path = scenario_file(&test_dir("flaky-work"));
    let (mut server, addr) = start_server(&state);

    // A client that half-closes mid-request: the server drops the
    // connection without an answer and without crashing.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST /jobs HTTP/1.1\r\ncontent-le")
            .expect("send partial head");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut bytes = Vec::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(15)))
            .unwrap();
        let _ = stream.read_to_end(&mut bytes);
    }

    // Binary garbage gets a typed parse error, not a hang or a panic.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"\x00\x01\x02\xff nonsense \r\n\r\n")
            .expect("send garbage");
        stream
            .set_read_timeout(Some(Duration::from_secs(15)))
            .unwrap();
        let mut bytes = Vec::new();
        stream.read_to_end(&mut bytes).expect("read");
        assert!(
            String::from_utf8_lossy(&bytes).starts_with("HTTP/1.1 4"),
            "garbage must get a 4xx"
        );
    }

    // A Content-Length past the body cap is refused up front — the
    // server never tries to buffer the promised payload.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST /jobs HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n")
            .expect("send oversized claim");
        stream
            .set_read_timeout(Some(Duration::from_secs(15)))
            .unwrap();
        let mut bytes = Vec::new();
        stream.read_to_end(&mut bytes).expect("read");
        assert!(
            String::from_utf8_lossy(&bytes).starts_with("HTTP/1.1 413"),
            "oversized Content-Length must get a 413"
        );
    }

    // After all that abuse, an honest client is served normally.
    let health = exchange(addr, Method::Get, "/healthz", b"");
    assert_eq!(health.status, 200, "{}", body_text(&health));
    let scenario_text = std::fs::read_to_string(&scenario_path).expect("scenario");
    let scenario: Scenario = nomc_json::from_str(&scenario_text).expect("scenario parses");
    let spec = nomc_serve::JobSpec {
        scenario,
        seeds: vec![7],
        budget: 1_000_000_000,
        retries: 1,
        shards: None,
        checkpoint_every: Some(200_000),
    };
    let accepted = exchange(
        addr,
        Method::Post,
        "/jobs",
        nomc_json::to_string(&spec).as_bytes(),
    );
    assert_eq!(accepted.status, 202, "{}", body_text(&accepted));

    server.kill().expect("cleanup kill");
    server.wait().expect("server reaped");
}
