//! CCA-threshold provision — the extension point the paper's DCN plugs
//! into.
//!
//! CSMA's clear-channel assessment compares sensed in-channel power with
//! a threshold. The default ZigBee design fixes it at −77 dBm
//! ([`FixedThreshold`]); DCN (in `nomc-core`) adjusts it from observed
//! interference. The MAC calls [`CcaThresholdProvider::threshold`] at
//! each CCA, and the node runtime forwards the two information sources
//! the paper identifies (§V-B) to the provider:
//!
//! 1. the RSSI of each received co-channel packet, and
//! 2. periodic in-channel power sensing (initializing phase only).

use nomc_units::{Dbm, SimTime};

/// A source of the current CCA threshold, updated from observed
/// interference.
pub trait CcaThresholdProvider: Send {
    /// The threshold to compare sensed power against right now.
    fn threshold(&self, now: SimTime) -> Dbm;

    /// Called when a co-channel packet addressed to *anyone* is overheard
    /// (the radio buffers it regardless), with its RSSI-register reading.
    fn on_cochannel_packet(&mut self, rssi: Dbm, now: SimTime);

    /// Called with an in-channel sensed-power reading (the initializing
    /// phase's millisecond sampling). Implementations that no longer need
    /// power sensing should return `false` from
    /// [`CcaThresholdProvider::wants_power_sensing`] to save the host the
    /// sampling cost, mirroring the paper's CPU-overhead argument.
    fn on_power_sense(&mut self, power: Dbm, now: SimTime);

    /// Whether the provider still wants in-channel power sensing samples.
    fn wants_power_sensing(&self, now: SimTime) -> bool;

    /// Periodic housekeeping hook, called by the host before each CCA and
    /// on a coarse timer. Time-based rules (like DCN's Case-II update
    /// after `T_U` seconds of silence) live here; the default is a no-op.
    fn on_tick(&mut self, now: SimTime) {
        let _ = now;
    }
}

/// The default ZigBee design: a constant threshold, ignoring all
/// observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedThreshold(Dbm);

impl FixedThreshold {
    /// A fixed threshold at the given level.
    pub fn new(level: Dbm) -> Self {
        FixedThreshold(level)
    }

    /// The ZigBee default of −77 dBm.
    pub fn zigbee_default() -> Self {
        FixedThreshold(Dbm::new(-77.0))
    }

    /// The configured level.
    pub fn level(&self) -> Dbm {
        self.0
    }
}

impl Default for FixedThreshold {
    fn default() -> Self {
        FixedThreshold::zigbee_default()
    }
}

impl CcaThresholdProvider for FixedThreshold {
    fn threshold(&self, _now: SimTime) -> Dbm {
        self.0
    }

    fn on_cochannel_packet(&mut self, _rssi: Dbm, _now: SimTime) {}

    fn on_power_sense(&mut self, _power: Dbm, _now: SimTime) {}

    fn wants_power_sensing(&self, _now: SimTime) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_threshold_is_constant() {
        let mut t = FixedThreshold::zigbee_default();
        assert_eq!(t.threshold(SimTime::ZERO), Dbm::new(-77.0));
        t.on_cochannel_packet(Dbm::new(-30.0), SimTime::from_secs(1));
        t.on_power_sense(Dbm::new(-50.0), SimTime::from_secs(2));
        assert_eq!(t.threshold(SimTime::from_secs(3)), Dbm::new(-77.0));
        assert!(!t.wants_power_sensing(SimTime::ZERO));
    }

    #[test]
    fn usable_as_trait_object() {
        let t: Box<dyn CcaThresholdProvider> = Box::new(FixedThreshold::new(Dbm::new(-60.0)));
        assert_eq!(t.threshold(SimTime::ZERO), Dbm::new(-60.0));
    }
}
