//! The CSMA/CA state machine.
//!
//! [`MacEngine`] is deliberately host-agnostic: it owns no clock and no
//! radio. The node runtime (in `nomc-sim`) translates its commands into
//! scheduled events and feeds results back as [`MacEvent`]s. This makes
//! every branch of the algorithm unit-testable with a hand-rolled event
//! sequence.

use crate::params::{CcaFailurePolicy, CsmaParams};
use nomc_rngcore::Rng;
use nomc_units::SimDuration;

/// Events the host feeds into the MAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacEvent {
    /// A frame is ready at the head of the queue (engine must be idle).
    PacketReady,
    /// The backoff timer armed by [`MacCommand::SetBackoffTimer`] expired.
    BackoffExpired,
    /// The CCA requested by [`MacCommand::PerformCca`] completed.
    CcaResult {
        /// `true` if sensed power was below the CCA threshold.
        clear: bool,
    },
    /// The transmission started by [`MacCommand::BeginTransmit`] finished.
    TxDone,
    /// Acknowledged mode: the ACK wait ended (`acked` tells whether the
    /// ACK frame was decoded before [`MacCommand::WaitForAck`] expired).
    AckResult {
        /// Whether the ACK arrived.
        acked: bool,
    },
}

/// Commands the MAC issues to the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacCommand {
    /// Arm a timer for the given duration, then deliver
    /// [`MacEvent::BackoffExpired`].
    SetBackoffTimer(SimDuration),
    /// Sample channel power for `cca_duration`, then deliver
    /// [`MacEvent::CcaResult`].
    PerformCca,
    /// Switch to TX (after turnaround) and send the frame; deliver
    /// [`MacEvent::TxDone`] when the last symbol leaves the antenna.
    BeginTransmit {
        /// `true` when this transmission was forced by the
        /// [`CcaFailurePolicy::TransmitAnyway`] policy after exhausting
        /// backoffs — it never saw a clear channel.
        forced: bool,
    },
    /// The frame was dropped due to channel-access failure
    /// ([`CcaFailurePolicy::DropPacket`]); the engine is idle again.
    DeclareFailure,
    /// The frame completed; after `post_tx_processing` the host may feed
    /// the next [`MacEvent::PacketReady`].
    CompletePacket,
    /// Acknowledged mode: listen for the ACK for the given duration, then
    /// deliver [`MacEvent::AckResult`].
    WaitForAck(SimDuration),
    /// Acknowledged mode: `macMaxFrameRetries` exhausted without an ACK;
    /// the frame is abandoned and the engine is idle again.
    AbandonPacket,
}

/// Internal engine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    InBackoff,
    AwaitingCca,
    Transmitting,
    AwaitingAck,
}

/// Where in the CSMA/CA procedure an engine currently is, as exposed by
/// [`MacEngine::snapshot`]. Mirrors the internal state machine exactly,
/// one variant per state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacPhase {
    /// Waiting for [`MacEvent::PacketReady`].
    Idle,
    /// A backoff timer is armed.
    InBackoff,
    /// A CCA is in flight.
    AwaitingCca,
    /// The frame (or a forced retry) is on the air.
    Transmitting,
    /// Acknowledged mode: listening for the Imm-ACK.
    AwaitingAck,
}

/// The complete mutable state of a [`MacEngine`], detached from its
/// (immutable, scenario-derived) parameters.
///
/// [`MacEngine::snapshot`] and [`MacEngine::restore`] round-trip through
/// this so a host can checkpoint a run mid-frame and resume it
/// bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacSnapshot {
    /// Current state-machine phase.
    pub phase: MacPhase,
    /// `NB`: number of busy CCAs so far for the current frame.
    pub nb: u8,
    /// `BE`: current backoff exponent.
    pub be: u8,
    /// Retransmissions performed for the current frame (ACK mode).
    pub retries: u8,
}

/// The unslotted CSMA/CA engine for a single transmitter.
#[derive(Debug, Clone)]
pub struct MacEngine {
    params: CsmaParams,
    state: State,
    /// `NB`: number of busy CCAs so far for the current frame.
    nb: u8,
    /// `BE`: current backoff exponent.
    be: u8,
    /// Retransmissions performed for the current frame (ACK mode).
    retries: u8,
}

impl MacEngine {
    /// Creates an idle engine.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`CsmaParams::validate`].
    pub fn new(params: CsmaParams) -> Self {
        params.validate().expect("invalid CSMA parameters");
        MacEngine {
            params,
            state: State::Idle,
            nb: 0,
            be: params.min_be,
            retries: 0,
        }
    }

    /// The engine's parameters.
    pub fn params(&self) -> &CsmaParams {
        &self.params
    }

    /// Captures the engine's complete mutable state.
    pub fn snapshot(&self) -> MacSnapshot {
        MacSnapshot {
            phase: match self.state {
                State::Idle => MacPhase::Idle,
                State::InBackoff => MacPhase::InBackoff,
                State::AwaitingCca => MacPhase::AwaitingCca,
                State::Transmitting => MacPhase::Transmitting,
                State::AwaitingAck => MacPhase::AwaitingAck,
            },
            nb: self.nb,
            be: self.be,
            retries: self.retries,
        }
    }

    /// Rebuilds an engine from `params` and a captured state, resuming
    /// exactly where [`MacEngine::snapshot`] left off.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`CsmaParams::validate`].
    pub fn restore(params: CsmaParams, snap: MacSnapshot) -> Self {
        let mut mac = MacEngine::new(params);
        mac.state = match snap.phase {
            MacPhase::Idle => State::Idle,
            MacPhase::InBackoff => State::InBackoff,
            MacPhase::AwaitingCca => State::AwaitingCca,
            MacPhase::Transmitting => State::Transmitting,
            MacPhase::AwaitingAck => State::AwaitingAck,
        };
        mac.nb = snap.nb;
        mac.be = snap.be;
        mac.retries = snap.retries;
        mac
    }

    /// `true` when the engine will accept [`MacEvent::PacketReady`].
    pub fn is_idle(&self) -> bool {
        self.state == State::Idle
    }

    /// Number of busy CCAs the current attempt has seen.
    pub fn busy_cca_count(&self) -> u8 {
        self.nb
    }

    /// Retransmissions performed for the current frame (ACK mode).
    pub fn retry_count(&self) -> u8 {
        self.retries
    }

    /// Feeds one event, returning the next command.
    ///
    /// # Panics
    ///
    /// Panics if the event does not match the engine's state — that is a
    /// host bug (e.g. delivering a CCA result while transmitting), not a
    /// protocol condition.
    pub fn handle<R: Rng + ?Sized>(&mut self, event: MacEvent, rng: &mut R) -> MacCommand {
        match (self.state, event) {
            (State::Idle, MacEvent::PacketReady) => {
                self.nb = 0;
                self.be = self.params.min_be;
                self.retries = 0;
                if !self.params.carrier_sense {
                    // Collision-generator mode: straight to TX.
                    self.state = State::Transmitting;
                    return MacCommand::BeginTransmit { forced: false };
                }
                self.state = State::InBackoff;
                MacCommand::SetBackoffTimer(self.sample_backoff(rng))
            }
            (State::InBackoff, MacEvent::BackoffExpired) => {
                self.state = State::AwaitingCca;
                MacCommand::PerformCca
            }
            (State::AwaitingCca, MacEvent::CcaResult { clear: true }) => {
                self.state = State::Transmitting;
                MacCommand::BeginTransmit { forced: false }
            }
            (State::AwaitingCca, MacEvent::CcaResult { clear: false }) => {
                self.nb += 1;
                self.be = (self.be + 1).min(self.params.max_be);
                if self.nb > self.params.max_csma_backoffs {
                    match self.params.on_failure {
                        CcaFailurePolicy::TransmitAnyway => {
                            self.state = State::Transmitting;
                            MacCommand::BeginTransmit { forced: true }
                        }
                        CcaFailurePolicy::DropPacket => {
                            self.state = State::Idle;
                            MacCommand::DeclareFailure
                        }
                    }
                } else {
                    self.state = State::InBackoff;
                    MacCommand::SetBackoffTimer(self.sample_backoff(rng))
                }
            }
            (State::Transmitting, MacEvent::TxDone) => {
                if self.params.acknowledged {
                    self.state = State::AwaitingAck;
                    MacCommand::WaitForAck(self.params.ack_wait)
                } else {
                    self.state = State::Idle;
                    MacCommand::CompletePacket
                }
            }
            (State::AwaitingAck, MacEvent::AckResult { acked: true }) => {
                self.state = State::Idle;
                MacCommand::CompletePacket
            }
            (State::AwaitingAck, MacEvent::AckResult { acked: false }) => {
                if self.retries >= self.params.max_frame_retries {
                    self.state = State::Idle;
                    MacCommand::AbandonPacket
                } else {
                    // Retransmit: the whole CSMA procedure restarts.
                    self.retries += 1;
                    self.nb = 0;
                    self.be = self.params.min_be;
                    if !self.params.carrier_sense {
                        self.state = State::Transmitting;
                        return MacCommand::BeginTransmit { forced: false };
                    }
                    self.state = State::InBackoff;
                    MacCommand::SetBackoffTimer(self.sample_backoff(rng))
                }
            }
            (state, event) => {
                panic!("MAC protocol violation: event {event:?} in state {state:?}")
            }
        }
    }

    /// Draws a backoff of `random(0 .. 2^BE − 1)` unit periods.
    fn sample_backoff<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        let max_units = (1u32 << self.be) - 1;
        let units = rng.gen_range(0..=max_units);
        self.params.unit_backoff * u64::from(units)
    }
}

impl nomc_json::ToJson for MacPhase {
    fn to_json(&self) -> nomc_json::Json {
        let s = match self {
            MacPhase::Idle => "idle",
            MacPhase::InBackoff => "in_backoff",
            MacPhase::AwaitingCca => "awaiting_cca",
            MacPhase::Transmitting => "transmitting",
            MacPhase::AwaitingAck => "awaiting_ack",
        };
        nomc_json::ToJson::to_json(s)
    }
}

impl nomc_json::FromJson for MacPhase {
    fn from_json(value: &nomc_json::Json) -> Result<Self, nomc_json::Error> {
        match value
            .as_str()
            .ok_or_else(|| nomc_json::Error::new("expected string for MacPhase"))?
        {
            "idle" => Ok(MacPhase::Idle),
            "in_backoff" => Ok(MacPhase::InBackoff),
            "awaiting_cca" => Ok(MacPhase::AwaitingCca),
            "transmitting" => Ok(MacPhase::Transmitting),
            "awaiting_ack" => Ok(MacPhase::AwaitingAck),
            other => Err(nomc_json::Error::new(format!("unknown MacPhase `{other}`"))),
        }
    }
}

nomc_json::json_struct!(MacSnapshot {
    phase: MacPhase,
    nb: u8,
    be: u8,
    retries: u8,
});

#[cfg(test)]
mod tests {
    use super::*;
    use nomc_rngcore::rngs::StdRng;
    use nomc_rngcore::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn happy_path() {
        let mut rng = rng();
        let mut mac = MacEngine::new(CsmaParams::ieee802154_default());
        assert!(mac.is_idle());
        let c = mac.handle(MacEvent::PacketReady, &mut rng);
        assert!(matches!(c, MacCommand::SetBackoffTimer(_)));
        assert!(!mac.is_idle());
        assert_eq!(
            mac.handle(MacEvent::BackoffExpired, &mut rng),
            MacCommand::PerformCca
        );
        assert_eq!(
            mac.handle(MacEvent::CcaResult { clear: true }, &mut rng),
            MacCommand::BeginTransmit { forced: false }
        );
        assert_eq!(
            mac.handle(MacEvent::TxDone, &mut rng),
            MacCommand::CompletePacket
        );
        assert!(mac.is_idle());
    }

    #[test]
    fn busy_cca_grows_backoff_exponent() {
        let mut rng = rng();
        let params = CsmaParams::ieee802154_default();
        let mut mac = MacEngine::new(params);
        mac.handle(MacEvent::PacketReady, &mut rng);
        // Collect backoff bounds as CCAs keep coming back busy.
        for expected_nb in 1..=params.max_csma_backoffs {
            mac.handle(MacEvent::BackoffExpired, &mut rng);
            let c = mac.handle(MacEvent::CcaResult { clear: false }, &mut rng);
            assert!(
                matches!(c, MacCommand::SetBackoffTimer(_)),
                "nb={expected_nb}"
            );
            assert_eq!(mac.busy_cca_count(), expected_nb);
        }
    }

    #[test]
    fn exhaustion_transmits_anyway_by_default() {
        let mut rng = rng();
        let params = CsmaParams::ieee802154_default();
        let mut mac = MacEngine::new(params);
        mac.handle(MacEvent::PacketReady, &mut rng);
        let mut last = MacCommand::PerformCca;
        for _ in 0..=params.max_csma_backoffs {
            mac.handle(MacEvent::BackoffExpired, &mut rng);
            last = mac.handle(MacEvent::CcaResult { clear: false }, &mut rng);
        }
        assert_eq!(last, MacCommand::BeginTransmit { forced: true });
    }

    #[test]
    fn exhaustion_drops_with_strict_policy() {
        let mut rng = rng();
        let params = CsmaParams {
            on_failure: CcaFailurePolicy::DropPacket,
            ..CsmaParams::ieee802154_default()
        };
        let mut mac = MacEngine::new(params);
        mac.handle(MacEvent::PacketReady, &mut rng);
        let mut last = MacCommand::PerformCca;
        for _ in 0..=params.max_csma_backoffs {
            mac.handle(MacEvent::BackoffExpired, &mut rng);
            last = mac.handle(MacEvent::CcaResult { clear: false }, &mut rng);
            if last == MacCommand::DeclareFailure {
                break;
            }
        }
        assert_eq!(last, MacCommand::DeclareFailure);
        assert!(mac.is_idle());
    }

    #[test]
    fn attacker_skips_carrier_sense() {
        let mut rng = rng();
        let mut mac = MacEngine::new(CsmaParams::carrier_sense_disabled());
        assert_eq!(
            mac.handle(MacEvent::PacketReady, &mut rng),
            MacCommand::BeginTransmit { forced: false }
        );
        assert_eq!(
            mac.handle(MacEvent::TxDone, &mut rng),
            MacCommand::CompletePacket
        );
    }

    #[test]
    fn backoff_within_be_bounds() {
        let mut rng = rng();
        let params = CsmaParams::ieee802154_default();
        for _ in 0..500 {
            let mut mac = MacEngine::new(params);
            if let MacCommand::SetBackoffTimer(d) = mac.handle(MacEvent::PacketReady, &mut rng) {
                let units = d.as_nanos() / params.unit_backoff.as_nanos();
                assert!(units < (1 << params.min_be), "units={units}");
            } else {
                panic!("expected backoff");
            }
        }
    }

    #[test]
    fn backoff_uses_full_range() {
        let mut rng = rng();
        let params = CsmaParams::ieee802154_default();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let mut mac = MacEngine::new(params);
            if let MacCommand::SetBackoffTimer(d) = mac.handle(MacEvent::PacketReady, &mut rng) {
                seen.insert(d.as_nanos() / params.unit_backoff.as_nanos());
            }
        }
        assert_eq!(seen.len(), 1 << params.min_be, "all 8 slots should occur");
    }

    #[test]
    fn ack_success_completes() {
        let mut rng = rng();
        let mut mac = MacEngine::new(CsmaParams::acknowledged_default());
        mac.handle(MacEvent::PacketReady, &mut rng);
        mac.handle(MacEvent::BackoffExpired, &mut rng);
        mac.handle(MacEvent::CcaResult { clear: true }, &mut rng);
        let c = mac.handle(MacEvent::TxDone, &mut rng);
        assert!(matches!(c, MacCommand::WaitForAck(_)));
        assert!(!mac.is_idle());
        let c = mac.handle(MacEvent::AckResult { acked: true }, &mut rng);
        assert_eq!(c, MacCommand::CompletePacket);
        assert!(mac.is_idle());
        assert_eq!(mac.retry_count(), 0);
    }

    #[test]
    fn ack_timeout_retries_then_abandons() {
        let mut rng = rng();
        let params = CsmaParams::acknowledged_default();
        let mut mac = MacEngine::new(params);
        mac.handle(MacEvent::PacketReady, &mut rng);
        for attempt in 0..=params.max_frame_retries {
            // Drive through backoff/CCA/TX.
            mac.handle(MacEvent::BackoffExpired, &mut rng);
            mac.handle(MacEvent::CcaResult { clear: true }, &mut rng);
            let c = mac.handle(MacEvent::TxDone, &mut rng);
            assert!(matches!(c, MacCommand::WaitForAck(_)), "attempt {attempt}");
            let c = mac.handle(MacEvent::AckResult { acked: false }, &mut rng);
            if attempt < params.max_frame_retries {
                assert!(matches!(c, MacCommand::SetBackoffTimer(_)));
                assert_eq!(mac.retry_count(), attempt + 1);
            } else {
                assert_eq!(c, MacCommand::AbandonPacket);
                assert!(mac.is_idle());
            }
        }
    }

    #[test]
    fn retry_resets_backoff_exponent() {
        let mut rng = rng();
        let params = CsmaParams::acknowledged_default();
        let mut mac = MacEngine::new(params);
        mac.handle(MacEvent::PacketReady, &mut rng);
        // Exhaust a few busy CCAs to grow BE…
        mac.handle(MacEvent::BackoffExpired, &mut rng);
        mac.handle(MacEvent::CcaResult { clear: false }, &mut rng);
        mac.handle(MacEvent::BackoffExpired, &mut rng);
        mac.handle(MacEvent::CcaResult { clear: true }, &mut rng);
        mac.handle(MacEvent::TxDone, &mut rng);
        // …then fail the ACK: the new attempt starts from NB = 0.
        mac.handle(MacEvent::AckResult { acked: false }, &mut rng);
        assert_eq!(mac.busy_cca_count(), 0);
    }

    #[test]
    #[should_panic(expected = "protocol violation")]
    fn out_of_order_event_panics() {
        let mut rng = rng();
        let mut mac = MacEngine::new(CsmaParams::ieee802154_default());
        let _ = mac.handle(MacEvent::TxDone, &mut rng);
    }

    #[test]
    fn be_caps_at_max() {
        let mut rng = rng();
        let params = CsmaParams {
            max_csma_backoffs: 8,
            on_failure: CcaFailurePolicy::DropPacket,
            ..CsmaParams::ieee802154_default()
        };
        let mut mac = MacEngine::new(params);
        mac.handle(MacEvent::PacketReady, &mut rng);
        // After many busy CCAs the backoff never exceeds 2^maxBE − 1 units.
        for _ in 0..params.max_csma_backoffs {
            mac.handle(MacEvent::BackoffExpired, &mut rng);
            if let MacCommand::SetBackoffTimer(d) =
                mac.handle(MacEvent::CcaResult { clear: false }, &mut rng)
            {
                let units = d.as_nanos() / params.unit_backoff.as_nanos();
                assert!(units < (1 << params.max_be));
            }
        }
    }
}
