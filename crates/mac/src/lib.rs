//! # nomc-mac
//!
//! The unslotted IEEE 802.15.4 CSMA/CA MAC, modelled as a pure state
//! machine ([`engine::MacEngine`]) so it can be unit-tested without a
//! simulator: the host feeds it events (backoff timer expired, CCA
//! result, transmission finished) and receives commands (arm a timer,
//! perform CCA, begin transmitting).
//!
//! The piece the paper modifies — *what threshold CCA compares against* —
//! is abstracted as [`threshold::CcaThresholdProvider`]. The default
//! ZigBee behaviour is [`threshold::FixedThreshold`] at −77 dBm; the DCN
//! CCA-Adjustor in `nomc-core` is another implementation.
//!
//! # Examples
//!
//! Drive one successful transmission attempt by hand:
//!
//! ```
//! use nomc_mac::engine::{MacCommand, MacEngine, MacEvent};
//! use nomc_mac::params::CsmaParams;
//! use nomc_rngcore::SeedableRng;
//!
//! let mut rng = nomc_rngcore::rngs::StdRng::seed_from_u64(1);
//! let mut mac = MacEngine::new(CsmaParams::ieee802154_default());
//! let cmd = mac.handle(MacEvent::PacketReady, &mut rng);
//! assert!(matches!(cmd, MacCommand::SetBackoffTimer(_)));
//! let cmd = mac.handle(MacEvent::BackoffExpired, &mut rng);
//! assert_eq!(cmd, MacCommand::PerformCca);
//! let cmd = mac.handle(MacEvent::CcaResult { clear: true }, &mut rng);
//! assert_eq!(cmd, MacCommand::BeginTransmit { forced: false });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod params;
pub mod stats;
pub mod threshold;

pub use engine::{MacCommand, MacEngine, MacEvent, MacPhase, MacSnapshot};
pub use params::{CcaFailurePolicy, CsmaParams};
pub use stats::MacStats;
pub use threshold::{CcaThresholdProvider, FixedThreshold};
