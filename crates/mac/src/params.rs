//! CSMA/CA parameters.

use nomc_radio::timing;
use nomc_units::SimDuration;

/// What the MAC does when `NB` exceeds `macMaxCSMABackoffs` (every CCA
/// came back busy).
///
/// The standard says "declare a channel-access failure"; what the *stack*
/// then does differs. The paper's observed mote behaviour (Fig. 6: a
/// ~45 packets/s floor even at thresholds that render the channel
/// permanently busy) matches stacks that force the transmission out after
/// exhausting backoffs, so that is the default here; `DropPacket` models
/// a strictly standard-compliant stack and is used in ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CcaFailurePolicy {
    /// Transmit the frame anyway after the final busy CCA.
    #[default]
    TransmitAnyway,
    /// Discard the frame and report failure.
    DropPacket,
}

/// Parameters of the unslotted CSMA/CA algorithm plus the stack-level
/// knobs the paper's experiments exercise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsmaParams {
    /// `macMinBE`: initial backoff exponent (standard default 3).
    pub min_be: u8,
    /// `macMaxBE`: maximum backoff exponent (standard default 5).
    pub max_be: u8,
    /// `macMaxCSMABackoffs`: CCA retries before failure (default 4).
    pub max_csma_backoffs: u8,
    /// One backoff period (20 symbols = 320 µs).
    pub unit_backoff: SimDuration,
    /// CCA duration (8 symbols = 128 µs).
    pub cca_duration: SimDuration,
    /// RX→TX turnaround after a clear CCA (12 symbols = 192 µs).
    pub turnaround: SimDuration,
    /// Post-transmission processing gap before the next frame can be
    /// queued (SPI transfer + OS overhead on a MicaZ; calibrated so a
    /// saturated 2-link network tops out near the paper's ~260 pkts/s).
    pub post_tx_processing: SimDuration,
    /// Whether the carrier-sense module is enabled at all. The paper
    /// disables it to generate guaranteed collisions (§III-B).
    pub carrier_sense: bool,
    /// Behaviour on channel-access failure.
    pub on_failure: CcaFailurePolicy,
    /// Acknowledged transfers: request a MAC ACK for every data frame and
    /// retransmit on timeout. The paper's saturated streams are
    /// unacknowledged (the default); this models ZigBee reliable unicast.
    pub acknowledged: bool,
    /// `macMaxFrameRetries`: retransmissions after a missing ACK.
    pub max_frame_retries: u8,
    /// `macAckWaitDuration`: 54 symbols = 864 µs.
    pub ack_wait: SimDuration,
}

fn default_max_frame_retries() -> u8 {
    3
}

fn default_ack_wait() -> SimDuration {
    SimDuration::from_micros(864)
}

impl nomc_json::ToJson for CcaFailurePolicy {
    fn to_json(&self) -> nomc_json::Json {
        nomc_json::Json::Str(
            match self {
                CcaFailurePolicy::TransmitAnyway => "TransmitAnyway",
                CcaFailurePolicy::DropPacket => "DropPacket",
            }
            .to_owned(),
        )
    }
}

impl nomc_json::FromJson for CcaFailurePolicy {
    fn from_json(value: &nomc_json::Json) -> Result<Self, nomc_json::Error> {
        match value.as_str() {
            Some("TransmitAnyway") => Ok(CcaFailurePolicy::TransmitAnyway),
            Some("DropPacket") => Ok(CcaFailurePolicy::DropPacket),
            _ => Err(nomc_json::Error::new(format!(
                "unknown CcaFailurePolicy variant: {value}"
            ))),
        }
    }
}

nomc_json::json_struct!(CsmaParams {
    min_be: u8,
    max_be: u8,
    max_csma_backoffs: u8,
    unit_backoff: SimDuration,
    cca_duration: SimDuration,
    turnaround: SimDuration,
    post_tx_processing: SimDuration,
    carrier_sense: bool,
    on_failure: CcaFailurePolicy,
    acknowledged: bool = false,
    max_frame_retries: u8 = default_max_frame_retries(),
    ack_wait: SimDuration = default_ack_wait(),
});

impl CsmaParams {
    /// Standard-default unslotted CSMA/CA with the reproduction's
    /// calibrated stack overheads.
    pub fn ieee802154_default() -> Self {
        CsmaParams {
            min_be: 3,
            max_be: 5,
            max_csma_backoffs: 4,
            unit_backoff: timing::UNIT_BACKOFF,
            cca_duration: timing::CCA_DURATION,
            turnaround: timing::TURNAROUND,
            post_tx_processing: SimDuration::from_micros(2600),
            carrier_sense: true,
            on_failure: CcaFailurePolicy::default(),
            acknowledged: false,
            max_frame_retries: 3,
            ack_wait: SimDuration::from_micros(864),
        }
    }

    /// Standard parameters with acknowledged transfers enabled.
    pub fn acknowledged_default() -> Self {
        CsmaParams {
            acknowledged: true,
            ..CsmaParams::ieee802154_default()
        }
    }

    /// The paper's "attacker"/collision-generator configuration: carrier
    /// sensing disabled entirely, frames go straight out.
    pub fn carrier_sense_disabled() -> Self {
        CsmaParams {
            carrier_sense: false,
            ..CsmaParams::ieee802154_default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message when the exponents are inverted or out of the
    /// standard's 0-8 range.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_be > self.max_be {
            return Err(format!(
                "macMinBE ({}) exceeds macMaxBE ({})",
                self.min_be, self.max_be
            ));
        }
        if self.max_be > 8 {
            return Err(format!("macMaxBE ({}) exceeds 8", self.max_be));
        }
        if self.acknowledged && self.ack_wait.is_zero() {
            return Err("acknowledged mode needs a positive ack_wait".into());
        }
        Ok(())
    }
}

impl Default for CsmaParams {
    fn default() -> Self {
        CsmaParams::ieee802154_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_standard() {
        let p = CsmaParams::ieee802154_default();
        assert_eq!(p.min_be, 3);
        assert_eq!(p.max_be, 5);
        assert_eq!(p.max_csma_backoffs, 4);
        assert_eq!(p.unit_backoff.as_micros(), 320);
        assert!(p.carrier_sense);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn attacker_has_no_carrier_sense() {
        assert!(!CsmaParams::carrier_sense_disabled().carrier_sense);
    }

    #[test]
    fn acknowledged_defaults() {
        let p = CsmaParams::acknowledged_default();
        assert!(p.acknowledged);
        assert_eq!(p.max_frame_retries, 3);
        assert_eq!(p.ack_wait.as_micros(), 864);
        assert!(p.validate().is_ok());
        let bad = CsmaParams {
            ack_wait: SimDuration::ZERO,
            ..CsmaParams::acknowledged_default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validation_catches_inverted_exponents() {
        let p = CsmaParams {
            min_be: 6,
            max_be: 5,
            ..CsmaParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_oversized_be() {
        let p = CsmaParams {
            max_be: 9,
            ..CsmaParams::default()
        };
        assert!(p.validate().is_err());
    }
}
