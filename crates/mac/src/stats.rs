//! Per-transmitter MAC statistics.

use nomc_units::SimDuration;

/// Counters a node's MAC accumulates over a run; the experiment harness
/// aggregates these into the paper's throughput/PRR metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MacStats {
    /// Frames handed to the MAC by the traffic source.
    pub enqueued: u64,
    /// Frames whose transmission actually started.
    pub transmitted: u64,
    /// Transmissions forced out by the transmit-anyway failure policy.
    pub forced_transmissions: u64,
    /// Frames dropped after channel-access failure (drop policy).
    pub access_failures: u64,
    /// Individual CCA operations that came back busy.
    pub cca_busy: u64,
    /// Individual CCA operations that came back clear.
    pub cca_clear: u64,
    /// Retransmission attempts after missing ACKs (acknowledged mode).
    pub retransmissions: u64,
    /// Frames abandoned after `macMaxFrameRetries` (acknowledged mode).
    pub abandoned: u64,
}

impl MacStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        MacStats::default()
    }

    /// Fraction of CCA operations that found the channel busy, or `None`
    /// if no CCA ever ran.
    pub fn cca_busy_ratio(&self) -> Option<f64> {
        let total = self.cca_busy + self.cca_clear;
        if total == 0 {
            None
        } else {
            Some(self.cca_busy as f64 / total as f64)
        }
    }

    /// Transmissions per second over a run of `elapsed`.
    ///
    /// # Panics
    ///
    /// Panics if `elapsed` is zero.
    pub fn tx_rate(&self, elapsed: SimDuration) -> f64 {
        assert!(!elapsed.is_zero(), "elapsed time must be positive");
        self.transmitted as f64 / elapsed.as_secs_f64()
    }

    /// Merges another node's counters into this one (for per-network
    /// aggregation).
    pub fn merge(&mut self, other: &MacStats) {
        self.enqueued += other.enqueued;
        self.transmitted += other.transmitted;
        self.forced_transmissions += other.forced_transmissions;
        self.access_failures += other.access_failures;
        self.cca_busy += other.cca_busy;
        self.cca_clear += other.cca_clear;
        self.retransmissions += other.retransmissions;
        self.abandoned += other.abandoned;
    }
}

nomc_json::json_struct!(MacStats {
    enqueued: u64,
    transmitted: u64,
    forced_transmissions: u64,
    access_failures: u64,
    cca_busy: u64,
    cca_clear: u64,
    retransmissions: u64,
    abandoned: u64,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_ratio() {
        let mut s = MacStats::new();
        assert_eq!(s.cca_busy_ratio(), None);
        s.cca_busy = 3;
        s.cca_clear = 1;
        assert_eq!(s.cca_busy_ratio(), Some(0.75));
    }

    #[test]
    fn tx_rate() {
        let s = MacStats {
            transmitted: 500,
            ..MacStats::default()
        };
        assert!((s.tx_rate(SimDuration::from_secs(2)) - 250.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "elapsed")]
    fn tx_rate_rejects_zero_time() {
        let _ = MacStats::default().tx_rate(SimDuration::ZERO);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = MacStats {
            enqueued: 1,
            transmitted: 2,
            forced_transmissions: 3,
            access_failures: 4,
            cca_busy: 5,
            cca_clear: 6,
            retransmissions: 7,
            abandoned: 8,
        };
        a.merge(&a.clone());
        assert_eq!(a.enqueued, 2);
        assert_eq!(a.transmitted, 4);
        assert_eq!(a.forced_transmissions, 6);
        assert_eq!(a.access_failures, 8);
        assert_eq!(a.cca_busy, 10);
        assert_eq!(a.cca_clear, 12);
        assert_eq!(a.retransmissions, 14);
        assert_eq!(a.abandoned, 16);
    }
}
