//! Property-based tests of the CSMA/CA state machine: for *any* sequence
//! of channel conditions, the engine follows the protocol's structure.

use nomc_mac::{CcaFailurePolicy, CsmaParams, MacCommand, MacEngine, MacEvent};
use nomc_rngcore::check::{boolean, forall, just, one_of, range, vec_of, zip2, zip3};
use nomc_rngcore::{check, check_eq, rngs::StdRng, SeedableRng};

/// Drives one full packet attempt with the given per-CCA outcomes,
/// returning the commands issued.
fn drive(params: CsmaParams, cca_outcomes: &[bool], seed: u64) -> Vec<MacCommand> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mac = MacEngine::new(params);
    let mut commands = vec![mac.handle(MacEvent::PacketReady, &mut rng)];
    let mut cca_iter = cca_outcomes.iter().copied().chain(std::iter::repeat(true));
    loop {
        match *commands.last().expect("non-empty") {
            MacCommand::SetBackoffTimer(_) => {
                commands.push(mac.handle(MacEvent::BackoffExpired, &mut rng));
            }
            MacCommand::PerformCca => {
                let clear = cca_iter.next().expect("infinite");
                commands.push(mac.handle(MacEvent::CcaResult { clear }, &mut rng));
            }
            MacCommand::BeginTransmit { .. } => {
                commands.push(mac.handle(MacEvent::TxDone, &mut rng));
            }
            MacCommand::CompletePacket | MacCommand::DeclareFailure | MacCommand::AbandonPacket => {
                return commands
            }
            MacCommand::WaitForAck(_) => {
                // These property tests drive unacknowledged parameter
                // sets; an ACK wait would mean the params changed.
                unreachable!("unacknowledged runs never wait for ACKs")
            }
        }
    }
}

#[test]
fn every_attempt_terminates_with_bounded_ccas() {
    let g = zip3(
        vec_of(boolean(), 0..20),
        range(0u64..1000),
        one_of(vec![
            just(CcaFailurePolicy::TransmitAnyway),
            just(CcaFailurePolicy::DropPacket),
        ]),
    );
    forall(
        "every_attempt_terminates_with_bounded_ccas",
        64,
        &g,
        |(outcomes, seed, policy)| {
            let params = CsmaParams {
                on_failure: *policy,
                ..CsmaParams::ieee802154_default()
            };
            let commands = drive(params, outcomes, *seed);
            // CCA count never exceeds macMaxCSMABackoffs + 1.
            let ccas = commands
                .iter()
                .filter(|c| **c == MacCommand::PerformCca)
                .count();
            check!(
                ccas <= usize::from(params.max_csma_backoffs) + 1,
                "{ccas} CCAs"
            );
            // The attempt ends in exactly one terminal command.
            let terminal = commands.last().expect("non-empty");
            check!(
                matches!(
                    terminal,
                    MacCommand::CompletePacket | MacCommand::DeclareFailure
                ),
                "unexpected terminal command {terminal:?}"
            );
            // DeclareFailure only under the drop policy.
            if *terminal == MacCommand::DeclareFailure {
                check_eq!(*policy, CcaFailurePolicy::DropPacket);
            }
            Ok(())
        },
    );
}

#[test]
fn clear_cca_always_transmits() {
    forall(
        "clear_cca_always_transmits",
        64,
        &range(0u64..1000),
        |&seed| {
            let commands = drive(CsmaParams::ieee802154_default(), &[true], seed);
            let has_tx = commands.contains(&MacCommand::BeginTransmit { forced: false });
            check!(has_tx, "no unforced transmit in {commands:?}");
            check_eq!(*commands.last().unwrap(), MacCommand::CompletePacket);
            Ok(())
        },
    );
}

#[test]
fn forced_transmissions_only_after_exhaustion() {
    let g = zip2(range(0usize..10), range(0u64..1000));
    forall(
        "forced_transmissions_only_after_exhaustion",
        64,
        &g,
        |&(busy_count, seed)| {
            let params = CsmaParams::ieee802154_default();
            let outcomes = vec![false; busy_count];
            let commands = drive(params, &outcomes, seed);
            let forced = commands
                .iter()
                .any(|c| matches!(c, MacCommand::BeginTransmit { forced: true }));
            let exhausted = busy_count > usize::from(params.max_csma_backoffs);
            check_eq!(forced, exhausted);
            Ok(())
        },
    );
}

#[test]
fn backoff_durations_respect_be_cap() {
    let g = zip2(vec_of(just(false), 0..8), range(0u64..1000));
    forall(
        "backoff_durations_respect_be_cap",
        64,
        &g,
        |(outcomes, seed)| {
            let params = CsmaParams {
                max_csma_backoffs: 8,
                on_failure: CcaFailurePolicy::DropPacket,
                ..CsmaParams::ieee802154_default()
            };
            let commands = drive(params, outcomes, *seed);
            for c in &commands {
                if let MacCommand::SetBackoffTimer(d) = c {
                    let units = d.as_nanos() / params.unit_backoff.as_nanos();
                    check!(units < (1 << params.max_be), "backoff {units} units");
                }
            }
            Ok(())
        },
    );
}
