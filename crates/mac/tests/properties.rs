//! Property-based tests of the CSMA/CA state machine: for *any* sequence
//! of channel conditions, the engine follows the protocol's structure.

use nomc_mac::{CcaFailurePolicy, CsmaParams, MacCommand, MacEngine, MacEvent};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Drives one full packet attempt with the given per-CCA outcomes,
/// returning the commands issued.
fn drive(params: CsmaParams, cca_outcomes: &[bool], seed: u64) -> Vec<MacCommand> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mac = MacEngine::new(params);
    let mut commands = vec![mac.handle(MacEvent::PacketReady, &mut rng)];
    let mut cca_iter = cca_outcomes.iter().copied().chain(std::iter::repeat(true));
    loop {
        match *commands.last().expect("non-empty") {
            MacCommand::SetBackoffTimer(_) => {
                commands.push(mac.handle(MacEvent::BackoffExpired, &mut rng));
            }
            MacCommand::PerformCca => {
                let clear = cca_iter.next().expect("infinite");
                commands.push(mac.handle(MacEvent::CcaResult { clear }, &mut rng));
            }
            MacCommand::BeginTransmit { .. } => {
                commands.push(mac.handle(MacEvent::TxDone, &mut rng));
            }
            MacCommand::CompletePacket
            | MacCommand::DeclareFailure
            | MacCommand::AbandonPacket => return commands,
            MacCommand::WaitForAck(_) => {
                // These property tests drive unacknowledged parameter
                // sets; an ACK wait would mean the params changed.
                unreachable!("unacknowledged runs never wait for ACKs")
            }
        }
    }
}

proptest! {
    #[test]
    fn every_attempt_terminates_with_bounded_ccas(
        outcomes in prop::collection::vec(any::<bool>(), 0..20),
        seed in 0u64..1000,
        policy in prop_oneof![
            Just(CcaFailurePolicy::TransmitAnyway),
            Just(CcaFailurePolicy::DropPacket)
        ],
    ) {
        let params = CsmaParams { on_failure: policy, ..CsmaParams::ieee802154_default() };
        let commands = drive(params, &outcomes, seed);
        // CCA count never exceeds macMaxCSMABackoffs + 1.
        let ccas = commands.iter().filter(|c| **c == MacCommand::PerformCca).count();
        prop_assert!(ccas <= usize::from(params.max_csma_backoffs) + 1, "{} CCAs", ccas);
        // The attempt ends in exactly one terminal command.
        let terminal = commands.last().expect("non-empty");
        prop_assert!(matches!(
            terminal,
            MacCommand::CompletePacket | MacCommand::DeclareFailure
        ));
        // DeclareFailure only under the drop policy.
        if *terminal == MacCommand::DeclareFailure {
            prop_assert_eq!(policy, CcaFailurePolicy::DropPacket);
        }
    }

    #[test]
    fn clear_cca_always_transmits(seed in 0u64..1000) {
        let commands = drive(CsmaParams::ieee802154_default(), &[true], seed);
        let has_tx = commands.contains(&MacCommand::BeginTransmit { forced: false });
        prop_assert!(has_tx);
        prop_assert_eq!(*commands.last().unwrap(), MacCommand::CompletePacket);
    }

    #[test]
    fn forced_transmissions_only_after_exhaustion(
        busy_count in 0usize..10,
        seed in 0u64..1000,
    ) {
        let params = CsmaParams::ieee802154_default();
        let outcomes = vec![false; busy_count];
        let commands = drive(params, &outcomes, seed);
        let forced = commands
            .iter()
            .any(|c| matches!(c, MacCommand::BeginTransmit { forced: true }));
        let exhausted = busy_count > usize::from(params.max_csma_backoffs);
        prop_assert_eq!(forced, exhausted, "busy_count={}", busy_count);
    }

    #[test]
    fn backoff_durations_respect_be_cap(
        outcomes in prop::collection::vec(Just(false), 0..8),
        seed in 0u64..1000,
    ) {
        let params = CsmaParams {
            max_csma_backoffs: 8,
            on_failure: CcaFailurePolicy::DropPacket,
            ..CsmaParams::ieee802154_default()
        };
        let commands = drive(params, &outcomes, seed);
        for c in &commands {
            if let MacCommand::SetBackoffTimer(d) = c {
                let units = d.as_nanos() / params.unit_backoff.as_nanos();
                prop_assert!(units < (1 << params.max_be), "backoff {} units", units);
            }
        }
    }
}
