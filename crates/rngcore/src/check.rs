//! A minimal property-test harness: generate random inputs from a
//! deterministic generator, run a property, and shrink any
//! counterexample before reporting it.
//!
//! The in-tree replacement for `proptest`, sized to what the workspace's
//! property tests actually use: ranged scalars, vectors, choices, maps
//! and tuples. Failures print the shrunken input plus the seed; set
//! `NOMC_CHECK_SEED` to replay a run and `NOMC_CHECK_CASES` to change
//! the case count globally.
//!
//! # Examples
//!
//! ```
//! use nomc_rngcore::check::{forall, range};
//!
//! forall("addition_commutes", 64, &range(-1e6..1e6), |&v| {
//!     nomc_rngcore::check!(v + 1.0 == 1.0 + v, "failed for {v}");
//!     Ok(())
//! });
//! ```

use crate::{rngs::StdRng, Rng, SampleUniform, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A boxed shrink proposer: maps a failing value to simpler candidates.
type Shrinker<T> = Box<dyn Fn(&T) -> Vec<T>>;

/// A generator: draws values and proposes shrink candidates.
pub struct G<T> {
    gen: Box<dyn Fn(&mut StdRng) -> T>,
    shrink: Shrinker<T>,
}

impl<T: 'static> G<T> {
    /// Creates a generator with no shrinking.
    pub fn new(gen: impl Fn(&mut StdRng) -> T + 'static) -> Self {
        G {
            gen: Box::new(gen),
            shrink: Box::new(|_| Vec::new()),
        }
    }

    /// Creates a generator with an explicit shrinker.
    pub fn with_shrink(
        gen: impl Fn(&mut StdRng) -> T + 'static,
        shrink: impl Fn(&T) -> Vec<T> + 'static,
    ) -> Self {
        G {
            gen: Box::new(gen),
            shrink: Box::new(shrink),
        }
    }

    /// Maps generated values through `f` (shrinking does not survive the
    /// mapping — candidate inputs cannot be pulled back through `f`).
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> G<U> {
        let gen = self.gen;
        G::new(move |rng| f(gen(rng)))
    }
}

impl<T> G<T> {
    /// Draws one value.
    pub fn sample(&self, rng: &mut StdRng) -> T {
        (self.gen)(rng)
    }
}

/// Uniform values from a half-open range, shrinking toward its start.
pub fn range<T: SampleUniform + Debug + 'static>(r: Range<T>) -> G<T> {
    let (lo, hi) = (r.start, r.end);
    G::with_shrink(
        move |rng| rng.gen_range(lo..hi),
        move |v| T::shrink_toward(lo, *v),
    )
}

/// Uniform values from an inclusive range, shrinking toward its start.
pub fn range_incl<T: SampleUniform + Debug + 'static>(r: std::ops::RangeInclusive<T>) -> G<T> {
    let (lo, hi) = r.into_inner();
    G::with_shrink(
        move |rng| rng.gen_range(lo..=hi),
        move |v| T::shrink_toward(lo, *v),
    )
}

/// Always the same value (the `Just` of proptest).
pub fn just<T: Clone + 'static>(value: T) -> G<T> {
    G::new(move |_| value.clone())
}

/// Uniform booleans, shrinking toward `false`.
pub fn boolean() -> G<bool> {
    G::with_shrink(
        |rng| rng.gen::<bool>(),
        |&v| if v { vec![false] } else { Vec::new() },
    )
}

/// Vectors of `elem` with a length drawn from `len`; shrinks by
/// dropping elements (never below `len.start`) and by shrinking single
/// elements.
pub fn vec_of<T: Clone + 'static>(elem: G<T>, len: Range<usize>) -> G<Vec<T>> {
    let min_len = len.start;
    let elem = std::rc::Rc::new(elem);
    let gen_elem = elem.clone();
    G::with_shrink(
        move |rng| {
            let n = rng.gen_range(len.clone());
            (0..n).map(|_| gen_elem.sample(rng)).collect()
        },
        move |v: &Vec<T>| {
            let mut out = Vec::new();
            // Structural shrinks: halve, drop one element.
            if v.len() / 2 >= min_len && v.len() > 1 {
                out.push(v[..v.len() / 2].to_vec());
            }
            if v.len() > min_len {
                out.push(v[..v.len() - 1].to_vec());
                out.push(v[1..].to_vec());
            }
            // Element-wise shrinks, one position at a time.
            for (i, item) in v.iter().enumerate() {
                for cand in (elem.shrink)(item) {
                    let mut copy = v.clone();
                    copy[i] = cand;
                    out.push(copy);
                }
            }
            out
        },
    )
}

/// Picks one of the given generators uniformly per case (the
/// `prop_oneof!` of proptest). Values do not shrink across branches.
pub fn one_of<T: 'static>(options: Vec<G<T>>) -> G<T> {
    assert!(!options.is_empty(), "one_of needs at least one generator");
    G::new(move |rng| {
        let i = rng.gen_range(0..options.len());
        options[i].sample(rng)
    })
}

/// Pairs two generators; shrinks each side independently.
pub fn zip2<A: Clone + 'static, B: Clone + 'static>(a: G<A>, b: G<B>) -> G<(A, B)> {
    let (ga, sa) = (a.gen, a.shrink);
    let (gb, sb) = (b.gen, b.shrink);
    G {
        gen: Box::new(move |rng| (ga(rng), gb(rng))),
        shrink: Box::new(move |(va, vb): &(A, B)| {
            let mut out = Vec::new();
            for ca in sa(va) {
                out.push((ca, vb.clone()));
            }
            for cb in sb(vb) {
                out.push((va.clone(), cb));
            }
            out
        }),
    }
}

/// Triples three generators; shrinks each component independently.
pub fn zip3<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static>(
    a: G<A>,
    b: G<B>,
    c: G<C>,
) -> G<(A, B, C)> {
    let ab_c = zip2(zip2(a, b), c);
    G {
        gen: Box::new({
            let gen = ab_c.gen;
            move |rng| {
                let ((va, vb), vc) = gen(rng);
                (va, vb, vc)
            }
        }),
        shrink: Box::new(move |(va, vb, vc): &(A, B, C)| {
            (ab_c.shrink)(&((va.clone(), vb.clone()), vc.clone()))
                .into_iter()
                .map(|((a2, b2), c2)| (a2, b2, c2))
                .collect()
        }),
    }
}

/// Quadruples four generators; shrinks each component independently.
pub fn zip4<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static, D: Clone + 'static>(
    a: G<A>,
    b: G<B>,
    c: G<C>,
    d: G<D>,
) -> G<(A, B, C, D)> {
    let ab_cd = zip2(zip2(a, b), zip2(c, d));
    G {
        gen: Box::new({
            let gen = ab_cd.gen;
            move |rng| {
                let ((va, vb), (vc, vd)) = gen(rng);
                (va, vb, vc, vd)
            }
        }),
        shrink: Box::new(move |(va, vb, vc, vd): &(A, B, C, D)| {
            (ab_cd.shrink)(&((va.clone(), vb.clone()), (vc.clone(), vd.clone())))
                .into_iter()
                .map(|((a2, b2), (c2, d2))| (a2, b2, c2, d2))
                .collect()
        }),
    }
}

/// Maximum number of successful shrink steps before reporting.
const MAX_SHRINK_STEPS: usize = 500;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs `prop` against `cases` inputs drawn from `g`, shrinking and
/// reporting the first counterexample.
///
/// Each case draws from an independent fork of the root seed, so a
/// failure replays exactly under `NOMC_CHECK_SEED=<seed>` regardless of
/// how many cases preceded it. `NOMC_CHECK_CASES` overrides `cases`.
///
/// # Panics
///
/// Panics (failing the enclosing test) when the property is falsified.
pub fn forall<T: Debug>(name: &str, cases: u32, g: &G<T>, prop: impl Fn(&T) -> Result<(), String>) {
    let cases = env_u64("NOMC_CHECK_CASES", u64::from(cases)) as u32;
    let seed = env_u64("NOMC_CHECK_SEED", 0x6E6F_6D63);
    let root = StdRng::seed_from_u64(seed);
    let run = |input: &T| -> Result<(), String> {
        match catch_unwind(AssertUnwindSafe(|| prop(input))) {
            Ok(r) => r,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "property panicked".to_string());
                Err(format!("panic: {msg}"))
            }
        }
    };
    for case in 0..cases {
        let mut case_rng = root.fork(u64::from(case));
        let input = g.sample(&mut case_rng);
        let Err(first_msg) = run(&input) else {
            continue;
        };
        // Greedy shrink: take the first candidate that still fails.
        let mut current = input;
        let mut msg = first_msg;
        let mut steps = 0;
        'shrinking: while steps < MAX_SHRINK_STEPS {
            for cand in (g.shrink)(&current) {
                if let Err(m) = run(&cand) {
                    current = cand;
                    msg = m;
                    steps += 1;
                    continue 'shrinking;
                }
            }
            break;
        }
        panic!(
            "property `{name}` falsified at case {case}/{cases} \
             (replay with NOMC_CHECK_SEED={seed}):\n  input: {current:?}\n  error: {msg}\n  \
             ({steps} shrink steps)"
        );
    }
}

/// Asserts a condition inside a [`forall`] property, returning `Err`
/// instead of panicking so the harness can shrink the input.
#[macro_export]
macro_rules! check {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("check failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`forall`] property.
#[macro_export]
macro_rules! check_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err(format!(
                "check_eq failed: {:?} != {:?} ({} vs {})",
                left,
                right,
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counted = std::cell::Cell::new(0u32);
        forall("trivially_true", 32, &range(0u32..100), |_| {
            counted.set(counted.get() + 1);
            Ok(())
        });
        assert_eq!(counted.get(), 32);
    }

    #[test]
    fn failing_property_shrinks_to_boundary() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall("le_50", 64, &range(0u32..100), |&v| {
                crate::check!(v < 50, "{v} not < 50");
                Ok(())
            });
        }));
        let msg = format!("{:?}", result.unwrap_err().downcast_ref::<String>());
        // The minimal counterexample of v<50 over 0..100 is exactly 50.
        assert!(msg.contains("input: 50"), "{msg}");
    }

    #[test]
    fn panics_inside_properties_are_counterexamples_too() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall("no_panic", 64, &range(0u32..10), |&v| {
                assert!(v < 100, "impossible");
                if v > 5 {
                    panic!("boom {v}");
                }
                Ok(())
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn vec_generator_respects_length_and_shrinks() {
        let g = vec_of(range(0u32..10), 2..6);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = g.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
        let candidates = (g.shrink)(&vec![5, 6, 7, 8]);
        assert!(candidates.iter().all(|c| c.len() >= 2));
        assert!(candidates.iter().any(|c| c.len() < 4));
    }

    #[test]
    fn zip_and_one_of_generate() {
        let g = zip3(
            range(0u32..4),
            boolean(),
            one_of(vec![just(1u8), just(2u8)]),
        );
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let (a, _b, c) = g.sample(&mut rng);
            assert!(a < 4);
            assert!(c == 1 || c == 2);
        }
    }

    #[test]
    fn deterministic_per_case_forking() {
        let g = range(0u64..1_000_000);
        let root = StdRng::seed_from_u64(0x6E6F_6D63);
        let a = g.sample(&mut root.fork(3));
        let b = g.sample(&mut root.fork(3));
        assert_eq!(a, b);
    }
}
