//! The workspace's deterministic generator core.
//!
//! Experiments must reproduce bit-identically across machines and
//! toolchains, so the simulator uses its own xoshiro256** core (public
//! domain algorithm by Blackman & Vigna) seeded via splitmix64, exposed
//! through the in-tree [`RngCore`] trait so all of this crate's
//! distributions work on top of it.

use crate::{RngCore, SeedableRng};

/// xoshiro256** PRNG.
///
/// # Examples
///
/// ```
/// use nomc_rngcore::{Rng, SeedableRng, Xoshiro256StarStar};
///
/// let mut a = Xoshiro256StarStar::seed_from_u64(7);
/// let mut b = Xoshiro256StarStar::seed_from_u64(7);
/// let xs: Vec<u32> = (0..4).map(|_| a.gen()).collect();
/// let ys: Vec<u32> = (0..4).map(|_| b.gen()).collect();
/// assert_eq!(xs, ys);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator from a raw 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (a fixed point of the generator).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
        Xoshiro256StarStar { s }
    }

    /// The raw 256-bit state, suitable for [`Xoshiro256StarStar::from_state`].
    ///
    /// Capturing and later restoring the state resumes the stream at
    /// exactly the draw it was paused on, which is what checkpoint/
    /// restore layers need for bit-identical replay.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Derives an independent stream for a sub-component (e.g. one node),
    /// so adding a node does not perturb the draws of the others.
    pub fn fork(&self, stream: u64) -> Self {
        // Mix the current state with the stream id through splitmix64.
        let mut seed = self.s[0] ^ self.s[2].rotate_left(17) ^ stream.wrapping_mul(0x9E37);
        let mut s = [0u64; 4];
        for w in &mut s {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *w = splitmix64(seed.wrapping_add(stream));
        }
        if s.iter().all(|&w| w == 0) {
            s[0] = 1;
        }
        Xoshiro256StarStar { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The splitmix64 mixing function, used for seed expansion.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RngCore for Xoshiro256StarStar {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl SeedableRng for Xoshiro256StarStar {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, w) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *w = u64::from_le_bytes(bytes);
        }
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut s = [0u64; 4];
        let mut z = state;
        for w in &mut s {
            *w = splitmix64(z);
            z = *w;
        }
        Xoshiro256StarStar::from_state(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn reference_sequence_is_stable() {
        // Pin the exact output so cross-version regressions are caught.
        let mut rng = Xoshiro256StarStar::seed_from_u64(0);
        let seq: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut rng2 = Xoshiro256StarStar::seed_from_u64(0);
        let seq2: Vec<u64> = (0..4).map(|_| rng2.next_u64()).collect();
        assert_eq!(seq, seq2);
        assert!(seq.windows(2).all(|w| w[0] != w[1]), "degenerate output");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn forks_are_independent_of_sibling_count() {
        let root = Xoshiro256StarStar::seed_from_u64(99);
        let mut f3a = root.fork(3);
        let mut f3b = root.fork(3);
        assert_eq!(f3a.next_u64(), f3b.next_u64());
        let mut f4 = root.fork(4);
        assert_ne!(root.fork(3).next_u64(), f4.next_u64());
    }

    #[test]
    fn uniform_range_looks_uniform() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let n = 60_000;
        let mut buckets = [0u32; 6];
        for _ in 0..n {
            buckets[rng.gen_range(0..6usize)] += 1;
        }
        for &b in &buckets {
            let frac = f64::from(b) / n as f64;
            assert!((frac - 1.0 / 6.0).abs() < 0.01, "{frac}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256StarStar::from_state([0; 4]);
    }
}
