//! Uniform sampling over ranges, unbiased for integers (Lemire's
//! multiply-shift rejection method) and precision-preserving for floats.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Draws a uniform value in `[0, n)` without modulo bias.
///
/// Lemire's method: one 64×64→128 multiply, with a cheap rejection loop
/// entered only for the tiny biased fraction of the word space.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(n);
    if (m as u64) < n {
        let threshold = n.wrapping_neg() % n;
        while (m as u64) < threshold {
            m = u128::from(rng.next_u64()) * u128::from(n);
        }
    }
    (m >> 64) as u64
}

/// A type uniformly samplable from a sub-range of its domain.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;

    /// Shrink candidates between `low` and `value`, ordered most-reduced
    /// first. Used by [`mod@crate::check`] to minimize counterexamples while
    /// staying inside the generator's range.
    fn shrink_toward(low: Self, value: Self) -> Vec<Self>;
}

macro_rules! impl_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let offset = if inclusive {
                    assert!(low <= high, "empty range {low}..={high}");
                    let span = (high.wrapping_sub(low) as u64).wrapping_add(1);
                    if span == 0 {
                        // The range covers the whole 64-bit domain.
                        rng.next_u64()
                    } else {
                        uniform_below(rng, span)
                    }
                } else {
                    assert!(low < high, "empty range {low}..{high}");
                    uniform_below(rng, high.wrapping_sub(low) as u64)
                };
                low.wrapping_add(offset as $t)
            }

            fn shrink_toward(low: Self, value: Self) -> Vec<Self> {
                if value == low {
                    return Vec::new();
                }
                // Bisect toward `low`: propose value - d/2, value - d/4, ...
                // down to value - 1, plus `low` itself, so greedy re-running
                // converges on the boundary of the failing region.
                let mut out = vec![low];
                let mut step = value.wrapping_sub(low) as u64 / 2;
                while step > 0 {
                    let cand = low.wrapping_add((value.wrapping_sub(low) as u64 - step) as $t);
                    if cand != low && cand != value && !out.contains(&cand) {
                        out.push(cand);
                    }
                    step /= 2;
                }
                out
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        assert!(
            low.is_finite() && high.is_finite(),
            "float range bounds must be finite ({low}..{high})"
        );
        if inclusive {
            assert!(low <= high, "empty range {low}..={high}");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
            (low + (high - low) * unit).clamp(low, high)
        } else {
            assert!(low < high, "empty range {low}..{high}");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let v = low + (high - low) * unit;
            // Guard against `low + span * u` rounding up to `high`.
            if v < high {
                v.max(low)
            } else {
                high.next_down().max(low)
            }
        }
    }

    fn shrink_toward(low: Self, value: Self) -> Vec<Self> {
        if value == low || !value.is_finite() {
            return Vec::new();
        }
        let span = value - low;
        let mut out = vec![low];
        let mut frac = 0.5;
        for _ in 0..16 {
            let cand = value - span * frac;
            if cand.is_finite() && cand != low && cand != value && !out.contains(&cand) {
                out.push(cand);
            }
            frac /= 2.0;
        }
        out
    }
}

/// A range form accepted by [`crate::Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_range(rng, low, high, true)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Rng, SeedableRng, Xoshiro256StarStar};

    #[test]
    fn integer_ranges_stay_in_bounds() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let n = 60_000;
        let mut buckets = [0u32; 6];
        for _ in 0..n {
            buckets[rng.gen_range(0..6usize)] += 1;
        }
        for &b in &buckets {
            let frac = f64::from(b) / f64::from(n);
            assert!((frac - 1.0 / 6.0).abs() < 0.01, "{frac}");
        }
    }

    #[test]
    fn inclusive_range_reaches_both_ends() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match rng.gen_range(0..=3u8) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn full_u64_domain_supported() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        // Must not hang or panic on the degenerate full-width span.
        let _ = rng.gen_range(0..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn float_half_open_excludes_high() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&v), "{v}");
        }
        // A denormal-to-one range stays strictly positive (shadowing's
        // Box-Muller guard depends on this).
        for _ in 0..1000 {
            let v = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn float_inclusive_stays_in_bounds() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        for _ in 0..10_000 {
            let v = rng.gen_range(2.0f64..=3.0);
            assert!((2.0..=3.0).contains(&v), "{v}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let _ = rng.gen_range(5..5u32);
    }

    #[test]
    fn shrink_candidates_respect_low() {
        use crate::SampleUniform;
        assert_eq!(u32::shrink_toward(3, 3), Vec::<u32>::new());
        let c = u32::shrink_toward(0, 100);
        assert!(c.contains(&0) && c.contains(&50));
        let f = f64::shrink_toward(-10.0, 10.0);
        assert!(f.contains(&-10.0) && f.contains(&0.0));
    }
}
