//! # nomc-rngcore
//!
//! In-tree deterministic random numbers: the trait surface the workspace
//! previously consumed from the `rand` crate, reimplemented so the
//! simulator builds hermetically (no crates-io access) and produces
//! bit-identical streams on every machine and toolchain.
//!
//! The pieces:
//!
//! * [`RngCore`] / [`SeedableRng`] — the generator contract.
//! * [`Rng`] — the ergonomic extension (`gen`, `gen_range`, `gen_bool`),
//!   blanket-implemented for every [`RngCore`].
//! * [`Xoshiro256StarStar`] — the workspace's one true generator
//!   (public-domain algorithm by Blackman & Vigna, seeded via
//!   splitmix64), re-exported as [`rngs::StdRng`] so call sites read
//!   like the `rand` API they replaced.
//! * [`dist`] — the distributions the simulator actually uses
//!   (standard normal via Box-Muller).
//! * [`mod@check`] — a minimal property-test harness (generate / shrink /
//!   rerun) replacing `proptest`.
//!
//! # Examples
//!
//! ```
//! use nomc_rngcore::{Rng, SeedableRng, rngs::StdRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! let xs: Vec<u32> = (0..4).map(|_| a.gen()).collect();
//! let ys: Vec<u32> = (0..4).map(|_| b.gen()).collect();
//! assert_eq!(xs, ys);
//! let die = a.gen_range(1..=6u32);
//! assert!((1..=6).contains(&die));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod dist;
mod uniform;
mod xoshiro;

pub use uniform::{SampleRange, SampleUniform};
pub use xoshiro::{splitmix64, Xoshiro256StarStar};

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard deterministic generator.
    ///
    /// Unlike `rand`'s ChaCha-based `StdRng`, this is xoshiro256** — the
    /// same generator the simulator engine uses — so *every* random
    /// draw in the repository flows through one audited, portable core.
    pub type StdRng = crate::Xoshiro256StarStar;
}

/// The raw generator contract: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniform bits (upper half of [`next_u64`]
    /// by default — xoshiro's upper bits are its strongest).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Creates a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed (expanded internally so
    /// small seeds still yield well-mixed state).
    fn seed_from_u64(state: u64) -> Self;
}

/// A value samplable uniformly from all of its domain (`rng.gen()`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        (rng.next_u64() >> 63) == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl StandardSample for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ergonomic sampling methods, blanket-implemented for every
/// [`RngCore`] — the drop-in replacement for `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from the type's whole domain
    /// (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (or, for floats, not finite).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1], got {p}"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count() as f64;
        assert!((hits / n as f64 - 0.3).abs() < 0.01);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gen_bool_rejects_bad_p() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let _ = rng.gen_bool(1.5);
    }

    #[test]
    fn unsized_rng_receiver_works() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = rngs::StdRng::seed_from_u64(4);
        assert!(draw(&mut rng) < 100);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut rng = rngs::StdRng::seed_from_u64(5);
        let mut copy = rng.clone();
        let via_ref = {
            let r = &mut rng;
            fn take<R: RngCore>(mut r: R) -> u64 {
                r.next_u64()
            }
            take(r)
        };
        assert_eq!(via_ref, copy.next_u64());
    }
}
