//! Non-uniform distributions used by the simulator.

use crate::Rng;

/// Samples a standard normal deviate via the Box-Muller transform.
///
/// The in-tree replacement for `rand_distr::StandardNormal`: exact,
/// branch-light and more than fast enough for per-packet shadowing
/// draws.
///
/// # Examples
///
/// ```
/// use nomc_rngcore::{dist::standard_normal, SeedableRng, rngs::StdRng};
/// let mut rng = StdRng::seed_from_u64(1);
/// let z = standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard u1 away from 0 so ln() stays finite.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rngs::StdRng, SeedableRng};

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn tail_mass_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let beyond_2sigma = (0..n)
            .filter(|_| standard_normal(&mut rng).abs() > 2.0)
            .count() as f64
            / n as f64;
        // P(|Z| > 2) ≈ 4.55 %.
        assert!((beyond_2sigma - 0.0455).abs() < 0.01, "{beyond_2sigma}");
    }
}
