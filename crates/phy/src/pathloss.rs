//! Large-scale path-loss models.
//!
//! The paper's testbed is indoor (lab benches, office rooms, a large random
//! region for Case III). We provide the classic free-space model and the
//! log-distance model with configurable exponent; per-packet randomness is
//! layered on top by [`crate::shadowing`].

use nomc_units::{Db, Megahertz, Meters};

/// A deterministic large-scale path-loss model.
///
/// Implementors return the mean attenuation for a link of a given length.
/// Per-packet variation is *not* part of this trait — it is sampled
/// separately so that calibration of the mean and of the spread stay
/// independent.
pub trait PathLoss: Send + Sync {
    /// Mean attenuation over a link of length `distance`.
    ///
    /// Distances below the model's reference distance are clamped to it, so
    /// colocated nodes get a finite, maximal coupling instead of infinite
    /// gain.
    fn loss(&self, distance: Meters) -> Db;
}

/// Free-space (Friis) path loss.
///
/// `L(d) = 20 log10(d) + 20 log10(f) + 32.44` with `d` in km and `f` in
/// MHz; at 2.44 GHz the 1 m reference loss is ≈ 40.2 dB.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreeSpace {
    /// Carrier frequency.
    freq_mhz: Megahertz,
    /// Minimum modelled distance (defaults to 0.1 m).
    min_distance: Meters,
}

nomc_json::json_struct!(FreeSpace {
    freq_mhz: Megahertz,
    min_distance: Meters,
});

impl FreeSpace {
    /// Free-space loss at carrier frequency `freq`.
    ///
    /// # Panics
    ///
    /// Panics if `freq` is not strictly positive.
    pub fn new(freq: Megahertz) -> Self {
        assert!(freq.value() > 0.0, "carrier frequency must be positive");
        FreeSpace {
            freq_mhz: freq,
            min_distance: Meters::new(0.1),
        }
    }

    /// The 2.44 GHz ISM-band instance used throughout the reproduction.
    pub fn ism_2_4ghz() -> Self {
        FreeSpace::new(Megahertz::new(2440.0))
    }
}

impl PathLoss for FreeSpace {
    fn loss(&self, distance: Meters) -> Db {
        let d_km = distance.max(self.min_distance).value() / 1000.0;
        Db::new(20.0 * d_km.log10() + 20.0 * self.freq_mhz.value().log10() + 32.44)
    }
}

/// Log-distance path loss: `L(d) = L0 + 10·n·log10(d / d0)`.
///
/// `L0` is the loss at reference distance `d0`; `n` is the path-loss
/// exponent (2 in free space, 2.5-4 indoors).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogDistance {
    reference_loss: Db,
    reference_distance: Meters,
    exponent: f64,
}

nomc_json::json_struct!(LogDistance {
    reference_loss: Db,
    reference_distance: Meters,
    exponent: f64,
});

impl LogDistance {
    /// Creates a log-distance model.
    ///
    /// # Panics
    ///
    /// Panics if `exponent` is not positive or `reference_distance` is zero.
    pub fn new(reference_loss: Db, reference_distance: Meters, exponent: f64) -> Self {
        assert!(exponent > 0.0, "path-loss exponent must be positive");
        assert!(
            reference_distance.value() > 0.0,
            "reference distance must be positive"
        );
        LogDistance {
            reference_loss,
            reference_distance,
            exponent,
        }
    }

    /// The indoor 2.4 GHz instance used by the reproduction's testbed-like
    /// scenarios: 40.2 dB at 1 m, exponent 3.0.
    ///
    /// With 0 dBm transmitters this puts a 2 m link at ≈ −49 dBm received
    /// power and an 8 m cross-room interferer at ≈ −67 dBm — the regime the
    /// paper's Figs. 6-10 sweep over.
    pub fn indoor_2_4ghz() -> Self {
        LogDistance::new(Db::new(40.2), Meters::new(1.0), 3.0)
    }

    /// The path-loss exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Loss at the reference distance.
    pub fn reference_loss(&self) -> Db {
        self.reference_loss
    }
}

impl PathLoss for LogDistance {
    fn loss(&self, distance: Meters) -> Db {
        let d = distance.max(self.reference_distance);
        let ratio = d.value() / self.reference_distance.value();
        self.reference_loss + Db::new(10.0 * self.exponent * ratio.log10())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_space_reference_value() {
        // Classic check: 2440 MHz at 1 m ≈ 40.2 dB.
        let l = FreeSpace::ism_2_4ghz().loss(Meters::new(1.0));
        assert!((l.value() - 40.2).abs() < 0.1, "got {l}");
    }

    #[test]
    fn free_space_doubles_distance_adds_6db() {
        let m = FreeSpace::ism_2_4ghz();
        let d1 = m.loss(Meters::new(4.0));
        let d2 = m.loss(Meters::new(8.0));
        assert!(((d2 - d1).value() - 6.02).abs() < 0.01);
    }

    #[test]
    fn log_distance_exponent_scales_slope() {
        let m = LogDistance::new(Db::new(40.0), Meters::new(1.0), 3.0);
        let d1 = m.loss(Meters::new(1.0));
        let d10 = m.loss(Meters::new(10.0));
        assert!(((d10 - d1).value() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn distances_below_reference_clamp() {
        let m = LogDistance::indoor_2_4ghz();
        assert_eq!(m.loss(Meters::new(0.0)), m.loss(Meters::new(1.0)));
        assert_eq!(m.loss(Meters::new(0.5)), m.loss(Meters::new(1.0)));
    }

    #[test]
    fn loss_is_monotone_in_distance() {
        let m = LogDistance::indoor_2_4ghz();
        let mut prev = m.loss(Meters::new(1.0));
        for d in [2.0, 3.0, 5.0, 8.0, 13.0, 21.0] {
            let l = m.loss(Meters::new(d));
            assert!(l > prev);
            prev = l;
        }
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn zero_exponent_rejected() {
        let _ = LogDistance::new(Db::new(40.0), Meters::new(1.0), 0.0);
    }

    #[test]
    fn trait_object_usable() {
        let models: Vec<Box<dyn PathLoss>> = vec![
            Box::new(FreeSpace::ism_2_4ghz()),
            Box::new(LogDistance::indoor_2_4ghz()),
        ];
        for m in &models {
            assert!(m.loss(Meters::new(5.0)).value() > 0.0);
        }
    }
}
