//! Spectral coupling between channels: the adjacent-channel-rejection
//! (ACR) curve.
//!
//! This curve is the physical heart of the paper. An 802.15.4 O-QPSK
//! signal occupies roughly 2 MHz; a receiver's channel filter attenuates
//! energy whose centre frequency is offset from its own. The paper's
//! Fig. 4 (collided-packet receive rate vs. CFD) is the composition of
//! this rejection curve with the steep DSSS BER curve; the default table
//! here is calibrated so that the simulated Fig. 4 reproduces the measured
//! one (CPRR ≈ 100 % at CFD ≥ 4 MHz, ≈ 97 % at 3 MHz, ≈ 70 % at 2 MHz,
//! < 20 % at 1 MHz, given the paper's testbed-like geometry).

use nomc_units::{Db, Megahertz};

/// Receiver channel-filter rejection as a function of centre-frequency
/// distance (CFD).
///
/// Monotone non-decreasing, piecewise-linear between sample points; CFDs
/// beyond the last point use the last rejection (the "orthogonal" floor).
///
/// # Examples
///
/// ```
/// use nomc_phy::coupling::AcrCurve;
/// use nomc_units::Megahertz;
///
/// let acr = AcrCurve::cc2420_calibrated();
/// assert_eq!(acr.rejection(Megahertz::new(0.0)).value(), 0.0);
/// // Rejection grows with CFD:
/// assert!(acr.rejection(Megahertz::new(3.0)) > acr.rejection(Megahertz::new(2.0)));
/// // Far channels are orthogonal:
/// assert_eq!(
///     acr.rejection(Megahertz::new(9.0)),
///     acr.rejection(Megahertz::new(25.0))
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AcrCurve {
    /// `(cfd_mhz, rejection_db)` pairs, strictly increasing in CFD.
    points: Vec<(f64, f64)>,
}

nomc_json::json_struct!(AcrCurve {
    points: Vec<(f64, f64)>,
});

impl AcrCurve {
    /// The default curve, calibrated against the paper's Fig. 4 with the
    /// CC2420 datasheet as a sanity bound (adjacent-channel rejection
    /// ≈ 30 dB at 5 MHz, ≈ 53 dB alternate-channel).
    ///
    /// | CFD (MHz) | 0 | 1   | 2  | 3  | 4  | 5  | 6  | 7  | 8  | ≥9 |
    /// |-----------|---|-----|----|----|----|----|----|----|----|----|
    /// | rejection | 0 | 1.5 | 10 | 20 | 28 | 33 | 38 | 42 | 46 | 50 |
    pub fn cc2420_calibrated() -> Self {
        AcrCurve::from_points(vec![
            (0.0, 0.0),
            (1.0, 1.5),
            (2.0, 10.0),
            (3.0, 20.0),
            (4.0, 28.0),
            (5.0, 33.0),
            (6.0, 38.0),
            (7.0, 42.0),
            (8.0, 46.0),
            (9.0, 50.0),
        ])
        .expect("built-in table is valid")
    }

    /// An 802.11b-like rejection curve, for the paper's Fig. 2 contrast
    /// experiment: 11 MHz-wide DSSS signals on a 5 MHz channel grid
    /// overlap heavily, so rejection grows far more slowly with CFD than
    /// an 802.15.4 channel filter's (a packet three channels — 15 MHz —
    /// away still couples strongly enough to capture the correlator,
    /// per Mishra et al.).
    pub fn dot11b_like() -> Self {
        AcrCurve::from_points(vec![
            (0.0, 0.0),
            (5.0, 2.0),
            (10.0, 8.0),
            (15.0, 18.0),
            (20.0, 35.0),
            (25.0, 50.0),
        ])
        .expect("built-in table is valid")
    }

    /// An idealized perfectly-orthogonal curve: zero rejection co-channel,
    /// infinite (300 dB) rejection everywhere else. Useful as an ablation
    /// baseline where inter-channel interference does not exist.
    pub fn ideal_orthogonal() -> Self {
        AcrCurve::from_points(vec![(0.0, 0.0), (0.5, 300.0)]).expect("valid")
    }

    /// Builds a curve from `(cfd_mhz, rejection_db)` sample points.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than two points are given, if CFDs are not
    /// strictly increasing starting at 0, or if rejections are negative or
    /// decreasing (a channel filter cannot amplify off-channel energy).
    pub fn from_points(points: Vec<(f64, f64)>) -> Result<Self, AcrCurveError> {
        if points.len() < 2 {
            return Err(AcrCurveError::TooFewPoints(points.len()));
        }
        if points[0].0.abs().to_bits() != 0 {
            return Err(AcrCurveError::MustStartAtZero(points[0].0));
        }
        for w in points.windows(2) {
            let ((c0, r0), (c1, r1)) = (w[0], w[1]);
            if c1 <= c0 {
                return Err(AcrCurveError::NonIncreasingCfd(c0, c1));
            }
            if r1 < r0 {
                return Err(AcrCurveError::DecreasingRejection(c1));
            }
        }
        if points
            .iter()
            .any(|&(c, r)| !c.is_finite() || !r.is_finite() || r < 0.0)
        {
            return Err(AcrCurveError::InvalidValue);
        }
        Ok(AcrCurve { points })
    }

    /// Rejection at the given centre-frequency distance.
    ///
    /// Piecewise-linear between sample points; clamped to the final value
    /// beyond the table.
    pub fn rejection(&self, cfd: Megahertz) -> Db {
        let c = cfd.value().abs();
        let last = self.points.len() - 1;
        if c >= self.points[last].0 {
            return Db::new(self.points[last].1);
        }
        // Find the bracketing segment. The table is tiny (≈10 points), so a
        // linear scan beats binary search in practice.
        for w in self.points.windows(2) {
            let ((c0, r0), (c1, r1)) = (w[0], w[1]);
            if c >= c0 && c <= c1 {
                let t = (c - c0) / (c1 - c0);
                return Db::new(r0 + t * (r1 - r0));
            }
        }
        unreachable!("cfd {c} not bracketed by a validated table");
    }

    /// The linear power fraction that leaks through the filter at `cfd`
    /// (i.e. `10^(-rejection/10)`), convenient for interference sums.
    pub fn leakage_factor(&self, cfd: Megahertz) -> f64 {
        (-self.rejection(cfd)).to_linear()
    }

    /// The CFD beyond which rejection saturates (the "orthogonality"
    /// distance of this curve).
    pub fn saturation_cfd(&self) -> Megahertz {
        Megahertz::new(self.points[self.points.len() - 1].0)
    }

    /// The sample points `(cfd_mhz, rejection_db)` defining the curve.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

impl Default for AcrCurve {
    fn default() -> Self {
        AcrCurve::cc2420_calibrated()
    }
}

/// Errors constructing an [`AcrCurve`].
#[derive(Debug, Clone, PartialEq)]
pub enum AcrCurveError {
    /// Fewer than two sample points were provided.
    TooFewPoints(usize),
    /// The first sample point is not at CFD = 0.
    MustStartAtZero(f64),
    /// CFDs are not strictly increasing.
    NonIncreasingCfd(f64, f64),
    /// Rejection decreases with CFD.
    DecreasingRejection(f64),
    /// A non-finite or negative value was provided.
    InvalidValue,
}

impl std::fmt::Display for AcrCurveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcrCurveError::TooFewPoints(n) => {
                write!(f, "ACR curve needs at least two points, got {n}")
            }
            AcrCurveError::MustStartAtZero(c) => {
                write!(f, "ACR curve must start at CFD 0, got {c}")
            }
            AcrCurveError::NonIncreasingCfd(a, b) => {
                write!(
                    f,
                    "ACR curve CFDs must be strictly increasing ({a} then {b})"
                )
            }
            AcrCurveError::DecreasingRejection(c) => {
                write!(f, "ACR rejection decreases at CFD {c}")
            }
            AcrCurveError::InvalidValue => write!(f, "ACR curve contains an invalid value"),
        }
    }
}

impl std::error::Error for AcrCurveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_calibrated() {
        assert_eq!(AcrCurve::default(), AcrCurve::cc2420_calibrated());
    }

    #[test]
    fn cochannel_has_zero_rejection() {
        let acr = AcrCurve::cc2420_calibrated();
        assert_eq!(acr.rejection(Megahertz::new(0.0)), Db::ZERO);
    }

    #[test]
    fn rejection_is_monotone() {
        let acr = AcrCurve::cc2420_calibrated();
        let mut prev = Db::new(-1.0);
        for tenths in 0..=120 {
            let r = acr.rejection(Megahertz::new(tenths as f64 / 10.0));
            assert!(r >= prev, "not monotone at {tenths} tenths");
            prev = r;
        }
    }

    #[test]
    fn interpolation_between_points() {
        let acr = AcrCurve::cc2420_calibrated();
        // Halfway between (2,10) and (3,20) is 15 dB.
        let mid = acr.rejection(Megahertz::new(2.5));
        assert!((mid.value() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn saturates_beyond_table() {
        let acr = AcrCurve::cc2420_calibrated();
        assert_eq!(acr.rejection(Megahertz::new(9.0)), Db::new(50.0));
        assert_eq!(acr.rejection(Megahertz::new(40.0)), Db::new(50.0));
        assert_eq!(acr.saturation_cfd(), Megahertz::new(9.0));
    }

    #[test]
    fn leakage_factor_matches_rejection() {
        let acr = AcrCurve::cc2420_calibrated();
        let f = acr.leakage_factor(Megahertz::new(3.0));
        assert!(
            (f - 0.01).abs() < 1e-9,
            "20 dB rejection = 1% leakage, got {f}"
        );
    }

    #[test]
    fn ideal_orthogonal_kills_offchannel() {
        let acr = AcrCurve::ideal_orthogonal();
        assert_eq!(acr.rejection(Megahertz::new(0.0)), Db::ZERO);
        assert!(acr.leakage_factor(Megahertz::new(1.0)) < 1e-29);
    }

    #[test]
    fn dot11b_curve_is_flatter_than_cc2420() {
        let wifi = AcrCurve::dot11b_like();
        let zig = AcrCurve::cc2420_calibrated();
        for mhz in [3.0, 5.0, 10.0, 15.0] {
            assert!(
                wifi.rejection(Megahertz::new(mhz)) < zig.rejection(Megahertz::new(mhz)),
                "at {mhz} MHz"
            );
        }
    }

    #[test]
    fn rejects_bad_tables() {
        assert_eq!(
            AcrCurve::from_points(vec![(0.0, 0.0)]),
            Err(AcrCurveError::TooFewPoints(1))
        );
        assert_eq!(
            AcrCurve::from_points(vec![(1.0, 0.0), (2.0, 1.0)]),
            Err(AcrCurveError::MustStartAtZero(1.0))
        );
        assert_eq!(
            AcrCurve::from_points(vec![(0.0, 0.0), (0.0, 1.0)]),
            Err(AcrCurveError::NonIncreasingCfd(0.0, 0.0))
        );
        assert_eq!(
            AcrCurve::from_points(vec![(0.0, 5.0), (1.0, 1.0)]),
            Err(AcrCurveError::DecreasingRejection(1.0))
        );
    }

    #[test]
    fn error_display_nonempty() {
        let e = AcrCurve::from_points(vec![]).unwrap_err();
        assert!(!e.to_string().is_empty());
    }
}
