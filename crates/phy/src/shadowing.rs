//! Per-packet log-normal shadowing.
//!
//! Real testbed links fluctuate packet-to-packet (multipath fading,
//! people moving, crystal drift). We model this as a zero-mean Gaussian
//! term in the dB domain, sampled independently per (transmitter,
//! receiver, packet) path. This spread is what turns the razor-sharp
//! O-QPSK BER cliff into the paper's smooth measured CPRR-vs-CFD curve
//! (Fig. 4): without it, collisions would flip from 0 % to 100 % received
//! within ~2 dB of geometry change.

use nomc_rngcore::Rng;
use nomc_units::Db;

/// A log-normal shadowing model: zero-mean Gaussian in dB with standard
/// deviation `sigma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shadowing {
    sigma_db: Db,
}

nomc_json::json_struct!(Shadowing { sigma_db: Db });

impl Shadowing {
    /// Creates a shadowing model with the given standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(sigma: Db) -> Self {
        let raw = sigma.value();
        assert!(
            raw.is_finite() && raw >= 0.0,
            "shadowing sigma must be finite and non-negative, got {raw}"
        );
        Shadowing { sigma_db: sigma }
    }

    /// No shadowing (deterministic propagation); useful in unit tests and
    /// the `ablation_shadowing` bench.
    pub fn disabled() -> Self {
        Shadowing::new(Db::ZERO)
    }

    /// The calibrated default: σ = 4 dB (indoor 2.4 GHz, matches the
    /// paper's Fig. 4 transition widths).
    pub fn indoor_default() -> Self {
        Shadowing::new(Db::new(4.0))
    }

    /// The standard deviation in dB.
    pub fn sigma_db(&self) -> f64 {
        self.sigma_db.value()
    }

    /// Draws one shadowing term.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Db {
        if self.sigma_db == Db::ZERO {
            return Db::ZERO;
        }
        Db::new(self.sigma_db.value() * standard_normal(rng))
    }
}

impl Default for Shadowing {
    fn default() -> Self {
        Shadowing::indoor_default()
    }
}

/// Samples a standard normal deviate via the Box-Muller transform.
///
/// Re-exported from [`nomc_rngcore::dist`], which hosts the single
/// Box-Muller implementation used across the workspace.
pub use nomc_rngcore::dist::standard_normal;

#[cfg(test)]
mod tests {
    use super::*;
    use nomc_rngcore::{rngs::StdRng, SeedableRng};

    #[test]
    fn disabled_is_exact_zero() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = Shadowing::disabled();
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), Db::ZERO);
        }
    }

    #[test]
    fn sample_moments_match() {
        let mut rng = StdRng::seed_from_u64(42);
        let s = Shadowing::new(Db::new(4.0));
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| s.sample(&mut rng).value()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 4.0).abs() < 0.05, "sigma {}", var.sqrt());
    }

    #[test]
    fn standard_normal_tail_mass() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let beyond_2sigma = (0..n)
            .filter(|_| standard_normal(&mut rng).abs() > 2.0)
            .count() as f64
            / n as f64;
        // P(|Z| > 2) ≈ 4.55 %.
        assert!((beyond_2sigma - 0.0455).abs() < 0.01, "{beyond_2sigma}");
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn negative_sigma_rejected() {
        let _ = Shadowing::new(Db::new(-1.0));
    }

    #[test]
    fn default_is_indoor() {
        assert_eq!(Shadowing::default().sigma_db(), 4.0);
    }
}
