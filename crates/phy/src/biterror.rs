//! Sampling concrete bit errors for a frame segment.
//!
//! Given a segment of `n` bits experiencing a constant BER `p`, the number
//! of bit errors is Binomial(n, p). Frames are ~1000 bits and simulations
//! push millions of segments, so we avoid per-bit Bernoulli draws:
//!
//! * tiny `n·p` → Poisson-style inversion on the binomial pmf,
//! * large `n·p` → Gaussian approximation with continuity correction.
//!
//! Error *positions* (needed by the packet-recovery experiments,
//! Figs. 28-29) are sampled uniformly without replacement only when the
//! caller asks for them.

use nomc_rngcore::Rng;

/// Samples the number of bit errors in a segment of `n` bits with
/// bit-error rate `p`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use nomc_rngcore::SeedableRng;
/// let mut rng = nomc_rngcore::rngs::StdRng::seed_from_u64(1);
/// let errs = nomc_phy::biterror::sample_bit_errors(&mut rng, 1000, 0.0);
/// assert_eq!(errs, 0);
/// ```
pub fn sample_bit_errors<R: Rng + ?Sized>(rng: &mut R, n: u32, p: f64) -> u32 {
    assert!((0.0..=1.0).contains(&p), "BER out of range: {p}");
    // Exact endpoint tests via bits (see DESIGN.md §8): `p` is a
    // validated probability, so only ±0 and exactly 1.0 short-circuit.
    if n == 0 || p.abs().to_bits() == 0 {
        return 0;
    }
    if p.to_bits() == f64::to_bits(1.0) {
        return n;
    }
    let mean = f64::from(n) * p;
    if mean < 30.0 {
        binomial_inversion(rng, n, p)
    } else {
        binomial_gaussian(rng, n, p)
    }
}

/// Samples `k` distinct bit positions in `[0, n)`, ascending.
///
/// Used to place the errors of a corrupted segment for recovery analysis.
/// For the small `k` regime this is rejection sampling into a sorted vec;
/// if `k` exceeds `n/2` we sample the complement instead.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_error_positions<R: Rng + ?Sized>(rng: &mut R, n: u32, k: u32) -> Vec<u32> {
    assert!(k <= n, "cannot place {k} errors in {n} bits");
    if k == 0 {
        return Vec::new();
    }
    if k == n {
        return (0..n).collect();
    }
    if k <= n / 2 {
        distinct_uniform(rng, n, k)
    } else {
        // Sample the complement and invert.
        let excluded = distinct_uniform(rng, n, n - k);
        let mut out = Vec::with_capacity(k as usize);
        let mut ex = excluded.iter().copied().peekable();
        for i in 0..n {
            if ex.peek() == Some(&i) {
                ex.next();
            } else {
                out.push(i);
            }
        }
        out
    }
}

/// `k` distinct values in `[0, n)`, ascending, `k ≤ n/2 + 1`.
fn distinct_uniform<R: Rng + ?Sized>(rng: &mut R, n: u32, k: u32) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::with_capacity(k as usize);
    while out.len() < k as usize {
        let v = rng.gen_range(0..n);
        if let Err(pos) = out.binary_search(&v) {
            out.insert(pos, v);
        }
    }
    out
}

/// Binomial sampling by pmf inversion (exact; efficient for small mean).
fn binomial_inversion<R: Rng + ?Sized>(rng: &mut R, n: u32, p: f64) -> u32 {
    // Work with q = min(p, 1-p) and mirror at the end for stability.
    let mirrored = p > 0.5;
    let q = if mirrored { 1.0 - p } else { p };
    let u: f64 = rng.gen();
    let ratio = q / (1.0 - q);
    // pmf(0) = (1-q)^n computed in log-domain.
    let mut pmf = (f64::from(n) * (1.0 - q).ln()).exp();
    let mut cdf = pmf;
    let mut k: u32 = 0;
    while cdf < u && k < n {
        k += 1;
        pmf *= ratio * f64::from(n - k + 1) / f64::from(k);
        cdf += pmf;
        if pmf < 1e-300 {
            break;
        }
    }
    if mirrored {
        n - k
    } else {
        k
    }
}

/// Binomial sampling by Gaussian approximation (large mean).
fn binomial_gaussian<R: Rng + ?Sized>(rng: &mut R, n: u32, p: f64) -> u32 {
    let mean = f64::from(n) * p;
    let sd = (f64::from(n) * p * (1.0 - p)).sqrt();
    let z = crate::shadowing::standard_normal(rng);
    (mean + sd * z + 0.5).clamp(0.0, f64::from(n)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomc_rngcore::{rngs::StdRng, SeedableRng};

    #[test]
    fn extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(sample_bit_errors(&mut rng, 0, 0.3), 0);
        assert_eq!(sample_bit_errors(&mut rng, 100, 0.0), 0);
        assert_eq!(sample_bit_errors(&mut rng, 100, 1.0), 100);
    }

    #[test]
    fn small_mean_distribution() {
        let mut rng = StdRng::seed_from_u64(11);
        let (n, p, trials) = (856u32, 2e-4, 100_000u32);
        let total: u64 = (0..trials)
            .map(|_| u64::from(sample_bit_errors(&mut rng, n, p)))
            .sum();
        let mean = total as f64 / f64::from(trials);
        let expected = f64::from(n) * p;
        assert!(
            (mean - expected).abs() < 0.02 * expected.max(0.05),
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn large_mean_distribution() {
        let mut rng = StdRng::seed_from_u64(13);
        let (n, p, trials) = (856u32, 0.25, 20_000u32);
        let samples: Vec<f64> = (0..trials)
            .map(|_| f64::from(sample_bit_errors(&mut rng, n, p)))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let expected = f64::from(n) * p;
        assert!((mean - expected).abs() < 1.5, "mean {mean} vs {expected}");
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        let exp_var = f64::from(n) * p * (1.0 - p);
        assert!(
            (var - exp_var).abs() < 0.1 * exp_var,
            "var {var} vs {exp_var}"
        );
    }

    #[test]
    fn mirrored_high_p() {
        let mut rng = StdRng::seed_from_u64(17);
        let (n, p) = (100u32, 0.97);
        let trials = 20_000;
        let mean: f64 = (0..trials)
            .map(|_| f64::from(sample_bit_errors(&mut rng, n, p)))
            .sum::<f64>()
            / f64::from(trials);
        assert!((mean - 97.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn result_never_exceeds_n() {
        let mut rng = StdRng::seed_from_u64(19);
        for _ in 0..10_000 {
            let k = sample_bit_errors(&mut rng, 50, 0.9);
            assert!(k <= 50);
        }
    }

    #[test]
    fn positions_distinct_sorted_in_range() {
        let mut rng = StdRng::seed_from_u64(23);
        for &k in &[0u32, 1, 10, 400, 799, 800] {
            let pos = sample_error_positions(&mut rng, 800, k);
            assert_eq!(pos.len(), k as usize);
            assert!(pos.windows(2).all(|w| w[0] < w[1]), "not strictly sorted");
            assert!(pos.iter().all(|&p| p < 800));
        }
    }

    #[test]
    fn positions_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(29);
        let mut counts = [0u32; 10];
        for _ in 0..2000 {
            for p in sample_error_positions(&mut rng, 1000, 5) {
                counts[(p / 100) as usize] += 1;
            }
        }
        let total: u32 = counts.iter().sum();
        for &c in &counts {
            let frac = f64::from(c) / f64::from(total);
            assert!((frac - 0.1).abs() < 0.02, "bucket fraction {frac}");
        }
    }

    #[test]
    #[should_panic(expected = "errors")]
    fn too_many_positions_rejected() {
        let mut rng = StdRng::seed_from_u64(31);
        let _ = sample_error_positions(&mut rng, 10, 11);
    }

    #[test]
    #[should_panic(expected = "BER")]
    fn bad_ber_rejected() {
        let mut rng = StdRng::seed_from_u64(37);
        let _ = sample_bit_errors(&mut rng, 10, 1.5);
    }
}
