//! Receiver sync/capture models — the locus of the paper's "uniqueness of
//! 802.15.4" observation (§III-B, Fig. 2).
//!
//! In 802.11b, a receiver's sync logic locks onto *any* decodable DSSS
//! preamble, including ones transmitted up to three channels (15 MHz)
//! away; while it is busy decoding that foreign packet it deafens itself
//! to a co-channel packet it actually wants. In 802.15.4, the paper
//! observes that a mote "cannot decode packets from inter-channels, even
//! … 1 MHz … away" — adjacent-channel energy is noise, never a competing
//! sync target. This asymmetry is exactly why non-orthogonal concurrency
//! works for ZigBee and not for Wi-Fi.

use nomc_units::{Db, Dbm, Megahertz};

/// Decides whether a receiver tuned to one channel will attempt to sync
/// to (i.e. be *captured by*) a transmission on a possibly different
/// channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CaptureModel {
    /// IEEE 802.15.4 behaviour: sync only to co-channel transmissions
    /// (CFD below `co_channel_tolerance`, defaulting to effectively 0).
    Ieee802154 {
        /// Maximum CFD still treated as "the same channel" (MHz). Real
        /// radios tolerate crystal offsets of tens of kHz; 0.5 MHz is a
        /// generous default that still excludes a 1 MHz neighbour.
        co_channel_tolerance: Megahertz,
    },
    /// 802.11b-like behaviour: sync to any transmission whose *coupled*
    /// power clears the sync threshold, out to `decode_band` of CFD
    /// (15 MHz = three 802.11 channels, per Mishra et al.).
    Dot11bLike {
        /// Maximum CFD at which a foreign packet can still capture the
        /// receiver's correlator.
        decode_band: Megahertz,
    },
}

impl nomc_json::ToJson for CaptureModel {
    fn to_json(&self) -> nomc_json::Json {
        use nomc_json::Json;
        match self {
            CaptureModel::Ieee802154 {
                co_channel_tolerance,
            } => Json::object([(
                "Ieee802154",
                Json::object([("co_channel_tolerance", co_channel_tolerance.to_json())]),
            )]),
            CaptureModel::Dot11bLike { decode_band } => Json::object([(
                "Dot11bLike",
                Json::object([("decode_band", decode_band.to_json())]),
            )]),
        }
    }
}

impl nomc_json::FromJson for CaptureModel {
    fn from_json(value: &nomc_json::Json) -> Result<Self, nomc_json::Error> {
        use nomc_json::{Error, FromJson};
        let obj = value
            .as_object()
            .filter(|m| m.len() == 1)
            .ok_or_else(|| Error::new("CaptureModel: expected single-variant object"))?;
        let (variant, body) = obj.iter().next().unwrap();
        match variant {
            "Ieee802154" => Ok(CaptureModel::Ieee802154 {
                co_channel_tolerance: FromJson::from_json(
                    body.get("co_channel_tolerance")
                        .ok_or_else(|| Error::new("Ieee802154: missing co_channel_tolerance"))?,
                )?,
            }),
            "Dot11bLike" => Ok(CaptureModel::Dot11bLike {
                decode_band: FromJson::from_json(
                    body.get("decode_band")
                        .ok_or_else(|| Error::new("Dot11bLike: missing decode_band"))?,
                )?,
            }),
            other => Err(Error::new(format!("unknown CaptureModel variant: {other}"))),
        }
    }
}

impl CaptureModel {
    /// The standard 802.15.4 model.
    pub fn ieee802154() -> Self {
        CaptureModel::Ieee802154 {
            co_channel_tolerance: Megahertz::new(0.5),
        }
    }

    /// The 802.11b-like contrast model with the literature's 15 MHz
    /// decode band.
    pub fn dot11b_like() -> Self {
        CaptureModel::Dot11bLike {
            decode_band: Megahertz::new(15.0),
        }
    }

    /// Whether a transmission at centre-frequency distance `cfd` is a
    /// potential sync target for this receiver (power permitting).
    pub fn is_sync_candidate(&self, cfd: Megahertz) -> bool {
        match *self {
            CaptureModel::Ieee802154 {
                co_channel_tolerance,
            } => cfd.value() <= co_channel_tolerance.value(),
            CaptureModel::Dot11bLike { decode_band } => cfd.value() <= decode_band.value(),
        }
    }

    /// Whether `coupled_power` (after channel-filter rejection) suffices
    /// to capture an idle receiver with the given sensitivity.
    pub fn clears_sensitivity(&self, coupled_power: Dbm, sensitivity: Dbm) -> bool {
        coupled_power >= sensitivity
    }

    /// Minimum preamble SINR for a *mid-preamble* newcomer to steal the
    /// correlator from the frame currently being received. 802.15.4
    /// radios of the CC2420 generation have no message-in-message
    /// capture, so this returns `None` for [`CaptureModel::Ieee802154`];
    /// the 802.11b-like model allows a 10 dB capture margin.
    pub fn mid_frame_capture_margin(&self) -> Option<Db> {
        match self {
            CaptureModel::Ieee802154 { .. } => None,
            CaptureModel::Dot11bLike { .. } => Some(Db::new(10.0)),
        }
    }
}

impl Default for CaptureModel {
    fn default() -> Self {
        CaptureModel::ieee802154()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ieee802154_rejects_adjacent_channels() {
        let m = CaptureModel::ieee802154();
        assert!(m.is_sync_candidate(Megahertz::new(0.0)));
        assert!(!m.is_sync_candidate(Megahertz::new(1.0)));
        assert!(!m.is_sync_candidate(Megahertz::new(3.0)));
    }

    #[test]
    fn dot11b_syncs_out_to_three_channels() {
        let m = CaptureModel::dot11b_like();
        assert!(m.is_sync_candidate(Megahertz::new(5.0)));
        assert!(m.is_sync_candidate(Megahertz::new(15.0)));
        assert!(!m.is_sync_candidate(Megahertz::new(16.0)));
    }

    #[test]
    fn sensitivity_gate() {
        let m = CaptureModel::default();
        let sens = Dbm::new(-95.0);
        assert!(m.clears_sensitivity(Dbm::new(-90.0), sens));
        assert!(!m.clears_sensitivity(Dbm::new(-96.0), sens));
    }

    #[test]
    fn midframe_capture_only_for_dot11b() {
        assert!(CaptureModel::ieee802154()
            .mid_frame_capture_margin()
            .is_none());
        assert!(CaptureModel::dot11b_like()
            .mid_frame_capture_margin()
            .is_some());
    }
}
