//! Signal-to-interference-plus-noise computation.

use nomc_units::{Db, Dbm, MilliWatts};

/// Computes the SINR of a signal against a set of interferers and noise.
///
/// Interference powers must already be coupled into the receiver's channel
/// (i.e. attenuated by the [ACR curve](crate::coupling::AcrCurve)); this
/// function just performs the linear-domain sum.
///
/// # Examples
///
/// ```
/// use nomc_phy::sinr;
/// use nomc_units::{Dbm, MilliWatts};
///
/// // −60 dBm signal, −70 dBm single interferer, −98 dBm noise → ≈ 9.99 dB.
/// let s = sinr(
///     Dbm::new(-60.0),
///     [Dbm::new(-70.0).to_milliwatts()],
///     Dbm::new(-98.0).to_milliwatts(),
/// );
/// assert!((s.value() - 9.99).abs() < 0.05);
/// ```
pub fn sinr<I>(signal: Dbm, interference: I, noise: MilliWatts) -> Db
where
    I: IntoIterator<Item = MilliWatts>,
{
    let denom: MilliWatts = interference.into_iter().sum::<MilliWatts>() + noise;
    sinr_linear(signal.to_milliwatts(), denom)
}

/// SINR from pre-summed linear powers.
///
/// A zero denominator (physically impossible since noise is always
/// positive, but reachable with a synthetic `MilliWatts::ZERO`) yields a
/// very large but finite SINR.
#[inline]
pub fn sinr_linear(signal: MilliWatts, interference_plus_noise: MilliWatts) -> Db {
    if interference_plus_noise.value() <= 0.0 {
        return Db::new(300.0);
    }
    Db::from_linear(signal / interference_plus_noise)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_interference_gives_snr() {
        let s = sinr(Dbm::new(-60.0), [], Dbm::new(-90.0).to_milliwatts());
        assert!((s.value() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn equal_interferer_dominates_noise() {
        let s = sinr(
            Dbm::new(-60.0),
            [Dbm::new(-60.0).to_milliwatts()],
            Dbm::new(-120.0).to_milliwatts(),
        );
        assert!(s.value().abs() < 0.01, "equal powers → ≈ 0 dB, got {s}");
    }

    #[test]
    fn interferers_accumulate() {
        let one = sinr(
            Dbm::new(-60.0),
            [Dbm::new(-70.0).to_milliwatts()],
            MilliWatts::ZERO,
        );
        let two = sinr(
            Dbm::new(-60.0),
            [
                Dbm::new(-70.0).to_milliwatts(),
                Dbm::new(-70.0).to_milliwatts(),
            ],
            MilliWatts::ZERO,
        );
        assert!(((one - two).value() - 3.01).abs() < 0.01);
    }

    #[test]
    fn zero_denominator_is_finite() {
        let s = sinr_linear(MilliWatts::new(1.0), MilliWatts::ZERO);
        assert!(s.value().is_finite());
        assert!(s.value() >= 100.0);
    }
}
