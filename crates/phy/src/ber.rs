//! SINR → bit-error-rate models.
//!
//! Two demodulator models are provided:
//!
//! * [`BerModel::Oqpsk802154`] — the standard analytic BER of the 2.4 GHz
//!   IEEE 802.15.4 O-QPSK DSSS PHY (16-ary orthogonal signalling over
//!   32-chip pseudo-noise sequences),
//! * [`BerModel::Dsss80211b`] — a DBPSK approximation of 802.11b's 1 Mb/s
//!   mode, used only for the paper's Fig. 2 contrast experiment.
//!
//! The O-QPSK curve is famously steep: the packet success probability for
//! a ~100-byte frame transitions from ≈ 0 to ≈ 1 within about 3 dB of
//! SINR. The paper's smooth measured CPRR curves arise from per-packet
//! shadowing on top of this cliff (see [`crate::shadowing`]).

use nomc_units::Db;

/// A demodulator's SINR → BER characteristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BerModel {
    /// IEEE 802.15.4 2.4 GHz O-QPSK with DSSS (250 kb/s).
    #[default]
    Oqpsk802154,
    /// 802.11b-like DBPSK (1 Mb/s), for the Fig. 2 uniqueness comparison.
    Dsss80211b,
}

impl nomc_json::ToJson for BerModel {
    fn to_json(&self) -> nomc_json::Json {
        nomc_json::Json::Str(
            match self {
                BerModel::Oqpsk802154 => "Oqpsk802154",
                BerModel::Dsss80211b => "Dsss80211b",
            }
            .to_owned(),
        )
    }
}

impl nomc_json::FromJson for BerModel {
    fn from_json(value: &nomc_json::Json) -> Result<Self, nomc_json::Error> {
        match value.as_str() {
            Some("Oqpsk802154") => Ok(BerModel::Oqpsk802154),
            Some("Dsss80211b") => Ok(BerModel::Dsss80211b),
            _ => Err(nomc_json::Error::new(format!(
                "unknown BerModel variant: {value}"
            ))),
        }
    }
}

impl BerModel {
    /// Bit-error rate at the given SINR.
    ///
    /// The result is clamped into `[0, 0.5]` (0.5 = guessing).
    #[inline]
    pub fn bit_error_rate(self, sinr: Db) -> f64 {
        let snr = sinr.to_linear();
        let ber = match self {
            BerModel::Oqpsk802154 => oqpsk_dsss_ber(snr),
            BerModel::Dsss80211b => dbpsk_ber(snr),
        };
        ber.clamp(0.0, 0.5)
    }

    /// Probability that `bits` consecutive bits are all received correctly
    /// at the given SINR.
    ///
    /// # Examples
    ///
    /// ```
    /// use nomc_phy::BerModel;
    /// use nomc_units::Db;
    ///
    /// let m = BerModel::Oqpsk802154;
    /// // A strong signal gets a ~100-byte frame through essentially always…
    /// assert!(m.frame_success_probability(Db::new(10.0), 800) > 0.999);
    /// // …while a 0 dB collision usually still succeeds only marginally,
    /// // and a −3 dB one essentially never does.
    /// assert!(m.frame_success_probability(Db::new(-3.0), 800) < 0.01);
    /// ```
    pub fn frame_success_probability(self, sinr: Db, bits: u32) -> f64 {
        frame_success_from_ber(self.bit_error_rate(sinr), bits)
    }

    /// The SINR at which the frame success probability for `bits` bits
    /// crosses `target`, found by bisection. Useful for calibration tests
    /// and analytical reporting.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not in `(0, 1)`.
    pub fn sinr_for_success(self, target: f64, bits: u32) -> Db {
        assert!(target > 0.0 && target < 1.0, "target must be in (0,1)");
        let (mut lo, mut hi) = (-30.0, 40.0);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.frame_success_probability(Db::new(mid), bits) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Db::new(0.5 * (lo + hi))
    }
}

/// `(1 − ber)^bits`, evaluated in the ln domain for numerical stability
/// with large frames. Shared by [`BerModel::frame_success_probability`]
/// and [`crate::lut::BerLut`] so the two can never drift apart.
pub(crate) fn frame_success_from_ber(ber: f64, bits: u32) -> f64 {
    // Exact ±0 test via bits; `ber` is total here (see DESIGN.md §8).
    if ber.abs().to_bits() == 0 {
        return 1.0;
    }
    (f64::from(bits) * (1.0 - ber).ln()).exp()
}

/// IEEE 802.15.4 2.4 GHz O-QPSK DSSS bit-error rate.
///
/// `BER = (8/15)·(1/16)·Σ_{k=2}^{16} (−1)^k C(16,k) e^{20·SNR·(1/k − 1)}`
/// where SNR is linear per-chip… (standard form, e.g. IEEE 802.15.4-2006
/// Annex E). The alternating sum is evaluated in f64, which is accurate in
/// the regime of interest (BER ≥ 1e-16).
fn oqpsk_dsss_ber(snr_linear: f64) -> f64 {
    const BINOM_16: [f64; 17] = [
        1.0, 16.0, 120.0, 560.0, 1820.0, 4368.0, 8008.0, 11440.0, 12870.0, 11440.0, 8008.0, 4368.0,
        1820.0, 560.0, 120.0, 16.0, 1.0,
    ];
    // Total-underflow shortcut (bit-identical, not an approximation):
    // the least negative exponent below is k = 2's, −10·SNR. At
    // SNR ≥ 75 every exponent is ≤ −750, far below ln(2⁻¹⁰⁷⁵) ≈ −745.2
    // where `exp` rounds to exactly +0.0, so every term is ±0.0 and the
    // sum is exactly 0.0 — the same value the loop would produce after
    // fifteen wasted `exp` calls. Receptions at healthy SINR (≥ ~19 dB,
    // the common case) take this path.
    if snr_linear >= 75.0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for k in 2..=16u32 {
        let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
        let exponent = 20.0 * snr_linear * (1.0 / f64::from(k) - 1.0);
        sum += sign * BINOM_16[k as usize] * exponent.exp();
    }
    (8.0 / 15.0) * (1.0 / 16.0) * sum
}

/// DBPSK bit-error rate: `0.5·e^{−SNR}` (with a small processing-gain
/// factor of 11/2 folded in to represent the Barker-code DSSS of 802.11b
/// relative to its 2 MHz noise bandwidth).
fn dbpsk_ber(snr_linear: f64) -> f64 {
    // Same total-underflow shortcut as `oqpsk_dsss_ber`: at
    // SNR ≥ 750/5.5 the exponent is ≤ −750, `exp` is exactly +0.0, and
    // 0.5·0.0 is the 0.0 the full expression would return.
    if snr_linear >= 750.0 / 5.5 {
        return 0.0;
    }
    0.5 * (-(11.0 / 2.0) * snr_linear).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oqpsk_reference_points() {
        // Published reference curve values (approximate).
        let m = BerModel::Oqpsk802154;
        let b0 = m.bit_error_rate(Db::new(0.0));
        assert!((b0 - 1.8e-4).abs() < 4e-5, "BER(0 dB) ≈ 1.8e-4, got {b0}");
        let bm2 = m.bit_error_rate(Db::new(-2.0));
        assert!(bm2 > 5e-3 && bm2 < 2e-2, "BER(-2 dB) ≈ 7e-3, got {bm2}");
        assert!(m.bit_error_rate(Db::new(5.0)) < 1e-12);
    }

    #[test]
    fn underflow_shortcut_is_bit_identical() {
        // The full alternating sum with no shortcut; must agree with
        // `oqpsk_dsss_ber` *exactly* (same bits) on both sides of the
        // SNR ≥ 75 early-out.
        fn full(snr_linear: f64) -> f64 {
            const BINOM_16: [f64; 17] = [
                1.0, 16.0, 120.0, 560.0, 1820.0, 4368.0, 8008.0, 11440.0, 12870.0, 11440.0, 8008.0,
                4368.0, 1820.0, 560.0, 120.0, 16.0, 1.0,
            ];
            let mut sum = 0.0;
            for k in 2..=16u32 {
                let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
                let exponent = 20.0 * snr_linear * (1.0 / f64::from(k) - 1.0);
                sum += sign * BINOM_16[k as usize] * exponent.exp();
            }
            (8.0 / 15.0) * (1.0 / 16.0) * sum
        }
        for i in 0..600 {
            let snr = 0.25 * f64::from(i); // 0 .. 150, straddles 75
            let got = oqpsk_dsss_ber(snr);
            let want = full(snr);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "shortcut diverged at linear SNR {snr}: {got:e} vs {want:e}"
            );
        }
        assert_eq!(dbpsk_ber(750.0 / 5.5).to_bits(), 0.0f64.to_bits());
        let below: f64 = 750.0 / 5.5 - 0.01;
        assert_eq!(
            dbpsk_ber(below).to_bits(),
            (0.5 * (-(11.0 / 2.0) * below).exp()).to_bits()
        );
    }

    #[test]
    fn ber_is_monotone_decreasing_in_sinr() {
        for model in [BerModel::Oqpsk802154, BerModel::Dsss80211b] {
            let mut prev = 1.0;
            for s in -20..=20 {
                let b = model.bit_error_rate(Db::new(f64::from(s)));
                assert!(b <= prev + 1e-15, "{model:?} not monotone at {s} dB");
                prev = b;
            }
        }
    }

    #[test]
    fn ber_bounded() {
        for s in [-100.0, -10.0, 0.0, 10.0, 100.0] {
            let b = BerModel::Oqpsk802154.bit_error_rate(Db::new(s));
            assert!((0.0..=0.5).contains(&b));
        }
    }

    #[test]
    fn frame_success_extremes() {
        let m = BerModel::Oqpsk802154;
        assert!(m.frame_success_probability(Db::new(20.0), 8000) > 0.999_999);
        assert!(m.frame_success_probability(Db::new(-10.0), 800) < 1e-9);
    }

    #[test]
    fn oqpsk_cliff_location() {
        // The 50% success point for a ~100-byte frame sits near -0.7 dB:
        // this anchors the Fig. 4 calibration.
        let theta = BerModel::Oqpsk802154.sinr_for_success(0.5, 856);
        assert!(
            (theta.value() + 0.7).abs() < 0.5,
            "50% point moved: {theta} (expected ≈ -0.7 dB)"
        );
    }

    #[test]
    fn dot11b_needs_more_sinr_headroom_shape() {
        // Both models decode easily at high SINR.
        let b = BerModel::Dsss80211b.frame_success_probability(Db::new(10.0), 8000);
        assert!(b > 0.99);
    }

    #[test]
    fn sinr_for_success_is_monotone_in_target() {
        let m = BerModel::Oqpsk802154;
        let s50 = m.sinr_for_success(0.5, 856);
        let s99 = m.sinr_for_success(0.99, 856);
        assert!(s99 > s50);
    }

    #[test]
    #[should_panic(expected = "target")]
    fn sinr_for_success_validates() {
        let _ = BerModel::Oqpsk802154.sinr_for_success(1.0, 100);
    }
}
