//! Analytic non-orthogonal channel planning.
//!
//! The paper answers "how close can channels be?" empirically (Fig. 4).
//! This module answers it analytically from the same primitives: the
//! predicted collided-packet receive rate at a given CFD is the frame
//! success probability at `SINR = ACR(cfd) + Δ` averaged over the
//! shadowing distribution (`Δ` = signal-minus-interference power at the
//! receiver before channel filtering). Deployment tools can then pick
//! the smallest CFD that still meets a CPRR target, instead of
//! hard-coding the paper's 3 MHz.

use crate::ber::BerModel;
use crate::coupling::AcrCurve;
use nomc_units::{Db, Megahertz};

/// Inputs for a CPRR prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct CprrModel {
    /// Receiver channel-filter rejection curve.
    pub acr: AcrCurve,
    /// Demodulator characteristic.
    pub ber: BerModel,
    /// Frame size in PSDU bits.
    pub frame_bits: u32,
    /// Mean received signal power minus mean received interferer power
    /// (before filtering), in dB. Zero for equal powers at equal range.
    pub power_delta: Db,
    /// Per-path shadowing σ; signal and interference fade
    /// independently, so the SINR spread is `√2 · σ`.
    pub sigma_db: Db,
}

impl CprrModel {
    /// The reproduction's calibrated defaults with an equal-power
    /// collision and the standard frame.
    pub fn calibrated_default() -> Self {
        CprrModel {
            acr: AcrCurve::cc2420_calibrated(),
            ber: BerModel::Oqpsk802154,
            frame_bits: 408,
            power_delta: Db::ZERO,
            sigma_db: Db::new(4.0),
        }
    }

    /// Predicted CPRR at the given CFD: `E_X[ P_success(ACR(cfd) + Δ + X) ]`
    /// with `X ~ N(0, √2·σ)`, integrated numerically over ±5 σ.
    pub fn predicted_cprr(&self, cfd: Megahertz) -> f64 {
        let mean = self.acr.rejection(cfd).value() + self.power_delta.value();
        let sigma = self.sigma_db.value() * std::f64::consts::SQRT_2;
        // σ = +0.0 exactly (a Db is finite by construction here);
        // bit-test keeps the comparison total.
        if sigma.abs().to_bits() == 0 {
            return self
                .ber
                .frame_success_probability(Db::new(mean), self.frame_bits);
        }
        // Trapezoidal integration of the Gaussian-weighted success curve.
        let steps = 200;
        let half_width = 5.0 * sigma;
        let dx = 2.0 * half_width / steps as f64;
        let mut acc = 0.0;
        let mut weight = 0.0;
        for i in 0..=steps {
            let x = -half_width + i as f64 * dx;
            let w = (-0.5 * (x / sigma).powi(2)).exp();
            let edge = if i == 0 || i == steps { 0.5 } else { 1.0 };
            acc += edge
                * w
                * self
                    .ber
                    .frame_success_probability(Db::new(mean + x), self.frame_bits);
            weight += edge * w;
        }
        acc / weight
    }

    /// The smallest CFD (0.1 MHz granularity) whose predicted CPRR meets
    /// `target`, or `None` if even the curve's saturation CFD misses it.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not in `(0, 1]`.
    pub fn min_cfd_for_cprr(&self, target: f64) -> Option<Megahertz> {
        assert!(target > 0.0 && target <= 1.0, "target must be in (0,1]");
        let max_tenths = (self.acr.saturation_cfd().value() * 10.0).ceil() as u32;
        for tenths in 0..=max_tenths {
            let cfd = Megahertz::new(f64::from(tenths) / 10.0);
            if self.predicted_cprr(cfd) >= target {
                return Some(cfd);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicted_cprr_is_monotone_in_cfd() {
        let m = CprrModel::calibrated_default();
        let mut prev = 0.0;
        for tenths in 0..=60 {
            let c = m.predicted_cprr(Megahertz::new(tenths as f64 / 10.0));
            assert!(c >= prev - 1e-9, "not monotone at {tenths}");
            prev = c;
        }
    }

    #[test]
    fn matches_paper_bands_under_fig4_geometry() {
        // Fig. 4's geometry has the interferer ≈ 9 dB hotter than the
        // signal (4 m link vs 2 m attacker distance).
        let m = CprrModel {
            power_delta: Db::new(-9.1),
            ..CprrModel::calibrated_default()
        };
        let at = |cfd: f64| m.predicted_cprr(Megahertz::new(cfd));
        assert!(at(1.0) < 0.3, "1 MHz: {}", at(1.0));
        assert!((0.5..0.9).contains(&at(2.0)), "2 MHz: {}", at(2.0));
        assert!(at(3.0) > 0.9, "3 MHz: {}", at(3.0));
        assert!(at(4.0) > 0.99, "4 MHz: {}", at(4.0));
    }

    #[test]
    fn min_cfd_recovers_the_papers_choice() {
        let m = CprrModel {
            power_delta: Db::new(-9.1),
            ..CprrModel::calibrated_default()
        };
        let cfd = m.min_cfd_for_cprr(0.95).expect("achievable");
        assert!(
            (2.5..=3.5).contains(&cfd.value()),
            "97%-CPRR CFD should be ≈ 3 MHz, got {cfd}"
        );
    }

    #[test]
    fn unreachable_target_returns_none() {
        // With a brutal 40 dB power deficit no CFD under the saturation
        // rejection reaches 99.9 %.
        let m = CprrModel {
            power_delta: Db::new(-55.0),
            ..CprrModel::calibrated_default()
        };
        assert_eq!(m.min_cfd_for_cprr(0.999), None);
    }

    #[test]
    fn sigma_zero_is_a_step() {
        let m = CprrModel {
            sigma_db: Db::ZERO,
            power_delta: Db::new(-9.1),
            ..CprrModel::calibrated_default()
        };
        let lo = m.predicted_cprr(Megahertz::new(1.0));
        let hi = m.predicted_cprr(Megahertz::new(3.0));
        assert!(lo < 0.01 && hi > 0.99, "step expected: {lo} / {hi}");
    }
}
