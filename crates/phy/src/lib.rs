//! # nomc-phy
//!
//! Physical-layer models for the non-orthogonal multi-channel 802.15.4
//! simulation: path loss, log-normal shadowing, adjacent-channel rejection
//! (the spectral-coupling curve at the heart of the paper), SINR → BER for
//! O-QPSK DSSS (and an 802.11b-like DSSS model for the paper's Fig. 2
//! comparison), packet-error sampling, and receiver capture/sync models.
//!
//! The layer composition mirrors a real receive chain:
//!
//! 1. [`pathloss`] attenuates each transmitter's power to a mean received
//!    power at the receiver's location,
//! 2. [`shadowing`] adds a per-packet log-normal term,
//! 3. [`coupling`] attenuates off-channel transmissions by the receiver's
//!    channel-filter rejection at their centre-frequency distance (CFD),
//! 4. [`mod@sinr`] combines signal, interference and [`noise`] into an SINR,
//! 5. [`ber`] turns SINR into a bit-error rate, and [`biterror`] samples
//!    concrete error counts/positions for a frame segment,
//! 6. [`capture`] decides whether a receiver even attempts to sync to a
//!    frame — the locus of the paper's "802.15.4 uniqueness" observation.
//!
//! [`planning`] composes 3-5 analytically, predicting the collided-packet
//! receive rate at a given channel distance without running a simulation.
//! [`lut`] provides bit-exact quantized lookup tables for the two hot
//! kernels in that chain (the BER sum and the ACR leakage factor).
//!
//! # Examples
//!
//! ```
//! use nomc_phy::{coupling::AcrCurve, pathloss::{LogDistance, PathLoss}};
//! use nomc_units::{Dbm, Meters, Megahertz};
//!
//! let pl = LogDistance::indoor_2_4ghz();
//! let rx = Dbm::new(0.0) - pl.loss(Meters::new(2.0));
//! let acr = AcrCurve::cc2420_calibrated();
//! // A transmission 3 MHz away is attenuated by the channel filter:
//! let coupled = rx - acr.rejection(Megahertz::new(3.0));
//! assert!(coupled < rx);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ber;
pub mod biterror;
pub mod capture;
pub mod coupling;
pub mod lut;
pub mod noise;
pub mod pathloss;
pub mod planning;
pub mod shadowing;
pub mod sinr;

pub use ber::BerModel;
pub use capture::CaptureModel;
pub use coupling::AcrCurve;
pub use lut::{AcrLut, BerLut};
pub use noise::NoiseFloor;
pub use pathloss::{FreeSpace, LogDistance, PathLoss};
pub use shadowing::Shadowing;
pub use sinr::sinr;
