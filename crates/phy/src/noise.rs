//! Receiver noise floor.

use nomc_units::{Db, Dbm, Megahertz, MilliWatts};

/// The receiver's noise floor: thermal noise over the channel bandwidth
/// plus the receiver noise figure.
///
/// For the 2 MHz 802.15.4 channel: `−174 dBm/Hz + 10·log10(2e6) ≈ −111 dBm`
/// thermal, and a CC2420-class noise figure of ≈ 13 dB puts the default
/// floor at −98 dBm — consistent with the −95 dBm datasheet sensitivity
/// (the O-QPSK demodulator needs only ≈ 2-3 dB of SNR).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseFloor {
    level: Dbm,
}

nomc_json::json_struct!(NoiseFloor { level: Dbm });

impl NoiseFloor {
    /// Creates a noise floor at the given level.
    pub fn new(level: Dbm) -> Self {
        NoiseFloor { level }
    }

    /// The default CC2420-class floor: −98 dBm.
    pub fn cc2420_default() -> Self {
        NoiseFloor::new(Dbm::new(-98.0))
    }

    /// Computes a floor from channel bandwidth and receiver noise
    /// figure: `−174 + 10·log10(bw_hz) + nf_db`.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not positive.
    pub fn from_bandwidth(bandwidth: Megahertz, noise_figure: Db) -> Self {
        assert!(bandwidth.value() > 0.0, "bandwidth must be positive");
        let bandwidth_hz = bandwidth.value() * 1e6;
        NoiseFloor::new(Dbm::new(
            -174.0 + 10.0 * bandwidth_hz.log10() + noise_figure.value(),
        ))
    }

    /// The floor in dBm.
    pub fn level(&self) -> Dbm {
        self.level
    }

    /// The floor in linear milliwatts (for interference sums).
    pub fn power(&self) -> MilliWatts {
        self.level.to_milliwatts()
    }
}

impl Default for NoiseFloor {
    fn default() -> Self {
        NoiseFloor::cc2420_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_minus_98() {
        assert_eq!(NoiseFloor::default().level(), Dbm::new(-98.0));
    }

    #[test]
    fn bandwidth_formula() {
        let n = NoiseFloor::from_bandwidth(Megahertz::new(2.0), Db::new(13.0));
        assert!((n.level().value() - (-98.0)).abs() < 0.1, "{}", n.level());
    }

    #[test]
    fn linear_power_matches() {
        let n = NoiseFloor::cc2420_default();
        assert!((n.power().to_dbm().value() - (-98.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn rejects_zero_bandwidth() {
        let _ = NoiseFloor::from_bandwidth(Megahertz::new(0.0), Db::new(10.0));
    }
}
