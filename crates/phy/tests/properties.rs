//! Property-based tests of the PHY models' structural guarantees.

use nomc_phy::coupling::AcrCurve;
use nomc_phy::planning::CprrModel;
use nomc_phy::{biterror, BerModel};
use nomc_rngcore::check::{forall, range, range_incl, zip2, zip3};
use nomc_rngcore::{check, check_eq, rngs::StdRng, SeedableRng};
use nomc_units::{Db, Megahertz};

#[test]
fn ber_monotone_nonincreasing() {
    let g = zip2(range(-20.0f64..30.0), range(-20.0f64..30.0));
    forall("ber_monotone_nonincreasing", 64, &g, |&(a, b)| {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        for model in [BerModel::Oqpsk802154, BerModel::Dsss80211b] {
            check!(
                model.bit_error_rate(Db::new(hi)) <= model.bit_error_rate(Db::new(lo)) + 1e-15,
                "{model:?} not monotone between {lo} and {hi}"
            );
        }
        Ok(())
    });
}

#[test]
fn frame_success_monotone_in_length() {
    let g = zip3(range(-5.0f64..10.0), range(8u32..400), range(1u32..400));
    forall(
        "frame_success_monotone_in_length",
        64,
        &g,
        |&(sinr, short, extra)| {
            let m = BerModel::Oqpsk802154;
            let p_short = m.frame_success_probability(Db::new(sinr), short);
            let p_long = m.frame_success_probability(Db::new(sinr), short + extra);
            check!(p_long <= p_short + 1e-12, "longer frames cannot be safer");
            Ok(())
        },
    );
}

#[test]
fn binomial_sampler_in_range() {
    let g = zip3(
        range(0u32..2000),
        range_incl(0.0f64..=1.0),
        range(0u64..500),
    );
    forall("binomial_sampler_in_range", 64, &g, |&(n, p, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = biterror::sample_bit_errors(&mut rng, n, p);
        check!(k <= n, "{k} errors out of {n} bits");
        Ok(())
    });
}

#[test]
fn error_positions_valid() {
    let g = zip2(range(1u32..2000), range(0u64..200));
    forall("error_positions_valid", 64, &g, |&(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = n / 3;
        let pos = biterror::sample_error_positions(&mut rng, n, k);
        check_eq!(pos.len(), k as usize);
        check!(pos.windows(2).all(|w| w[0] < w[1]), "positions not sorted");
        check!(pos.iter().all(|&p| p < n), "position out of range");
        Ok(())
    });
}

#[test]
fn acr_interpolation_stays_within_endpoints() {
    forall(
        "acr_interpolation_stays_within_endpoints",
        64,
        &range(0.0f64..12.0),
        |&cfd| {
            let acr = AcrCurve::cc2420_calibrated();
            let r = acr.rejection(Megahertz::new(cfd)).value();
            check!((0.0..=50.0).contains(&r), "rejection {r} at cfd {cfd}");
            Ok(())
        },
    );
}

#[test]
fn predicted_cprr_monotone_in_power_delta() {
    let g = zip3(
        range(1.0f64..5.0),
        range(-20.0f64..10.0),
        range(-20.0f64..10.0),
    );
    forall(
        "predicted_cprr_monotone_in_power_delta",
        64,
        &g,
        |&(cfd, d1, d2)| {
            // More relative signal power can never hurt CPRR.
            let (lo, hi) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
            let at = |delta: f64| {
                CprrModel {
                    power_delta: Db::new(delta),
                    ..CprrModel::calibrated_default()
                }
                .predicted_cprr(Megahertz::new(cfd))
            };
            check!(at(hi) >= at(lo) - 1e-9, "cprr not monotone at cfd {cfd}");
            Ok(())
        },
    );
}

#[test]
fn predicted_cprr_is_a_probability() {
    let g = zip2(range(0.0f64..10.0), range(-30.0f64..10.0));
    forall(
        "predicted_cprr_is_a_probability",
        64,
        &g,
        |&(cfd, delta)| {
            let model = CprrModel {
                power_delta: Db::new(delta),
                ..CprrModel::calibrated_default()
            };
            let c = model.predicted_cprr(Megahertz::new(cfd));
            check!((0.0..=1.0).contains(&c), "cprr {c} out of [0,1]");
            Ok(())
        },
    );
}
