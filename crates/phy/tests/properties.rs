//! Property-based tests of the PHY models' structural guarantees.

use nomc_phy::coupling::AcrCurve;
use nomc_phy::planning::CprrModel;
use nomc_phy::{biterror, BerModel};
use nomc_units::{Db, Megahertz};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn ber_monotone_nonincreasing(a in -20.0f64..30.0, b in -20.0f64..30.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        for model in [BerModel::Oqpsk802154, BerModel::Dsss80211b] {
            prop_assert!(
                model.bit_error_rate(Db::new(hi)) <= model.bit_error_rate(Db::new(lo)) + 1e-15
            );
        }
    }

    #[test]
    fn frame_success_monotone_in_length(
        sinr in -5.0f64..10.0,
        short in 8u32..400,
        extra in 1u32..400,
    ) {
        let m = BerModel::Oqpsk802154;
        let p_short = m.frame_success_probability(Db::new(sinr), short);
        let p_long = m.frame_success_probability(Db::new(sinr), short + extra);
        prop_assert!(p_long <= p_short + 1e-12, "longer frames cannot be safer");
    }

    #[test]
    fn binomial_sampler_in_range(n in 0u32..2000, p in 0.0f64..=1.0, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = biterror::sample_bit_errors(&mut rng, n, p);
        prop_assert!(k <= n);
    }

    #[test]
    fn error_positions_valid(n in 1u32..2000, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = n / 3;
        let pos = biterror::sample_error_positions(&mut rng, n, k);
        prop_assert_eq!(pos.len(), k as usize);
        prop_assert!(pos.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(pos.iter().all(|&p| p < n));
    }

    #[test]
    fn acr_interpolation_stays_within_endpoints(cfd in 0.0f64..12.0) {
        let acr = AcrCurve::cc2420_calibrated();
        let r = acr.rejection(Megahertz::new(cfd)).value();
        prop_assert!((0.0..=50.0).contains(&r));
    }

    #[test]
    fn predicted_cprr_monotone_in_power_delta(
        cfd in 1.0f64..5.0,
        d1 in -20.0f64..10.0,
        d2 in -20.0f64..10.0,
    ) {
        // More relative signal power can never hurt CPRR.
        let (lo, hi) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        let at = |delta: f64| CprrModel {
            power_delta: Db::new(delta),
            ..CprrModel::calibrated_default()
        }
        .predicted_cprr(Megahertz::new(cfd));
        prop_assert!(at(hi) >= at(lo) - 1e-9);
    }

    #[test]
    fn predicted_cprr_is_a_probability(cfd in 0.0f64..10.0, delta in -30.0f64..10.0) {
        let model = CprrModel {
            power_delta: Db::new(delta),
            ..CprrModel::calibrated_default()
        };
        let c = model.predicted_cprr(Megahertz::new(cfd));
        prop_assert!((0.0..=1.0).contains(&c));
    }
}
