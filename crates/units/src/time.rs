//! Simulated time.
//!
//! The discrete-event simulator uses integer nanoseconds so event ordering
//! is exact and platform-independent. An IEEE 802.15.4 symbol at 2.4 GHz is
//! 16 µs, so nanosecond resolution leaves ample headroom for sub-symbol
//! bookkeeping while `u64` still covers ~584 years of simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock (nanoseconds since start).
///
/// # Examples
///
/// ```
/// use nomc_units::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

nomc_json::json_newtype!(SimTime: u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

nomc_json::json_newtype!(SimDuration: u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since the epoch.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `us` microseconds after the epoch.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant `ms` milliseconds after the epoch.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant `s` seconds after the epoch.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is in the future, which is
    /// convenient for defensive metric code.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration of `us` microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration of `ms` milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration of `s` seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncated).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` for the empty duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("simulation clock overflow"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when that is expected.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracting a later SimTime from an earlier one"),
        )
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics on underflow (before the epoch).
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// A measured wall- or simulated-time span in fractional seconds.
///
/// Unlike [`SimDuration`] (exact integer nanoseconds for event
/// ordering), `Seconds` is the *reporting* unit: sweep reports and
/// experiment summaries that already live in the floating domain. The
/// JSON form is the raw `f64` (via `json_newtype!`), so adopting the
/// newtype changes no serialized bytes.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(f64);

nomc_json::json_newtype!(Seconds: f64);

impl Seconds {
    /// Wraps a raw fractional-seconds value.
    #[inline]
    pub const fn new(secs: f64) -> Self {
        Seconds(secs)
    }

    /// The raw fractional-seconds value.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

/// A measured wall-clock duration in fractional nanoseconds.
///
/// The bench harness reports `mean_ns`/`min_ns`/`max_ns` as fractional
/// nanoseconds (a mean over iterations is not integral); the newtype
/// keeps those from mixing with other raw floats. JSON form is the raw
/// `f64`, so committed `BENCH_*.json` files are byte-stable.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Nanos(f64);

nomc_json::json_newtype!(Nanos: f64);

impl Nanos {
    /// Wraps a raw fractional-nanoseconds value.
    #[inline]
    pub const fn new(ns: f64) -> Self {
        Nanos(ns)
    }

    /// The raw fractional-nanoseconds value.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}us", self.0 as f64 / 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn add_duration_advances_clock() {
        let t = SimTime::from_millis(5) + SimDuration::from_micros(320);
        assert_eq!(t.as_nanos(), 5_320_000);
    }

    #[test]
    fn subtracting_times_gives_duration() {
        let d = SimTime::from_secs(2) - SimTime::from_secs(1);
        assert_eq!(d, SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "later SimTime")]
    fn negative_duration_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn saturating_since_clamps() {
        let d = SimTime::from_secs(1).saturating_since(SimTime::from_secs(2));
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn duration_ratio() {
        let airtime = SimDuration::from_micros(4256);
        let second = SimDuration::from_secs(1);
        let max_rate = second / airtime;
        assert!((max_rate - 234.96).abs() < 0.1);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.000_000_000_6).as_nanos(), 1);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_millis(3),
            SimTime::ZERO,
            SimTime::from_micros(1),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_millis(3));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!SimTime::ZERO.to_string().is_empty());
        assert!(SimDuration::from_micros(128).to_string().contains("us"));
        assert!(SimDuration::from_millis(3).to_string().contains("ms"));
        assert!(SimDuration::from_secs(3).to_string().contains('s'));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
