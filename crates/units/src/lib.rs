//! # nomc-units
//!
//! Newtype physical quantities for the `nomc` (non-orthogonal multi-channel
//! sensor network) workspace.
//!
//! Radio-network simulation mixes several scalar domains that are all
//! "just floats" at runtime but catastrophically wrong to confuse:
//! logarithmic power ([`Dbm`]), linear power ([`MilliWatts`]), power ratios
//! ([`Db`]), frequencies ([`Megahertz`]), distances ([`Meters`]) and
//! simulated time ([`SimTime`], [`SimDuration`]). This crate gives each a
//! dedicated newtype with only the arithmetic that is physically meaningful
//! (e.g. `Dbm + Db = Dbm`, `Dbm - Dbm = Db`, but `Dbm + Dbm` does not
//! compile — summing transmitter powers must go through [`MilliWatts`]).
//!
//! # Examples
//!
//! ```
//! use nomc_units::{Dbm, Db, MilliWatts};
//!
//! let tx = Dbm::new(0.0);              // 0 dBm = 1 mW
//! let path_loss = Db::new(40.0);       // 40 dB attenuation
//! let rx = tx - path_loss;             // -40 dBm
//! assert!((rx.to_milliwatts().value() - 1e-4).abs() < 1e-12);
//!
//! // Two equal interferers add +3 dB in the linear domain:
//! let sum = (rx.to_milliwatts() + rx.to_milliwatts()).to_dbm();
//! assert!((sum.value() - (-37.0)).abs() < 0.02);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distance;
mod frequency;
mod power;
mod time;

pub use distance::Meters;
pub use frequency::Megahertz;
pub use power::{Db, Dbm, MilliWatts};
pub use time::{Nanos, Seconds, SimDuration, SimTime};
