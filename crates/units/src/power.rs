//! Logarithmic and linear power quantities.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Received/transmitted signal power on the logarithmic dBm scale.
///
/// `x` dBm corresponds to `10^(x/10)` milliwatts. The type is a thin
/// wrapper over `f64` and is `Copy`.
///
/// Only physically meaningful arithmetic is provided:
///
/// * `Dbm ± Db -> Dbm` (apply a gain/attenuation),
/// * `Dbm - Dbm -> Db` (the ratio between two powers).
///
/// Summing incoherent powers must be done in the linear domain via
/// [`MilliWatts`].
///
/// # Examples
///
/// ```
/// use nomc_units::{Dbm, Db};
/// let sig = Dbm::new(-60.0);
/// let noise = Dbm::new(-95.0);
/// let snr: Db = sig - noise;
/// assert_eq!(snr, Db::new(35.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Dbm(f64);

nomc_json::json_newtype!(Dbm: f64);

/// A dimensionless power ratio in decibels.
///
/// Used for gains, attenuations, rejection factors and SINR values.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Db(f64);

nomc_json::json_newtype!(Db: f64);

/// Linear power in milliwatts.
///
/// This is the domain in which incoherent interference powers add, so it
/// implements `Add`, `Sub` and `Sum`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct MilliWatts(f64);

nomc_json::json_newtype!(MilliWatts: f64);

impl Dbm {
    /// The smallest value we ever need to represent; used as a stand-in for
    /// "no signal at all" when a finite floor is required.
    pub const MIN: Dbm = Dbm(-200.0);

    /// Creates a power level from a raw dBm value.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Dbm(value)
    }

    /// Returns the raw dBm value.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to the linear milliwatt domain.
    #[inline]
    pub fn to_milliwatts(self) -> MilliWatts {
        MilliWatts(10f64.powf(self.0 / 10.0))
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Dbm) -> Dbm {
        Dbm(self.0.min(other.0))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Dbm) -> Dbm {
        Dbm(self.0.max(other.0))
    }

    /// Clamps the value into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn clamp(self, lo: Dbm, hi: Dbm) -> Dbm {
        assert!(lo.0 <= hi.0, "invalid clamp range: {lo} > {hi}");
        Dbm(self.0.clamp(lo.0, hi.0))
    }

    /// `true` if the value is finite (not NaN / infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Db {
    /// A zero gain/attenuation.
    pub const ZERO: Db = Db(0.0);

    /// Creates a ratio from a raw dB value.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Db(value)
    }

    /// Returns the raw dB value.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts the ratio to a linear factor (`10^(dB/10)`).
    #[inline]
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Creates a ratio from a linear factor.
    ///
    /// Non-positive factors map to a very large attenuation rather than
    /// `-inf`, so downstream arithmetic stays finite.
    #[inline]
    pub fn from_linear(factor: f64) -> Self {
        if factor <= 0.0 {
            Db(-300.0)
        } else {
            Db(10.0 * factor.log10())
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Db) -> Db {
        Db(self.0.min(other.0))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Db) -> Db {
        Db(self.0.max(other.0))
    }
}

impl MilliWatts {
    /// Zero power.
    pub const ZERO: MilliWatts = MilliWatts(0.0);

    /// Creates a linear power from a raw milliwatt value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or NaN; linear power is non-negative
    /// by construction.
    #[inline]
    pub fn new(value: f64) -> Self {
        assert!(value >= 0.0, "negative linear power: {value}");
        MilliWatts(value)
    }

    /// Returns the raw milliwatt value.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to the logarithmic dBm domain.
    ///
    /// Zero power maps to [`Dbm::MIN`] instead of `-inf`.
    #[inline]
    pub fn to_dbm(self) -> Dbm {
        if self.0 <= 0.0 {
            Dbm::MIN
        } else {
            Dbm(10.0 * self.0.log10()).max(Dbm::MIN)
        }
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    #[inline]
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    #[inline]
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}

impl Sub for Dbm {
    type Output = Db;
    #[inline]
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Add for Db {
    type Output = Db;
    #[inline]
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl AddAssign for Db {
    #[inline]
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.0;
    }
}

impl Sub for Db {
    type Output = Db;
    #[inline]
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl SubAssign for Db {
    #[inline]
    fn sub_assign(&mut self, rhs: Db) {
        self.0 -= rhs.0;
    }
}

impl Neg for Db {
    type Output = Db;
    #[inline]
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl Add for MilliWatts {
    type Output = MilliWatts;
    #[inline]
    fn add(self, rhs: MilliWatts) -> MilliWatts {
        MilliWatts(self.0 + rhs.0)
    }
}

impl AddAssign for MilliWatts {
    #[inline]
    fn add_assign(&mut self, rhs: MilliWatts) {
        self.0 += rhs.0;
    }
}

impl Sub for MilliWatts {
    type Output = MilliWatts;
    /// Saturating at zero: interference bookkeeping may remove a component
    /// whose floating-point contribution slightly exceeds the remainder.
    #[inline]
    fn sub(self, rhs: MilliWatts) -> MilliWatts {
        MilliWatts((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for MilliWatts {
    type Output = MilliWatts;
    #[inline]
    fn mul(self, rhs: f64) -> MilliWatts {
        assert!(rhs >= 0.0, "negative power scale: {rhs}");
        MilliWatts(self.0 * rhs)
    }
}

impl Div<MilliWatts> for MilliWatts {
    type Output = f64;
    #[inline]
    fn div(self, rhs: MilliWatts) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for MilliWatts {
    fn sum<I: Iterator<Item = MilliWatts>>(iter: I) -> MilliWatts {
        iter.fold(MilliWatts::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

impl fmt::Display for MilliWatts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} mW", self.0)
    }
}

impl From<f64> for Dbm {
    fn from(v: f64) -> Self {
        Dbm::new(v)
    }
}

impl From<f64> for Db {
    fn from(v: f64) -> Self {
        Db::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn dbm_to_milliwatts_round_trip() {
        for v in [-95.0, -77.0, -33.0, 0.0, 4.0] {
            let mw = Dbm::new(v).to_milliwatts();
            assert!(close(mw.to_dbm().value(), v), "round trip failed for {v}");
        }
    }

    #[test]
    fn zero_dbm_is_one_milliwatt() {
        assert!(close(Dbm::new(0.0).to_milliwatts().value(), 1.0));
    }

    #[test]
    fn dbm_difference_is_ratio() {
        let snr = Dbm::new(-60.0) - Dbm::new(-90.0);
        assert_eq!(snr, Db::new(30.0));
    }

    #[test]
    fn attenuation_applies() {
        let rx = Dbm::new(0.0) - Db::new(25.0);
        assert_eq!(rx, Dbm::new(-25.0));
    }

    #[test]
    fn doubling_power_adds_three_db() {
        let one = Dbm::new(-50.0).to_milliwatts();
        let sum = one + one;
        assert!((sum.to_dbm().value() - (-46.9897)).abs() < 1e-3);
    }

    #[test]
    fn zero_milliwatts_maps_to_floor() {
        assert_eq!(MilliWatts::ZERO.to_dbm(), Dbm::MIN);
    }

    #[test]
    fn milliwatt_subtraction_saturates() {
        let a = MilliWatts::new(1.0);
        let b = MilliWatts::new(2.0);
        assert_eq!(a - b, MilliWatts::ZERO);
    }

    #[test]
    fn db_linear_round_trip() {
        for v in [-40.0, -3.0, 0.0, 3.0, 20.0] {
            assert!(close(Db::from_linear(Db::new(v).to_linear()).value(), v));
        }
    }

    #[test]
    fn db_from_nonpositive_linear_is_finite() {
        assert!(Db::from_linear(0.0).value().is_finite());
        assert!(Db::from_linear(-1.0).value().is_finite());
    }

    #[test]
    fn clamp_works() {
        let lo = Dbm::new(-95.0);
        let hi = Dbm::new(0.0);
        assert_eq!(Dbm::new(-120.0).clamp(lo, hi), lo);
        assert_eq!(Dbm::new(5.0).clamp(lo, hi), hi);
        assert_eq!(Dbm::new(-77.0).clamp(lo, hi), Dbm::new(-77.0));
    }

    #[test]
    #[should_panic(expected = "invalid clamp range")]
    fn clamp_rejects_inverted_range() {
        let _ = Dbm::new(0.0).clamp(Dbm::new(0.0), Dbm::new(-1.0));
    }

    #[test]
    fn milliwatts_sum() {
        let total: MilliWatts = [0.5, 0.25, 0.25].iter().map(|&v| MilliWatts::new(v)).sum();
        assert!(close(total.value(), 1.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dbm::new(-77.0).to_string(), "-77.00 dBm");
        assert_eq!(Db::new(3.5).to_string(), "3.50 dB");
    }
}
