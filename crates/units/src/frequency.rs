//! Channel centre frequencies.

use std::fmt;
use std::ops::{Add, Sub};

/// A radio frequency in megahertz.
///
/// 802.15.4 channel planning in the paper works entirely in integer-ish
/// MHz steps inside the 2.4 GHz ISM band (e.g. channels at 2458, 2461, …
/// 2473 MHz for the 15 MHz band with CFD = 3 MHz), but we keep `f64` so
/// sub-MHz plans remain expressible.
///
/// # Examples
///
/// ```
/// use nomc_units::Megahertz;
/// let a = Megahertz::new(2458.0);
/// let b = Megahertz::new(2461.0);
/// assert_eq!(b.distance_to(a), Megahertz::new(3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Megahertz(f64);

nomc_json::json_newtype!(Megahertz: f64);

impl Megahertz {
    /// Creates a frequency from a raw MHz value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    #[inline]
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "frequency must not be NaN");
        Megahertz(value)
    }

    /// Returns the raw MHz value.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Absolute centre-frequency distance (CFD) to another frequency.
    #[inline]
    pub fn distance_to(self, other: Megahertz) -> Megahertz {
        Megahertz((self.0 - other.0).abs())
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Megahertz) -> Megahertz {
        Megahertz(self.0.min(other.0))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Megahertz) -> Megahertz {
        Megahertz(self.0.max(other.0))
    }
}

impl Add for Megahertz {
    type Output = Megahertz;
    #[inline]
    fn add(self, rhs: Megahertz) -> Megahertz {
        Megahertz(self.0 + rhs.0)
    }
}

impl Sub for Megahertz {
    type Output = Megahertz;
    #[inline]
    fn sub(self, rhs: Megahertz) -> Megahertz {
        Megahertz(self.0 - rhs.0)
    }
}

impl fmt::Display for Megahertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MHz", self.0)
    }
}

impl From<f64> for Megahertz {
    fn from(v: f64) -> Self {
        Megahertz::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_nonnegative() {
        let a = Megahertz::new(2460.0);
        let b = Megahertz::new(2457.0);
        assert_eq!(a.distance_to(b), b.distance_to(a));
        assert_eq!(a.distance_to(b), Megahertz::new(3.0));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            Megahertz::new(2458.0) + Megahertz::new(5.0),
            Megahertz::new(2463.0)
        );
        assert_eq!(
            Megahertz::new(2463.0) - Megahertz::new(2458.0),
            Megahertz::new(5.0)
        );
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Megahertz::new(f64::NAN);
    }

    #[test]
    fn display() {
        assert_eq!(Megahertz::new(2461.0).to_string(), "2461 MHz");
    }
}
