//! Physical distances.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A distance in metres.
///
/// Propagation models take link distances in metres; placement generators
/// produce coordinates whose pairwise distances are `Meters`.
///
/// # Examples
///
/// ```
/// use nomc_units::Meters;
/// let d = Meters::new(2.0) + Meters::new(1.5);
/// assert_eq!(d, Meters::new(3.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Meters(f64);

nomc_json::json_newtype!(Meters: f64);

impl Meters {
    /// Creates a distance.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or NaN.
    #[inline]
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "distance must be finite and non-negative, got {value}"
        );
        Meters(value)
    }

    /// Returns the raw metre value.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Component-wise maximum; useful to impose a propagation model's
    /// minimum valid distance.
    #[inline]
    pub fn max(self, other: Meters) -> Meters {
        Meters(self.0.max(other.0))
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Meters) -> Meters {
        Meters(self.0.min(other.0))
    }
}

impl Add for Meters {
    type Output = Meters;
    #[inline]
    fn add(self, rhs: Meters) -> Meters {
        Meters(self.0 + rhs.0)
    }
}

impl Sub for Meters {
    type Output = Meters;
    /// Saturates at zero.
    #[inline]
    fn sub(self, rhs: Meters) -> Meters {
        Meters((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Meters {
    type Output = Meters;
    #[inline]
    fn mul(self, rhs: f64) -> Meters {
        Meters::new(self.0 * rhs)
    }
}

impl fmt::Display for Meters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} m", self.0)
    }
}

impl From<f64> for Meters {
    fn from(v: f64) -> Self {
        Meters::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Meters::new(1.0) + Meters::new(2.0), Meters::new(3.0));
        assert_eq!(Meters::new(1.0) - Meters::new(2.0), Meters::new(0.0));
        assert_eq!(Meters::new(2.0) * 1.5, Meters::new(3.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rejected() {
        let _ = Meters::new(-1.0);
    }

    #[test]
    fn display() {
        assert_eq!(Meters::new(2.0).to_string(), "2.00 m");
    }
}
