//! Property-based tests for the units crate.

use nomc_units::{Db, Dbm, Meters, MilliWatts, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn dbm_mw_round_trip(v in -150.0f64..30.0) {
        let back = Dbm::new(v).to_milliwatts().to_dbm().value();
        prop_assert!((back - v).abs() < 1e-6);
    }

    #[test]
    fn dbm_ordering_preserved_in_linear(a in -150.0f64..30.0, b in -150.0f64..30.0) {
        let (da, db) = (Dbm::new(a), Dbm::new(b));
        prop_assert_eq!(da < db, da.to_milliwatts() < db.to_milliwatts());
    }

    #[test]
    fn ratio_then_apply_is_identity(a in -150.0f64..30.0, b in -150.0f64..30.0) {
        let (da, db) = (Dbm::new(a), Dbm::new(b));
        let r: Db = da - db;
        let back = db + r;
        prop_assert!((back.value() - a).abs() < 1e-9);
    }

    #[test]
    fn linear_sum_at_least_max(a in -120.0f64..10.0, b in -120.0f64..10.0) {
        let sum = (Dbm::new(a).to_milliwatts() + Dbm::new(b).to_milliwatts()).to_dbm();
        prop_assert!(sum.value() >= a.max(b) - 1e-9);
        // and at most 3.02 dB above the max
        prop_assert!(sum.value() <= a.max(b) + 3.02);
    }

    #[test]
    fn time_add_sub_inverse(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t0 = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((t0 + dur) - t0, dur);
        prop_assert_eq!((t0 + dur) - dur, t0);
    }

    #[test]
    fn duration_sum_is_associative(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40, c in 0u64..1u64 << 40) {
        let (a, b, c) = (
            SimDuration::from_nanos(a),
            SimDuration::from_nanos(b),
            SimDuration::from_nanos(c),
        );
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn meters_triangleish(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let s = Meters::new(a) + Meters::new(b);
        prop_assert!(s.value() >= a.max(b));
    }

    #[test]
    fn milliwatts_never_negative(a in 0.0f64..1e3, b in 0.0f64..1e3) {
        let diff = MilliWatts::new(a) - MilliWatts::new(b);
        prop_assert!(diff.value() >= 0.0);
    }
}
