//! Property-based tests for the units crate.

use nomc_rngcore::check::{forall, range, zip2, zip3};
use nomc_rngcore::{check, check_eq};
use nomc_units::{Db, Dbm, Meters, MilliWatts, SimDuration, SimTime};

#[test]
fn dbm_mw_round_trip() {
    forall("dbm_mw_round_trip", 64, &range(-150.0f64..30.0), |&v| {
        let back = Dbm::new(v).to_milliwatts().to_dbm().value();
        check!((back - v).abs() < 1e-6, "{v} -> {back}");
        Ok(())
    });
}

#[test]
fn dbm_ordering_preserved_in_linear() {
    let g = zip2(range(-150.0f64..30.0), range(-150.0f64..30.0));
    forall("dbm_ordering_preserved_in_linear", 64, &g, |&(a, b)| {
        let (da, db) = (Dbm::new(a), Dbm::new(b));
        check_eq!(da < db, da.to_milliwatts() < db.to_milliwatts());
        Ok(())
    });
}

#[test]
fn ratio_then_apply_is_identity() {
    let g = zip2(range(-150.0f64..30.0), range(-150.0f64..30.0));
    forall("ratio_then_apply_is_identity", 64, &g, |&(a, b)| {
        let (da, db) = (Dbm::new(a), Dbm::new(b));
        let r: Db = da - db;
        let back = db + r;
        check!((back.value() - a).abs() < 1e-9, "{a} vs {}", back.value());
        Ok(())
    });
}

#[test]
fn linear_sum_at_least_max() {
    let g = zip2(range(-120.0f64..10.0), range(-120.0f64..10.0));
    forall("linear_sum_at_least_max", 64, &g, |&(a, b)| {
        let sum = (Dbm::new(a).to_milliwatts() + Dbm::new(b).to_milliwatts()).to_dbm();
        check!(sum.value() >= a.max(b) - 1e-9, "{a} + {b} -> {sum:?}");
        // and at most 3.02 dB above the max
        check!(sum.value() <= a.max(b) + 3.02, "{a} + {b} -> {sum:?}");
        Ok(())
    });
}

#[test]
fn time_add_sub_inverse() {
    let g = zip2(range(0u64..u64::MAX / 4), range(0u64..u64::MAX / 4));
    forall("time_add_sub_inverse", 64, &g, |&(t, d)| {
        let t0 = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        check_eq!((t0 + dur) - t0, dur);
        check_eq!((t0 + dur) - dur, t0);
        Ok(())
    });
}

#[test]
fn duration_sum_is_associative() {
    let g = zip3(
        range(0u64..1u64 << 40),
        range(0u64..1u64 << 40),
        range(0u64..1u64 << 40),
    );
    forall("duration_sum_is_associative", 64, &g, |&(a, b, c)| {
        let (a, b, c) = (
            SimDuration::from_nanos(a),
            SimDuration::from_nanos(b),
            SimDuration::from_nanos(c),
        );
        check_eq!((a + b) + c, a + (b + c));
        Ok(())
    });
}

#[test]
fn meters_triangleish() {
    let g = zip2(range(0.0f64..1e6), range(0.0f64..1e6));
    forall("meters_triangleish", 64, &g, |&(a, b)| {
        let s = Meters::new(a) + Meters::new(b);
        check!(s.value() >= a.max(b), "{a} + {b} -> {s:?}");
        Ok(())
    });
}

#[test]
fn milliwatts_never_negative() {
    let g = zip2(range(0.0f64..1e3), range(0.0f64..1e3));
    forall("milliwatts_never_negative", 64, &g, |&(a, b)| {
        let diff = MilliWatts::new(a) - MilliWatts::new(b);
        check!(diff.value() >= 0.0, "{a} - {b} -> {diff:?}");
        Ok(())
    });
}
