//! Property-based tests for channel planning and paper labelling.

use nomc_topology::paper::paper_labels;
use nomc_topology::spectrum::{ChannelPlan, FitPolicy};
use nomc_units::Megahertz;
use proptest::prelude::*;

proptest! {
    #[test]
    fn plans_are_on_grid_and_inside_band(
        start in 2400.0f64..2480.0,
        width in 1.0f64..30.0,
        cfd in 0.5f64..10.0,
    ) {
        for policy in [FitPolicy::Exclusive, FitPolicy::InclusiveEnds] {
            let Ok(plan) = ChannelPlan::fit(
                Megahertz::new(start),
                Megahertz::new(width),
                Megahertz::new(cfd),
                policy,
            ) else {
                // Only the exclusive policy may fail, and only when no
                // channel fits.
                prop_assert!(policy == FitPolicy::Exclusive && width < cfd);
                continue;
            };
            let channels = plan.channels();
            prop_assert!(!channels.is_empty());
            for (i, c) in channels.iter().enumerate() {
                let expected = start + cfd * i as f64;
                prop_assert!((c.value() - expected).abs() < 1e-9);
                prop_assert!(c.value() <= start + width + 1e-6);
            }
            // Inclusive fits at least as many channels as exclusive.
            if policy == FitPolicy::InclusiveEnds {
                if let Ok(ex) = ChannelPlan::fit(
                    Megahertz::new(start),
                    Megahertz::new(width),
                    Megahertz::new(cfd),
                    FitPolicy::Exclusive,
                ) {
                    prop_assert!(channels.len() >= ex.channels().len());
                }
            }
        }
    }

    #[test]
    fn middle_index_is_central(count in 1usize..20) {
        let plan = ChannelPlan::with_count(
            Megahertz::new(2458.0),
            Megahertz::new(3.0),
            count,
        );
        let mid = plan.middle_index();
        prop_assert!(mid < count);
        // No index is farther than one position more central.
        let center = (count - 1) as f64 / 2.0;
        for i in 0..count {
            prop_assert!(
                (mid as f64 - center).abs() <= (i as f64 - center).abs() + 1e-9,
                "index {i} more central than middle {mid} of {count}"
            );
        }
    }

    #[test]
    fn paper_labels_are_a_permutation(count in 1usize..20) {
        let labels = paper_labels(count);
        prop_assert_eq!(labels.len(), count);
        let mut seen: Vec<usize> = labels
            .iter()
            .map(|l| l.trim_start_matches('N').parse::<usize>().expect("N<k>"))
            .collect();
        seen.sort_unstable();
        let expect: Vec<usize> = (0..count).collect();
        prop_assert_eq!(seen, expect);
        // N0 is the plan's middle channel.
        let plan = ChannelPlan::with_count(
            Megahertz::new(2458.0),
            Megahertz::new(3.0),
            count,
        );
        prop_assert_eq!(labels[plan.middle_index()].as_str(), "N0");
    }

    #[test]
    fn labels_grow_toward_the_edges(count in 2usize..20) {
        // Walking outward from the middle, label ranks never decrease.
        let labels = paper_labels(count);
        let rank = |i: usize| {
            labels[i]
                .trim_start_matches('N')
                .parse::<usize>()
                .expect("rank")
        };
        let center = (count - 1) as f64 / 2.0;
        let mut indices: Vec<usize> = (0..count).collect();
        indices.sort_by(|&a, &b| {
            (a as f64 - center)
                .abs()
                .partial_cmp(&(b as f64 - center).abs())
                .expect("finite")
        });
        let ranks: Vec<usize> = indices.iter().map(|&i| rank(i)).collect();
        for w in ranks.windows(2) {
            prop_assert!(w[0] <= w[1] + 1, "ranks not outward-monotone: {ranks:?}");
        }
    }
}
