//! Property-based tests for channel planning and paper labelling.

use nomc_rngcore::check::{forall, range, zip3};
use nomc_rngcore::{check, check_eq};
use nomc_topology::paper::paper_labels;
use nomc_topology::spectrum::{ChannelPlan, FitPolicy};
use nomc_units::Megahertz;

#[test]
fn plans_are_on_grid_and_inside_band() {
    let g = zip3(
        range(2400.0f64..2480.0),
        range(1.0f64..30.0),
        range(0.5f64..10.0),
    );
    forall(
        "plans_are_on_grid_and_inside_band",
        64,
        &g,
        |&(start, width, cfd)| {
            for policy in [FitPolicy::Exclusive, FitPolicy::InclusiveEnds] {
                let Ok(plan) = ChannelPlan::fit(
                    Megahertz::new(start),
                    Megahertz::new(width),
                    Megahertz::new(cfd),
                    policy,
                ) else {
                    // Only the exclusive policy may fail, and only when no
                    // channel fits.
                    check!(policy == FitPolicy::Exclusive && width < cfd);
                    continue;
                };
                let channels = plan.channels();
                check!(!channels.is_empty());
                for (i, c) in channels.iter().enumerate() {
                    let expected = start + cfd * i as f64;
                    check!((c.value() - expected).abs() < 1e-9);
                    check!(c.value() <= start + width + 1e-6);
                }
                // Inclusive fits at least as many channels as exclusive.
                if policy == FitPolicy::InclusiveEnds {
                    if let Ok(ex) = ChannelPlan::fit(
                        Megahertz::new(start),
                        Megahertz::new(width),
                        Megahertz::new(cfd),
                        FitPolicy::Exclusive,
                    ) {
                        check!(channels.len() >= ex.channels().len());
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn middle_index_is_central() {
    forall(
        "middle_index_is_central",
        64,
        &range(1usize..20),
        |&count| {
            let plan = ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(3.0), count);
            let mid = plan.middle_index();
            check!(mid < count);
            // No index is farther than one position more central.
            let center = (count - 1) as f64 / 2.0;
            for i in 0..count {
                check!(
                    (mid as f64 - center).abs() <= (i as f64 - center).abs() + 1e-9,
                    "index {i} more central than middle {mid} of {count}"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn paper_labels_are_a_permutation() {
    forall(
        "paper_labels_are_a_permutation",
        64,
        &range(1usize..20),
        |&count| {
            let labels = paper_labels(count);
            check_eq!(labels.len(), count);
            let mut seen: Vec<usize> = labels
                .iter()
                .map(|l| l.trim_start_matches('N').parse::<usize>().expect("N<k>"))
                .collect();
            seen.sort_unstable();
            let expect: Vec<usize> = (0..count).collect();
            check_eq!(seen, expect);
            // N0 is the plan's middle channel.
            let plan = ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(3.0), count);
            check_eq!(labels[plan.middle_index()].as_str(), "N0");
            Ok(())
        },
    );
}

#[test]
fn labels_grow_toward_the_edges() {
    forall(
        "labels_grow_toward_the_edges",
        64,
        &range(2usize..20),
        |&count| {
            // Walking outward from the middle, label ranks never decrease.
            let labels = paper_labels(count);
            let rank = |i: usize| {
                labels[i]
                    .trim_start_matches('N')
                    .parse::<usize>()
                    .expect("rank")
            };
            let center = (count - 1) as f64 / 2.0;
            let mut indices: Vec<usize> = (0..count).collect();
            indices.sort_by(|&a, &b| {
                (a as f64 - center)
                    .abs()
                    .partial_cmp(&(b as f64 - center).abs())
                    .expect("finite")
            });
            let ranks: Vec<usize> = indices.iter().map(|&i| rank(i)).collect();
            for w in ranks.windows(2) {
                check!(w[0] <= w[1] + 1, "ranks not outward-monotone: {ranks:?}");
            }
            Ok(())
        },
    );
}
