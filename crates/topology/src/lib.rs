//! # nomc-topology
//!
//! Where the nodes are and which frequencies they use: 2-D [`geometry`],
//! random [`placement`] generators (dense region / clusters / uniform),
//! non-orthogonal [`spectrum`] planning (channel centres on a CFD grid
//! inside a band), and — most importantly — the [`paper`] module, which
//! encodes every named testbed configuration of the ICDCS 2010 paper
//! (Fig. 5, Fig. 13, Cases I/II/III of Figs. 22-24, and the 15/18 MHz
//! band layouts of §VI-B) as reproducible [`Deployment`] values.
//!
//! [`assignment`] adds the deployment-tool step the paper leaves to the
//! operator: choosing *which* network gets *which* non-orthogonal
//! channel, by minimizing predicted coupled interference.
//!
//! A [`Deployment`] is pure data: networks, each with a centre frequency
//! and a set of transmitter→receiver links with positions and powers.
//! The simulator (`nomc-sim`) turns a deployment plus behavioural options
//! into a runnable scenario.
//!
//! # Examples
//!
//! ```
//! use nomc_topology::spectrum::{ChannelPlan, FitPolicy};
//! use nomc_units::Megahertz;
//!
//! // The paper's §VI-B band: 2458-2473 MHz, CFD = 3 MHz → 6 channels.
//! let plan = ChannelPlan::fit(
//!     Megahertz::new(2458.0),
//!     Megahertz::new(15.0),
//!     Megahertz::new(3.0),
//!     FitPolicy::InclusiveEnds,
//! ).unwrap();
//! assert_eq!(plan.channels().len(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod deployment;
pub mod geometry;
pub mod paper;
pub mod placement;
pub mod spectrum;
pub mod tree;

pub use deployment::{Deployment, LinkSpec, NetworkSpec};
pub use geometry::Point;
pub use spectrum::{ChannelPlan, FitPolicy};
