//! Random placement generators for the paper's Case I/II/III topologies.

use crate::geometry::Point;
use nomc_rngcore::Rng;
use nomc_units::Dbm;

/// A rectangular region `[x0, x0+w] × [y0, y0+h]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    /// Lower-left corner.
    pub origin: Point,
    /// Width (m).
    pub width: f64,
    /// Height (m).
    pub height: f64,
}

impl Region {
    /// Creates a region.
    ///
    /// # Panics
    ///
    /// Panics on non-positive dimensions.
    pub fn new(origin: Point, width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0,
            "region must have positive area"
        );
        Region {
            origin,
            width,
            height,
        }
    }

    /// A `size × size` square centred at the origin.
    pub fn centered_square(size: f64) -> Self {
        Region::new(Point::new(-size / 2.0, -size / 2.0), size, size)
    }

    /// Uniformly samples a point inside the region.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        Point::new(
            self.origin.x + rng.gen::<f64>() * self.width,
            self.origin.y + rng.gen::<f64>() * self.height,
        )
    }

    /// Whether the region contains `p` (inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.origin.x
            && p.x <= self.origin.x + self.width
            && p.y >= self.origin.y
            && p.y <= self.origin.y + self.height
    }

    /// The region's centre point.
    pub fn center(&self) -> Point {
        Point::new(
            self.origin.x + self.width / 2.0,
            self.origin.y + self.height / 2.0,
        )
    }
}

/// Samples a transmitter/receiver pair uniformly in `region` with link
/// length at most `max_link` (re-draws the receiver until it is within
/// range — the paper's testbed links are all short).
pub fn sample_link<R: Rng + ?Sized>(rng: &mut R, region: &Region, max_link: f64) -> (Point, Point) {
    let tx = region.sample(rng);
    loop {
        // Draw the receiver in a disc around the transmitter, clipped to
        // the region.
        let angle = rng.gen::<f64>() * std::f64::consts::TAU;
        let dist = 0.5 + rng.gen::<f64>() * (max_link - 0.5).max(0.1);
        let rx = tx.offset(dist * angle.cos(), dist * angle.sin());
        if region.contains(rx) {
            return (tx, rx);
        }
    }
}

/// Samples a random per-node transmit power uniformly in
/// `[min_dbm, max_dbm]` — the paper's "[-22 dBm, 0 dBm] at random" for
/// the general network configurations (§VI-B-4).
pub fn sample_power<R: Rng + ?Sized>(rng: &mut R, min_dbm: Dbm, max_dbm: Dbm) -> Dbm {
    assert!(min_dbm <= max_dbm, "inverted power range");
    let (lo, hi) = (min_dbm.value(), max_dbm.value());
    Dbm::new(lo + rng.gen::<f64>() * (hi - lo))
}

/// Cluster centres for Case II: `count` clusters on a grid with `pitch`
/// metres spacing, rows of `per_row`.
pub fn grid_cluster_centers(count: usize, per_row: usize, pitch: f64) -> Vec<Point> {
    assert!(per_row > 0, "per_row must be positive");
    (0..count)
        .map(|i| {
            let row = i / per_row;
            let col = i % per_row;
            Point::new(col as f64 * pitch, row as f64 * pitch)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomc_rngcore::rngs::StdRng;
    use nomc_rngcore::SeedableRng;

    #[test]
    fn samples_stay_inside() {
        let mut rng = StdRng::seed_from_u64(5);
        let r = Region::centered_square(6.0);
        for _ in 0..1000 {
            assert!(r.contains(r.sample(&mut rng)));
        }
    }

    #[test]
    fn link_respects_max_length() {
        let mut rng = StdRng::seed_from_u64(6);
        let r = Region::centered_square(20.0);
        for _ in 0..500 {
            let (tx, rx) = sample_link(&mut rng, &r, 3.0);
            assert!(tx.distance_to(rx).value() <= 3.0 + 1e-9);
            assert!(r.contains(tx) && r.contains(rx));
        }
    }

    #[test]
    fn power_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let p = sample_power(&mut rng, Dbm::new(-22.0), Dbm::new(0.0));
            assert!((-22.0..=0.0).contains(&p.value()));
        }
    }

    #[test]
    fn power_covers_range() {
        let mut rng = StdRng::seed_from_u64(8);
        let ps: Vec<f64> = (0..2000)
            .map(|_| sample_power(&mut rng, Dbm::new(-22.0), Dbm::new(0.0)).value())
            .collect();
        assert!(ps.iter().cloned().fold(f64::MAX, f64::min) < -20.0);
        assert!(ps.iter().cloned().fold(f64::MIN, f64::max) > -2.0);
    }

    #[test]
    fn grid_centers() {
        let c = grid_cluster_centers(6, 3, 8.0);
        assert_eq!(c.len(), 6);
        assert_eq!(c[0], Point::new(0.0, 0.0));
        assert_eq!(c[2], Point::new(16.0, 0.0));
        assert_eq!(c[3], Point::new(0.0, 8.0));
        assert_eq!(c[5], Point::new(16.0, 8.0));
    }

    #[test]
    fn region_center() {
        assert_eq!(Region::centered_square(6.0).center(), Point::new(0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "positive area")]
    fn degenerate_region_rejected() {
        let _ = Region::new(Point::ORIGIN, 0.0, 1.0);
    }
}
