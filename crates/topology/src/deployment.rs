//! Deployment descriptions: pure data consumed by the simulator.

use crate::geometry::Point;
use nomc_units::{Dbm, Megahertz};

/// One unidirectional transmitter → receiver link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Transmitter position.
    pub tx: Point,
    /// Receiver position.
    pub rx: Point,
    /// Transmitter output power.
    pub tx_power: Dbm,
}

nomc_json::json_struct!(LinkSpec {
    tx: Point,
    rx: Point,
    tx_power: Dbm,
});

impl LinkSpec {
    /// Creates a link.
    pub fn new(tx: Point, rx: Point, tx_power: Dbm) -> Self {
        LinkSpec { tx, rx, tx_power }
    }

    /// Link length.
    pub fn distance(&self) -> nomc_units::Meters {
        self.tx.distance_to(self.rx)
    }
}

/// One network: a set of links sharing a channel. The paper's networks
/// are 4 MicaZ nodes = 2 links.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// Channel centre frequency.
    pub frequency: Megahertz,
    /// The network's links.
    pub links: Vec<LinkSpec>,
}

nomc_json::json_struct!(NetworkSpec {
    frequency: Megahertz,
    links: Vec<LinkSpec>,
});

impl NetworkSpec {
    /// Creates a network on `frequency` with the given links.
    pub fn new(frequency: Megahertz, links: Vec<LinkSpec>) -> Self {
        NetworkSpec { frequency, links }
    }

    /// Geometric centroid of all node positions (for diagnostics).
    pub fn centroid(&self) -> Point {
        let n = (self.links.len() * 2).max(1) as f64;
        let (mut sx, mut sy) = (0.0, 0.0);
        for l in &self.links {
            sx += l.tx.x + l.rx.x;
            sy += l.tx.y + l.rx.y;
        }
        Point::new(sx / n, sy / n)
    }
}

/// A complete deployment: several networks on (possibly non-orthogonal)
/// channels.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Deployment {
    /// All networks, typically ordered by channel frequency.
    pub networks: Vec<NetworkSpec>,
}

nomc_json::json_struct!(Deployment {
    networks: Vec<NetworkSpec>,
});

impl Deployment {
    /// Creates a deployment from networks.
    pub fn new(networks: Vec<NetworkSpec>) -> Self {
        Deployment { networks }
    }

    /// Total number of links across all networks.
    pub fn link_count(&self) -> usize {
        self.networks.iter().map(|n| n.links.len()).sum()
    }

    /// Total number of nodes (2 per link).
    pub fn node_count(&self) -> usize {
        self.link_count() * 2
    }

    /// The smallest centre-frequency distance between any two networks —
    /// the deployment's effective CFD.
    ///
    /// Returns `None` with fewer than two networks.
    pub fn min_cfd(&self) -> Option<Megahertz> {
        let mut freqs: Vec<f64> = self.networks.iter().map(|n| n.frequency.value()).collect();
        freqs.sort_by(|a, b| a.partial_cmp(b).expect("finite freqs"));
        freqs
            .windows(2)
            .map(|w| w[1] - w[0])
            .min_by(|a, b| a.partial_cmp(b).expect("finite"))
            .map(Megahertz::new)
    }

    /// Validates that the deployment is simulatable.
    ///
    /// # Errors
    ///
    /// Returns a message if it has no networks, a network has no links,
    /// or two networks share a frequency (the builder should merge them).
    pub fn validate(&self) -> Result<(), String> {
        if self.networks.is_empty() {
            return Err("deployment has no networks".into());
        }
        for (i, n) in self.networks.iter().enumerate() {
            if n.links.is_empty() {
                return Err(format!("network {i} has no links"));
            }
        }
        for i in 0..self.networks.len() {
            for j in (i + 1)..self.networks.len() {
                if (self.networks[i].frequency.value() - self.networks[j].frequency.value()).abs()
                    < f64::EPSILON
                {
                    return Err(format!(
                        "networks {i} and {j} share frequency {}",
                        self.networks[i].frequency
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_network(freq: f64) -> NetworkSpec {
        NetworkSpec::new(
            Megahertz::new(freq),
            vec![
                LinkSpec::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0), Dbm::new(0.0)),
                LinkSpec::new(Point::new(0.0, 1.0), Point::new(2.0, 1.0), Dbm::new(0.0)),
            ],
        )
    }

    #[test]
    fn counts() {
        let d = Deployment::new(vec![sample_network(2461.0), sample_network(2464.0)]);
        assert_eq!(d.link_count(), 4);
        assert_eq!(d.node_count(), 8);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn min_cfd() {
        let d = Deployment::new(vec![
            sample_network(2458.0),
            sample_network(2464.0),
            sample_network(2461.0),
        ]);
        assert_eq!(d.min_cfd(), Some(Megahertz::new(3.0)));
        assert_eq!(
            Deployment::new(vec![sample_network(2458.0)]).min_cfd(),
            None
        );
    }

    #[test]
    fn centroid() {
        let n = sample_network(2458.0);
        assert_eq!(n.centroid(), Point::new(1.0, 0.5));
    }

    #[test]
    fn validation_rejects_duplicates_and_empties() {
        let d = Deployment::new(vec![sample_network(2458.0), sample_network(2458.0)]);
        assert!(d.validate().unwrap_err().contains("share frequency"));

        let d = Deployment::new(vec![NetworkSpec::new(Megahertz::new(2458.0), vec![])]);
        assert!(d.validate().unwrap_err().contains("no links"));

        assert!(Deployment::default().validate().is_err());
    }

    #[test]
    fn link_distance() {
        let l = LinkSpec::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0), Dbm::new(0.0));
        assert_eq!(l.distance().value(), 2.0);
    }
}
