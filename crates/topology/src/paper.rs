//! The paper's named testbed configurations, as reproducible deployments.
//!
//! All geometry here is the reproduction's *calibrated* stand-in for the
//! authors' physical lab (which the paper describes only qualitatively):
//! link lengths, inter-network spacing and interferer placement were
//! chosen so that the simulated versions of the paper's calibration
//! figures (Figs. 4, 6-10) match the measured ones, and are then held
//! fixed for every headline experiment. See DESIGN.md §2.

use crate::deployment::{Deployment, LinkSpec, NetworkSpec};
use crate::geometry::Point;
use crate::placement::{grid_cluster_centers, sample_link, sample_power, Region};
use crate::spectrum::ChannelPlan;
use nomc_rngcore::Rng;
use nomc_units::{Dbm, Megahertz};

/// Link length of a "standard" testbed network (m).
pub const STANDARD_LINK_M: f64 = 2.0;

/// Inter-network spacing of the controlled line deployments (m),
/// calibrated so adjacent-channel sensed power sits a few dB below the
/// −77 dBm default threshold (mild suppression, as in the paper's
/// Figs. 14-18).
pub const LINE_SPACING_M: f64 = 4.5;

/// A standard 4-mote network: two crossed 2 m links around `center`.
pub fn standard_network(center: Point, frequency: Megahertz, tx_power: Dbm) -> NetworkSpec {
    let half = STANDARD_LINK_M / 2.0;
    NetworkSpec::new(
        frequency,
        vec![
            LinkSpec::new(
                center.offset(-half, 0.0),
                center.offset(half, 0.0),
                tx_power,
            ),
            LinkSpec::new(
                center.offset(0.0, half),
                center.offset(0.0, -half),
                tx_power,
            ),
        ],
    )
}

/// §VI-A / Fig. 13: `count` networks in a line, `LINE_SPACING_M` apart,
/// ordered (and positioned) by ascending frequency, all at `tx_power`.
///
/// Adjacent channels are physical neighbours, so the middle-frequency
/// network (the paper's N0) is also geometrically central.
pub fn line_deployment(plan: &ChannelPlan, tx_power: Dbm) -> Deployment {
    let networks = plan
        .channels()
        .iter()
        .enumerate()
        .map(|(i, &freq)| {
            standard_network(Point::new(i as f64 * LINE_SPACING_M, 0.0), freq, tx_power)
        })
        .collect();
    Deployment::new(networks)
}

/// Fig. 5: one link of interest on the centre channel plus four
/// interferer networks at CFD ±1·cfd and ±2·cfd.
///
/// Returns the deployment and the index of the link-of-interest's network
/// (always the middle one). The interferer networks sit ~3 m from the
/// link's transmitter (so their leakage is sensed above the default CCA
/// threshold) and ~4-5 m from its receiver (so the leakage is tolerable
/// interference, not a packet killer).
pub fn fig5_deployment(
    center_freq: Megahertz,
    cfd: Megahertz,
    link_power: Dbm,
    interferer_power: Dbm,
) -> (Deployment, usize) {
    let c = cfd.value();
    let f = center_freq.value();
    let link = NetworkSpec::new(
        center_freq,
        vec![LinkSpec::new(
            Point::new(0.0, 0.0),
            Point::new(STANDARD_LINK_M, 0.0),
            link_power,
        )],
    );
    // Interferer network centres ≈ 3 m from the link TX at (0,0).
    let interferer_centers = [
        (Point::new(-2.1, 2.1), f - c),
        (Point::new(-2.1, -2.1), f + c),
        (Point::new(-3.0, 0.0), f - 2.0 * c),
        (Point::new(0.0, 3.0), f + 2.0 * c),
    ];
    let mut networks: Vec<NetworkSpec> = interferer_centers
        .iter()
        .map(|&(center, freq)| standard_network(center, Megahertz::new(freq), interferer_power))
        .collect();
    networks.push(link);
    networks.sort_by(|a, b| {
        a.frequency
            .value()
            .partial_cmp(&b.frequency.value())
            .expect("finite")
    });
    let link_index = networks
        .iter()
        .position(|n| n.frequency == center_freq)
        .expect("link network present");
    (Deployment::new(networks), link_index)
}

/// Fig. 8: the Fig. 5 configuration plus three additional co-channel
/// links on the centre channel.
///
/// The co-channel transmitters sit 2.5-4 m from the link-of-interest's
/// transmitter; the weakest of them bounds how far the CCA threshold may
/// be relaxed (the "Min RSS" line in the paper's Fig. 8).
pub fn fig8_deployment(
    center_freq: Megahertz,
    cfd: Megahertz,
    link_power: Dbm,
    interferer_power: Dbm,
) -> (Deployment, usize) {
    let (mut deployment, link_index) =
        fig5_deployment(center_freq, cfd, link_power, interferer_power);
    let cochannel = &mut deployment.networks[link_index].links;
    cochannel.push(LinkSpec::new(
        Point::new(1.0, 2.0),
        Point::new(3.0, 2.0),
        interferer_power,
    ));
    cochannel.push(LinkSpec::new(
        Point::new(1.5, -2.2),
        Point::new(3.5, -2.2),
        interferer_power,
    ));
    cochannel.push(LinkSpec::new(
        Point::new(4.2, 1.0),
        Point::new(6.2, 1.0),
        interferer_power,
    ));
    (deployment, link_index)
}

/// §III-B / Fig. 3-4: the collision experiment — a "normal" link and an
/// "attacker" link on channels `cfd` apart, crossed so each transmitter
/// sits 2 m from the *other* link's receiver while its own receiver is
/// 4 m (normal) / 3.8 m (attacker) away.
///
/// Returns `(deployment, normal_index, attacker_index)`.
pub fn fig4_deployment(
    base_freq: Megahertz,
    cfd: Megahertz,
    tx_power: Dbm,
) -> (Deployment, usize, usize) {
    let normal = NetworkSpec::new(
        base_freq,
        vec![LinkSpec::new(
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            tx_power,
        )],
    );
    let attacker_freq = Megahertz::new(base_freq.value() + cfd.value());
    let attacker = NetworkSpec::new(
        attacker_freq,
        vec![LinkSpec::new(
            Point::new(3.8, 2.0),
            Point::new(0.0, 2.0),
            tx_power,
        )],
    );
    (Deployment::new(vec![normal, attacker]), 0, 1)
}

/// Case I (Fig. 22): all networks in one dense interfering region — every
/// node inside a 3 × 3 m area (bench-top density), link lengths ≤ 1.5 m,
/// per-node powers drawn from `power_range` (the paper's [−22, 0] dBm).
pub fn case1_deployment<R: Rng + ?Sized>(
    rng: &mut R,
    plan: &ChannelPlan,
    links_per_network: usize,
    power_range: (f64, f64),
) -> Deployment {
    let region = Region::centered_square(3.0);
    random_networks(rng, plan, links_per_network, &region, 1.5, power_range)
}

/// Case II (Fig. 23): each network clustered in its own "office room" —
/// 2 × 2 m clusters on a 3 m grid, three per row (adjacent rooms are
/// close enough that neighbour-channel leakage is still sensed, but the
/// inter-channel pressure is weaker than Case I's shared bench).
pub fn case2_deployment<R: Rng + ?Sized>(
    rng: &mut R,
    plan: &ChannelPlan,
    links_per_network: usize,
    power_range: (f64, f64),
) -> Deployment {
    let centers = grid_cluster_centers(plan.channels().len(), 3, 3.0);
    let networks = plan
        .channels()
        .iter()
        .zip(centers)
        .map(|(&freq, center)| {
            let region = Region::new(center.offset(-1.0, -1.0), 2.0, 2.0);
            let links = (0..links_per_network)
                .map(|_| {
                    let (tx, rx) = sample_link(rng, &region, 2.0);
                    LinkSpec::new(
                        tx,
                        rx,
                        sample_power(rng, Dbm::new(power_range.0), Dbm::new(power_range.1)),
                    )
                })
                .collect();
            NetworkSpec::new(freq, links)
        })
        .collect();
    Deployment::new(networks)
}

/// Case III (Fig. 24): all nodes random in a larger 6 × 6 m region, with
/// link lengths up to 2.5 m — same-network nodes can end up far apart
/// relative to interferers, so overheard co-channel RSSIs are low and
/// (per the paper) constrain DCN's threshold relaxation.
pub fn case3_deployment<R: Rng + ?Sized>(
    rng: &mut R,
    plan: &ChannelPlan,
    links_per_network: usize,
    power_range: (f64, f64),
) -> Deployment {
    let region = Region::centered_square(6.0);
    random_networks(rng, plan, links_per_network, &region, 2.5, power_range)
}

/// §VI-A (Fig. 13): the five-network CFD study — all networks share one
/// dense 4 × 4 m region (links ≤ 2 m) at a fixed transmit power. The
/// shared region is what makes CFD = 2 MHz *damaging* (not merely
/// suppressive) the way the paper's Figs. 16-18 show.
pub fn vi_a_deployment<R: Rng + ?Sized>(
    rng: &mut R,
    plan: &ChannelPlan,
    links_per_network: usize,
    tx_power: Dbm,
) -> Deployment {
    let region = Region::centered_square(4.0);
    let networks = plan
        .channels()
        .iter()
        .map(|&freq| {
            let links = (0..links_per_network)
                .map(|_| {
                    let (tx, rx) = sample_link(rng, &region, 2.0);
                    LinkSpec::new(tx, rx, tx_power)
                })
                .collect();
            NetworkSpec::new(freq, links)
        })
        .collect();
    Deployment::new(networks)
}

/// Shared helper: `links_per_network` random links per channel inside
/// `region`.
fn random_networks<R: Rng + ?Sized>(
    rng: &mut R,
    plan: &ChannelPlan,
    links_per_network: usize,
    region: &Region,
    max_link: f64,
    power_range: (f64, f64),
) -> Deployment {
    let networks = plan
        .channels()
        .iter()
        .map(|&freq| {
            let links = (0..links_per_network)
                .map(|_| {
                    let (tx, rx) = sample_link(rng, region, max_link);
                    LinkSpec::new(
                        tx,
                        rx,
                        sample_power(rng, Dbm::new(power_range.0), Dbm::new(power_range.1)),
                    )
                })
                .collect();
            NetworkSpec::new(freq, links)
        })
        .collect();
    Deployment::new(networks)
}

/// Maps deployment order (ascending frequency) to the paper's network
/// names: `N0` is the middle frequency, low indices are close to the
/// middle, and the largest indices sit at the band edges (§VI-B-3).
///
/// # Examples
///
/// ```
/// // 5 networks: [f−2c, f−c, f0, f+c, f+2c] → [N3, N1, N0, N2, N4]
/// assert_eq!(nomc_topology::paper::paper_labels(5), ["N3", "N1", "N0", "N2", "N4"]);
/// ```
pub fn paper_labels(count: usize) -> Vec<String> {
    let mid = (count.saturating_sub(1)) as f64 / 2.0;
    // Rank deployment indices by distance from the band centre (ties:
    // lower frequency first), then hand out N0, N1, … in that order.
    let mut order: Vec<usize> = (0..count).collect();
    order.sort_by_key(|&i| {
        // Distances are multiples of 0.5, so doubling keeps them integral.
        let d = ((i as f64 - mid).abs() * 2.0) as usize;
        (d, i)
    });
    let mut labels = vec![String::new(); count];
    for (rank, &idx) in order.iter().enumerate() {
        labels[idx] = format!("N{rank}");
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomc_rngcore::rngs::StdRng;
    use nomc_rngcore::SeedableRng;

    fn plan6() -> ChannelPlan {
        ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(3.0), 6)
    }

    #[test]
    fn standard_network_has_two_2m_links() {
        let n = standard_network(Point::new(10.0, 0.0), Megahertz::new(2460.0), Dbm::new(0.0));
        assert_eq!(n.links.len(), 2);
        for l in &n.links {
            assert!((l.distance().value() - 2.0).abs() < 1e-9);
        }
        assert_eq!(n.centroid(), Point::new(10.0, 0.0));
    }

    #[test]
    fn line_deployment_spacing() {
        let d = line_deployment(&plan6(), Dbm::new(0.0));
        assert_eq!(d.networks.len(), 6);
        assert!(d.validate().is_ok());
        let c0 = d.networks[0].centroid();
        let c1 = d.networks[1].centroid();
        assert!((c0.distance_to(c1).value() - LINE_SPACING_M).abs() < 1e-9);
        // Ordered by frequency.
        assert!(d
            .networks
            .windows(2)
            .all(|w| w[0].frequency < w[1].frequency));
    }

    #[test]
    fn fig5_structure() {
        let (d, link_idx) = fig5_deployment(
            Megahertz::new(2464.0),
            Megahertz::new(3.0),
            Dbm::new(0.0),
            Dbm::new(0.0),
        );
        assert_eq!(d.networks.len(), 5);
        assert!(d.validate().is_ok());
        assert_eq!(d.networks[link_idx].links.len(), 1);
        assert_eq!(d.networks[link_idx].frequency, Megahertz::new(2464.0));
        // Frequencies are f ± {0, 3, 6}.
        let freqs: Vec<f64> = d.networks.iter().map(|n| n.frequency.value()).collect();
        assert_eq!(freqs, vec![2458.0, 2461.0, 2464.0, 2467.0, 2470.0]);
        // Interferer centres ≈ 3 m from the link TX at the origin.
        for (i, n) in d.networks.iter().enumerate() {
            if i != link_idx {
                let dist = n.centroid().distance_to(Point::ORIGIN).value();
                assert!((2.9..=3.1).contains(&dist), "network {i} at {dist} m");
            }
        }
    }

    #[test]
    fn fig8_adds_three_cochannel_links() {
        let (d, link_idx) = fig8_deployment(
            Megahertz::new(2464.0),
            Megahertz::new(3.0),
            Dbm::new(0.0),
            Dbm::new(0.0),
        );
        assert_eq!(d.networks[link_idx].links.len(), 4);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn fig4_cross_geometry() {
        let (d, n_idx, a_idx) =
            fig4_deployment(Megahertz::new(2460.0), Megahertz::new(3.0), Dbm::new(0.0));
        let normal = &d.networks[n_idx].links[0];
        let attacker = &d.networks[a_idx].links[0];
        assert!((normal.distance().value() - 4.0).abs() < 1e-9);
        assert!((attacker.distance().value() - 3.8).abs() < 1e-9);
        // Each transmitter is 2 m from the other link's receiver.
        assert!((attacker.tx.distance_to(normal.rx).value() - 2.01).abs() < 0.05);
        assert!((normal.tx.distance_to(attacker.rx).value() - 2.0).abs() < 1e-9);
        assert_eq!(
            d.networks[a_idx]
                .frequency
                .distance_to(d.networks[n_idx].frequency),
            Megahertz::new(3.0)
        );
    }

    #[test]
    fn case_deployments_are_valid_and_sized() {
        let mut rng = StdRng::seed_from_u64(42);
        for d in [
            case1_deployment(&mut rng, &plan6(), 2, (-22.0, 0.0)),
            case2_deployment(&mut rng, &plan6(), 2, (-22.0, 0.0)),
            case3_deployment(&mut rng, &plan6(), 2, (-22.0, 0.0)),
        ] {
            assert!(d.validate().is_ok());
            assert_eq!(d.networks.len(), 6);
            assert_eq!(d.link_count(), 12);
            for n in &d.networks {
                for l in &n.links {
                    assert!((-22.0..=0.0).contains(&l.tx_power.value()));
                }
            }
        }
    }

    #[test]
    fn case1_is_dense_case2_is_clustered() {
        let mut rng = StdRng::seed_from_u64(1);
        let d1 = case1_deployment(&mut rng, &plan6(), 2, (-22.0, 0.0));
        // Dense: all centroids within the 3x3 region.
        for n in &d1.networks {
            let c = n.centroid();
            assert!(c.x.abs() <= 1.5 && c.y.abs() <= 1.5);
        }
        let d2 = case2_deployment(&mut rng, &plan6(), 2, (-22.0, 0.0));
        // Clustered: network centroids ≈ 3 m grid apart.
        let c0 = d2.networks[0].centroid();
        let c1 = d2.networks[1].centroid();
        assert!(c0.distance_to(c1).value() > 2.0);
    }

    #[test]
    fn labels_match_paper_naming() {
        assert_eq!(paper_labels(5), ["N3", "N1", "N0", "N2", "N4"]);
        assert_eq!(paper_labels(6), ["N4", "N2", "N0", "N1", "N3", "N5"]);
        assert_eq!(paper_labels(1), ["N0"]);
        let l7 = paper_labels(7);
        assert_eq!(l7[3], "N0");
        assert_eq!(l7[0], "N5");
        assert_eq!(l7[6], "N6");
    }

    #[test]
    fn deployments_deterministic_per_seed() {
        let a = case3_deployment(&mut StdRng::seed_from_u64(9), &plan6(), 2, (-22.0, 0.0));
        let b = case3_deployment(&mut StdRng::seed_from_u64(9), &plan6(), 2, (-22.0, 0.0));
        assert_eq!(a, b);
        let c = case3_deployment(&mut StdRng::seed_from_u64(10), &plan6(), 2, (-22.0, 0.0));
        assert_ne!(a, c);
    }
}
