//! Non-orthogonal channel planning.
//!
//! Given a spectrum band and a centre-frequency distance (CFD), a
//! [`ChannelPlan`] places channel centres on the CFD grid. The paper uses
//! two counting conventions (it is not fully consistent between §III and
//! §VI), so both are implemented:
//!
//! * [`FitPolicy::Exclusive`]: `floor(width / cfd)` channels starting at
//!   the band edge — reproduces §III's counts (12 MHz: 1 ch @ 9 MHz,
//!   2 @ 5, 3 @ 4, 4 @ 3, 6 @ 2);
//! * [`FitPolicy::InclusiveEnds`]: centres at both band edges,
//!   `floor(span / cfd) + 1` channels — reproduces §VI-B's counts
//!   (2458-2473 MHz: 6 ch @ 3 MHz, 4 @ 5 MHz; 18 MHz: 7 ch @ 3 MHz).

use nomc_units::Megahertz;

/// How to count channels inside a band (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FitPolicy {
    /// `floor(width / cfd)` channels.
    Exclusive,
    /// `floor(width / cfd) + 1` channels, centres at both edges.
    InclusiveEnds,
}

/// A set of channel centres spaced `cfd` apart inside a band.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelPlan {
    start: Megahertz,
    cfd: Megahertz,
    channels: Vec<Megahertz>,
}

impl ChannelPlan {
    /// Plans channels in the band `[start, start + width]`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if `cfd` or `width` is non-positive, or the
    /// policy yields zero channels.
    pub fn fit(
        start: Megahertz,
        width: Megahertz,
        cfd: Megahertz,
        policy: FitPolicy,
    ) -> Result<Self, PlanError> {
        if cfd.value() <= 0.0 {
            return Err(PlanError::NonPositiveCfd(cfd));
        }
        if width.value() <= 0.0 {
            return Err(PlanError::NonPositiveWidth(width));
        }
        let ratio = width.value() / cfd.value();
        // Guard the floor against 3.9999999 artefacts.
        let n = match policy {
            FitPolicy::Exclusive => (ratio + 1e-9).floor() as usize,
            FitPolicy::InclusiveEnds => (ratio + 1e-9).floor() as usize + 1,
        };
        if n == 0 {
            return Err(PlanError::NoChannelsFit { width, cfd });
        }
        Ok(ChannelPlan::with_count(start, cfd, n))
    }

    /// Plans exactly `count` channels starting at `start`, spaced `cfd`.
    ///
    /// Used for the paper's §VI-A experiments, which fix five networks
    /// and vary only the CFD.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `cfd` non-positive.
    pub fn with_count(start: Megahertz, cfd: Megahertz, count: usize) -> Self {
        assert!(count > 0, "a channel plan needs at least one channel");
        assert!(cfd.value() > 0.0, "CFD must be positive");
        let channels = (0..count)
            .map(|i| Megahertz::new(start.value() + cfd.value() * i as f64))
            .collect();
        ChannelPlan {
            start,
            cfd,
            channels,
        }
    }

    /// The channel centre frequencies, ascending.
    pub fn channels(&self) -> &[Megahertz] {
        &self.channels
    }

    /// The CFD between neighbouring channels.
    pub fn cfd(&self) -> Megahertz {
        self.cfd
    }

    /// The lowest channel centre.
    pub fn start(&self) -> Megahertz {
        self.start
    }

    /// Index of the channel closest to the middle of the plan — the
    /// paper's `N0` ("median frequency") network.
    ///
    /// For an even count this is the lower-middle index, matching a
    /// 6-network plan where N0 is the 3rd channel.
    pub fn middle_index(&self) -> usize {
        (self.channels.len() - 1) / 2
    }

    /// Total spanned width (first to last centre).
    pub fn span(&self) -> Megahertz {
        Megahertz::new(self.cfd.value() * (self.channels.len() - 1) as f64)
    }
}

/// Errors planning a channel set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanError {
    /// CFD was zero or negative.
    NonPositiveCfd(Megahertz),
    /// Band width was zero or negative.
    NonPositiveWidth(Megahertz),
    /// No channel fits the band under the chosen policy.
    NoChannelsFit {
        /// The requested band width.
        width: Megahertz,
        /// The requested CFD.
        cfd: Megahertz,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NonPositiveCfd(c) => write!(f, "CFD must be positive, got {c}"),
            PlanError::NonPositiveWidth(w) => write!(f, "band width must be positive, got {w}"),
            PlanError::NoChannelsFit { width, cfd } => {
                write!(f, "no channels fit: width {width}, CFD {cfd}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn mhz(v: f64) -> Megahertz {
        Megahertz::new(v)
    }

    #[test]
    fn exclusive_matches_section3_counts() {
        // Paper §III-A: 12 MHz band.
        for (cfd, expect) in [(9.0, 1), (5.0, 2), (4.0, 3), (3.0, 4), (2.0, 6)] {
            let plan =
                ChannelPlan::fit(mhz(2460.0), mhz(12.0), mhz(cfd), FitPolicy::Exclusive).unwrap();
            assert_eq!(plan.channels().len(), expect, "CFD {cfd}");
        }
    }

    #[test]
    fn inclusive_matches_section6_counts() {
        // §VI-B: 2458-2473 (15 MHz): 6 channels @ 3 MHz, 4 @ 5 MHz.
        let dcn =
            ChannelPlan::fit(mhz(2458.0), mhz(15.0), mhz(3.0), FitPolicy::InclusiveEnds).unwrap();
        assert_eq!(dcn.channels().len(), 6);
        assert_eq!(*dcn.channels().last().unwrap(), mhz(2473.0));
        let zigbee =
            ChannelPlan::fit(mhz(2458.0), mhz(15.0), mhz(5.0), FitPolicy::InclusiveEnds).unwrap();
        assert_eq!(zigbee.channels().len(), 4);
        // §VII-B: 18 MHz supports 7 channels at CFD 3.
        let wide =
            ChannelPlan::fit(mhz(2455.0), mhz(18.0), mhz(3.0), FitPolicy::InclusiveEnds).unwrap();
        assert_eq!(wide.channels().len(), 7);
    }

    #[test]
    fn channels_are_on_grid() {
        let plan = ChannelPlan::with_count(mhz(2458.0), mhz(3.0), 6);
        let freqs: Vec<f64> = plan.channels().iter().map(|c| c.value()).collect();
        assert_eq!(freqs, vec![2458.0, 2461.0, 2464.0, 2467.0, 2470.0, 2473.0]);
        assert_eq!(plan.span(), mhz(15.0));
    }

    #[test]
    fn middle_index() {
        assert_eq!(
            ChannelPlan::with_count(mhz(0.0), mhz(3.0), 5).middle_index(),
            2
        );
        assert_eq!(
            ChannelPlan::with_count(mhz(0.0), mhz(3.0), 6).middle_index(),
            2
        );
        assert_eq!(
            ChannelPlan::with_count(mhz(0.0), mhz(3.0), 7).middle_index(),
            3
        );
        assert_eq!(
            ChannelPlan::with_count(mhz(0.0), mhz(3.0), 1).middle_index(),
            0
        );
    }

    #[test]
    fn errors() {
        assert!(matches!(
            ChannelPlan::fit(mhz(0.0), mhz(10.0), mhz(0.0), FitPolicy::Exclusive),
            Err(PlanError::NonPositiveCfd(_))
        ));
        assert!(matches!(
            ChannelPlan::fit(mhz(0.0), mhz(-1.0), mhz(3.0), FitPolicy::Exclusive),
            Err(PlanError::NonPositiveWidth(_))
        ));
        assert!(matches!(
            ChannelPlan::fit(mhz(0.0), mhz(2.0), mhz(3.0), FitPolicy::Exclusive),
            Err(PlanError::NoChannelsFit { .. })
        ));
        // InclusiveEnds always fits at least one channel for positive width.
        assert!(ChannelPlan::fit(mhz(0.0), mhz(2.0), mhz(3.0), FitPolicy::InclusiveEnds).is_ok());
    }

    #[test]
    fn float_cfd_floor_guard() {
        // 12 / 0.75 = 16 exactly-ish; must not lose one to float error.
        let plan = ChannelPlan::fit(mhz(0.0), mhz(12.0), mhz(0.75), FitPolicy::Exclusive).unwrap();
        assert_eq!(plan.channels().len(), 16);
    }
}
