//! 2-D positions.

use nomc_units::Meters;
use std::fmt;
use std::ops::{Add, Sub};

/// A point in the deployment plane, coordinates in metres.
///
/// # Examples
///
/// ```
/// use nomc_topology::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b).value(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

nomc_json::json_struct!(Point { x: f64, y: f64 });

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point.
    ///
    /// # Panics
    ///
    /// Panics on non-finite coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        assert!(x.is_finite() && y.is_finite(), "non-finite coordinate");
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance_to(self, other: Point) -> Meters {
        Meters::new(((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt())
    }

    /// This point translated by `(dx, dy)` metres.
    pub fn offset(self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Midpoint between two points.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_345() {
        assert_eq!(
            Point::new(1.0, 1.0).distance_to(Point::new(4.0, 5.0)),
            Meters::new(5.0)
        );
    }

    #[test]
    fn distance_symmetric_and_zero_to_self() {
        let (a, b) = (Point::new(2.0, -7.0), Point::new(-1.5, 0.25));
        assert_eq!(a.distance_to(b), b.distance_to(a));
        assert_eq!(a.distance_to(a), Meters::new(0.0));
    }

    #[test]
    fn offset_and_midpoint() {
        let p = Point::ORIGIN.offset(2.0, -2.0);
        assert_eq!(p, Point::new(2.0, -2.0));
        assert_eq!(Point::ORIGIN.midpoint(p), Point::new(1.0, -1.0));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        let _ = Point::new(f64::NAN, 0.0);
    }
}
