//! Convergecast (data-collection) topologies — the workload class the
//! paper's introduction motivates and the setting of TMCP (Wu et al.,
//! the related work's orthogonal-channel comparator): sensor data flows
//! over multi-hop chains toward a sink.
//!
//! A chain is a sequence of links `leaf → relay → … → sink`; the
//! simulator's `Forward` traffic model makes each inner hop retransmit
//! one frame per upstream delivery. Channel policy is the caller's
//! choice: one shared channel, one channel per chain (TMCP-style), or
//! one channel per hop.

use crate::deployment::{Deployment, LinkSpec, NetworkSpec};
use crate::geometry::Point;
use nomc_units::{Dbm, Megahertz};

/// One multi-hop chain: the ordered hop links, leaf first, plus the
/// global policy hooks the simulator needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Chain {
    /// Hop links in order: `links[0]` is the leaf (source) hop,
    /// `links.last()` delivers to the sink.
    pub links: Vec<LinkSpec>,
}

impl Chain {
    /// Builds a straight chain from `leaf` toward `sink` with equally
    /// spaced relays.
    ///
    /// # Panics
    ///
    /// Panics if `hops` is zero.
    pub fn straight(leaf: Point, sink: Point, hops: usize, tx_power: Dbm) -> Chain {
        assert!(hops > 0, "a chain needs at least one hop");
        let points: Vec<Point> = (0..=hops)
            .map(|i| {
                let t = i as f64 / hops as f64;
                Point::new(
                    leaf.x + (sink.x - leaf.x) * t,
                    leaf.y + (sink.y - leaf.y) * t,
                )
            })
            .collect();
        Chain {
            links: points
                .windows(2)
                .map(|w| LinkSpec::new(w[0], w[1], tx_power))
                .collect(),
        }
    }

    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

/// How chains map onto channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelPolicy {
    /// All hops of all chains share one channel (classic single-channel
    /// collection).
    SingleChannel,
    /// One channel per chain, shared by its hops (TMCP-style tree
    /// partitioning).
    PerChain,
    /// One channel per hop position, cycling through the plan (pipeline
    /// parallelism along each chain).
    PerHop,
}

/// A built convergecast deployment plus the per-link wiring the
/// simulator needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Convergecast {
    /// The deployment (networks grouped by assigned channel).
    pub deployment: Deployment,
    /// `(global link index, upstream global link index)` pairs: each
    /// listed link forwards the deliveries of its upstream link.
    pub forwards: Vec<(usize, usize)>,
    /// Global link indices of the leaf (source) hops.
    pub sources: Vec<usize>,
    /// Global link indices of the final (sink-delivering) hops.
    pub sink_links: Vec<usize>,
}

/// Assembles chains into a deployment under a channel policy.
///
/// `channels` must provide at least as many frequencies as the policy
/// needs (1, `chains.len()`, or `max hops`, respectively); extra
/// channels are ignored.
///
/// # Panics
///
/// Panics if `chains` is empty, any chain is empty, or `channels` is too
/// short for the policy.
pub fn build(chains: &[Chain], channels: &[Megahertz], policy: ChannelPolicy) -> Convergecast {
    assert!(!chains.is_empty(), "need at least one chain");
    let max_hops = chains.iter().map(Chain::hops).max().expect("non-empty");
    let needed = match policy {
        ChannelPolicy::SingleChannel => 1,
        ChannelPolicy::PerChain => chains.len(),
        ChannelPolicy::PerHop => max_hops.min(channels.len()).max(1),
    };
    assert!(
        channels.len() >= needed.min(channels.len()).max(1),
        "channel list too short"
    );
    // Group links by their assigned frequency.
    let mut groups: Vec<(Megahertz, Vec<LinkSpec>)> = Vec::new();
    let mut placements: Vec<(usize, usize, usize)> = Vec::new(); // (chain, hop, group slot)
    for (ci, chain) in chains.iter().enumerate() {
        for (hi, link) in chain.links.iter().enumerate() {
            let freq = match policy {
                ChannelPolicy::SingleChannel => channels[0],
                ChannelPolicy::PerChain => channels[ci % channels.len()],
                ChannelPolicy::PerHop => channels[hi % channels.len()],
            };
            let group = match groups.iter().position(|(f, _)| *f == freq) {
                Some(g) => g,
                None => {
                    groups.push((freq, Vec::new()));
                    groups.len() - 1
                }
            };
            groups[group].1.push(*link);
            placements.push((ci, hi, groups[group].1.len() - 1));
        }
    }
    // Global link index = position within the deployment, network-major.
    let mut offsets = Vec::with_capacity(groups.len());
    let mut acc = 0;
    for (_, links) in &groups {
        offsets.push(acc);
        acc += links.len();
    }
    let global_of = |chain: usize, hop: usize| -> usize {
        let mut idx = 0;
        for (pi, &(ci, hi, slot)) in placements.iter().enumerate() {
            let _ = pi;
            if ci == chain && hi == hop {
                // Recover which group this placement went to.
                let freq = match policy {
                    ChannelPolicy::SingleChannel => channels[0],
                    ChannelPolicy::PerChain => channels[ci % channels.len()],
                    ChannelPolicy::PerHop => channels[hi % channels.len()],
                };
                let g = groups.iter().position(|(f, _)| *f == freq).expect("group");
                idx = offsets[g] + slot;
            }
        }
        idx
    };
    let mut forwards = Vec::new();
    let mut sources = Vec::new();
    let mut sink_links = Vec::new();
    for (ci, chain) in chains.iter().enumerate() {
        sources.push(global_of(ci, 0));
        sink_links.push(global_of(ci, chain.hops() - 1));
        for hi in 1..chain.hops() {
            forwards.push((global_of(ci, hi), global_of(ci, hi - 1)));
        }
    }
    let networks = groups
        .into_iter()
        .map(|(freq, links)| NetworkSpec::new(freq, links))
        .collect();
    Convergecast {
        deployment: Deployment::new(networks),
        forwards,
        sources,
        sink_links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mhz(v: f64) -> Megahertz {
        Megahertz::new(v)
    }

    fn three_chains() -> Vec<Chain> {
        (0..3)
            .map(|i| {
                let angle = i as f64 * std::f64::consts::TAU / 3.0;
                Chain::straight(
                    Point::new(6.0 * angle.cos(), 6.0 * angle.sin()),
                    Point::ORIGIN,
                    3,
                    Dbm::new(0.0),
                )
            })
            .collect()
    }

    #[test]
    fn straight_chain_geometry() {
        let c = Chain::straight(Point::new(6.0, 0.0), Point::ORIGIN, 3, Dbm::new(0.0));
        assert_eq!(c.hops(), 3);
        for l in &c.links {
            assert!((l.distance().value() - 2.0).abs() < 1e-9);
        }
        assert_eq!(c.links[2].rx, Point::ORIGIN);
    }

    #[test]
    fn single_channel_builds_one_network() {
        let cc = build(
            &three_chains(),
            &[mhz(2458.0)],
            ChannelPolicy::SingleChannel,
        );
        assert_eq!(cc.deployment.networks.len(), 1);
        assert_eq!(cc.deployment.link_count(), 9);
        assert_eq!(cc.forwards.len(), 6);
        assert_eq!(cc.sources.len(), 3);
        assert!(cc.deployment.validate().is_ok());
    }

    #[test]
    fn per_chain_builds_one_network_per_chain() {
        let channels = [mhz(2458.0), mhz(2463.0), mhz(2468.0)];
        let cc = build(&three_chains(), &channels, ChannelPolicy::PerChain);
        assert_eq!(cc.deployment.networks.len(), 3);
        for n in &cc.deployment.networks {
            assert_eq!(n.links.len(), 3);
        }
        assert!(cc.deployment.validate().is_ok());
    }

    #[test]
    fn per_hop_cycles_channels() {
        let channels = [mhz(2458.0), mhz(2461.0), mhz(2464.0)];
        let cc = build(&three_chains(), &channels, ChannelPolicy::PerHop);
        assert_eq!(cc.deployment.networks.len(), 3);
        // Each network holds one hop position of each chain.
        for n in &cc.deployment.networks {
            assert_eq!(n.links.len(), 3);
        }
    }

    #[test]
    fn forward_wiring_points_upstream() {
        let cc = build(
            &three_chains(),
            &[mhz(2458.0)],
            ChannelPolicy::SingleChannel,
        );
        // Every forwarding link's upstream is a distinct earlier hop; the
        // sources are never forwarders.
        for &(link, from) in &cc.forwards {
            assert_ne!(link, from);
            assert!(!cc.sources.contains(&link));
        }
        // Chains are disjoint paths: each forwarder appears once.
        let mut fw: Vec<usize> = cc.forwards.iter().map(|&(l, _)| l).collect();
        fw.sort_unstable();
        fw.dedup();
        assert_eq!(fw.len(), cc.forwards.len());
    }

    #[test]
    #[should_panic(expected = "at least one chain")]
    fn empty_chains_rejected() {
        let _ = build(&[], &[mhz(2458.0)], ChannelPolicy::SingleChannel);
    }
}
