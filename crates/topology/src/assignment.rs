//! Interference-aware channel assignment.
//!
//! The paper fixes which network gets which channel; a deployment tool
//! must *choose*. With non-orthogonal plans the choice matters more than
//! with orthogonal ones: adjacent channels leak into each other, so the
//! two physically closest networks should sit at the largest available
//! centre-frequency distance.
//!
//! [`optimize_assignment`] minimizes the total *coupled interference
//! pressure* — for every pair of networks, the linear-domain power each
//! couples into the other's receivers (path loss × channel-filter
//! leakage at their CFD) — over permutations of the channel plan, using
//! a deterministic greedy construction plus 2-opt refinement.

use crate::deployment::NetworkSpec;
use crate::spectrum::ChannelPlan;
use nomc_phy::coupling::AcrCurve;
use nomc_phy::{LogDistance, PathLoss};
use nomc_units::Megahertz;

/// The geometric interference pressure between two networks: the sum
/// over (transmitter of one, receiver of the other) pairs of the mean
/// received linear power (mW), *before* channel-filter rejection.
///
/// Symmetric by construction (both directions are summed).
pub fn pair_pressure(a: &NetworkSpec, b: &NetworkSpec, path_loss: &LogDistance) -> f64 {
    let mut total = 0.0;
    for (x, y) in [(a, b), (b, a)] {
        for tx_link in &x.links {
            for rx_link in &y.links {
                let loss = path_loss.loss(tx_link.tx.distance_to(rx_link.rx));
                total += (tx_link.tx_power - loss).to_milliwatts().value();
            }
        }
    }
    total
}

/// Total assignment cost: Σ over network pairs of
/// `pressure(i, j) × leakage(|f_i − f_j|)`.
pub fn assignment_cost(pressures: &[Vec<f64>], frequencies: &[Megahertz], acr: &AcrCurve) -> f64 {
    let n = frequencies.len();
    let mut cost = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let cfd = frequencies[i].distance_to(frequencies[j]);
            cost += pressures[i][j] * acr.leakage_factor(cfd);
        }
    }
    cost
}

/// Computes the pairwise pressure matrix for a set of networks.
pub fn pressure_matrix(networks: &[NetworkSpec], path_loss: &LogDistance) -> Vec<Vec<f64>> {
    let n = networks.len();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let p = pair_pressure(&networks[i], &networks[j], path_loss);
            m[i][j] = p;
            m[j][i] = p;
        }
    }
    m
}

/// An optimized channel assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `frequencies[i]` is the channel for network `i`.
    pub frequencies: Vec<Megahertz>,
    /// Predicted coupled-interference cost of this assignment (mW-scale,
    /// comparable only within the same deployment).
    pub cost: f64,
    /// Cost of the naive identity assignment (plan order), for reference.
    pub identity_cost: f64,
}

/// Assigns the plan's channels to `networks` (one each), minimizing the
/// predicted coupled interference.
///
/// Deterministic: greedy seeding (most-pressured network pairs pushed to
/// the spectrally most-distant channels) followed by 2-opt swaps to a
/// local optimum.
///
/// # Panics
///
/// Panics if the plan has fewer channels than there are networks.
pub fn optimize_assignment(
    networks: &[NetworkSpec],
    plan: &ChannelPlan,
    path_loss: &LogDistance,
    acr: &AcrCurve,
) -> Assignment {
    let n = networks.len();
    assert!(
        plan.channels().len() >= n,
        "plan has {} channels for {} networks",
        plan.channels().len(),
        n
    );
    let channels: Vec<Megahertz> = plan.channels()[..n].to_vec();
    let pressures = pressure_matrix(networks, path_loss);
    let identity_cost = assignment_cost(&pressures, &channels, acr);

    // Greedy seed: order networks by total pressure (most-coupled first)
    // and hand out channels from the outside of the plan inward, so the
    // hottest networks land at the band edges (largest mutual CFD).
    let mut order: Vec<usize> = (0..n).collect();
    let total_pressure = |i: usize| -> f64 { pressures[i].iter().sum() };
    order.sort_by(|&a, &b| {
        total_pressure(b)
            .partial_cmp(&total_pressure(a))
            .expect("finite pressures")
    });
    let mut channel_order: Vec<usize> = Vec::with_capacity(n);
    let (mut lo, mut hi) = (0usize, n - 1);
    for k in 0..n {
        if k % 2 == 0 {
            channel_order.push(lo);
            lo += 1;
        } else {
            channel_order.push(hi);
            hi = hi.saturating_sub(1);
        }
    }
    let mut frequencies = vec![channels[0]; n];
    for (rank, &net) in order.iter().enumerate() {
        frequencies[net] = channels[channel_order[rank]];
    }

    // 2-opt: swap channel pairs while it helps.
    let mut cost = assignment_cost(&pressures, &frequencies, acr);
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..n {
            for j in (i + 1)..n {
                frequencies.swap(i, j);
                let c = assignment_cost(&pressures, &frequencies, acr);
                if c + 1e-15 < cost {
                    cost = c;
                    improved = true;
                } else {
                    frequencies.swap(i, j);
                }
            }
        }
    }
    Assignment {
        frequencies,
        cost,
        identity_cost,
    }
}

/// Applies an assignment to a deployment's networks (in place).
pub fn apply_assignment(networks: &mut [NetworkSpec], assignment: &Assignment) {
    assert_eq!(networks.len(), assignment.frequencies.len());
    for (net, &freq) in networks.iter_mut().zip(&assignment.frequencies) {
        net.frequency = freq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::LinkSpec;
    use crate::geometry::Point;
    use nomc_units::Dbm;

    fn net_at(x: f64, freq: f64) -> NetworkSpec {
        NetworkSpec::new(
            Megahertz::new(freq),
            vec![LinkSpec::new(
                Point::new(x, 0.0),
                Point::new(x + 2.0, 0.0),
                Dbm::new(0.0),
            )],
        )
    }

    fn plan(n: usize) -> ChannelPlan {
        ChannelPlan::with_count(Megahertz::new(2458.0), Megahertz::new(3.0), n)
    }

    #[test]
    fn pressure_grows_with_proximity() {
        let pl = LogDistance::indoor_2_4ghz();
        let a = net_at(0.0, 2458.0);
        let near = net_at(3.0, 2461.0);
        let far = net_at(12.0, 2461.0);
        assert!(pair_pressure(&a, &near, &pl) > pair_pressure(&a, &far, &pl));
    }

    #[test]
    fn pressure_is_symmetric() {
        let pl = LogDistance::indoor_2_4ghz();
        let a = net_at(0.0, 2458.0);
        let b = net_at(4.0, 2461.0);
        assert!((pair_pressure(&a, &b, &pl) - pair_pressure(&b, &a, &pl)).abs() < 1e-15);
    }

    #[test]
    fn optimizer_never_beats_identity_backwards() {
        let pl = LogDistance::indoor_2_4ghz();
        let acr = AcrCurve::cc2420_calibrated();
        // Three networks: two clustered, one far.
        let nets = vec![
            net_at(0.0, 2458.0),
            net_at(3.0, 2461.0),
            net_at(30.0, 2464.0),
        ];
        let a = optimize_assignment(&nets, &plan(3), &pl, &acr);
        assert!(a.cost <= a.identity_cost + 1e-18);
    }

    #[test]
    fn close_pair_gets_the_large_cfd() {
        let pl = LogDistance::indoor_2_4ghz();
        let acr = AcrCurve::cc2420_calibrated();
        // Networks 0 and 1 are adjacent; 2 is far away. The optimizer
        // should separate 0 and 1 by more spectrum than the identity
        // (adjacent channels) would.
        let nets = vec![
            net_at(0.0, 2458.0),
            net_at(3.5, 2461.0),
            net_at(40.0, 2464.0),
        ];
        let a = optimize_assignment(&nets, &plan(3), &pl, &acr);
        let cfd01 = a.frequencies[0].distance_to(a.frequencies[1]);
        assert!(
            cfd01.value() >= 6.0 - 1e-9,
            "close pair separated by only {cfd01}"
        );
    }

    #[test]
    fn assignment_is_a_permutation() {
        let pl = LogDistance::indoor_2_4ghz();
        let acr = AcrCurve::cc2420_calibrated();
        let nets: Vec<NetworkSpec> = (0..6)
            .map(|i| net_at(i as f64 * 2.5, 2458.0 + i as f64 * 3.0))
            .collect();
        let a = optimize_assignment(&nets, &plan(6), &pl, &acr);
        let mut freqs: Vec<f64> = a.frequencies.iter().map(|f| f.value()).collect();
        freqs.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        let expect: Vec<f64> = (0..6).map(|i| 2458.0 + i as f64 * 3.0).collect();
        assert_eq!(freqs, expect);
    }

    #[test]
    fn apply_assignment_rewrites_frequencies() {
        let pl = LogDistance::indoor_2_4ghz();
        let acr = AcrCurve::cc2420_calibrated();
        let mut nets = vec![net_at(0.0, 2458.0), net_at(3.0, 2461.0)];
        let a = optimize_assignment(&nets, &plan(2), &pl, &acr);
        apply_assignment(&mut nets, &a);
        assert_eq!(nets[0].frequency, a.frequencies[0]);
        assert_eq!(nets[1].frequency, a.frequencies[1]);
    }

    #[test]
    #[should_panic(expected = "channels for")]
    fn too_few_channels_rejected() {
        let pl = LogDistance::indoor_2_4ghz();
        let acr = AcrCurve::cc2420_calibrated();
        let nets = vec![net_at(0.0, 2458.0), net_at(3.0, 2461.0)];
        let _ = optimize_assignment(&nets, &plan(1), &pl, &acr);
    }
}
