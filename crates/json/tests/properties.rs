//! Property tests for the JSON codec, driven by the in-tree check
//! harness: every `f64` must survive serialize → parse bit-exactly and
//! every serialized tree must be a serialize/parse fixpoint.

use nomc_json::{Json, Number};
use nomc_rngcore::check::{boolean, forall, just, one_of, range, range_incl, vec_of, zip2, G};
use nomc_rngcore::{check, check_eq, Rng};

/// Random f64 covering the nasty regions: uniform reals, raw bit
/// patterns (subnormals, extreme exponents), and known edge cases.
fn any_f64() -> G<f64> {
    one_of(vec![
        range(-1e9..1e9),
        range(-1.0..1.0),
        // Arbitrary bit patterns, masked down to finite values.
        G::new(|rng| {
            let bits: u64 = rng.gen();
            let v = f64::from_bits(bits);
            if v.is_finite() {
                v
            } else {
                f64::from_bits(bits & 0x000F_FFFF_FFFF_FFFF) // subnormal
            }
        }),
        one_of(
            [
                0.0,
                -0.0,
                f64::MAX,
                f64::MIN,
                f64::MIN_POSITIVE,
                5e-324,
                -5e-324,
                1e300,
                1e-300,
                0.1,
                0.30000000000000004,
            ]
            .into_iter()
            .map(just)
            .collect(),
        ),
    ])
}

/// Strings with escapes, unicode and control characters mixed in.
fn any_string() -> G<String> {
    vec_of(
        one_of(vec![
            range(0x20u32..0x7F).map(|c| char::from_u32(c).unwrap()),
            one_of(
                [
                    '"',
                    '\\',
                    '/',
                    '\n',
                    '\t',
                    '\r',
                    '\u{0001}',
                    '\u{e9}',
                    '\u{1F600}',
                    '控',
                ]
                .into_iter()
                .map(just)
                .collect(),
            ),
        ]),
        0..12,
    )
    .map(|chars| chars.into_iter().collect())
}

/// Scalar JSON values across every number representation.
fn scalar() -> G<Json> {
    one_of(vec![
        just(Json::Null),
        boolean().map(Json::Bool),
        any_f64().map(|v| Json::Num(Number::F64(v))),
        range_incl(0..=u64::MAX).map(|v| Json::Num(Number::U64(v))),
        range(i64::MIN..0).map(|v| Json::Num(Number::I64(v))),
        any_string().map(Json::Str),
    ])
}

/// Random JSON trees, two levels deep.
fn any_json() -> G<Json> {
    one_of(vec![
        scalar(),
        vec_of(scalar(), 0..5).map(Json::Arr),
        vec_of(zip2(any_string(), scalar()), 0..5).map(Json::object),
        vec_of(
            one_of(vec![
                scalar(),
                vec_of(scalar(), 0..4).map(Json::Arr),
                vec_of(zip2(any_string(), scalar()), 0..4).map(Json::object),
            ]),
            0..4,
        )
        .map(Json::Arr),
    ])
}

#[test]
fn f64_round_trips_bit_exactly() {
    forall("f64_bit_exact", 512, &any_f64(), |&v| {
        let text = Json::Num(Number::F64(v)).dump();
        let back = Json::parse(&text).map_err(|e| format!("parse {text:?}: {e}"))?;
        let Json::Num(Number::F64(r)) = back else {
            return Err(format!("{text:?} did not re-parse as float"));
        };
        check!(
            r.to_bits() == v.to_bits(),
            "{v:?} -> {text:?} -> {r:?} (bits {:#x} vs {:#x})",
            v.to_bits(),
            r.to_bits()
        );
        Ok(())
    });
}

#[test]
fn u64_integers_round_trip_exactly() {
    forall("u64_exact", 256, &range_incl(0..=u64::MAX), |&v| {
        let text = Json::Num(Number::U64(v)).dump();
        let back = Json::parse(&text).map_err(|e| e.to_string())?;
        check_eq!(back.as_u64(), Some(v));
        Ok(())
    });
}

#[test]
fn serialize_parse_serialize_is_fixpoint() {
    forall("json_fixpoint", 256, &any_json(), |v| {
        let once = v.dump();
        let reparsed = Json::parse(&once).map_err(|e| format!("parse {once:?}: {e}"))?;
        let twice = reparsed.dump();
        check_eq!(once, twice);
        // Pretty form must be a fixpoint too.
        let pretty = v.dump_pretty();
        let pretty_again = Json::parse(&pretty)
            .map_err(|e| format!("parse pretty {pretty:?}: {e}"))?
            .dump_pretty();
        check_eq!(pretty, pretty_again);
        Ok(())
    });
}

#[test]
fn parse_preserves_tree_equality() {
    forall("json_value_equality", 256, &any_json(), |v| {
        let back = Json::parse(&v.dump()).map_err(|e| e.to_string())?;
        // NaN never appears (the generator masks to finite values), so
        // equality must hold.
        check!(back == *v, "tree changed: {v:?} vs {back:?}");
        Ok(())
    });
}
