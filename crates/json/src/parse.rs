//! Recursive-descent JSON parser (RFC 8259 grammar, UTF-8 input).
//!
//! Number classification mirrors serde_json with `float_roundtrip`:
//! tokens with a fraction or exponent become `F64` via Rust's
//! correctly-rounded `str::parse::<f64>`; bare integers become `U64`
//! (or `I64` when negative), overflowing ones fall back to `F64`.

use crate::{Error, Json, Map, Number};

/// Nesting depth cap — protects against stack overflow on adversarial
/// input while being far deeper than any scenario file.
const MAX_DEPTH: usize = 128;

pub fn parse(text: &str) -> Result<Json, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("recursion depth exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the unescaped run in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let ch = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: must be followed by `\uXXXX` low half.
                    if self.peek() != Some(b'\\') || self.bytes.get(self.pos + 1) != Some(&b'u') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    self.pos += 2;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("unpaired surrogate"))?
                };
                out.push(ch);
            }
            _ => return Err(self.err("invalid escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: `0` or a non-zero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The token is ASCII by construction.
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let number = if is_float {
            Number::F64(token.parse().map_err(|_| self.err("invalid float"))?)
        } else if negative {
            match token.parse::<i64>() {
                Ok(v) => Number::I64(v),
                Err(_) => Number::F64(token.parse().map_err(|_| self.err("invalid number"))?),
            }
        } else {
            match token.parse::<u64>() {
                Ok(v) => Number::U64(v),
                Err(_) => Number::F64(token.parse().map_err(|_| self.err("invalid number"))?),
            }
        };
        Ok(Json::Num(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), 42u64);
        assert_eq!(parse("-7").unwrap(), -7i64);
        assert_eq!(parse("2.5").unwrap(), 2.5f64);
        assert_eq!(parse("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn number_classification() {
        // Integral-looking tokens stay integers; 2^53+1 survives exactly.
        let v = parse("9007199254740993").unwrap();
        assert_eq!(v.as_u64(), Some(9007199254740993));
        // Seeds up to u64::MAX survive exactly.
        assert_eq!(
            parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        // A fraction or exponent forces float.
        assert_eq!(parse("1.0").unwrap(), 1.0f64);
        assert_eq!(parse("1e2").unwrap(), 100.0f64);
        // Integer overflow past u64 falls back to float.
        assert!(matches!(
            parse("99999999999999999999999999").unwrap(),
            Json::Num(Number::F64(_))
        ));
    }

    #[test]
    fn parses_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "d"}"#).unwrap();
        assert_eq!(v["a"][2]["b"], Json::Null);
        assert_eq!(v["c"], "d");
        assert_eq!(v["a"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn preserves_key_order() {
        let v = parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v.as_object().unwrap().keys().collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\"b\\c\/d\n\t\u0041\u00e9""#).unwrap();
        assert_eq!(v, "a\"b\\c/d\n\tA\u{e9}");
        // Surrogate pair: U+1F600.
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), "\u{1F600}");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "tru",
            "01",
            "1.",
            ".5",
            "+1",
            "1e",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1 2]",
            "\"abc",
            "\"\\x\"",
            "\"\\ud800\"",
            "1 2",
            "{a: 1}",
            "nan",
            "Infinity",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }
}
