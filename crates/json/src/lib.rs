//! # nomc-json
//!
//! A small JSON codec replacing `serde`/`serde_json` so the workspace
//! builds hermetically. Three pieces:
//!
//! * [`Json`] / [`Number`] / [`Map`] — the value model (insertion-ordered
//!   objects, exact `f64` round-tripping like serde_json's
//!   `float_roundtrip` feature).
//! * [`ToJson`] / [`FromJson`] — derive-free conversion traits, with the
//!   [`json_struct!`] and [`json_newtype!`] macros generating the
//!   boilerplate for structs and transparent newtypes. Enum impls are
//!   written by hand in the defining crates using serde's external
//!   tagging conventions (`"Variant"`, `{"Variant": value}`,
//!   `{"Variant": {..fields..}}`).
//! * [`to_string`] / [`to_string_pretty`] / [`from_str`] — the
//!   `serde_json`-shaped entry points the rest of the workspace calls.
//!
//! # Examples
//!
//! ```
//! use nomc_json::Json;
//!
//! let v: Json = "[1, {\"pi\": 3.25}, null]".parse().unwrap();
//! assert_eq!(v[1]["pi"].as_f64(), Some(3.25));
//! assert_eq!(v.to_string(), "[1,{\"pi\":3.25},null]");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convert;
mod macros;
mod parse;
mod ser;

pub use convert::{FromJson, ToJson};

use std::fmt;

/// A JSON number, kept in the narrowest faithful representation:
/// tokens with a fraction or exponent parse as [`Number::F64`], plain
/// integers as [`Number::U64`]/[`Number::I64`] so 64-bit seeds survive
/// a round trip exactly.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A negative integer (or any integer stored as `i64`).
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
}

impl Number {
    /// The value as `f64` (integers convert, possibly losing precision).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I64(v) => v as f64,
            Number::U64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I64(v) => u64::try_from(v).ok(),
            Number::U64(v) => Some(v),
            Number::F64(_) => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I64(v) => Some(v),
            Number::U64(v) => i64::try_from(v).ok(),
            Number::F64(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        use Number::*;
        match (*self, *other) {
            (F64(a), F64(b)) => a == b,
            (F64(_), _) | (_, F64(_)) => false,
            (a, b) => match (a.as_i64(), b.as_i64()) {
                (Some(x), Some(y)) => x == y,
                // At least one side exceeds i64::MAX; compare as u64
                // (negative values always have an i64 form).
                _ => a.as_u64().is_some() && a.as_u64() == b.as_u64(),
            },
        }
    }
}

/// An insertion-ordered JSON object.
///
/// Order is preserved through a parse → serialize round trip, which is
/// what makes the scenario-file fixpoint guarantee possible. Equality is
/// order-insensitive, like a map.
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Json)>,
}

impl Map {
    /// Creates an empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object has no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up a key mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Inserts a key, replacing in place or appending, and returns any
    /// previous value.
    pub fn insert(&mut self, key: impl Into<String>, value: Json) -> Option<Json> {
        let key = key.into();
        match self.get_mut(&key) {
            Some(slot) => Some(std::mem::replace(slot, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Json> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(i).1)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Json)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates entries mutably in insertion order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&str, &mut Json)> {
        self.entries.iter_mut().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }
}

impl PartialEq for Map {
    fn eq(&self, other: &Self) -> bool {
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .all(|(k, v)| other.get(k).is_some_and(|ov| ov == v))
    }
}

impl<K: Into<String>> FromIterator<(K, Json)> for Map {
    fn from_iter<I: IntoIterator<Item = (K, Json)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(Map),
}

/// Shared sentinel for missing-index lookups.
const NULL: Json = Json::Null;

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(entries: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(entries.into_iter().collect())
    }

    /// Builds an array.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Parses JSON text (also available through [`str::parse`]).
    pub fn parse(text: &str) -> Result<Json, Error> {
        parse::parse(text)
    }

    /// `true` if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric value as `i64`, if an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array contents, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The array contents mutably, if this is an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Json>> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The object, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The object mutably, if this is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Object-key lookup that tolerates non-objects (returns `None`).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Serializes compactly (same as the `Display` impl).
    pub fn dump(&self) -> String {
        ser::to_string_compact(self)
    }

    /// Serializes with two-space indentation.
    pub fn dump_pretty(&self) -> String {
        ser::to_string_pretty(self)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.dump())
    }
}

impl std::str::FromStr for Json {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Error> {
        Json::parse(s)
    }
}

impl std::ops::Index<&str> for Json {
    type Output = Json;

    /// Returns `Null` for missing keys or non-objects (serde_json
    /// semantics).
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Json {
    /// Inserts `Null` for a missing key; panics when indexing a
    /// non-object (serde_json semantics).
    fn index_mut(&mut self, key: &str) -> &mut Json {
        let map = self
            .as_object_mut()
            .unwrap_or_else(|| panic!("cannot index non-object with key {key:?}"));
        if !map.contains_key(key) {
            map.insert(key, Json::Null);
        }
        map.get_mut(key).unwrap()
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;

    /// Returns `Null` when out of range or not an array.
    fn index(&self, i: usize) -> &Json {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

impl PartialEq<bool> for Json {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<f64> for Json {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Json::Num(Number::F64(v)) if v == other)
    }
}

impl PartialEq<u64> for Json {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i64> for Json {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

/// A parse or conversion error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Converts a value to a [`Json`] tree.
pub fn to_value<T: ToJson + ?Sized>(value: &T) -> Json {
    value.to_json()
}

/// Converts a [`Json`] tree into a typed value.
pub fn from_value<T: FromJson>(value: &Json) -> Result<T, Error> {
    T::from_json(value)
}

/// Serializes a value compactly.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().dump()
}

/// Serializes a value with two-space indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().dump_pretty()
}

/// Parses JSON text into a typed value.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, Error> {
    T::from_json(&Json::parse(text)?)
}
