//! Boilerplate generators for the two most common data shapes: plain
//! structs with named fields (optionally defaulted, mirroring
//! `#[serde(default)]`) and transparent newtypes.
//!
//! Enums are implemented by hand in their defining crates; external
//! tagging has too many shapes (unit / newtype / struct variants) to be
//! worth a macro here.

/// Implements [`ToJson`](crate::ToJson) and [`FromJson`](crate::FromJson)
/// for a struct with named fields.
///
/// Append `= expr` to a field to make it optional on input with that
/// default (the equivalent of `#[serde(default)]`); all fields always
/// serialize.
///
/// # Examples
///
/// ```
/// struct Window {
///     lo: f64,
///     hi: f64,
///     label: String,
/// }
///
/// nomc_json::json_struct!(Window {
///     lo: f64,
///     hi: f64,
///     label: String = String::new(),
/// });
///
/// let w: Window = nomc_json::from_str(r#"{"lo": 0.5, "hi": 2.0}"#).unwrap();
/// assert_eq!(w.hi, 2.0);
/// assert_eq!(w.label, "");
/// assert_eq!(nomc_json::to_string(&w), r#"{"lo":0.5,"hi":2.0,"label":""}"#);
/// ```
#[macro_export]
macro_rules! json_struct {
    ($ty:ident { $($field:ident : $fty:ty $(= $default:expr)?),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::object([
                    $((stringify!($field), $crate::ToJson::to_json(&self.$field))),+
                ])
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Json) -> Result<Self, $crate::Error> {
                let obj = value.as_object().ok_or_else(|| $crate::Error::new(
                    concat!("expected object for ", stringify!($ty)),
                ))?;
                Ok($ty {
                    $($field: match obj.get(stringify!($field)) {
                        Some(field_value) => {
                            <$fty as $crate::FromJson>::from_json(field_value).map_err(|e| {
                                $crate::Error::new(format!(
                                    concat!(stringify!($ty), ".", stringify!($field), ": {}"),
                                    e
                                ))
                            })?
                        }
                        None => $crate::json_field_default!($ty, $field $(, $default)?),
                    }),+
                })
            }
        }
    };
}

/// Expands to a field's default, or to an early `Err` return when the
/// field has none. Internal helper for [`json_struct!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_field_default {
    ($ty:ident, $field:ident) => {
        return Err($crate::Error::new(concat!(
            "missing field `",
            stringify!($field),
            "` in ",
            stringify!($ty),
        )))
    };
    ($ty:ident, $field:ident, $default:expr) => {
        $default
    };
}

/// Implements [`ToJson`](crate::ToJson) and [`FromJson`](crate::FromJson)
/// for a single-field tuple struct, serializing transparently as the
/// inner value (serde's newtype-struct behavior).
///
/// # Examples
///
/// ```
/// #[derive(PartialEq, Debug)]
/// struct Celsius(f64);
///
/// nomc_json::json_newtype!(Celsius: f64);
///
/// assert_eq!(nomc_json::to_string(&Celsius(21.5)), "21.5");
/// let t: Celsius = nomc_json::from_str("21.5").unwrap();
/// assert_eq!(t, Celsius(21.5));
/// ```
#[macro_export]
macro_rules! json_newtype {
    ($ty:ident : $inner:ty) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::ToJson::to_json(&self.0)
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Json) -> Result<Self, $crate::Error> {
                Ok($ty(<$inner as $crate::FromJson>::from_json(value)
                    .map_err(|e| {
                        $crate::Error::new(format!(concat!(stringify!($ty), ": {}"), e))
                    })?))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate as nomc_json;
    use crate::{from_str, to_string};

    #[derive(Debug, PartialEq)]
    struct Inner(u32);
    nomc_json::json_newtype!(Inner: u32);

    #[derive(Debug, PartialEq)]
    struct Outer {
        a: Inner,
        b: Vec<f64>,
        c: bool,
    }
    nomc_json::json_struct!(Outer {
        a: Inner,
        b: Vec<f64>,
        c: bool = true,
    });

    #[test]
    fn struct_round_trip_and_defaults() {
        let v = Outer {
            a: Inner(3),
            b: vec![1.5, -2.0],
            c: false,
        };
        let text = to_string(&v);
        assert_eq!(text, r#"{"a":3,"b":[1.5,-2.0],"c":false}"#);
        assert_eq!(from_str::<Outer>(&text).unwrap(), v);

        let defaulted: Outer = from_str(r#"{"a": 9, "b": []}"#).unwrap();
        assert_eq!(
            defaulted,
            Outer {
                a: Inner(9),
                b: vec![],
                c: true
            }
        );
    }

    #[test]
    fn missing_required_field_is_an_error() {
        let err = from_str::<Outer>(r#"{"b": []}"#).unwrap_err();
        assert!(err.to_string().contains("missing field `a`"), "{err}");
    }

    #[test]
    fn field_errors_carry_a_path() {
        let err = from_str::<Outer>(r#"{"a": 3, "b": ["x"]}"#).unwrap_err();
        assert!(err.to_string().contains("Outer.b"), "{err}");
    }
}
