//! [`ToJson`] / [`FromJson`] and their implementations for primitives,
//! collections and tuples — the derive-free counterpart of
//! `serde::Serialize` / `Deserialize` for the data shapes the workspace
//! uses (tuples serialize as arrays, `Option` as nullable, newtypes
//! transparently via [`crate::json_newtype!`]).

use crate::{Error, Json, Number};

/// A value convertible to a [`Json`] tree.
pub trait ToJson {
    /// Converts to a JSON value.
    fn to_json(&self) -> Json;
}

/// A value reconstructible from a [`Json`] tree.
pub trait FromJson: Sized {
    /// Converts from a JSON value.
    fn from_json(value: &Json) -> Result<Self, Error>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(value: &Json) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::new("expected boolean"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(Number::F64(*self))
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::new("expected number"))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(Number::F64(f64::from(*self)))
    }
}

impl FromJson for f32 {
    fn from_json(value: &Json) -> Result<Self, Error> {
        Ok(f64::from_json(value)? as f32)
    }
}

macro_rules! impl_json_uint {
    ($($t:ty),* $(,)?) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(Number::U64(u64::from(*self)))
            }
        }

        impl FromJson for $t {
            fn from_json(value: &Json) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::new("expected unsigned integer"))?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::new(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, u64);

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(Number::U64(*self as u64))
    }
}

impl FromJson for usize {
    fn from_json(value: &Json) -> Result<Self, Error> {
        let raw = value
            .as_u64()
            .ok_or_else(|| Error::new("expected unsigned integer"))?;
        usize::try_from(raw).map_err(|_| Error::new(format!("integer {raw} out of range")))
    }
}

macro_rules! impl_json_int {
    ($($t:ty),* $(,)?) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let v = i64::from(*self);
                if v >= 0 {
                    Json::Num(Number::U64(v as u64))
                } else {
                    Json::Num(Number::I64(v))
                }
            }
        }

        impl FromJson for $t {
            fn from_json(value: &Json) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| Error::new("expected integer"))?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::new(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_json_int!(i8, i16, i32, i64);

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::new("expected string"))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::new("expected array"))?;
        items.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_json(value).map(Some)
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(value: &Json) -> Result<Self, Error> {
        let items = value
            .as_array()
            .filter(|a| a.len() == 2)
            .ok_or_else(|| Error::new("expected 2-element array"))?;
        Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(value: &Json) -> Result<Self, Error> {
        let items = value
            .as_array()
            .filter(|a| a.len() == 3)
            .ok_or_else(|| Error::new("expected 3-element array"))?;
        Ok((
            A::from_json(&items[0])?,
            B::from_json(&items[1])?,
            C::from_json(&items[2])?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(f64::from_json(&1.5f64.to_json()).unwrap(), 1.5);
        assert_eq!(u64::from_json(&u64::MAX.to_json()).unwrap(), u64::MAX);
        assert_eq!(i64::from_json(&(-9i64).to_json()).unwrap(), -9);
        assert!(bool::from_json(&true.to_json()).unwrap());
        assert_eq!(String::from_json(&"x".to_json()).unwrap(), "x");
    }

    #[test]
    fn ints_widen_to_f64_when_asked() {
        // serde permits deserializing a JSON integer into an f64 field.
        assert_eq!(f64::from_json(&Json::Num(Number::U64(5))).unwrap(), 5.0);
        assert_eq!(f64::from_json(&Json::Num(Number::I64(-5))).unwrap(), -5.0);
    }

    #[test]
    fn narrowing_is_checked() {
        assert!(u8::from_json(&300u64.to_json()).is_err());
        assert!(u64::from_json(&(-1i64).to_json()).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1usize, "a".to_string()), (2, "b".to_string())];
        let back: Vec<(usize, String)> = FromJson::from_json(&v.to_json()).unwrap();
        assert_eq!(back, v);
        assert_eq!(v.to_json().dump(), r#"[[1,"a"],[2,"b"]]"#);

        let opt: Option<u32> = None;
        assert!(opt.to_json().is_null());
        let some: Option<u32> = FromJson::from_json(&7u32.to_json()).unwrap();
        assert_eq!(some, Some(7));
    }
}
