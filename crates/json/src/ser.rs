//! JSON writers: compact and two-space-indented pretty form.
//!
//! The float strategy is the load-bearing part: `f64` values print via
//! Rust's shortest-round-trip formatter (`{}` in a moderate magnitude
//! window, `{:e}` outside it to avoid hundred-digit expansions), with a
//! `.0` suffix appended to integral values so the token re-parses as a
//! float. serialize → parse → serialize is therefore a fixpoint and the
//! recovered `f64` is bit-identical (including `-0.0` and subnormals).

use crate::{Json, Number};

pub fn to_string_compact(value: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

pub fn to_string_pretty(value: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some("  "), 0);
    out
}

fn write_value(out: &mut String, value: &Json, indent: Option<&str>, level: usize) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_number(out, *n),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Json::Obj(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, level: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(unit);
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::F64(v) => write_f64(out, v),
    }
}

/// Magnitude window where plain decimal notation stays short; outside
/// it, exponent notation avoids 300-digit expansions.
const PLAIN_LO: f64 = 1e-5;
const PLAIN_HI: f64 = 1e17;

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // serde_json emits null for non-finite floats.
        out.push_str("null");
        return;
    }
    let magnitude = v.abs();
    let start = out.len();
    if magnitude == 0.0 || (PLAIN_LO..PLAIN_HI).contains(&magnitude) {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str(&format!("{v:e}"));
    }
    // An integral token like `42` would re-parse as an integer; force
    // the float lexical class.
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Json, Map};

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.dump()).unwrap()
    }

    #[test]
    fn compact_layout() {
        let v = Json::object([
            ("a", Json::array([Json::Num(Number::U64(1)), Json::Null])),
            ("b", Json::Str("x".into())),
        ]);
        assert_eq!(v.dump(), r#"{"a":[1,null],"b":"x"}"#);
    }

    #[test]
    fn pretty_layout() {
        let v = Json::object([
            ("a", Json::array([Json::Num(Number::U64(1))])),
            ("e", Json::Obj(Map::new())),
        ]);
        assert_eq!(
            v.dump_pretty(),
            "{\n  \"a\": [\n    1\n  ],\n  \"e\": {}\n}"
        );
    }

    #[test]
    fn floats_get_float_lexical_class() {
        assert_eq!(Json::Num(Number::F64(1.0)).dump(), "1.0");
        assert_eq!(Json::Num(Number::F64(-0.0)).dump(), "-0.0");
        assert_eq!(Json::Num(Number::F64(0.1)).dump(), "0.1");
        assert_eq!(Json::Num(Number::U64(1)).dump(), "1");
    }

    #[test]
    fn extreme_floats_round_trip_bit_exactly() {
        for v in [
            0.0,
            -0.0,
            1.0,
            -1.5,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            1e300,
            -2.225073858507201e-308, // largest subnormal
            std::f64::consts::PI,
            1.7976931348623155e308,
        ] {
            let json = Json::Num(Number::F64(v));
            let text = json.dump();
            assert!(text.len() < 40, "verbose float encoding: {text}");
            let back = roundtrip(&json);
            let Json::Num(Number::F64(r)) = back else {
                panic!("float did not re-parse as float: {text}");
            };
            assert_eq!(r.to_bits(), v.to_bits(), "lossy round trip via {text}");
        }
    }

    #[test]
    fn serialize_parse_serialize_is_fixpoint() {
        let v = Json::object([
            ("f", Json::Num(Number::F64(0.30000000000000004))),
            ("neg", Json::Num(Number::F64(-0.0))),
            ("seed", Json::Num(Number::U64(u64::MAX))),
            ("tiny", Json::Num(Number::F64(5e-324))),
            ("s", Json::Str("line\n\"quoted\"\u{1F600}".into())),
        ]);
        let once = v.dump();
        let twice = roundtrip(&v).dump();
        assert_eq!(once, twice);
        let pretty_once = v.dump_pretty();
        let pretty_twice = Json::parse(&pretty_once).unwrap().dump_pretty();
        assert_eq!(pretty_once, pretty_twice);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "控制\u{0001}\t\"\\/end";
        let v = Json::Str(s.into());
        assert_eq!(roundtrip(&v).as_str(), Some(s));
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(Json::Num(Number::F64(f64::NAN)).dump(), "null");
        assert_eq!(Json::Num(Number::F64(f64::INFINITY)).dump(), "null");
    }
}
