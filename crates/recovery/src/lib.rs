//! # nomc-recovery
//!
//! Partial packet recovery, modelled on PPR (Jamieson & Balakrishnan,
//! SIGCOMM 2007), for the paper's §VII-A discussion (Figs. 28-29): most
//! CRC-failed packets under severe inter-channel interference carry only
//! a small fraction of error bits, so a block-oriented recovery scheme
//! can rescue them instead of discarding the whole frame.
//!
//! * [`block`] — split a frame into checksummed blocks, locate the
//!   corrupted ones from error-bit positions, and decide recoverability,
//! * [`stats`] — empirical CDFs and the paper's summary statistics over
//!   error-bit fractions,
//! * [`adaptive`] — the paper's §VII-A future-work direction: an online
//!   per-link detector that enables recovery only while demand exists.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod block;
pub mod stats;

pub use adaptive::{AdaptiveRecovery, FrameOutcome};
pub use block::{BlockScheme, RecoveryOutcome};
pub use stats::{ecdf, fraction_at_or_below, recoverable_by_fraction, summarize};
