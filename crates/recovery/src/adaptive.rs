//! Online, per-link recovery-demand detection — the paper's §VII-A
//! future-work direction.
//!
//! PPR-style recovery is only worth its feedback/patch overhead on links
//! that actually lose packets to CRC failures ("inter-channel
//! interference with much higher transmission power than the concurrent
//! working link"). [`AdaptiveRecovery`] watches a sliding window of
//! recent frame outcomes per link and switches recovery on only while
//! the CRC-failure rate exceeds a demand threshold, with hysteresis so
//! the decision doesn't flap.

use std::collections::VecDeque;

/// The outcome of one frame, as the receiver sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameOutcome {
    /// Decoded clean.
    Ok,
    /// FCS failed (a recovery candidate).
    CrcFailed,
}

/// Sliding-window recovery-demand detector for one link.
#[derive(Debug, Clone)]
pub struct AdaptiveRecovery {
    window: VecDeque<FrameOutcome>,
    capacity: usize,
    /// Failure rate above which recovery turns on.
    on_threshold: f64,
    /// Failure rate below which recovery turns off (hysteresis:
    /// `off_threshold < on_threshold`).
    off_threshold: f64,
    enabled: bool,
    switches: u64,
}

impl AdaptiveRecovery {
    /// Creates a detector over the last `capacity` frames with the given
    /// on/off thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero, thresholds are outside `[0, 1]`, or
    /// `off_threshold > on_threshold`.
    pub fn new(capacity: usize, on_threshold: f64, off_threshold: f64) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        assert!(
            (0.0..=1.0).contains(&on_threshold) && (0.0..=1.0).contains(&off_threshold),
            "thresholds must be fractions"
        );
        assert!(
            off_threshold <= on_threshold,
            "hysteresis requires off ≤ on"
        );
        AdaptiveRecovery {
            window: VecDeque::with_capacity(capacity),
            capacity,
            on_threshold,
            off_threshold,
            enabled: false,
            switches: 0,
        }
    }

    /// A practical default: 50-frame window, turn on above 5 % failures,
    /// off below 1 %.
    pub fn practical_default() -> Self {
        AdaptiveRecovery::new(50, 0.05, 0.01)
    }

    /// Records one frame outcome and returns whether recovery is enabled
    /// *for the next frame*.
    pub fn observe(&mut self, outcome: FrameOutcome) -> bool {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(outcome);
        let rate = self.failure_rate();
        let was = self.enabled;
        if !self.enabled && rate > self.on_threshold {
            self.enabled = true;
        } else if self.enabled && rate < self.off_threshold {
            self.enabled = false;
        }
        if was != self.enabled {
            self.switches += 1;
        }
        self.enabled
    }

    /// Current CRC-failure rate over the window (0 for an empty window).
    pub fn failure_rate(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let failed = self
            .window
            .iter()
            .filter(|&&o| o == FrameOutcome::CrcFailed)
            .count();
        failed as f64 / self.window.len() as f64
    }

    /// Whether recovery is currently on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// How many times the decision has flipped.
    pub fn switch_count(&self) -> u64 {
        self.switches
    }
}

impl Default for AdaptiveRecovery {
    fn default() -> Self {
        AdaptiveRecovery::practical_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_off_on_a_clean_link() {
        let mut a = AdaptiveRecovery::practical_default();
        for _ in 0..500 {
            assert!(!a.observe(FrameOutcome::Ok));
        }
        assert_eq!(a.switch_count(), 0);
        assert_eq!(a.failure_rate(), 0.0);
    }

    #[test]
    fn turns_on_under_sustained_failures() {
        let mut a = AdaptiveRecovery::practical_default();
        for _ in 0..45 {
            a.observe(FrameOutcome::Ok);
        }
        // A burst of failures crosses the 5% threshold quickly.
        for _ in 0..5 {
            a.observe(FrameOutcome::CrcFailed);
        }
        assert!(a.is_enabled());
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let mut a = AdaptiveRecovery::new(20, 0.3, 0.1);
        // Alternate at a rate between off (0.1) and on (0.3) thresholds:
        // ~20% failures. Once on, it must stay on.
        for i in 0..200 {
            let o = if i % 5 == 0 {
                FrameOutcome::CrcFailed
            } else {
                FrameOutcome::Ok
            };
            a.observe(o);
        }
        assert!(a.switch_count() <= 1, "flapped {} times", a.switch_count());
    }

    #[test]
    fn turns_off_when_the_interferer_leaves() {
        let mut a = AdaptiveRecovery::new(20, 0.3, 0.1);
        for _ in 0..20 {
            a.observe(FrameOutcome::CrcFailed);
        }
        assert!(a.is_enabled());
        for _ in 0..40 {
            a.observe(FrameOutcome::Ok);
        }
        assert!(!a.is_enabled());
        assert_eq!(a.switch_count(), 2);
    }

    #[test]
    fn window_is_sliding() {
        let mut a = AdaptiveRecovery::new(10, 0.5, 0.1);
        for _ in 0..10 {
            a.observe(FrameOutcome::CrcFailed);
        }
        assert_eq!(a.failure_rate(), 1.0);
        for _ in 0..10 {
            a.observe(FrameOutcome::Ok);
        }
        assert_eq!(a.failure_rate(), 0.0, "old failures must age out");
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_thresholds_rejected() {
        let _ = AdaptiveRecovery::new(10, 0.1, 0.3);
    }
}
