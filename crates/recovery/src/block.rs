//! Block-oriented partial packet recovery.
//!
//! PPR's observable behaviour: the receiver keeps the frame, identifies
//! which chunks are trustworthy, and asks the sender to retransmit only
//! the bad ones. A frame is *recoverable* when the corrupted portion is
//! small enough that the retransmission request plus patch costs less
//! than a full retransmission — modelled here as a bound on the fraction
//! of corrupted blocks.

/// A block-recovery scheme: `block_bytes`-sized chunks, recoverable while
/// at most `max_corrupt_fraction` of the blocks are corrupted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockScheme {
    block_bytes: u32,
    max_corrupt_fraction: f64,
}

/// The verdict for one corrupted frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryOutcome {
    /// Number of blocks in the frame.
    pub total_blocks: u32,
    /// Number of blocks containing at least one error bit.
    pub corrupted_blocks: u32,
    /// Whether the scheme can rescue the frame.
    pub recoverable: bool,
}

impl BlockScheme {
    /// Creates a scheme.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is zero or the fraction is outside
    /// `[0, 1]`.
    pub fn new(block_bytes: u32, max_corrupt_fraction: f64) -> Self {
        assert!(block_bytes > 0, "block size must be positive");
        assert!(
            (0.0..=1.0).contains(&max_corrupt_fraction),
            "fraction out of range: {max_corrupt_fraction}"
        );
        BlockScheme {
            block_bytes,
            max_corrupt_fraction,
        }
    }

    /// The PPR-like default: 8-byte blocks, recoverable up to half the
    /// blocks corrupted (one feedback round plus a patch retransmission
    /// is still cheaper than resending the frame).
    pub fn ppr_default() -> Self {
        BlockScheme::new(8, 0.5)
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// Analyzes a corrupted frame.
    ///
    /// `error_positions` are bit indices into the frame (any order,
    /// duplicates tolerated); `frame_bytes` is the full frame length.
    /// Positions beyond the frame are ignored (they cannot occur with a
    /// well-formed simulator but a defensive bound keeps the result
    /// meaningful).
    pub fn analyze(&self, error_positions: &[u32], frame_bytes: u32) -> RecoveryOutcome {
        let total_blocks = frame_bytes.div_ceil(self.block_bytes).max(1);
        let mut corrupted = vec![false; total_blocks as usize];
        for &bit in error_positions {
            let byte = bit / 8;
            if byte < frame_bytes {
                corrupted[(byte / self.block_bytes) as usize] = true;
            }
        }
        let corrupted_blocks = corrupted.iter().filter(|&&c| c).count() as u32;
        RecoveryOutcome {
            total_blocks,
            corrupted_blocks,
            recoverable: f64::from(corrupted_blocks)
                <= self.max_corrupt_fraction * f64::from(total_blocks),
        }
    }

    /// Convenience for records that only kept an error *count*: assumes
    /// the worst case of maximally spread errors (each error hits its own
    /// block).
    pub fn analyze_spread(&self, error_bits: u32, frame_bytes: u32) -> RecoveryOutcome {
        let total_blocks = frame_bytes.div_ceil(self.block_bytes).max(1);
        let corrupted_blocks = error_bits.min(total_blocks);
        RecoveryOutcome {
            total_blocks,
            corrupted_blocks,
            recoverable: f64::from(corrupted_blocks)
                <= self.max_corrupt_fraction * f64::from(total_blocks),
        }
    }
}

impl Default for BlockScheme {
    fn default() -> Self {
        BlockScheme::ppr_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_frame_trivially_recoverable() {
        let out = BlockScheme::ppr_default().analyze(&[], 51);
        assert_eq!(out.corrupted_blocks, 0);
        assert!(out.recoverable);
        assert_eq!(out.total_blocks, 7); // ceil(51 / 8)
    }

    #[test]
    fn clustered_errors_corrupt_one_block() {
        let scheme = BlockScheme::new(8, 0.5);
        // Errors in bits 0..10 → bytes 0-1 → block 0 only.
        let out = scheme.analyze(&[0, 3, 9, 10], 51);
        assert_eq!(out.corrupted_blocks, 1);
        assert!(out.recoverable);
    }

    #[test]
    fn spread_errors_corrupt_many_blocks() {
        let scheme = BlockScheme::new(8, 0.5);
        // One error every 8 bytes (64 bits) → every block corrupted.
        let positions: Vec<u32> = (0..7).map(|b| b * 64).collect();
        let out = scheme.analyze(&positions, 51);
        assert_eq!(out.corrupted_blocks, 7);
        assert!(!out.recoverable);
    }

    #[test]
    fn threshold_is_inclusive() {
        let scheme = BlockScheme::new(8, 0.5);
        // 56-byte frame → 7 blocks; 3 corrupted = 0.43 ≤ 0.5 → ok;
        // 4 corrupted = 0.57 → not recoverable.
        let three: Vec<u32> = vec![0, 64, 128];
        assert!(scheme.analyze(&three, 56).recoverable);
        let four: Vec<u32> = vec![0, 64, 128, 192];
        assert!(!scheme.analyze(&four, 56).recoverable);
    }

    #[test]
    fn out_of_range_positions_ignored() {
        let scheme = BlockScheme::ppr_default();
        let out = scheme.analyze(&[10_000], 51);
        assert_eq!(out.corrupted_blocks, 0);
    }

    #[test]
    fn duplicates_do_not_double_count() {
        let scheme = BlockScheme::ppr_default();
        let out = scheme.analyze(&[5, 5, 6, 7], 51);
        assert_eq!(out.corrupted_blocks, 1);
    }

    #[test]
    fn spread_estimate_is_pessimistic() {
        let scheme = BlockScheme::new(8, 0.5);
        let exact = scheme.analyze(&[0, 1, 2, 3, 4], 51);
        let spread = scheme.analyze_spread(5, 51);
        assert!(spread.corrupted_blocks >= exact.corrupted_blocks);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_rejected() {
        let _ = BlockScheme::new(0, 0.5);
    }
}
