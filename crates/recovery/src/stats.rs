//! Error-bit statistics: empirical CDFs for the paper's Fig. 29.

/// Empirical CDF of `values`: returns sorted `(x, F(x))` points where
/// `F(x)` is the fraction of values ≤ `x`.
///
/// # Examples
///
/// ```
/// let cdf = nomc_recovery::ecdf(&[0.2, 0.1, 0.4]);
/// assert_eq!(cdf.len(), 3);
/// assert_eq!(cdf[0], (0.1, 1.0 / 3.0));
/// assert_eq!(cdf[2], (0.4, 1.0));
/// ```
pub fn ecdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// Fraction of values at or below `threshold` — the paper reads
/// `fraction_at_or_below(fractions, 0.1) ≈ 0.87` off its Fig. 29.
///
/// Returns `None` for an empty input.
pub fn fraction_at_or_below(values: &[f64], threshold: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let count = values.iter().filter(|&&v| v <= threshold).count();
    Some(count as f64 / values.len() as f64)
}

/// PPR-style recoverability by error fraction: a frame whose error bits
/// are at most `max_fraction` of its total is worth patching (chunk
/// retransmission or soft-decoding) instead of a full retransmission —
/// the criterion the paper's Fig. 28 "Recoverable" line uses.
pub fn recoverable_by_fraction(error_fraction: f64, max_fraction: f64) -> bool {
    error_fraction <= max_fraction
}

/// Summary of a set of error-bit fractions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBitSummary {
    /// Number of CRC-failed frames observed.
    pub count: usize,
    /// Mean error-bit fraction.
    pub mean: f64,
    /// Median error-bit fraction.
    pub median: f64,
    /// Fraction of frames with ≤ 10 % error bits (the paper's headline).
    pub at_most_10_percent: f64,
}

/// Summarizes error-bit fractions.
///
/// Returns `None` for an empty input.
pub fn summarize(fractions: &[f64]) -> Option<ErrorBitSummary> {
    if fractions.is_empty() {
        return None;
    }
    let mut sorted = fractions.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = sorted.len();
    Some(ErrorBitSummary {
        count: n,
        mean: sorted.iter().sum::<f64>() / n as f64,
        median: if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        },
        at_most_10_percent: fraction_at_or_below(&sorted, 0.1).expect("non-empty"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_is_monotone_and_ends_at_one() {
        let cdf = ecdf(&[0.5, 0.1, 0.3, 0.3]);
        assert_eq!(cdf.len(), 4);
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].0 <= w[1].0));
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn ecdf_empty() {
        assert!(ecdf(&[]).is_empty());
    }

    #[test]
    fn fraction_at_or_below_counts_inclusively() {
        let v = [0.05, 0.1, 0.2, 0.5];
        assert_eq!(fraction_at_or_below(&v, 0.1), Some(0.5));
        assert_eq!(fraction_at_or_below(&v, 0.04), Some(0.0));
        assert_eq!(fraction_at_or_below(&v, 1.0), Some(1.0));
        assert_eq!(fraction_at_or_below(&[], 0.1), None);
    }

    #[test]
    fn fraction_criterion() {
        assert!(recoverable_by_fraction(0.05, 0.25));
        assert!(recoverable_by_fraction(0.25, 0.25));
        assert!(!recoverable_by_fraction(0.3, 0.25));
    }

    #[test]
    fn summary_values() {
        let s = summarize(&[0.02, 0.05, 0.08, 0.3]).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.median - 0.065).abs() < 1e-12);
        assert!((s.at_most_10_percent - 0.75).abs() < 1e-12);
        assert!((s.mean - 0.1125).abs() < 1e-12);
        assert_eq!(summarize(&[]), None);
    }
}
