//! Minimal wall-clock benchmark harness with a Criterion-shaped API.
//!
//! The workspace builds with zero external dependencies, so the benches
//! in `benches/` drive this harness instead of Criterion. It keeps the
//! familiar surface — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], and the
//! [`crate::criterion_group!`]/[`crate::criterion_main!`] macros — and
//! measures with
//! `std::time::Instant`.
//!
//! Each finished group appends to an in-memory report; the main macro
//! writes one `BENCH_<group>.json` file per group into the current
//! directory with mean/min/max nanoseconds per iteration, so results
//! stay machine-readable across runs.
//!
//! Passing `--test` (what `cargo test --benches` does) runs every
//! closure exactly once as a smoke test and writes no files.

use nomc_json::{Json, ToJson};
use nomc_units::Nanos;
use std::time::Instant;

/// Target wall-clock time for one measured sample.
const SAMPLE_TARGET_NANOS: u128 = 2_000_000;

/// One measured benchmark function.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Function id within the group.
    pub name: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: Nanos,
    /// Fastest sample (ns/iter).
    pub min_ns: Nanos,
    /// Slowest sample (ns/iter).
    pub max_ns: Nanos,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Logical elements processed per iteration (e.g. simulation events),
    /// when the group declared a throughput.
    pub elements_per_iter: Option<u64>,
}

impl BenchResult {
    /// Mean elements per wall-clock second, when a throughput was set.
    pub fn elements_per_sec(&self) -> Option<f64> {
        self.elements_per_iter
            .map(|e| e as f64 / (self.mean_ns.value() * 1e-9))
    }
}

impl ToJson for BenchResult {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", self.name.to_json()),
            ("mean_ns", self.mean_ns.to_json()),
            ("min_ns", self.min_ns.to_json()),
            ("max_ns", self.max_ns.to_json()),
            ("samples", self.samples.to_json()),
            ("iters_per_sample", self.iters_per_sample.to_json()),
        ];
        if let Some(e) = self.elements_per_iter {
            fields.push(("elements_per_iter", e.to_json()));
        }
        if let Some(eps) = self.elements_per_sec() {
            fields.push(("elements_per_sec", eps.to_json()));
        }
        Json::object(fields)
    }
}

/// The harness entry point, passed to every registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    /// Smoke-test mode: run each closure once, record nothing.
    test_mode: bool,
    /// Reports of all finished groups, in registration order.
    finished: Vec<(String, Vec<BenchResult>)>,
}

impl Criterion {
    /// Creates a harness; `test_mode` short-circuits measurement.
    pub fn new(test_mode: bool) -> Self {
        Criterion {
            test_mode,
            finished: Vec::new(),
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
            results: Vec::new(),
        }
    }

    /// Writes one `BENCH_<group>.json` per finished group.
    pub fn write_reports(&self) {
        for (group, results) in &self.finished {
            let report = Json::object([
                ("group", group.to_json()),
                ("benches", results.as_slice().to_json()),
            ]);
            let path = format!("BENCH_{group}.json");
            match std::fs::write(&path, report.dump_pretty()) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => eprintln!("cannot write {path}: {e}"),
            }
        }
    }
}

/// A named set of benchmark functions sharing a sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<u64>,
    results: Vec<BenchResult>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each function takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares how many logical elements one iteration of the *next*
    /// bench functions processes, so reports carry elements/sec.
    pub fn throughput(&mut self, elements_per_iter: u64) -> &mut Self {
        self.throughput = Some(elements_per_iter);
        self
    }

    /// Measures one function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into();
        let mut b = Bencher {
            test_mode: self.parent.test_mode,
            sample_size: self.sample_size,
            measured: None,
        };
        f(&mut b);
        if let Some(mut r) = b.measured {
            r.elements_per_iter = self.throughput;
            let eps = r
                .elements_per_sec()
                .map(|e| format!(", {e:.0} elems/s"))
                .unwrap_or_default();
            eprintln!(
                "{}/{name}: {:.0} ns/iter (min {:.0}, max {:.0}, {} samples{eps})",
                self.name,
                r.mean_ns.value(),
                r.min_ns.value(),
                r.max_ns.value(),
                r.samples
            );
            r.name = name;
            self.results.push(r);
        }
        self
    }

    /// Finalizes the group, recording its results on the harness.
    pub fn finish(self) {
        self.parent.finished.push((self.name, self.results));
    }
}

/// Times a closure passed to [`Bencher::iter`].
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    measured: Option<BenchResult>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records wall-clock statistics.
    ///
    /// Calibrates iterations-per-sample so a sample lasts roughly
    /// `SAMPLE_TARGET_NANOS` (2 ms), then takes `sample_size` samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Calibration: one untimed warmup doubles as the cost estimate.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().as_nanos().max(1);
        let iters = ((SAMPLE_TARGET_NANOS / once).clamp(1, 1_000_000)) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples_ns.iter().copied().fold(0.0f64, f64::max);
        self.measured = Some(BenchResult {
            name: String::new(),
            mean_ns: Nanos::new(mean),
            min_ns: Nanos::new(min),
            max_ns: Nanos::new(max),
            samples: samples_ns.len(),
            iters_per_sample: iters,
            elements_per_iter: None,
        });
    }
}

/// Registers bench functions under a group runner, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($func:path),+ $(,)?) => {
        fn $group(c: &mut $crate::harness::Criterion) {
            $( $func(c); )+
        }
    };
}

/// Generates `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let test_mode = std::env::args().any(|a| a == "--test");
            let mut c = $crate::harness::Criterion::new(test_mode);
            $( $group(&mut c); )+
            if !test_mode {
                c.write_reports();
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_groups() {
        let mut c = Criterion::new(false);
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3);
            let mut n = 0u64;
            g.bench_function("count", |b| {
                b.iter(|| {
                    n += 1;
                    n
                })
            });
            g.finish();
        }
        assert_eq!(c.finished.len(), 1);
        let (name, results) = &c.finished[0];
        assert_eq!(name, "demo");
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].samples, 3);
        assert!(results[0].mean_ns.value() > 0.0);
        assert!(results[0].min_ns <= results[0].mean_ns);
        assert!(results[0].mean_ns <= results[0].max_ns);
    }

    #[test]
    fn test_mode_runs_once_and_records_nothing() {
        let mut c = Criterion::new(true);
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("smoke");
            g.bench_function("noop", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert_eq!(calls, 1);
        assert!(c.finished[0].1.is_empty());
    }

    #[test]
    fn result_serializes() {
        let r = BenchResult {
            name: "x".into(),
            mean_ns: Nanos::new(12.5),
            min_ns: Nanos::new(10.0),
            max_ns: Nanos::new(15.0),
            samples: 5,
            iters_per_sample: 100,
            elements_per_iter: None,
        };
        let j = r.to_json();
        assert_eq!(j["name"], "x");
        assert_eq!(j["samples"], 5u64);
        assert!(j.get("elements_per_sec").is_none());
    }

    #[test]
    fn throughput_reports_elements_per_sec() {
        let r = BenchResult {
            name: "x".into(),
            mean_ns: Nanos::new(1e9), // one second per iteration
            min_ns: Nanos::new(1e9),
            max_ns: Nanos::new(1e9),
            samples: 1,
            iters_per_sample: 1,
            elements_per_iter: Some(500),
        };
        let eps = r.elements_per_sec().expect("throughput set");
        assert!((eps - 500.0).abs() < 1e-6);
        let j = r.to_json();
        assert_eq!(j["elements_per_iter"], 500u64);

        let mut c = Criterion::new(false);
        {
            let mut g = c.benchmark_group("tp");
            g.sample_size(2).throughput(10);
            g.bench_function("spin", |b| b.iter(|| std::hint::black_box(3u64 * 7)));
            g.finish();
        }
        let (_, results) = &c.finished[0];
        assert_eq!(results[0].elements_per_iter, Some(10));
        assert!(results[0].elements_per_sec().expect("set") > 0.0);
    }
}
