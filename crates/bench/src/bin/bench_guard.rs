//! The bench-regression gate: validates every committed
//! `BENCH_<group>.json` perf record against the committed per-bench
//! budgets in `bench_budgets.json`.
//!
//! CI runs this instead of eyeballing the perf-trajectory records. The
//! contract is total, both ways:
//!
//! * every bench in every record must have a budget (adding a bench
//!   without budgeting it fails the gate), and
//! * every budgeted bench must appear in its record (silently dropping
//!   a bench fails the gate), and
//! * every record's `mean_ns` must be within its budget.
//!
//! Because the gate reads the *committed* records — the bench smoke
//! step runs with `--test` and writes nothing — it is deterministic in
//! CI: it fails exactly when someone commits a regressed record (or
//! forgets to budget a new bench), never because the CI runner had a
//! noisy day. Budget headroom over the recorded means absorbs
//! record-machine noise instead.
//!
//! Usage: `bench_guard [bench-dir]` — the directory holding
//! `bench_budgets.json` and the `BENCH_*.json` records, default
//! `crates/bench` (so it runs as-is from the workspace root).

use nomc_json::Json;
use nomc_units::Nanos;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// One budget check: recorded mean vs budget.
struct Row {
    group: String,
    name: String,
    mean_ns: Nanos,
    budget_ns: Nanos,
}

impl Row {
    fn passed(&self) -> bool {
        self.mean_ns <= self.budget_ns
    }

    /// Fraction of the budget still unused (negative when blown).
    fn headroom(&self) -> f64 {
        1.0 - self.mean_ns.value() / self.budget_ns.value()
    }
}

fn load_json(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Parses `bench_budgets.json` into `group → name → budget_ns`.
fn load_budgets(path: &str) -> Result<BTreeMap<String, BTreeMap<String, f64>>, String> {
    let root = load_json(path)?;
    let budgets = root
        .get("budgets")
        .and_then(Json::as_object)
        .ok_or_else(|| format!("{path}: missing top-level \"budgets\" object"))?;
    let mut out = BTreeMap::new();
    for (group, entry) in budgets.iter() {
        let by_name = entry
            .as_object()
            .ok_or_else(|| format!("{path}: budgets.{group} is not an object"))?;
        let mut m = BTreeMap::new();
        for (name, v) in by_name.iter() {
            let ns = v
                .as_f64()
                .filter(|ns| ns.is_finite() && *ns > 0.0)
                .ok_or_else(|| {
                    format!("{path}: budgets.{group}.{name} is not a positive number")
                })?;
            m.insert(name.to_string(), ns);
        }
        out.insert(group.to_string(), m);
    }
    Ok(out)
}

/// Parses one `BENCH_<group>.json` record into `name → mean_ns`.
fn load_record(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let root = load_json(path)?;
    let benches = root
        .get("benches")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{path}: missing \"benches\" array"))?;
    let mut out = BTreeMap::new();
    for b in benches {
        let name = b
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: bench entry without a \"name\""))?;
        let mean = b
            .get("mean_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{path}: bench {name} without a numeric \"mean_ns\""))?;
        out.insert(name.to_string(), mean);
    }
    Ok(out)
}

/// Group names of every `BENCH_<group>.json` present in `dir`, so a
/// record file without any budgets section is caught too.
fn record_groups(dir: &str) -> Result<Vec<String>, String> {
    let mut groups = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("cannot list {dir}: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {dir}: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(group) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
        {
            groups.push(group.to_string());
        }
    }
    groups.sort();
    Ok(groups)
}

fn ns_human(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run(dir: &str) -> Result<Vec<String>, String> {
    let budgets = load_budgets(&format!("{dir}/bench_budgets.json"))?;
    let mut failures = Vec::new();
    let mut rows = Vec::new();

    for group in record_groups(dir)? {
        if !budgets.contains_key(&group) {
            failures.push(format!(
                "group {group}: BENCH_{group}.json exists but bench_budgets.json has no \
                 \"{group}\" section"
            ));
        }
    }
    for (group, by_name) in &budgets {
        let path = format!("{dir}/BENCH_{group}.json");
        let record = load_record(&path)?;
        for name in record.keys() {
            if !by_name.contains_key(name) {
                failures.push(format!(
                    "{group}/{name}: recorded in BENCH_{group}.json but has no budget — \
                     add it to bench_budgets.json"
                ));
            }
        }
        for (name, &budget_ns) in by_name {
            match record.get(name) {
                None => failures.push(format!(
                    "{group}/{name}: budgeted but missing from BENCH_{group}.json — \
                     bench dropped or renamed?"
                )),
                Some(&mean_ns) => rows.push(Row {
                    group: group.clone(),
                    name: name.clone(),
                    mean_ns: Nanos::new(mean_ns),
                    budget_ns: Nanos::new(budget_ns),
                }),
            }
        }
    }

    println!(
        "{:<10} {:<28} {:>12} {:>12} {:>9}  status",
        "group", "bench", "mean", "budget", "headroom"
    );
    for row in &rows {
        println!(
            "{:<10} {:<28} {:>12} {:>12} {:>8.0}%  {}",
            row.group,
            row.name,
            ns_human(row.mean_ns.value()),
            ns_human(row.budget_ns.value()),
            row.headroom() * 100.0,
            if row.passed() { "PASS" } else { "FAIL" }
        );
        if !row.passed() {
            failures.push(format!(
                "{}/{}: mean {} exceeds budget {}",
                row.group,
                row.name,
                ns_human(row.mean_ns.value()),
                ns_human(row.budget_ns.value())
            ));
        }
    }
    Ok(failures)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let dir = match args.get(1) {
        Some(d) => d.as_str(),
        None => "crates/bench",
    };
    match run(dir) {
        Ok(failures) if failures.is_empty() => {
            println!("bench guard: all budgets respected");
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            for f in &failures {
                eprintln!("bench guard FAIL: {f}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench guard error: {e}");
            ExitCode::FAILURE
        }
    }
}
