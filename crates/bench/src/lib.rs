//! # nomc-bench
//!
//! Benchmark-only crate. The benches live in `benches/`:
//!
//! * `paper_figures` — one Criterion group per paper table/figure,
//!   running a reduced-duration kernel of the corresponding experiment
//!   (these measure simulator cost, not paper metrics; the metrics come
//!   from `nomc-experiments`),
//! * `micro` — hot-path micro-benchmarks (BER evaluation, binomial
//!   sampling, SINR segmentation, CRC, event queue, PRNG).
//!
//! This library exposes the shared reduced-duration scenario helpers so
//! both bench files stay small, plus [`harness`] — the in-tree
//! wall-clock replacement for Criterion that keeps the workspace free of
//! external dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use nomc_sim::{Scenario, SimResult};
use nomc_units::SimDuration;

/// Shrinks a scenario to benchmark duration (1.5 s simulated, 0.5 s
/// warmup) so a benchmark sample stays in the tens of milliseconds.
pub fn shrink(mut scenario: Scenario) -> Scenario {
    scenario.duration = SimDuration::from_millis(1500);
    scenario.warmup = SimDuration::from_millis(500);
    scenario
}

/// Runs a shrunken scenario and returns its result (black-boxed by the
/// caller).
pub fn run_shrunk(scenario: Scenario) -> SimResult {
    nomc_sim::engine::run(&shrink(scenario))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomc_topology::{paper, spectrum::ChannelPlan};
    use nomc_units::{Dbm, Megahertz};

    #[test]
    fn shrink_sets_bench_duration() {
        let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
        let sc = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)))
            .build()
            .unwrap();
        let s = shrink(sc);
        assert_eq!(s.duration, SimDuration::from_millis(1500));
        assert!(s.warmup < s.duration);
        let result = run_shrunk(s);
        assert!(result.total_throughput() > 0.0);
    }
}
