//! Simulation-runtime kernels: the two workloads that dominate real
//! sweeps.
//!
//! * `power_sense_heavy` — six DCN networks on a 3 MHz grid; during the
//!   1 s initializing phase every sender samples in-channel power every
//!   1 ms (the paper's T_I rule), so the run is dominated by
//!   `Medium::sensed_total` queries.
//! * `saturated_2link` — one network, two saturated links: the plain
//!   CSMA/CA contention kernel (CCA + decode path).
//!
//! `cargo bench -p nomc-bench --bench sim` writes `BENCH_sim.json` with
//! wall-clock per run and events/sec, the perf-trajectory record ci.sh
//! smoke-checks.

use nomc_bench::harness::Criterion;
use nomc_bench::{criterion_group, criterion_main, run_shrunk, shrink};
use nomc_sim::{engine, NetworkBehavior, Scenario};
use nomc_topology::paper;
use nomc_topology::spectrum::ChannelPlan;
use nomc_units::{Dbm, Megahertz};
use std::hint::black_box;

/// Six networks on the paper's 15 MHz band at 3 MHz spacing, all DCN.
fn power_sense_heavy_scenario(seed: u64) -> Scenario {
    let plan = ChannelPlan::with_count(Megahertz::new(2450.0), Megahertz::new(3.0), 6);
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.behavior_all(NetworkBehavior::dcn_default()).seed(seed);
    b.build().expect("valid bench scenario")
}

/// One network, two saturated links, fixed ZigBee threshold.
fn saturated_2link_scenario(seed: u64) -> Scenario {
    let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.seed(seed);
    b.build().expect("valid bench scenario")
}

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    for (name, sc) in [
        ("power_sense_heavy", power_sense_heavy_scenario(1)),
        ("saturated_2link", saturated_2link_scenario(1)),
    ] {
        let events = engine::run(&shrink(sc.clone())).events;
        g.throughput(events);
        g.bench_function(name, |b| b.iter(|| black_box(run_shrunk(sc.clone()))));
    }
    g.finish();
}

criterion_group!(sim, bench_sim);
criterion_main!(sim);
