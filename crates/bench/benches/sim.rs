//! Simulation-runtime kernels: the two workloads that dominate real
//! sweeps.
//!
//! * `power_sense_heavy` — six DCN networks on a 3 MHz grid; during the
//!   1 s initializing phase every sender samples in-channel power every
//!   1 ms (the paper's T_I rule), so the run is dominated by
//!   `Medium::sensed_total` queries.
//! * `saturated_2link` — one network, two saturated links: the plain
//!   CSMA/CA contention kernel (CCA + decode path).
//! * `fault_heavy` — the `power_sense_heavy` workload under a dense
//!   fault plan (staggered crash/reboot cycles, pulsed jammers, RSSI
//!   drifts, stuck-CCA windows), pinning the overhead of the fault
//!   layer itself; the fault-free kernels above double as the
//!   no-regression guard for runs with an empty plan.
//! * `sharded_power_sense_heavy` / `sharded_serial_baseline` — six
//!   *independent* networks (25 MHz apart, 60 m apart, shadowing off)
//!   through the sharded engine on 4 worker threads vs 1; on a
//!   multi-core machine the ratio is the shard-parallelism speedup, and
//!   the 1-thread run pins the merge/relay overhead.
//! * `sharded_saturated` — the deliberately-coupled counterpart: the
//!   `power_sense_heavy` six-network 3 MHz grid through `run_sharded`,
//!   which collapses to a single component, so the bench pins the
//!   partition-planning + delegation overhead on coupled workloads.
//! * `snapshot_roundtrip` — one mid-run engine checkpoint priced end to
//!   end: serialize a paused `power_sense_heavy` run to its JSON wire
//!   format and restore it back.
//! * `checkpoint_overhead` — the same workload run under full
//!   checkpoint supervision (pause every 4 000 events, atomic
//!   save + fsync through the sweep checkpoint store, reload, resume);
//!   compare against `power_sense_heavy` for the supervision premium.
//!   With checkpointing off the engine never touches this code, so the
//!   plain kernels above double as the zero-regression guard.
//!
//! `cargo bench -p nomc-bench --bench sim` writes `BENCH_sim.json` with
//! wall-clock per run and events/sec, the perf-trajectory record ci.sh
//! smoke-checks.

use nomc_bench::harness::Criterion;
use nomc_bench::{criterion_group, criterion_main, run_shrunk, shrink};
use nomc_phy::Shadowing;
use nomc_sim::scenario::Propagation;
use nomc_sim::{
    engine, CrashFault, DriftFault, FaultPlan, JammerFault, NetworkBehavior, Scenario,
    StuckCcaFault,
};
use nomc_topology::spectrum::ChannelPlan;
use nomc_topology::{paper, Deployment, LinkSpec, NetworkSpec, Point};
use nomc_units::{Db, Dbm, Megahertz, SimDuration, SimTime};
use std::hint::black_box;

/// Six networks on the paper's 15 MHz band at 3 MHz spacing, all DCN.
fn power_sense_heavy_scenario(seed: u64) -> Scenario {
    let plan = ChannelPlan::with_count(Megahertz::new(2450.0), Megahertz::new(3.0), 6);
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.behavior_all(NetworkBehavior::dcn_default()).seed(seed);
    b.build().expect("valid bench scenario")
}

/// One network, two saturated links, fixed ZigBee threshold.
fn saturated_2link_scenario(seed: u64) -> Scenario {
    let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.seed(seed);
    b.build().expect("valid bench scenario")
}

/// `power_sense_heavy` plus a dense fault plan: every fault type fires
/// inside the shrunken 1.5 s bench window (senders sit at even global
/// indices — 24 nodes across the six two-link networks).
fn fault_heavy_scenario(seed: u64) -> Scenario {
    let at = |ms: u64| SimTime::ZERO + SimDuration::from_millis(ms);
    let mut sc = power_sense_heavy_scenario(seed);
    sc.faults = FaultPlan {
        crashes: vec![
            CrashFault {
                node: 0,
                at: at(600),
                down_for: SimDuration::from_millis(200),
            },
            CrashFault {
                node: 8,
                at: at(900),
                down_for: SimDuration::from_millis(200),
            },
        ],
        jammers: vec![
            JammerFault {
                frequency: Megahertz::new(2450.0),
                power: Dbm::new(-70.0),
                at: at(700),
                duration: SimDuration::from_millis(300),
            },
            JammerFault {
                frequency: Megahertz::new(2459.0),
                power: Dbm::new(-72.0),
                at: at(1000),
                duration: SimDuration::from_millis(200),
            },
        ],
        drifts: vec![
            DriftFault {
                node: 4,
                at: at(500),
                ramp: SimDuration::from_millis(300),
                peak: Db::new(2.0),
            },
            DriftFault {
                node: 12,
                at: at(800),
                ramp: SimDuration::ZERO,
                peak: Db::new(-3.0),
            },
        ],
        stuck_cca: vec![
            StuckCcaFault {
                node: 16,
                at: at(650),
                duration: SimDuration::from_millis(250),
            },
            StuckCcaFault {
                node: 20,
                at: at(1100),
                duration: SimDuration::from_millis(150),
            },
        ],
    };
    sc
}

/// Six fully-independent DCN networks: 25 MHz channel spacing (past the
/// 9 MHz ACR saturation), 60 m apart, shadowing disabled — the planner
/// splits them into six shards, so worker threads can run them
/// concurrently on a multi-core machine.
fn sharded_independent_scenario(seed: u64) -> Scenario {
    let specs = (0..6)
        .map(|i| {
            let freq = Megahertz::new(2410.0 + 25.0 * i as f64);
            let x = 60.0 * i as f64;
            let links = vec![
                LinkSpec::new(Point::new(x, 0.0), Point::new(x + 2.0, 0.0), Dbm::new(0.0)),
                LinkSpec::new(Point::new(x, 1.0), Point::new(x + 2.0, 1.0), Dbm::new(0.0)),
            ];
            NetworkSpec::new(freq, links)
        })
        .collect();
    let mut b = Scenario::builder(Deployment::new(specs));
    b.behavior_all(NetworkBehavior::dcn_default())
        .seed(seed)
        .propagation(Propagation {
            shadowing: Shadowing::disabled(),
            ..Propagation::default()
        });
    b.build().expect("valid bench scenario")
}

/// One checkpoint-supervised run of `sc`: pause every `cadence`
/// events, persist the snapshot through the sweep checkpoint store
/// (atomic tmp + fsync + rename), reload and restore it from disk, and
/// resume — the exact per-leg cost a `--checkpoint-every` sweep member
/// pays for durability.
fn run_checkpointed(sc: &Scenario, dir: &std::path::Path, cadence: u64) -> nomc_sim::SimResult {
    use nomc_experiments::sweep::checkpoint;
    const KEY: u64 = 0xbe7c_0de5;
    let mut target = cadence;
    let mut progress = engine::run_until(sc, &mut [], u64::MAX, target);
    loop {
        match progress {
            engine::RunProgress::Paused(snap) => {
                checkpoint::save(dir, KEY, 0, target, &engine::snapshot(&snap))
                    .expect("bench checkpoint saves");
                let rec = checkpoint::load(dir, KEY)
                    .expect("bench checkpoint loads")
                    .expect("bench checkpoint exists");
                let restored = engine::restore(&rec.payload).expect("bench checkpoint restores");
                target += cadence;
                progress = engine::resume_bounded(sc, restored, &mut [], target)
                    .expect("bench checkpoint resumes");
            }
            engine::RunProgress::Done(done) => {
                checkpoint::discard(dir, KEY);
                return done.result;
            }
        }
    }
}

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    for (name, sc) in [
        ("power_sense_heavy", power_sense_heavy_scenario(1)),
        ("saturated_2link", saturated_2link_scenario(1)),
        ("fault_heavy", fault_heavy_scenario(1)),
    ] {
        let events = engine::run(&shrink(sc.clone())).events;
        g.throughput(events);
        g.bench_function(name, |b| b.iter(|| black_box(run_shrunk(sc.clone()))));
    }
    // Sharded-engine kernels: the independent workload at 4 worker
    // threads vs 1 (the ratio is the shard speedup on a multi-core
    // machine; at 1 thread it pins the relay/merge overhead), and the
    // coupled workload, which delegates — pinning plan() + delegation.
    let independent = sharded_independent_scenario(1);
    let coupled = power_sense_heavy_scenario(1);
    for (name, sc, threads) in [
        ("sharded_power_sense_heavy", &independent, 4),
        ("sharded_serial_baseline", &independent, 1),
        ("sharded_saturated", &coupled, 1),
    ] {
        let shrunk = shrink(sc.clone());
        g.throughput(engine::run_sharded(&shrunk, threads).events);
        g.bench_function(name, |b| {
            b.iter(|| black_box(engine::run_sharded(&shrunk, threads)))
        });
    }
    // Snapshot/checkpoint kernels (DESIGN.md §14): the serialization
    // round-trip alone, then a fully supervised run.
    let shrunk = shrink(power_sense_heavy_scenario(1));
    let paused = match engine::run_until(&shrunk, &mut [], u64::MAX, 10_000) {
        engine::RunProgress::Paused(p) => p,
        engine::RunProgress::Done(_) => panic!("the shrunken bench run has well over 10k events"),
    };
    let wire_bytes = engine::snapshot(&paused).len() as u64;
    g.throughput(wire_bytes);
    g.bench_function("snapshot_roundtrip", |b| {
        b.iter(|| {
            let text = engine::snapshot(&paused);
            black_box(engine::restore(&text).expect("snapshot text round-trips"))
        })
    });
    let dir = std::env::temp_dir().join("nomc-bench-checkpoints");
    std::fs::create_dir_all(&dir).expect("bench checkpoint dir creatable");
    g.throughput(engine::run(&shrunk).events);
    g.bench_function("checkpoint_overhead", |b| {
        b.iter(|| black_box(run_checkpointed(&shrunk, &dir, 4_000)))
    });
    g.finish();
}

criterion_group!(sim, bench_sim);
criterion_main!(sim);
