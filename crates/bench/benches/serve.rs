//! Results-server kernels: the two costs every `nomc serve` client
//! pays on the happy path.
//!
//! * `http_parse` — the total HTTP/1.1 request parser on a canned
//!   `POST /jobs` head + small body. Every connection pays this before
//!   any admission logic runs, and it is the surface hostile bytes hit
//!   first, so it must stay cheap even as the grammar grows.
//! * `submit_roundtrip` — one full cache-hit submit over a real TCP
//!   socket against an in-process server with the job already
//!   completed: connect, POST the spec, read the `cached:true` ack.
//!   This prices the whole deduplication path (parse → spec decode →
//!   content hash → registry lookup → render) plus the loopback socket
//!   round trip — the latency a sweep script sees when its work is
//!   already done.
//!
//! `cargo bench -p nomc-bench --bench serve` writes `BENCH_serve.json`,
//! the perf-trajectory record ci.sh smoke-checks.

use nomc_bench::harness::Criterion;
use nomc_bench::{criterion_group, criterion_main};
use nomc_serve::http::{self, Method, Parsed};
use nomc_serve::{ServeConfig, Server};
use nomc_sim::Scenario;
use nomc_topology::{paper, spectrum::ChannelPlan};
use nomc_units::{Dbm, Megahertz, SimDuration};
use std::hint::black_box;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn tiny_scenario() -> Scenario {
    let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.duration(SimDuration::from_secs(2))
        .warmup(SimDuration::from_secs(1));
    b.build().expect("valid bench scenario")
}

fn spec_bytes() -> Vec<u8> {
    let scenario = nomc_json::to_string(&tiny_scenario());
    format!("{{\"scenario\":{scenario},\"seeds\":[1],\"budget\":200000,\"retries\":1}}")
        .into_bytes()
}

fn exchange(addr: std::net::SocketAddr, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout settable");
    stream
        .write_all(&http::render_request(Method::Post, "/jobs", body))
        .expect("send");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read");
    match http::parse_response(&bytes).expect("valid response") {
        Parsed::Complete { value, .. } => (value.status, value.body),
        Parsed::Partial => panic!("truncated response"),
    }
}

fn bench_serve(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve");

    // A realistic small request: canned head + JSON body, reparsed
    // from the same bytes every iteration.
    let request = http::render_request(Method::Post, "/jobs", br#"{"seeds":[1,2,3]}"#);
    g.bench_function("http_parse", |b| {
        b.iter(|| match http::parse_request(black_box(&request)) {
            Ok(Parsed::Complete { value, .. }) => value.body.len(),
            other => panic!("canned request must parse: {other:?}"),
        })
    });

    // One server, one pre-completed job; every iteration is a
    // cache-hit POST over loopback.
    let state = std::env::temp_dir()
        .join("nomc-serve-bench")
        .join(std::process::id().to_string());
    let _ = std::fs::remove_dir_all(&state);
    std::fs::create_dir_all(&state).expect("bench state dir");
    let server = Server::start(ServeConfig::new("127.0.0.1:0", &state)).expect("server boots");
    let addr = server.addr();
    let spec = spec_bytes();
    let (status, ack) = exchange(addr, &spec);
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&ack));
    // Wait for the job to finish so the benched path is pure dedup of
    // a completed job (a resubmit is a cache hit even mid-run, but the
    // reported state must be stable across iterations).
    let mut done = false;
    for _ in 0..600 {
        let (status, body) = exchange(addr, &spec);
        assert_eq!(status, 200, "resubmit must dedupe");
        let text = String::from_utf8_lossy(&body).into_owned();
        assert!(text.contains("\"cached\":true"), "{text}");
        if text.contains("\"state\":\"done\"") {
            done = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(done, "bench job never finished");
    g.sample_size(20);
    g.bench_function("submit_roundtrip", |b| {
        b.iter(|| {
            let (status, body) = exchange(addr, black_box(&spec));
            assert_eq!(status, 200);
            body.len()
        })
    });
    g.finish();

    server.drain();
    server.join();
    let _ = std::fs::remove_dir_all(&state);
}

criterion_group!(serve, bench_serve);
criterion_main!(serve);
