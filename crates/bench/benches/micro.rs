//! Hot-path micro-benchmarks: the inner loops every simulated packet
//! exercises.

use nomc_bench::harness::Criterion;
use nomc_bench::{criterion_group, criterion_main};
use nomc_phy::coupling::AcrCurve;
use nomc_phy::{biterror, AcrLut, BerLut, BerModel};
use nomc_rngcore::{RngCore, SeedableRng};
use nomc_sim::events::{BucketQueue, Event, EventQueue, HeapQueue};
use nomc_sim::medium::{self, Medium, Segment, Transmission};
use nomc_sim::rng::Xoshiro256StarStar;
use nomc_units::{Db, Dbm, Megahertz, MilliWatts, SimDuration, SimTime};
use std::hint::black_box;

fn bench_ber(c: &mut Criterion) {
    let mut g = c.benchmark_group("phy");
    g.bench_function("oqpsk_ber_eval", |b| {
        let mut s = 0.0;
        b.iter(|| {
            s += 0.01;
            black_box(BerModel::Oqpsk802154.bit_error_rate(Db::new(-5.0 + (s % 10.0))))
        })
    });
    g.bench_function("frame_success_prob", |b| {
        b.iter(|| {
            black_box(BerModel::Oqpsk802154.frame_success_probability(Db::new(black_box(1.0)), 408))
        })
    });
    g.bench_function("acr_rejection_lookup", |b| {
        let acr = AcrCurve::cc2420_calibrated();
        b.iter(|| black_box(acr.rejection(Megahertz::new(black_box(2.7)))))
    });
    // LUT grid hits vs the analytic evaluations above: same bits, a
    // table read instead of the exp sum / interpolation + powf.
    g.bench_function("ber_lut_grid_hit", |b| {
        let lut = BerLut::new(BerModel::Oqpsk802154);
        b.iter(|| black_box(lut.bit_error_rate(Db::new(black_box(1.0)))))
    });
    g.bench_function("acr_lut_grid_hit", |b| {
        let lut = AcrLut::new(AcrCurve::cc2420_calibrated());
        b.iter(|| black_box(lut.leakage_factor(Megahertz::new(black_box(3.0)))))
    });
    g.finish();
}

fn bench_biterror(c: &mut Criterion) {
    let mut g = c.benchmark_group("biterror");
    let mut rng = Xoshiro256StarStar::seed_from_u64(1);
    g.bench_function("binomial_small_mean", |b| {
        b.iter(|| black_box(biterror::sample_bit_errors(&mut rng, 408, 1e-3)))
    });
    g.bench_function("binomial_large_mean", |b| {
        b.iter(|| black_box(biterror::sample_bit_errors(&mut rng, 408, 0.2)))
    });
    g.bench_function("positions_10_of_408", |b| {
        b.iter(|| black_box(biterror::sample_error_positions(&mut rng, 408, 10)))
    });
    g.finish();
}

fn make_medium(transmissions: usize) -> Medium {
    let mut m = Medium::new(
        AcrCurve::cc2420_calibrated(),
        Dbm::new(-98.0).to_milliwatts(),
    );
    for i in 0..transmissions {
        m.add(Transmission {
            id: i as u64 + 1,
            tx_node: i,
            link: i,
            frequency: Megahertz::new(2458.0 + (i % 6) as f64 * 3.0),
            start: SimTime::from_micros(i as u64 * 100),
            mpdu_start: SimTime::from_micros(i as u64 * 100 + 192),
            end: SimTime::from_micros(i as u64 * 100 + 1824),
            seq: 1,
            forced: false,
            rx_power: vec![Dbm::new(-60.0); 24],
        });
    }
    m
}

fn bench_medium(c: &mut Criterion) {
    let mut g = c.benchmark_group("medium");
    let m = make_medium(12);
    g.bench_function("sensed_components_12tx", |b| {
        b.iter(|| {
            black_box(m.sensed_components(23, Megahertz::new(2464.0), SimTime::from_micros(600)))
        })
    });
    g.bench_function("interference_segments_12tx", |b| {
        b.iter(|| {
            black_box(m.interference_segments(
                1,
                23,
                Megahertz::new(2458.0),
                SimTime::from_micros(192),
                SimTime::from_micros(1824),
            ))
        })
    });
    let mut rng = Xoshiro256StarStar::seed_from_u64(2);
    let segments = [
        Segment {
            duration: SimDuration::from_micros(800),
            interference: Dbm::new(-70.0).to_milliwatts(),
        },
        Segment {
            duration: SimDuration::from_micros(832),
            interference: MilliWatts::ZERO,
        },
    ];
    g.bench_function("sample_segment_errors", |b| {
        b.iter(|| {
            black_box(medium::sample_segment_errors(
                &mut rng,
                &segments,
                Dbm::new(-60.0),
                Dbm::new(-98.0).to_milliwatts(),
                BerModel::Oqpsk802154,
            ))
        })
    });
    g.finish();
}

/// The engine's queue access pattern in miniature: a rolling horizon of
/// near-term events (backoffs, CCA windows, airtimes) plus occasional
/// far-future ones (provider ticks), popped as simulated time advances.
fn queue_workload<Q: EventQueue>(q: &mut Q) {
    let mut now = 0u64;
    for i in 0..512u64 {
        q.schedule(
            SimTime::from_nanos(now + (i * 7919) % 4_000_000),
            Event::PacketReady(i as usize),
        );
        if i % 64 == 0 {
            q.schedule(
                SimTime::from_nanos(now + 250_000_000),
                Event::ProviderTick(0),
            );
        }
        if i % 2 == 0 {
            if let Some((t, e)) = q.pop() {
                now = t.as_nanos();
                black_box(e);
            }
        }
    }
    while let Some(e) = q.pop() {
        black_box(e);
    }
}

fn bench_queue_and_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("infra");
    g.bench_function("event_queue_push_pop_64", |b| {
        b.iter(|| {
            let mut q = BucketQueue::new();
            for i in 0..64u64 {
                q.schedule(
                    SimTime::from_micros(i * 7 % 50),
                    Event::PacketReady(i as usize),
                );
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        })
    });
    g.bench_function("heap_queue_mixed_512", |b| {
        b.iter(|| queue_workload(&mut HeapQueue::new()))
    });
    g.bench_function("bucket_queue_mixed_512", |b| {
        b.iter(|| queue_workload(&mut BucketQueue::new()))
    });
    let mut rng = Xoshiro256StarStar::seed_from_u64(3);
    g.bench_function("xoshiro_next_u64", |b| b.iter(|| black_box(rng.next_u64())));
    g.bench_function("crc16_51_bytes", |b| {
        let frame = nomc_radio::frame::FrameSpec::default_data_frame().build_mpdu(1, 2);
        b.iter(|| black_box(nomc_radio::crc::crc16_itut(&frame)))
    });
    g.finish();
}

criterion_group!(
    micro,
    bench_ber,
    bench_biterror,
    bench_medium,
    bench_queue_and_rng
);
criterion_main!(micro);
