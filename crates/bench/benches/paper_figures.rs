//! One Criterion group per paper table/figure: each bench runs a
//! reduced-duration kernel of the corresponding experiment scenario.
//!
//! These benches measure the *cost* of regenerating each result (and
//! catch simulator performance regressions); the scientific values come
//! from `cargo run -p nomc-experiments --bin all_experiments`.

use nomc_bench::harness::Criterion;
use nomc_bench::run_shrunk;
use nomc_bench::{criterion_group, criterion_main};
use nomc_experiments::experiments::{cases, common, fig01, fig03, fig19, fig20, fig28};
use nomc_sim::{NetworkBehavior, Scenario};
use nomc_topology::paper;
use nomc_units::Dbm;
use std::hint::black_box;

fn bench_fig01(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig01_cfd_throughput");
    g.sample_size(10);
    g.bench_function("cfd3_5ch", |b| {
        b.iter(|| black_box(run_shrunk(fig01::scenario(3.0, 5, 1))))
    });
    g.bench_function("cfd9_1ch", |b| {
        b.iter(|| black_box(run_shrunk(fig01::scenario(9.0, 1, 1))))
    });
    g.finish();
}

fn bench_fig04(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig04_cprr");
    g.sample_size(10);
    for cfd in [1.0, 3.0] {
        g.bench_function(format!("cfd{cfd}"), |b| {
            b.iter(|| black_box(run_shrunk(fig03::scenario(cfd, 1))))
        });
    }
    g.finish();
}

fn bench_fig06(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig06_cca_sweep_point");
    g.sample_size(10);
    for thr in [-95.0, -77.0, -30.0] {
        g.bench_function(format!("thr{thr}"), |b| {
            b.iter(|| {
                let (sc, _) = common::fig5_scenario(Dbm::new(thr), Dbm::new(0.0), 1);
                black_box(run_shrunk(sc))
            })
        });
    }
    g.finish();
}

fn bench_fig08(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_cochannel_point");
    g.sample_size(10);
    g.bench_function("thr-50", |b| {
        b.iter(|| {
            let (sc, _) = common::fig8_scenario(Dbm::new(-50.0), Dbm::new(0.0), 1);
            black_box(run_shrunk(sc))
        })
    });
    g.finish();
}

fn bench_fig14_17(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_17_via_deployment");
    g.sample_size(10);
    g.bench_function("cfd3_no_dcn", |b| {
        b.iter(|| black_box(run_shrunk(common::vi_a_scenario(3.0, 5, &[], 1))))
    });
    g.bench_function("cfd3_dcn_all", |b| {
        b.iter(|| {
            black_box(run_shrunk(common::vi_a_scenario(
                3.0,
                5,
                &[0, 1, 2, 3, 4],
                1,
            )))
        })
    });
    g.finish();
}

fn bench_fig19(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig19_designs");
    g.sample_size(10);
    g.bench_function("zigbee_arm", |b| {
        b.iter(|| black_box(run_shrunk(fig19::zigbee_scenario(1))))
    });
    g.bench_function("dcn_arm", |b| {
        b.iter(|| black_box(run_shrunk(fig19::dcn_scenario(1))))
    });
    g.finish();
}

fn bench_fig20(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig20_power_sweep_point");
    g.sample_size(10);
    g.bench_function("n0_at_-15dBm", |b| {
        b.iter(|| black_box(run_shrunk(fig20::scenario(-15.0, 1))))
    });
    g.finish();
}

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_fairness");
    g.sample_size(10);
    g.bench_function("six_networks_dcn", |b| {
        b.iter(|| black_box(run_shrunk(common::band15_line_dcn(1))))
    });
    g.finish();
}

fn bench_cases(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig25_27_cases");
    g.sample_size(10);
    for case in [
        cases::Case::DenseRegion,
        cases::Case::Clustered,
        cases::Case::Random,
    ] {
        g.bench_function(format!("{case:?}_dcn"), |b| {
            b.iter(|| black_box(run_shrunk(cases::scenario(case, cases::Design::Dcn, 1))))
        });
    }
    g.finish();
}

fn bench_fig28(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig28_recovery_point");
    g.sample_size(10);
    g.bench_function("relaxed_with_positions", |b| {
        b.iter(|| black_box(run_shrunk(fig28::scenario(-20.0, 1))))
    });
    g.finish();
}

fn bench_fig30(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig30_wideband");
    g.sample_size(10);
    g.bench_function("seven_networks_dcn", |b| {
        b.iter(|| {
            let plan = common::plan_18mhz();
            let mut builder = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
            builder.behavior_all(NetworkBehavior::dcn_default()).seed(1);
            black_box(run_shrunk(builder.build().expect("valid")))
        })
    });
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    g.bench_function("acknowledged_network", |b| {
        b.iter(|| {
            let mut sc = common::vi_a_scenario(3.0, 5, &[0, 1, 2, 3, 4], 1);
            for beh in &mut sc.behaviors {
                beh.mac.acknowledged = true;
            }
            black_box(run_shrunk(sc))
        })
    });
    g.bench_function("trace_enabled", |b| {
        b.iter(|| {
            let mut sc = common::vi_a_scenario(3.0, 5, &[], 1);
            sc.record_trace = true;
            black_box(run_shrunk(sc))
        })
    });
    g.finish();
}

criterion_group!(
    paper_figures,
    bench_fig01,
    bench_fig04,
    bench_fig06,
    bench_fig08,
    bench_fig14_17,
    bench_fig19,
    bench_fig20,
    bench_table1,
    bench_cases,
    bench_fig28,
    bench_fig30,
    bench_extensions,
);
criterion_main!(paper_figures);
