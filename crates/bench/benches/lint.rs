//! Lint-gate benchmark: `nomc-lint` runs on every CI invocation, so a
//! quadratic blowup in the item parser or a rule is a CI-latency
//! regression like any other. `lint_self` lints the lint crate's own
//! sources — fn-heavy, match-heavy, directive-bearing code that
//! exercises the lexer, tokenizer, item parser and all source rules.

use nomc_bench::harness::Criterion;
use nomc_bench::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_lint(c: &mut Criterion) {
    let sources: Vec<(String, String)> = ["src/lib.rs", "src/parser.rs", "src/source.rs"]
        .iter()
        .map(|rel| {
            let path = format!("{}/../lint/{rel}", env!("CARGO_MANIFEST_DIR"));
            let content =
                std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
            (format!("crates/lint/{rel}"), content)
        })
        .collect();
    let mut g = c.benchmark_group("lint");
    g.sample_size(20);
    g.bench_function("lint_self", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for (rel, content) in &sources {
                let file = nomc_lint::lint_source_full(black_box(rel), black_box(content));
                n += file.diagnostics.len() + file.allows.len();
            }
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(lint, bench_lint);
criterion_main!(lint);
