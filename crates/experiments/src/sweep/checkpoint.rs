//! Mid-member engine checkpoints: the sweep-side persistence layer over
//! [`nomc_sim::engine::snapshot`].
//!
//! A checkpointed member pauses its engine every *N events* (an event
//! cadence, never a wall clock — cadence is part of what makes the
//! resumed run reproduce the uninterrupted one) and writes the encoded
//! [`nomc_sim::RunSnapshot`] to `<dir>/<member_hash:016x>.ckpt.json`
//! with the same atomic tmp-write + `fsync` + `rename` discipline as
//! the sweep journal. A SIGKILL therefore leaves either the previous
//! complete checkpoint or the new complete checkpoint, and a resumed
//! sweep restarts the member from the latest one instead of from
//! scratch.
//!
//! Reading is defensive: checkpoints live on disk where anything can
//! happen to them. Every defect — truncation, a flipped byte, a version
//! bump, a checkpoint written for a different member or attempt, an
//! integrity-hash mismatch — surfaces as a typed [`CheckpointError`],
//! never a panic, and the supervisor's answer to all of them is the
//! same graceful degradation: discard the file and re-run the member
//! from a clean start (which, by the engine's snapshot contract,
//! produces byte-identical results anyway — corruption costs time, not
//! correctness).

use super::hash::Fnv1a;
use super::journal::write_atomic;
use super::SweepError;
use std::path::{Path, PathBuf};

/// Checkpoint format version; bump on any incompatible layout change.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Why a checkpoint file could not be trusted. Every variant quarantines
/// only the file it names — the member falls back to a clean re-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// A filesystem operation failed.
    Io {
        /// Path the operation touched.
        path: String,
        /// The underlying error text.
        message: String,
    },
    /// The file is not a parsable checkpoint (truncated, torn, or not
    /// JSON at all).
    Malformed {
        /// Path of the rejected file.
        path: String,
        /// Parse/validation failure text.
        reason: String,
    },
    /// The file was written by an incompatible checkpoint format.
    VersionSkew {
        /// Path of the rejected file.
        path: String,
        /// Version tag the file carries.
        found: u64,
        /// Version this build understands.
        expected: u64,
    },
    /// The file names a different member than the one loading it (a
    /// stale file surviving a scenario edit, or a hash collision in the
    /// file name).
    MemberMismatch {
        /// Path of the rejected file.
        path: String,
        /// Member hash the file carries.
        found: u64,
        /// Member hash this load expects.
        expected: u64,
    },
    /// The payload's stored FNV-1a digest does not match its bytes —
    /// the snapshot text was corrupted after it was written.
    Integrity {
        /// Path of the rejected file.
        path: String,
        /// Digest the file carries.
        stored: u64,
        /// Digest computed over the payload actually present.
        computed: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "checkpoint I/O on {path}: {message}")
            }
            CheckpointError::Malformed { path, reason } => {
                write!(f, "checkpoint {path}: malformed: {reason}")
            }
            CheckpointError::VersionSkew {
                path,
                found,
                expected,
            } => write!(
                f,
                "checkpoint {path}: version {found} not supported (expected {expected})"
            ),
            CheckpointError::MemberMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "checkpoint {path}: member hash {found:#018x} does not match {expected:#018x}"
            ),
            CheckpointError::Integrity {
                path,
                stored,
                computed,
            } => write!(
                f,
                "checkpoint {path}: payload digest {computed:#018x} does not match the stored \
                 {stored:#018x}; the snapshot was corrupted on disk"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// The on-disk checkpoint envelope. The engine snapshot rides as an
/// opaque `payload` string (the engine owns its own versioning and
/// validation); `payload_fnv` lets this layer reject bit rot before
/// the engine ever parses it.
#[derive(Debug, Clone, PartialEq)]
struct CheckpointFile {
    /// Format version tag (doubles as the magic key).
    nomc_member_checkpoint: u64,
    /// [`super::hash::member_hash_with`] of the member that wrote it.
    member_hash: u64,
    /// 0-based attempt the checkpoint belongs to. A resumed sweep
    /// replays the attempt ladder from attempt 0; a checkpoint from a
    /// *later* attempt must not leak into an earlier one or the
    /// reconstructed attempt history would diverge from the
    /// uninterrupted sweep's.
    attempt: u32,
    /// Global engine event count at the pause that wrote this file.
    events_done: u64,
    /// The encoded [`nomc_sim::RunSnapshot`].
    payload: String,
    /// FNV-1a digest over the payload bytes plus the `attempt` and
    /// `events_done` fields (see [`digest`]), so a flipped byte in any
    /// of the three is caught before the supervisor acts on it.
    payload_fnv: u64,
}

/// The integrity digest: payload bytes, then the attempt and event
/// counters folded in, so the digest covers everything the supervisor
/// trusts when deciding whether and where to resume.
fn digest(payload: &str, attempt: u32, events_done: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write(payload.as_bytes());
    h.write_u64(u64::from(attempt));
    h.write_u64(events_done);
    h.finish()
}

nomc_json::json_struct!(CheckpointFile {
    nomc_member_checkpoint: u64,
    member_hash: u64,
    attempt: u32,
    events_done: u64,
    payload: String,
    payload_fnv: u64,
});

/// A checkpoint recovered from disk, ready to resume.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovered {
    /// 0-based attempt the checkpoint was written under.
    pub attempt: u32,
    /// Global engine event count already executed.
    pub events_done: u64,
    /// The encoded engine snapshot, integrity-verified at this layer
    /// but not yet parsed (that is [`nomc_sim::engine::restore`]'s job,
    /// with its own typed errors).
    pub payload: String,
}

/// The checkpoint file for one member: one file per member, keyed by
/// the member's content hash so stale files from edited sweeps can
/// never be mistaken for current ones.
pub fn path_for(dir: &Path, member_hash: u64) -> PathBuf {
    dir.join(format!("{member_hash:016x}.ckpt.json"))
}

/// Atomically writes the checkpoint for `member_hash` (creating `dir`
/// if needed): tmp-write, `fsync`, `rename`, directory `fsync`.
///
/// # Errors
///
/// [`CheckpointError::Io`] on any filesystem failure. The supervisor
/// treats that as lost durability, not a lost run — the member keeps
/// executing and simply has an older (or no) checkpoint to fall back
/// on.
pub fn save(
    dir: &Path,
    member_hash: u64,
    attempt: u32,
    events_done: u64,
    payload: &str,
) -> Result<(), CheckpointError> {
    std::fs::create_dir_all(dir).map_err(|e| CheckpointError::Io {
        path: dir.display().to_string(),
        message: e.to_string(),
    })?;
    let file = CheckpointFile {
        nomc_member_checkpoint: CHECKPOINT_VERSION,
        member_hash,
        attempt,
        events_done,
        payload: payload.to_string(),
        payload_fnv: digest(payload, attempt, events_done),
    };
    let path = path_for(dir, member_hash);
    write_atomic(&path, &nomc_json::to_string(&file)).map_err(|e| match e {
        SweepError::Io { path, message } => CheckpointError::Io { path, message },
        other => CheckpointError::Io {
            path: path.display().to_string(),
            message: other.to_string(),
        },
    })
}

/// Loads and verifies the checkpoint for `member_hash`; `Ok(None)` when
/// no checkpoint exists (a clean start, not an error).
///
/// # Errors
///
/// Every way the file can be wrong is a typed [`CheckpointError`]:
/// unreadable ([`Io`](CheckpointError::Io)), truncated or unparsable
/// ([`Malformed`](CheckpointError::Malformed)), from an incompatible
/// format ([`VersionSkew`](CheckpointError::VersionSkew)), written for
/// a different member ([`MemberMismatch`](CheckpointError::MemberMismatch)),
/// or bit-rotted ([`Integrity`](CheckpointError::Integrity)). Callers
/// discard the file and fall back to a clean re-run.
pub fn load(dir: &Path, member_hash: u64) -> Result<Option<Recovered>, CheckpointError> {
    let path = path_for(dir, member_hash);
    let shown = path.display().to_string();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(CheckpointError::Io {
                path: shown,
                message: e.to_string(),
            })
        }
    };
    let file: CheckpointFile =
        nomc_json::from_str(&text).map_err(|e| CheckpointError::Malformed {
            path: shown.clone(),
            reason: e.to_string(),
        })?;
    if file.nomc_member_checkpoint != CHECKPOINT_VERSION {
        return Err(CheckpointError::VersionSkew {
            path: shown,
            found: file.nomc_member_checkpoint,
            expected: CHECKPOINT_VERSION,
        });
    }
    if file.member_hash != member_hash {
        return Err(CheckpointError::MemberMismatch {
            path: shown,
            found: file.member_hash,
            expected: member_hash,
        });
    }
    let computed = digest(&file.payload, file.attempt, file.events_done);
    if computed != file.payload_fnv {
        return Err(CheckpointError::Integrity {
            path: shown,
            stored: file.payload_fnv,
            computed,
        });
    }
    Ok(Some(Recovered {
        attempt: file.attempt,
        events_done: file.events_done,
        payload: file.payload,
    }))
}

/// Removes the checkpoint for `member_hash`, if any. Best-effort: a
/// missing file is the desired end state, and a failed unlink only
/// means a stale file lingers — the next load rejects or ignores it by
/// attempt/hash, so nothing is silently replayed.
pub fn discard(dir: &Path, member_hash: u64) {
    let _ = std::fs::remove_file(path_for(dir, member_hash));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nomc-checkpoint-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_load_discard_round_trip() {
        let dir = test_dir("roundtrip");
        assert_eq!(load(&dir, 0xabcd).unwrap(), None, "no file = clean start");
        save(&dir, 0xabcd, 1, 5_000, "payload text").unwrap();
        let got = load(&dir, 0xabcd).unwrap().expect("checkpoint exists");
        assert_eq!(got.attempt, 1);
        assert_eq!(got.events_done, 5_000);
        assert_eq!(got.payload, "payload text");
        // Re-saving replaces atomically; no scratch file lingers.
        save(&dir, 0xabcd, 1, 10_000, "later payload").unwrap();
        assert_eq!(load(&dir, 0xabcd).unwrap().unwrap().events_done, 10_000);
        assert!(!dir.join("000000000000abcd.ckpt.json.tmp").exists());
        discard(&dir, 0xabcd);
        assert_eq!(load(&dir, 0xabcd).unwrap(), None);
        // Discarding an absent checkpoint is a no-op, not a panic.
        discard(&dir, 0xabcd);
    }

    #[test]
    fn version_skew_and_member_mismatch_are_typed() {
        let dir = test_dir("skew");
        save(&dir, 7, 0, 100, "p").unwrap();
        let path = path_for(&dir, 7);
        let text = std::fs::read_to_string(&path).unwrap();
        let bumped = text.replacen(
            "\"nomc_member_checkpoint\":1",
            "\"nomc_member_checkpoint\":9",
            1,
        );
        std::fs::write(&path, bumped).unwrap();
        assert!(matches!(
            load(&dir, 7),
            Err(CheckpointError::VersionSkew {
                found: 9,
                expected: CHECKPOINT_VERSION,
                ..
            })
        ));
        // A file claiming a different member (renamed or collided).
        save(&dir, 8, 0, 100, "p").unwrap();
        std::fs::rename(path_for(&dir, 8), path_for(&dir, 9)).unwrap();
        assert!(matches!(
            load(&dir, 9),
            Err(CheckpointError::MemberMismatch {
                found: 8,
                expected: 9,
                ..
            })
        ));
    }

    #[test]
    fn truncation_and_byte_flips_never_panic() {
        let dir = test_dir("corrupt");
        save(&dir, 42, 0, 1_000, "a moderately long snapshot payload").unwrap();
        let path = path_for(&dir, 42);
        let pristine = std::fs::read_to_string(&path).unwrap();
        // Every truncation point: either a typed error or (for the
        // empty/whitespace prefixes) Malformed — never Ok, never panic.
        for cut in 0..pristine.len() {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            assert!(
                load(&dir, 42).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        // Byte flips anywhere in the file: rejected with a typed error,
        // never a panic and never a silently-wrong payload.
        for i in 0..pristine.len() {
            for mask in [0x01u8, 0x20, 0x80] {
                let mut bytes = pristine.clone().into_bytes();
                bytes[i] ^= mask;
                std::fs::write(&path, &bytes).unwrap();
                match load(&dir, 42) {
                    Err(_) => {}
                    Ok(got) => {
                        // A flip inside the payload string that keeps the
                        // JSON valid must still be caught by the digest —
                        // the only acceptable Ok is the pristine content.
                        let got = got.expect("file exists");
                        assert_eq!(
                            got.payload, "a moderately long snapshot payload",
                            "flip at byte {i} mask {mask:#x} yielded a corrupt payload"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn integrity_digest_catches_payload_tampering() {
        let dir = test_dir("integrity");
        save(&dir, 3, 0, 500, "original payload").unwrap();
        let path = path_for(&dir, 3);
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("original payload", "tampered payload", 1);
        std::fs::write(&path, tampered).unwrap();
        assert!(matches!(
            load(&dir, 3),
            Err(CheckpointError::Integrity { .. })
        ));
    }
}
