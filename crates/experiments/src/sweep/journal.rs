//! The sweep journal: a JSONL write-ahead checkpoint of concluded
//! members.
//!
//! Line 1 is a header binding the file to one specific sweep (format
//! version, sweep-level content hash, member count); every following
//! line is one concluded [`MemberReport`]. The journal is logically
//! append-only — members are only ever added, in slot order — but each
//! checkpoint is written as an atomic whole-file replace: serialize to
//! `<path>.tmp`, `fsync`, `rename` over the journal, `fsync` the
//! directory. A reader (including a resumed sweep after SIGKILL)
//! therefore always sees a complete, self-consistent checkpoint; there
//! is no torn-write window.
//!
//! Reading is defensive in the other direction: the journal lives on
//! disk where anything can happen to it. A wrong or unparsable header
//! fails the whole resume with a typed [`SweepError`] (the file cannot
//! be trusted at all), while a corrupt *member* line quarantines only
//! that member — it reruns, every other recorded member is still
//! skipped.

use super::report::MemberReport;
use super::SweepError;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Journal format version; bump on any incompatible layout change.
pub const JOURNAL_VERSION: u64 = 1;

/// The header line binding a journal to one sweep.
#[derive(Debug, Clone, PartialEq)]
struct Header {
    /// Format version tag (doubles as the magic key).
    nomc_sweep_journal: u64,
    /// [`super::hash::sweep_hash`] over the ordered member hashes.
    sweep_hash: u64,
    /// Number of members in the sweep.
    members: usize,
    /// Where mid-member engine checkpoints live, when checkpoint
    /// supervision is on. Informational (the resume command line names
    /// its own directory); absent in journals written without it.
    snapshot_dir: Option<String>,
}

nomc_json::json_struct!(Header {
    nomc_sweep_journal: u64,
    sweep_hash: u64,
    members: usize,
    snapshot_dir: Option<String> = None,
});

/// What a journal replay recovered: per-slot concluded reports plus a
/// typed record of every line that had to be quarantined.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Replay {
    /// One slot per sweep member; `Some` when the journal holds a
    /// trustworthy concluded report for it.
    pub members: Vec<Option<MemberReport>>,
    /// Every rejected line, as the typed error that rejected it. The
    /// affected members simply rerun; nothing here is fatal.
    pub quarantined: Vec<SweepError>,
}

impl Replay {
    /// Number of members recovered from the journal.
    pub fn recovered(&self) -> usize {
        self.members.iter().filter(|m| m.is_some()).count()
    }
}

/// Parses journal `text` against the sweep it claims to checkpoint.
///
/// # Errors
///
/// [`SweepError::BadHeader`] when line 1 is missing or unparsable,
/// [`SweepError::StaleJournal`] when the header's sweep hash or member
/// count disagrees with this sweep (the scenarios, seeds or budget were
/// edited since the journal was written). Member-line corruption never
/// errors — it quarantines (see [`Replay::quarantined`]). An unparsable
/// *final* line in a file that does not end with a newline quarantines
/// as [`SweepError::TrailingGarbage`] (the expected torn tail of a
/// killed write) rather than [`SweepError::CorruptLine`] (mid-file
/// corruption), so restart paths can tell the two apart.
pub fn parse(text: &str, sweep_hash: u64, member_hashes: &[u64]) -> Result<Replay, SweepError> {
    // A file ending without '\n' was cut off mid-record: its last line
    // is a torn tail, not corruption. Only relevant when that last line
    // also fails to parse — a structurally valid final record (even an
    // untrustworthy one) was written whole.
    let torn_tail = (!text.ends_with('\n')).then(|| {
        let offset = text.rfind('\n').map(|i| i + 1).unwrap_or(0);
        let line = text.lines().count();
        (line, offset)
    });
    let mut lines = text.lines().enumerate();
    let header: Header = match lines.next() {
        Some((_, first)) => nomc_json::from_str(first).map_err(|e| SweepError::BadHeader {
            line: 1,
            reason: e.to_string(),
        })?,
        None => {
            return Err(SweepError::BadHeader {
                line: 1,
                reason: "empty journal".to_string(),
            })
        }
    };
    if header.nomc_sweep_journal != JOURNAL_VERSION {
        return Err(SweepError::BadHeader {
            line: 1,
            reason: format!(
                "unsupported journal version {} (expected {JOURNAL_VERSION})",
                header.nomc_sweep_journal
            ),
        });
    }
    if header.sweep_hash != sweep_hash || header.members != member_hashes.len() {
        return Err(SweepError::StaleJournal {
            expected: sweep_hash,
            found: header.sweep_hash,
        });
    }
    let mut replay = Replay {
        members: member_hashes.iter().map(|_| None).collect(),
        quarantined: Vec::new(),
    };
    for (idx, raw) in lines {
        let line = idx + 1; // 1-based, matching editor conventions
        if raw.trim().is_empty() {
            continue;
        }
        let entry: MemberReport = match nomc_json::from_str(raw) {
            Ok(e) => e,
            Err(e) => {
                replay.quarantined.push(match torn_tail {
                    Some((torn_line, offset)) if torn_line == line => {
                        SweepError::TrailingGarbage { offset }
                    }
                    _ => SweepError::CorruptLine {
                        line,
                        reason: e.to_string(),
                    },
                });
                continue;
            }
        };
        let Some(&expected) = member_hashes.get(entry.member) else {
            replay.quarantined.push(SweepError::CorruptLine {
                line,
                reason: format!(
                    "member {} out of range (sweep has {})",
                    entry.member,
                    member_hashes.len()
                ),
            });
            continue;
        };
        if entry.hash != expected {
            replay.quarantined.push(SweepError::HashMismatch {
                line,
                member: entry.member,
                expected,
                found: entry.hash,
            });
            continue;
        }
        if entry.attempts.is_empty() {
            replay.quarantined.push(SweepError::CorruptLine {
                line,
                reason: format!("member {} has an empty attempt history", entry.member),
            });
            continue;
        }
        let slot = replay
            .members
            .get_mut(entry.member)
            .expect("member index verified in range above");
        if slot.is_some() {
            replay.quarantined.push(SweepError::DuplicateMember {
                line,
                member: entry.member,
            });
            continue;
        }
        *slot = Some(entry);
    }
    Ok(replay)
}

/// Renders the journal text for the concluded subset of `members`:
/// header first, then every concluded report in slot order (which is
/// what makes the file independent of completion — and thus thread —
/// order).
pub fn render(
    sweep_hash: u64,
    snapshot_dir: Option<&str>,
    members: &[Option<MemberReport>],
) -> String {
    let header = Header {
        nomc_sweep_journal: JOURNAL_VERSION,
        sweep_hash,
        members: members.len(),
        snapshot_dir: snapshot_dir.map(str::to_string),
    };
    let mut out = nomc_json::to_string(&header);
    out.push('\n');
    for entry in members.iter().flatten() {
        out.push_str(&nomc_json::to_string(entry));
        out.push('\n');
    }
    out
}

/// Atomically replaces the journal at `path` with the checkpoint for
/// `members`: tmp-write, `fsync`, `rename`, directory `fsync`.
///
/// # Errors
///
/// [`SweepError::Io`] on any filesystem failure (the checkpoint is then
/// not guaranteed durable, but the previous journal is still intact —
/// rename either happened completely or not at all).
pub fn persist(
    path: &Path,
    sweep_hash: u64,
    snapshot_dir: Option<&str>,
    members: &[Option<MemberReport>],
) -> Result<(), SweepError> {
    write_atomic(path, &render(sweep_hash, snapshot_dir, members))
}

/// Atomically replaces the file at `path` with `text`: write to the
/// sibling `<path>.tmp`, `fsync`, `rename` over `path`, `fsync` the
/// containing directory. A crash at any point leaves either the old
/// complete file or the new complete file — never a torn mixture. The
/// same pattern protects engine checkpoints (see [`super::checkpoint`]).
///
/// # Errors
///
/// [`SweepError::Io`] on any filesystem failure (the replacement is then
/// not guaranteed durable, but the previous file is still intact —
/// rename either happened completely or not at all). Public so other
/// durable state (the results server's job specs and reports) shares
/// the exact same crash discipline instead of reinventing it.
pub fn write_atomic(path: &Path, text: &str) -> Result<(), SweepError> {
    let tmp = tmp_path(path);
    let io_err = |p: &Path, e: std::io::Error| SweepError::Io {
        path: p.display().to_string(),
        message: e.to_string(),
    };
    let mut file = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    file.write_all(text.as_bytes())
        .map_err(|e| io_err(&tmp, e))?;
    // Data must be on disk *before* the rename publishes it, or a crash
    // could leave a file whose name is newer than its bytes.
    file.sync_all().map_err(|e| io_err(&tmp, e))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    // Persist the rename itself: fsync the containing directory.
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    std::fs::File::open(&dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err(&dir, e))?;
    Ok(())
}

/// Reads and parses the journal at `path`; `Ok(None)` when no journal
/// exists yet (a fresh start, not an error).
///
/// # Errors
///
/// [`SweepError::Io`] when the file exists but cannot be read, plus
/// everything [`parse`] can return.
pub fn load(
    path: &Path,
    sweep_hash: u64,
    member_hashes: &[u64],
) -> Result<Option<Replay>, SweepError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(SweepError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })
        }
    };
    parse(&text, sweep_hash, member_hashes).map(Some)
}

/// The sibling scratch path used for atomic replacement.
fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::super::report::{AttemptOutcome, AttemptRecord, MemberMetrics};
    use super::*;

    fn member(i: usize, hash: u64) -> MemberReport {
        MemberReport {
            member: i,
            hash,
            attempts: vec![AttemptRecord {
                budget: 1 << 20,
                outcome: AttemptOutcome::Ok(MemberMetrics {
                    throughput: 100.0 + i as f64,
                    prr: Some(0.5),
                    events: 99,
                    measured_secs: nomc_units::Seconds::new(15.0),
                }),
            }],
        }
    }

    fn hashes() -> Vec<u64> {
        vec![11, 22, 33, 44]
    }

    fn full_text() -> String {
        let members: Vec<Option<MemberReport>> = hashes()
            .iter()
            .enumerate()
            .map(|(i, &h)| Some(member(i, h)))
            .collect();
        render(777, None, &members)
    }

    #[test]
    fn round_trip_recovers_every_member() {
        let replay = parse(&full_text(), 777, &hashes()).expect("parses");
        assert_eq!(replay.recovered(), 4);
        assert!(replay.quarantined.is_empty());
        assert_eq!(replay.members[2], Some(member(2, 33)));
    }

    #[test]
    fn header_problems_are_fatal_and_typed() {
        assert!(matches!(
            parse("", 777, &hashes()),
            Err(SweepError::BadHeader { line: 1, .. })
        ));
        assert!(matches!(
            parse("not json\n", 777, &hashes()),
            Err(SweepError::BadHeader { line: 1, .. })
        ));
        // A journal for a different sweep (hash mismatch) is stale.
        assert_eq!(
            parse(&full_text(), 778, &hashes()),
            Err(SweepError::StaleJournal {
                expected: 778,
                found: 777,
            })
        );
        // So is one for a different member count.
        let fewer = &hashes()[..3];
        assert!(matches!(
            parse(&full_text(), 777, fewer),
            Err(SweepError::StaleJournal { .. })
        ));
        // Future versions are refused, not misread.
        let versioned =
            full_text().replacen("\"nomc_sweep_journal\":1", "\"nomc_sweep_journal\":9", 1);
        assert!(matches!(
            parse(&versioned, 777, &hashes()),
            Err(SweepError::BadHeader { .. })
        ));
    }

    #[test]
    fn corrupt_member_line_quarantines_only_that_member() {
        let mut lines: Vec<String> = full_text().lines().map(str::to_string).collect();
        lines[2] = "{\"member\": garbage".to_string();
        let replay = parse(&lines.join("\n"), 777, &hashes()).expect("header is fine");
        assert_eq!(replay.recovered(), 3);
        assert!(replay.members[1].is_none(), "corrupt member reruns");
        assert_eq!(replay.quarantined.len(), 1);
        assert!(matches!(
            replay.quarantined[0],
            SweepError::CorruptLine { line: 3, .. }
        ));
    }

    #[test]
    fn member_hash_mismatch_quarantines() {
        let mut members: Vec<Option<MemberReport>> = hashes()
            .iter()
            .enumerate()
            .map(|(i, &h)| Some(member(i, h)))
            .collect();
        members[3] = Some(member(3, 999)); // stale per-member hash
        let text = render(777, None, &members);
        let replay = parse(&text, 777, &hashes()).expect("parses");
        assert!(replay.members[3].is_none());
        assert_eq!(
            replay.quarantined,
            vec![SweepError::HashMismatch {
                line: 5,
                member: 3,
                expected: 44,
                found: 999,
            }]
        );
    }

    #[test]
    fn duplicates_out_of_range_and_empty_attempts_quarantine() {
        let mut text = full_text();
        // Duplicate of member 0 (valid shape, same hash).
        text.push_str(&nomc_json::to_string(&member(0, 11)));
        text.push('\n');
        // Out-of-range member.
        text.push_str(&nomc_json::to_string(&member(9, 11)));
        text.push('\n');
        // Concluded-but-empty attempt history.
        let hollow = MemberReport {
            member: 1,
            hash: 22,
            attempts: Vec::new(),
        };
        text.push_str(&nomc_json::to_string(&hollow));
        text.push('\n');
        let replay = parse(&text, 777, &hashes()).expect("parses");
        assert_eq!(replay.recovered(), 4, "originals all survive");
        assert_eq!(replay.quarantined.len(), 3);
        assert!(matches!(
            replay.quarantined[0],
            SweepError::DuplicateMember { member: 0, .. }
        ));
        assert!(matches!(
            replay.quarantined[1],
            SweepError::CorruptLine { .. }
        ));
        assert!(matches!(
            replay.quarantined[2],
            SweepError::CorruptLine { .. }
        ));
    }

    #[test]
    fn torn_final_line_without_newline_is_trailing_garbage() {
        let full = full_text();
        // Cut the file mid-way through the last record (no newline).
        let cut = full.len() - 17;
        let torn = &full[..cut];
        let offset = torn.rfind('\n').unwrap() + 1;
        let replay = parse(torn, 777, &hashes()).expect("header is fine");
        assert_eq!(replay.recovered(), 3, "whole records all survive");
        assert!(replay.members[3].is_none(), "torn member reruns");
        assert_eq!(
            replay.quarantined,
            vec![SweepError::TrailingGarbage { offset }]
        );
    }

    #[test]
    fn unparsable_last_line_with_newline_stays_corrupt() {
        // The same broken bytes *followed by a newline* were written
        // whole — that is corruption, not a torn tail.
        let mut text = full_text();
        text.push_str("{\"member\": broken");
        text.push('\n');
        let replay = parse(&text, 777, &hashes()).expect("header is fine");
        assert_eq!(replay.recovered(), 4);
        assert!(matches!(
            replay.quarantined[..],
            [SweepError::CorruptLine { line: 6, .. }]
        ));
    }

    #[test]
    fn torn_mid_file_line_is_still_corrupt_not_trailing() {
        // An unparsable line that is *not* the file's last cannot be a
        // torn tail (whole-file atomic replace never tears mid-file).
        let mut lines: Vec<String> = full_text().lines().map(str::to_string).collect();
        lines[2] = lines[2][..lines[2].len() - 5].to_string();
        let mut text = lines.join("\n");
        text.push('\n');
        let replay = parse(&text, 777, &hashes()).expect("header is fine");
        assert!(matches!(
            replay.quarantined[..],
            [SweepError::CorruptLine { line: 3, .. }]
        ));
    }

    #[test]
    fn persist_then_load_round_trips_and_replaces_atomically() {
        let dir = std::env::temp_dir().join("nomc-sweep-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let mut members: Vec<Option<MemberReport>> = vec![None; 4];
        members[2] = Some(member(2, 33));
        persist(&path, 777, None, &members).expect("persists");
        let replay = load(&path, 777, &hashes()).expect("loads").expect("exists");
        assert_eq!(replay.recovered(), 1);
        // Growing the checkpoint only appends (slot order preserved).
        members[0] = Some(member(0, 11));
        persist(&path, 777, None, &members).expect("persists again");
        let text = std::fs::read_to_string(&path).unwrap();
        let entries: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].contains("\"member\":0"));
        assert!(entries[1].contains("\"member\":2"));
        // No scratch file left behind.
        assert!(!tmp_path(&path).exists());
        // Missing journal is a fresh start, not an error.
        assert_eq!(load(&dir.join("absent.jsonl"), 777, &hashes()), Ok(None));
    }
}
