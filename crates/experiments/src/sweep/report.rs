//! Structured sweep results: per-member attempt histories plus typed
//! reducers.
//!
//! Unlike the bare `Vec<RunOutcome>` of the batch runner, a
//! [`SweepReport`] never lets a non-`Ok` member vanish silently: every
//! reducer reports `(ok, failed, timed_out, retried)` counts, and
//! [`SweepReport::stat`] refuses — with a typed [`SweepError`], not a
//! panic and not a quietly-narrowed sample — to synthesize a statistic
//! from fewer than two completed members.

use super::SweepError;
use crate::runner::Stat;
use nomc_units::Seconds;

/// The scalar summary a sweep records per completed member.
///
/// Kept deliberately small — a journal line must be cheap to write
/// after every member — and exactly round-trippable: every field
/// serializes through the in-tree codec's shortest-exact forms, which
/// is what makes a resumed report byte-identical to an uninterrupted
/// one.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberMetrics {
    /// Network-wide delivered throughput, packets per second.
    pub throughput: f64,
    /// Aggregate packet reception ratio, when any frame was sent.
    pub prr: Option<f64>,
    /// Events the engine dispatched for this member.
    pub events: u64,
    /// Measured window length (duration − warmup).
    pub measured_secs: Seconds,
}

nomc_json::json_struct!(MemberMetrics {
    throughput: f64,
    prr: Option<f64>,
    events: u64,
    measured_secs: Seconds,
});

impl MemberMetrics {
    /// Extracts the recorded metrics from a completed simulation.
    pub fn of(result: &nomc_sim::SimResult) -> Self {
        MemberMetrics {
            throughput: result.total_throughput(),
            prr: result.total_prr(),
            events: result.events,
            measured_secs: Seconds::new(result.measured.as_secs_f64()),
        }
    }
}

/// How one attempt at one member ended.
#[derive(Debug, Clone, PartialEq)]
pub enum AttemptOutcome {
    /// The simulation drained naturally inside the attempt's budget.
    Ok(MemberMetrics),
    /// The simulation panicked; the payload is the panic message.
    Failed(String),
    /// The event budget expired first; `events` were handled.
    TimedOut {
        /// Events handled before the budget cut in.
        events: u64,
    },
}

impl nomc_json::ToJson for AttemptOutcome {
    fn to_json(&self) -> nomc_json::Json {
        use nomc_json::Json;
        match self {
            AttemptOutcome::Ok(m) => Json::object([("Ok", m.to_json())]),
            AttemptOutcome::Failed(msg) => Json::object([("Failed", msg.to_json())]),
            AttemptOutcome::TimedOut { events } => {
                Json::object([("TimedOut", Json::object([("events", events.to_json())]))])
            }
        }
    }
}

impl nomc_json::FromJson for AttemptOutcome {
    fn from_json(v: &nomc_json::Json) -> Result<Self, nomc_json::Error> {
        use nomc_json::FromJson;
        let obj = v
            .as_object()
            .ok_or_else(|| nomc_json::Error::new("AttemptOutcome: expected object"))?;
        match obj.iter().next() {
            Some(("Ok", inner)) => Ok(AttemptOutcome::Ok(FromJson::from_json(inner)?)),
            Some(("Failed", inner)) => Ok(AttemptOutcome::Failed(FromJson::from_json(inner)?)),
            Some(("TimedOut", inner)) => {
                let events = inner.get("events").ok_or_else(|| {
                    nomc_json::Error::new("AttemptOutcome::TimedOut: missing events")
                })?;
                Ok(AttemptOutcome::TimedOut {
                    events: FromJson::from_json(events)?,
                })
            }
            _ => Err(nomc_json::Error::new("AttemptOutcome: unknown variant")),
        }
    }
}

/// One attempt: the deterministic event budget it ran under and how it
/// ended.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// Event budget of this attempt (escalates across retries).
    pub budget: u64,
    /// The attempt's outcome.
    pub outcome: AttemptOutcome,
}

nomc_json::json_struct!(AttemptRecord {
    budget: u64,
    outcome: AttemptOutcome,
});

/// The full history of one sweep member: its slot, its content hash,
/// and every attempt in order. This is exactly what a journal line
/// stores, so a resumed member reconstructs its report verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberReport {
    /// Member slot (index into the sweep's scenario list).
    pub member: usize,
    /// Content hash of (serialized scenario, seed, base budget).
    pub hash: u64,
    /// Attempt history, oldest first; never empty once concluded.
    pub attempts: Vec<AttemptRecord>,
}

nomc_json::json_struct!(MemberReport {
    member: usize,
    hash: u64,
    attempts: Vec<AttemptRecord>,
});

impl MemberReport {
    /// The concluding attempt's outcome, if any attempt was made.
    pub fn final_outcome(&self) -> Option<&AttemptOutcome> {
        self.attempts.last().map(|a| &a.outcome)
    }

    /// The completed metrics, when the member eventually succeeded.
    pub fn metrics(&self) -> Option<&MemberMetrics> {
        match self.final_outcome() {
            Some(AttemptOutcome::Ok(m)) => Some(m),
            _ => None,
        }
    }

    /// Whether the member needed more than one attempt.
    pub fn was_retried(&self) -> bool {
        self.attempts.len() > 1
    }
}

/// How the members of a sweep ended, in aggregate. Every member is
/// counted exactly once, by its *final* outcome; `retried` counts
/// members whose history holds more than one attempt, whatever the
/// eventual result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeCounts {
    /// Members whose final attempt completed.
    pub ok: usize,
    /// Members whose final attempt panicked.
    pub failed: usize,
    /// Members whose final attempt exhausted its event budget.
    pub timed_out: usize,
    /// Members that took more than one attempt (any final outcome).
    pub retried: usize,
}

nomc_json::json_struct!(OutcomeCounts {
    ok: usize,
    failed: usize,
    timed_out: usize,
    retried: usize,
});

/// The result of a whole sweep: the sweep-level content hash plus one
/// concluded [`MemberReport`] per member, in slot order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Hash over the ordered member hashes (the journal-header key).
    pub sweep_hash: u64,
    /// Per-member histories, in slot order.
    pub members: Vec<MemberReport>,
}

nomc_json::json_struct!(SweepReport {
    sweep_hash: u64,
    members: Vec<MemberReport>,
});

impl SweepReport {
    /// Tallies every member's final outcome.
    pub fn counts(&self) -> OutcomeCounts {
        let mut c = OutcomeCounts::default();
        for m in &self.members {
            match m.final_outcome() {
                Some(AttemptOutcome::Ok(_)) => c.ok += 1,
                Some(AttemptOutcome::Failed(_)) => c.failed += 1,
                Some(AttemptOutcome::TimedOut { .. }) => c.timed_out += 1,
                // A concluded sweep never holds an attempt-less member;
                // count a malformed one as failed rather than hiding it.
                None => c.failed += 1,
            }
        }
        c.retried = self.members.iter().filter(|m| m.was_retried()).count();
        c
    }

    /// Reduces the completed members to a [`Stat`] of `metric`.
    ///
    /// # Errors
    ///
    /// [`SweepError::TooFewSamples`] when fewer than two members
    /// completed — a mean/σ over zero or one survivors would silently
    /// misrepresent a mostly-failed sweep.
    pub fn stat<F>(&self, metric: F) -> Result<Stat, SweepError>
    where
        F: Fn(&MemberMetrics) -> f64,
    {
        let values: Vec<f64> = self
            .members
            .iter()
            .filter_map(|m| m.metrics())
            .map(&metric)
            .collect();
        if values.len() < 2 {
            return Err(SweepError::TooFewSamples {
                completed: values.len(),
                members: self.members.len(),
            });
        }
        Ok(Stat::of(&values))
    }

    /// [`SweepReport::stat`] over delivered throughput.
    pub fn throughput_stat(&self) -> Result<Stat, SweepError> {
        self.stat(|m| m.throughput)
    }

    /// Serializes the report to pretty JSON (the `--report` payload;
    /// byte-stable across resume and thread count).
    pub fn to_json_string(&self) -> String {
        nomc_json::ToJson::to_json(self).dump_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_member(member: usize, throughput: f64, attempts_before: usize) -> MemberReport {
        let mut attempts: Vec<AttemptRecord> = (0..attempts_before)
            .map(|i| AttemptRecord {
                budget: 1000 << i,
                outcome: AttemptOutcome::TimedOut { events: 1000 << i },
            })
            .collect();
        attempts.push(AttemptRecord {
            budget: 1000 << attempts_before,
            outcome: AttemptOutcome::Ok(MemberMetrics {
                throughput,
                prr: Some(0.9),
                events: 4242,
                measured_secs: Seconds::new(15.0),
            }),
        });
        MemberReport {
            member,
            hash: 0xdead_beef,
            attempts,
        }
    }

    fn failed_member(member: usize) -> MemberReport {
        MemberReport {
            member,
            hash: 1,
            attempts: vec![AttemptRecord {
                budget: 1000,
                outcome: AttemptOutcome::Failed("boom".into()),
            }],
        }
    }

    #[test]
    fn counts_cover_every_final_outcome_and_retries() {
        let report = SweepReport {
            sweep_hash: 7,
            members: vec![
                ok_member(0, 100.0, 0),
                ok_member(1, 110.0, 2),
                failed_member(2),
                MemberReport {
                    member: 3,
                    hash: 2,
                    attempts: vec![AttemptRecord {
                        budget: 500,
                        outcome: AttemptOutcome::TimedOut { events: 500 },
                    }],
                },
            ],
        };
        assert_eq!(
            report.counts(),
            OutcomeCounts {
                ok: 2,
                failed: 1,
                timed_out: 1,
                retried: 1,
            }
        );
        let stat = report.throughput_stat().expect("two completed members");
        assert!((stat.mean - 105.0).abs() < 1e-12);
    }

    #[test]
    fn stat_refuses_fewer_than_two_completions() {
        let report = SweepReport {
            sweep_hash: 7,
            members: vec![ok_member(0, 100.0, 0), failed_member(1)],
        };
        let err = report.throughput_stat().expect_err("one survivor");
        assert_eq!(
            err,
            SweepError::TooFewSamples {
                completed: 1,
                members: 2,
            }
        );
        assert!(err.to_string().contains("1 of 2"), "{err}");
    }

    #[test]
    fn member_report_round_trips_through_json() {
        for m in [ok_member(3, 123.456789, 1), failed_member(9)] {
            let text = nomc_json::to_string(&m);
            let back: MemberReport = nomc_json::from_str(&text).expect("parses");
            assert_eq!(back, m);
        }
    }

    #[test]
    fn attempt_outcome_json_shapes() {
        let t = AttemptOutcome::TimedOut { events: 12 };
        assert_eq!(nomc_json::to_string(&t), r#"{"TimedOut":{"events":12}}"#);
        let back: AttemptOutcome = nomc_json::from_str(r#"{"Failed":"x"}"#).expect("parses");
        assert_eq!(back, AttemptOutcome::Failed("x".into()));
        assert!(nomc_json::from_str::<AttemptOutcome>(r#"{"Nope":1}"#).is_err());
    }
}
