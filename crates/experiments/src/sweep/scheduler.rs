//! The work-stealing member scheduler.
//!
//! The old batch runners split a sweep into `chunks_mut` slices, one
//! per thread; a single slow member then idled every other thread in
//! its chunk's tail. Here workers instead *pull*: a shared atomic index
//! hands out the next unclaimed member, so threads stay busy until the
//! whole sweep drains and the longest member bounds the makespan.
//!
//! Determinism: each member is an independent single-threaded
//! simulation and results land in their member's slot, so the returned
//! vector — and anything derived from it, journals included — is
//! bit-identical for any thread count. Only wall-clock completion
//! *order* varies, and nothing observable depends on it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use by default: the CPU count, falling
/// back to 4 when it cannot be queried.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Runs `run(0..count)` across `threads` pull-workers and returns the
/// results in index order.
///
/// `run` must be safe to call concurrently for distinct indexes; each
/// index is claimed exactly once. A panicking member propagates out of
/// the scope (callers wanting isolation wrap `run` in `catch_unwind`,
/// as [`crate::runner::run_outcomes`] does).
pub fn run_indexed<T, F>(count: usize, threads: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let workers = threads.clamp(1, count);
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..count).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = run(i);
                let mut out = slots.lock().expect("no panic holds the slot lock");
                out[i] = Some(value);
            });
        }
    });
    slots
        .into_inner()
        .expect("worker scope joined without poisoning")
        .into_iter()
        .map(|slot| slot.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_slot_ordered_for_any_thread_count() {
        for threads in [1, 2, 8, 64] {
            let out = run_indexed(37, threads, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = run_indexed(100, 8, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn empty_and_oversubscribed_batches_work() {
        assert_eq!(run_indexed(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(2, 16, |i| i), vec![0, 1]);
    }

    #[test]
    fn uneven_member_costs_do_not_stall_the_pool() {
        // One slow member plus many fast ones: with pull scheduling the
        // fast members all finish even though they out-number the
        // threads; a static split would serialize a whole chunk behind
        // the slow one. (Correctness check — the perf claim is the
        // scheduling policy itself.)
        let out = run_indexed(32, 4, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i + 1
        });
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
    }
}
