//! Sweep supervisor tests: scheduler determinism across thread counts,
//! resume semantics, deterministic retries, and `check`-harness
//! property tests hammering the journal resume path with corruption.

use super::report::{AttemptOutcome, MemberMetrics};
use super::{hash, journal, run_sweep, seed_members, SweepConfig, SweepError};
use crate::runner;
use nomc_rngcore::check::{forall, range, zip2};
use nomc_sim::{engine, Scenario};
use nomc_topology::{paper, spectrum::ChannelPlan};
use nomc_units::{Dbm, Megahertz, SimDuration};
use std::path::PathBuf;

fn base_scenario() -> Scenario {
    let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.duration(SimDuration::from_secs(2))
        .warmup(SimDuration::from_secs(1));
    b.build().expect("valid test scenario")
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nomc-sweep-tests");
    std::fs::create_dir_all(&dir).expect("tempdir creatable");
    dir.join(name)
}

fn cfg_with_threads(threads: usize) -> SweepConfig {
    SweepConfig {
        threads: Some(threads),
        ..SweepConfig::default()
    }
}

#[test]
fn sharded_sweep_matches_serial_and_refuses_serial_journals() {
    // The base scenario is one network — a single-component plan — so
    // the sharded engine delegates to the serial one and member results
    // must be bit-identical. The journals still must not cross: the
    // sharded member hash carries the execution-mode marker.
    let members = seed_members(&base_scenario(), &[1, 2]);
    let serial = run_sweep(&members, &SweepConfig::default(), None, false).expect("serial sweep");
    let sharded_cfg = SweepConfig {
        shards: Some(2),
        ..SweepConfig::default()
    };
    let sharded = run_sweep(&members, &sharded_cfg, None, false).expect("sharded sweep");
    for (a, b) in serial.members.iter().zip(&sharded.members) {
        assert_eq!(a.attempts, b.attempts, "member {} diverged", a.member);
        assert_ne!(a.hash, b.hash, "execution modes must not share keys");
    }
    assert_ne!(serial.sweep_hash, sharded.sweep_hash);

    // A journal written serially is a typed StaleJournal for a sharded
    // resume, never a silent replay.
    let path = temp_path("serial-vs-sharded.jsonl");
    run_sweep(&members, &SweepConfig::default(), Some(&path), false).expect("journaled serial");
    let err = run_sweep(&members, &sharded_cfg, Some(&path), true).expect_err("must refuse");
    assert!(matches!(err, SweepError::StaleJournal { .. }), "{err}");
}

#[test]
fn fresh_sweep_matches_run_outcomes_bit_identically() {
    let members = seed_members(&base_scenario(), &[1, 2, 3]);
    let report = run_sweep(&members, &SweepConfig::default(), None, false).expect("no journal");
    let outcomes = runner::run_outcomes(&members, u64::MAX);
    assert_eq!(report.members.len(), 3);
    for (m, o) in report.members.iter().zip(&outcomes) {
        let result = o.result().expect("healthy scenarios complete");
        // Exact f64 equality: the sweep runs the very same engine path.
        assert_eq!(m.metrics(), Some(&MemberMetrics::of(result)));
        assert_eq!(m.attempts.len(), 1);
    }
    assert_eq!(report.counts().ok, 3);
}

#[test]
fn thread_count_does_not_change_journal_or_report() {
    let members = seed_members(&base_scenario(), &[1, 2, 3, 4, 5, 6]);
    let mut artifacts = Vec::new();
    for threads in [1, 2, 8] {
        let path = temp_path(&format!("threads_{threads}.jsonl"));
        let report = run_sweep(&members, &cfg_with_threads(threads), Some(&path), false)
            .expect("sweep runs");
        let journal_bytes = std::fs::read(&path).expect("journal written");
        artifacts.push((report.to_json_string(), journal_bytes));
    }
    let (first_report, first_journal) = artifacts.first().expect("three runs").clone();
    for (report, journal_bytes) in &artifacts {
        assert_eq!(report, &first_report, "reports must be byte-identical");
        assert_eq!(
            journal_bytes, &first_journal,
            "journals must be byte-identical"
        );
    }
}

#[test]
fn resume_skips_recorded_members_and_report_is_byte_identical() {
    let members = seed_members(&base_scenario(), &[1, 2, 3, 4]);
    let cfg = cfg_with_threads(2);

    // The uninterrupted reference run.
    let full_path = temp_path("resume_full.jsonl");
    let full = run_sweep(&members, &cfg, Some(&full_path), false).expect("full run");

    // Simulate a crash after two members: keep only members 0 and 2 of
    // the reference journal (slot order, like a mid-run checkpoint).
    let crashed_path = temp_path("resume_crashed.jsonl");
    let text = std::fs::read_to_string(&full_path).expect("journal readable");
    let kept: Vec<&str> = text
        .lines()
        .filter(|l| !l.contains("\"member\":1") && !l.contains("\"member\":3"))
        .collect();
    std::fs::write(&crashed_path, kept.join("\n") + "\n").expect("partial journal written");

    let resumed = run_sweep(&members, &cfg, Some(&crashed_path), true).expect("resume");
    assert_eq!(
        resumed.to_json_string(),
        full.to_json_string(),
        "resumed report must be byte-identical to the uninterrupted one"
    );
    assert_eq!(
        std::fs::read(&crashed_path).expect("resumed journal"),
        std::fs::read(&full_path).expect("full journal"),
        "resumed journal must converge to the uninterrupted one"
    );
}

#[test]
fn without_resume_an_existing_journal_is_overwritten() {
    let members = seed_members(&base_scenario(), &[1, 2]);
    let path = temp_path("no_resume.jsonl");
    std::fs::write(&path, "garbage that is not even a header\n").expect("seeded");
    let report = run_sweep(&members, &cfg_with_threads(1), Some(&path), false).expect("runs");
    assert_eq!(report.counts().ok, 2);
    let text = std::fs::read_to_string(&path).expect("journal");
    assert!(text.starts_with("{\"nomc_sweep_journal\":1"), "{text}");
}

#[test]
fn stale_journal_is_a_typed_error_on_resume() {
    let members = seed_members(&base_scenario(), &[1, 2]);
    let path = temp_path("stale.jsonl");
    run_sweep(&members, &cfg_with_threads(1), Some(&path), false).expect("first run");
    // Edit the sweep (different seed list) and resume against the old
    // journal: the sweep hash no longer matches.
    let edited = seed_members(&base_scenario(), &[7, 8]);
    let err = run_sweep(&edited, &cfg_with_threads(1), Some(&path), true).expect_err("stale");
    assert!(matches!(err, SweepError::StaleJournal { .. }), "{err:?}");
}

#[test]
fn timed_out_member_retries_with_doubled_budget_until_it_completes() {
    let members = seed_members(&base_scenario(), &[7]);
    let natural = engine::run(members.first().expect("one member")).events;
    // Start far below the natural event count; doubling must cross it.
    let cfg = SweepConfig {
        retries: 16,
        base_budget: 100,
        threads: Some(1),
        shards: None,
        checkpoint_every: None,
        snapshot_dir: None,
    };
    let report = run_sweep(&members, &cfg, None, false).expect("sweep runs");
    let member = report.members.first().expect("one member");
    assert!(member.was_retried());
    let attempts = &member.attempts;
    for (i, a) in attempts.iter().enumerate() {
        assert_eq!(a.budget, 100u64 << i, "budget escalates by doubling");
        let last = i + 1 == attempts.len();
        match &a.outcome {
            AttemptOutcome::TimedOut { events } => {
                assert!(!last, "final attempt must have completed");
                assert_eq!(*events, a.budget);
            }
            AttemptOutcome::Ok(m) => {
                assert!(last);
                assert_eq!(m.events, natural, "completion is the natural run");
            }
            AttemptOutcome::Failed(msg) => panic!("unexpected failure: {msg}"),
        }
    }
    let counts = report.counts();
    assert_eq!((counts.ok, counts.retried), (1, 1));
}

/// A tempdir for one test's member checkpoints, wiped up front.
fn snapshot_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nomc-sweep-ckpt-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("snapshot dir creatable");
    dir
}

fn checkpointed_cfg(tag: &str, every: u64) -> SweepConfig {
    SweepConfig {
        threads: Some(1),
        checkpoint_every: Some(every),
        snapshot_dir: Some(snapshot_dir(tag)),
        ..SweepConfig::default()
    }
}

/// `.ckpt.json` files currently in a snapshot directory.
fn checkpoint_files(dir: &PathBuf) -> Vec<PathBuf> {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.to_string_lossy().ends_with(".ckpt.json"))
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn checkpointed_sweep_is_byte_identical_to_plain_and_cleans_up() {
    let members = seed_members(&base_scenario(), &[1, 2, 3]);
    let plain = run_sweep(&members, &cfg_with_threads(1), None, false).expect("plain sweep");
    let cfg = checkpointed_cfg("identical", 5_000);
    let checkpointed = run_sweep(&members, &cfg, None, false).expect("checkpointed sweep");
    assert_eq!(
        checkpointed.to_json_string(),
        plain.to_json_string(),
        "checkpoint supervision must not change the report by a byte"
    );
    // Every member concluded, so every checkpoint was discarded.
    let dir = cfg.snapshot_dir.expect("configured above");
    assert_eq!(checkpoint_files(&dir), Vec::<PathBuf>::new());
}

#[test]
fn planted_mid_member_checkpoint_resumes_to_the_uninterrupted_report() {
    let members = seed_members(&base_scenario(), &[1, 2]);
    let plain = run_sweep(&members, &cfg_with_threads(1), None, false).expect("plain sweep");

    // Simulate a SIGKILL mid-member: run member 0 partway through this
    // sweep's own cadence, persist its engine snapshot exactly as the
    // supervisor would, then start the sweep against that directory.
    let cfg = checkpointed_cfg("resume", 4_000);
    let dir = cfg.snapshot_dir.clone().expect("configured above");
    let first = members.first().expect("two members");
    let mh = hash::member_hash_with(first, cfg.base_budget, false);
    let engine::RunProgress::Paused(snap) =
        engine::run_until(first, &mut [], cfg.base_budget, 4_000)
    else {
        panic!("scenario must outlast one cadence");
    };
    super::checkpoint::save(&dir, mh, 0, 4_000, &engine::snapshot(&snap)).expect("planted");

    let resumed = run_sweep(&members, &cfg, None, false).expect("resumed sweep");
    assert_eq!(
        resumed.to_json_string(),
        plain.to_json_string(),
        "a member resumed mid-flight must reproduce the uninterrupted report"
    );
    assert_eq!(checkpoint_files(&dir), Vec::<PathBuf>::new());
}

#[test]
fn corrupt_or_alien_checkpoints_degrade_to_a_clean_rerun() {
    let members = seed_members(&base_scenario(), &[5]);
    let plain = run_sweep(&members, &cfg_with_threads(1), None, false).expect("plain sweep");
    let cfg = checkpointed_cfg("corrupt", 4_000);
    let dir = cfg.snapshot_dir.clone().expect("configured above");
    let first = members.first().expect("one member");
    let mh = hash::member_hash_with(first, cfg.base_budget, false);
    // Not even JSON: load fails typed, the member reruns clean.
    std::fs::write(super::checkpoint::path_for(&dir, mh), b"\x00garbage\xff").expect("planted");
    let report = run_sweep(&members, &cfg, None, false).expect("sweep survives corruption");
    assert_eq!(report.to_json_string(), plain.to_json_string());

    // A checkpoint from a *later* attempt must not leak into attempt 0.
    let engine::RunProgress::Paused(snap) =
        engine::run_until(first, &mut [], cfg.base_budget, 4_000)
    else {
        panic!("scenario must outlast one cadence");
    };
    super::checkpoint::save(&dir, mh, 3, 4_000, &engine::snapshot(&snap)).expect("planted");
    let report = run_sweep(&members, &cfg, None, false).expect("sweep ignores later attempt");
    assert_eq!(report.to_json_string(), plain.to_json_string());
    assert_eq!(checkpoint_files(&dir), Vec::<PathBuf>::new());
}

#[test]
fn checkpointed_retry_ladder_matches_the_plain_one() {
    // The doubling-retry path under checkpoint supervision: a timed-out
    // attempt's last checkpoint carries into the retry (resumed under
    // the doubled budget), and the recorded attempt history must still
    // be indistinguishable from the unsupervised ladder.
    let members = seed_members(&base_scenario(), &[7]);
    let mut plain_cfg = cfg_with_threads(1);
    plain_cfg.retries = 16;
    plain_cfg.base_budget = 100;
    let plain = run_sweep(&members, &plain_cfg, None, false).expect("plain ladder");
    let cfg = SweepConfig {
        retries: 16,
        base_budget: 100,
        // A cadence below the base budget, so even the first attempt
        // checkpoints before timing out.
        ..checkpointed_cfg("ladder", 30)
    };
    let checkpointed = run_sweep(&members, &cfg, None, false).expect("checkpointed ladder");
    assert_eq!(
        checkpointed.to_json_string(),
        plain.to_json_string(),
        "retry ladder must not notice checkpoint supervision"
    );
    assert!(
        checkpointed
            .members
            .first()
            .expect("one member")
            .was_retried(),
        "the ladder must actually have retried"
    );
}

#[test]
fn failed_member_is_counted_and_stat_still_refuses_thin_samples() {
    let mut bad = base_scenario();
    bad.behaviors.pop(); // deterministic engine panic (builder invariant broken)
    let members = vec![base_scenario(), bad];
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = run_sweep(
        &members,
        &SweepConfig {
            retries: 2,
            ..cfg_with_threads(1)
        },
        None,
        false,
    )
    .expect("sweep survives a panicking member");
    std::panic::set_hook(prev);
    let counts = report.counts();
    assert_eq!((counts.ok, counts.failed, counts.retried), (1, 1, 1));
    let failed = report.members.get(1).expect("two members");
    assert_eq!(failed.attempts.len(), 3, "all retries recorded");
    // Only one member completed: the reducer must refuse, typed.
    assert_eq!(
        report.throughput_stat(),
        Err(SweepError::TooFewSamples {
            completed: 1,
            members: 2,
        })
    );
}

/// A small synthetic sweep (no engine runs) for corruption properties.
fn synthetic_journal() -> (String, u64, Vec<u64>) {
    let hashes: Vec<u64> = (0..4).map(|i| 0x1000 + i as u64).collect();
    let sweep = hash::sweep_hash(&hashes);
    let members: Vec<Option<super::MemberReport>> = hashes
        .iter()
        .enumerate()
        .map(|(i, &h)| {
            Some(super::MemberReport {
                member: i,
                hash: h,
                attempts: vec![super::AttemptRecord {
                    budget: 1_000_000,
                    outcome: AttemptOutcome::Ok(MemberMetrics {
                        throughput: 100.25 + i as f64,
                        prr: Some(0.875),
                        events: 12_345 + i as u64,
                        measured_secs: nomc_units::Seconds::new(15.0),
                    }),
                }],
            })
        })
        .collect();
    (journal::render(sweep, None, &members), sweep, hashes)
}

#[test]
fn prop_truncated_journals_never_panic_and_recover_a_faithful_prefix() {
    let (text, sweep, hashes) = synthetic_journal();
    let pristine = journal::parse(&text, sweep, &hashes).expect("pristine parses");
    forall("journal_truncation", 200, &range(0..text.len()), |&cut| {
        let truncated = &text[..cut];
        match journal::parse(truncated, sweep, &hashes) {
            // Cut inside the header: the file is untrustworthy and
            // the error is typed.
            Err(SweepError::BadHeader { line: 1, .. }) => Ok(()),
            Err(e) => Err(format!("unexpected error for cut {cut}: {e:?}")),
            Ok(replay) => {
                // Every recovered member is bit-faithful to the
                // original; the torn tail line quarantined alone.
                for (slot, original) in replay.members.iter().zip(&pristine.members) {
                    if let Some(m) = slot {
                        nomc_rngcore::check!(
                            Some(m) == original.as_ref(),
                            "member {} changed after truncation at {cut}",
                            m.member
                        );
                    }
                }
                nomc_rngcore::check!(
                    replay.quarantined.len() <= 1,
                    "truncation can tear at most the last line, got {:?}",
                    replay.quarantined
                );
                Ok(())
            }
        }
    });
}

#[test]
fn prop_single_byte_corruption_quarantines_at_most_one_member() {
    let (text, sweep, hashes) = synthetic_journal();
    let pristine = journal::parse(&text, sweep, &hashes).expect("pristine parses");
    // Offsets of each line so we can tell which member a flip hits.
    let header_end = text.find('\n').expect("header line") + 1;
    forall(
        "journal_byte_flip",
        300,
        &zip2(range(header_end..text.len()), range(1u8..255)),
        |&(pos, delta)| {
            let mut bytes = text.clone().into_bytes();
            let original_byte = *bytes.get(pos).expect("pos in range");
            let flipped = original_byte.wrapping_add(delta);
            // Keep the line structure: newlines separate members, so a
            // flip to/from '\n' may legitimately affect two lines.
            if original_byte == b'\n' || flipped == b'\n' {
                return Ok(());
            }
            bytes[pos] = flipped;
            let Ok(corrupted) = String::from_utf8(bytes) else {
                // Invalid UTF-8 cannot even be read into the parser;
                // the supervisor surfaces that as a typed Io error.
                return Ok(());
            };
            let line_of_pos = text[..pos].matches('\n').count(); // 0-based
            let replay = journal::parse(&corrupted, sweep, &hashes)
                .map_err(|e| format!("member-line flip must not be fatal: {e:?}"))?;
            let mut unchanged = 0;
            for (i, (slot, original)) in replay.members.iter().zip(&pristine.members).enumerate() {
                let entry_line = i + 1; // member i sits on 0-based line i+1
                if entry_line != line_of_pos {
                    nomc_rngcore::check!(
                        slot == original,
                        "member {i} (line {entry_line}) changed by a flip on line {line_of_pos}"
                    );
                    unchanged += 1;
                }
            }
            nomc_rngcore::check!(
                unchanged + 1 == replay.members.len(),
                "exactly one member may be affected"
            );
            Ok(())
        },
    );
}

#[test]
fn prop_corrupted_content_hashes_quarantine_that_member_only() {
    let (_, sweep, hashes) = synthetic_journal();
    forall(
        "journal_hash_corruption",
        200,
        &zip2(range(0usize..4), range(1u64..u64::MAX)),
        |&(victim, offset)| {
            let members: Vec<Option<super::MemberReport>> = hashes
                .iter()
                .enumerate()
                .map(|(i, &h)| {
                    Some(super::MemberReport {
                        member: i,
                        hash: if i == victim {
                            h.wrapping_add(offset)
                        } else {
                            h
                        },
                        attempts: vec![super::AttemptRecord {
                            budget: 1,
                            outcome: AttemptOutcome::TimedOut { events: 1 },
                        }],
                    })
                })
                .collect();
            let text = journal::render(sweep, None, &members);
            let replay = journal::parse(&text, sweep, &hashes)
                .map_err(|e| format!("hash corruption must not be fatal: {e:?}"))?;
            nomc_rngcore::check!(
                replay.recovered() == 3,
                "exactly the victim reruns, got {}",
                replay.recovered()
            );
            nomc_rngcore::check!(
                replay.members.get(victim).map(Option::is_none) == Some(true),
                "victim {victim} must be quarantined"
            );
            match replay.quarantined.as_slice() {
                [SweepError::HashMismatch { member, .. }] if *member == victim => Ok(()),
                other => Err(format!("expected one HashMismatch, got {other:?}")),
            }
        },
    );
}
