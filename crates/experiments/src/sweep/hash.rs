//! Content hashing for sweep members and journals.
//!
//! A journal entry is only trusted if it provably describes *this*
//! sweep: the member key is an FNV-1a 64-bit hash over the member's
//! serialized [`Scenario`] (which embeds the seed), the seed repeated
//! explicitly, and the base event budget. Editing any of those — a
//! tweaked deployment, a different seed list, a new budget — changes
//! the hash, so a stale journal from an earlier version of the sweep is
//! detected instead of silently replayed.

use nomc_sim::Scenario;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Starts a hash at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Folds `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a `u64` in (little-endian byte order).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// One-shot FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// The content key of one sweep member: serialized scenario + seed +
/// base event budget.
///
/// The serialized form is the canonical JSON the in-tree codec emits
/// (insertion-ordered keys, shortest exact floats), so equal scenarios
/// always hash equally and any semantic edit changes the hash.
pub fn member_hash(scenario: &Scenario, base_budget: u64) -> u64 {
    member_hash_with(scenario, base_budget, false)
}

/// [`member_hash`] plus the execution mode: a sharded member
/// (`sharded = true`) folds a marker into the key, because a
/// multi-component scenario run through the sharded engine follows the
/// componentized-seed semantics — a journal of serial results must not
/// satisfy a sharded resume (or vice versa). Serial hashes are
/// unchanged, so existing journals stay valid.
pub fn member_hash_with(scenario: &Scenario, base_budget: u64, sharded: bool) -> u64 {
    let mut h = Fnv1a::new();
    h.write(nomc_json::to_string(scenario).as_bytes());
    h.write_u64(scenario.seed);
    h.write_u64(base_budget);
    if sharded {
        h.write(b"sharded");
    }
    h.finish()
}

/// The key of a whole sweep: member count plus every member hash, in
/// order. Stored in the journal header so a resumed run refuses a
/// journal written for a different member set.
pub fn sweep_hash(member_hashes: &[u64]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(member_hashes.len() as u64);
    for &m in member_hashes {
        h.write_u64(m);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomc_topology::{paper, spectrum::ChannelPlan};
    use nomc_units::{Dbm, Megahertz};

    fn scenario(seed: u64) -> Scenario {
        let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
        let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
        b.seed(seed);
        b.build().expect("valid test scenario")
    }

    #[test]
    fn fnv1a_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn member_hash_is_stable_and_content_sensitive() {
        let a = scenario(1);
        assert_eq!(member_hash(&a, 1000), member_hash(&a.clone(), 1000));
        // Seed, budget and scenario edits all change the key.
        assert_ne!(member_hash(&a, 1000), member_hash(&scenario(2), 1000));
        assert_ne!(member_hash(&a, 1000), member_hash(&a, 2000));
        let mut edited = a.clone();
        edited.duration = nomc_units::SimDuration::from_secs(21);
        assert_ne!(member_hash(&a, 1000), member_hash(&edited, 1000));
    }

    #[test]
    fn sharded_marker_changes_the_key_without_touching_serial_hashes() {
        let a = scenario(1);
        // Serial hashes are exactly the legacy member_hash — existing
        // journals stay valid.
        assert_eq!(member_hash(&a, 1000), member_hash_with(&a, 1000, false));
        // The sharded marker separates the two execution modes.
        assert_ne!(
            member_hash_with(&a, 1000, false),
            member_hash_with(&a, 1000, true)
        );
    }

    #[test]
    fn sweep_hash_covers_count_and_order() {
        assert_ne!(sweep_hash(&[1, 2]), sweep_hash(&[2, 1]));
        assert_ne!(sweep_hash(&[1]), sweep_hash(&[1, 1]));
        assert_eq!(sweep_hash(&[7, 9]), sweep_hash(&[7, 9]));
    }
}
