//! Crash-safe sweep orchestration: journaled checkpoints, deterministic
//! retries, and a work-stealing scheduler.
//!
//! The reproduction's figures come from long multi-seed parameter
//! sweeps. A sweep member (one scenario at one seed) already survives
//! its own faults — `catch_unwind` isolation and deterministic event
//! budgets live in [`crate::runner`] — but this module makes the *batch
//! itself* survive the process dying:
//!
//! * [`journal`] — an append-only JSONL checkpoint, atomically replaced
//!   (tmp-write + `fsync` + `rename`) after every concluded member, so
//!   a SIGKILL'd sweep resumes from its last member instead of seed 1;
//! * [`checkpoint`] — optional *mid-member* engine snapshots on an
//!   event cadence ([`SweepConfig::checkpoint_every`]), written with
//!   the same atomic discipline, so a SIGKILL'd sweep resumes a long
//!   member from its last pause instead of its first event — and the
//!   resumed member's report is byte-identical to the uninterrupted
//!   one (the engine's snapshot contract);
//! * [`hash`] — FNV-1a content keys over (serialized scenario, seed,
//!   event budget) that bind journal entries to exactly the sweep that
//!   wrote them, detecting stale journals after scenario edits;
//! * [`scheduler`] — a shared-atomic-index work pool replacing the old
//!   static `chunks_mut` split, keeping every thread busy through the
//!   chunk tail while results stay slot-ordered and bit-identical for
//!   any thread count;
//! * [`report`] — per-member attempt histories with reducers that
//!   refuse (typed error, never a panic, never silent narrowing) to
//!   summarize a sweep where fewer than two members completed.
//!
//! Retries are deterministic: a `Failed`/`TimedOut` member is re-run up
//! to [`SweepConfig::retries`] times with a doubling *event* budget —
//! never a wall clock — and the full history lands in the report.
//!
//! # Examples
//!
//! ```no_run
//! use nomc_experiments::sweep::{self, SweepConfig};
//! # fn base() -> nomc_sim::Scenario { unimplemented!() }
//!
//! let members = sweep::seed_members(&base(), &[1, 2, 3, 4, 5]);
//! let report = sweep::run_sweep(
//!     &members,
//!     &SweepConfig::default(),
//!     Some(std::path::Path::new("sweep.jsonl")),
//!     true, // resume if the journal already covers some members
//! )?;
//! println!("{:?} -> {:?}", report.counts(), report.throughput_stat());
//! # Ok::<(), nomc_experiments::sweep::SweepError>(())
//! ```

pub mod checkpoint;
pub mod hash;
pub mod journal;
pub mod report;
pub mod scheduler;

pub use report::{
    AttemptOutcome, AttemptRecord, MemberMetrics, MemberReport, OutcomeCounts, SweepReport,
};

use crate::runner::{run_isolated, RunOutcome};
use nomc_sim::{Scenario, SimObserver};
use std::path::Path;
use std::sync::Mutex;

/// Why a sweep (or one of its journal lines) could not be processed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// A filesystem operation failed.
    Io {
        /// Path the operation touched.
        path: String,
        /// The underlying error text.
        message: String,
    },
    /// The journal's header line is missing or unreadable; the file
    /// cannot be trusted at all.
    BadHeader {
        /// 1-based line number (always 1 today).
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The journal was written for a different sweep (edited scenarios,
    /// seeds, budget or member count).
    StaleJournal {
        /// This sweep's hash.
        expected: u64,
        /// The hash the journal header carries.
        found: u64,
    },
    /// A member line was unparsable or structurally invalid; only that
    /// member is quarantined (it reruns).
    CorruptLine {
        /// 1-based journal line number.
        line: usize,
        /// Parse/validation failure text.
        reason: String,
    },
    /// A member line's content hash does not match the member it names.
    HashMismatch {
        /// 1-based journal line number.
        line: usize,
        /// The member the line names.
        member: usize,
        /// The hash this sweep computes for that member.
        expected: u64,
        /// The hash the line carries.
        found: u64,
    },
    /// Two journal lines conclude the same member; the later one is
    /// quarantined.
    DuplicateMember {
        /// 1-based journal line number of the duplicate.
        line: usize,
        /// The member both lines name.
        member: usize,
    },
    /// The journal's final line is a partial record and the file does
    /// not end with a newline: the classic torn tail of a write that
    /// was killed mid-flight. Distinguished from [`SweepError::CorruptLine`]
    /// so restart paths can drop it silently (expected after SIGKILL)
    /// instead of warning about mid-file corruption.
    TrailingGarbage {
        /// Byte offset where the torn final line starts.
        offset: usize,
    },
    /// Too few members completed to reduce to a statistic.
    TooFewSamples {
        /// Members whose final attempt completed.
        completed: usize,
        /// Total members in the sweep.
        members: usize,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Io { path, message } => write!(f, "journal I/O on {path}: {message}"),
            SweepError::BadHeader { line, reason } => {
                write!(f, "journal line {line}: bad header: {reason}")
            }
            SweepError::StaleJournal { expected, found } => write!(
                f,
                "stale journal: sweep hash {found:#018x} does not match this sweep \
                 ({expected:#018x}); the scenarios, seeds or budget changed since it was written"
            ),
            SweepError::CorruptLine { line, reason } => {
                write!(
                    f,
                    "journal line {line}: corrupt entry quarantined: {reason}"
                )
            }
            SweepError::HashMismatch {
                line,
                member,
                expected,
                found,
            } => write!(
                f,
                "journal line {line}: member {member} hash {found:#018x} does not match \
                 {expected:#018x}; entry quarantined"
            ),
            SweepError::DuplicateMember { line, member } => {
                write!(
                    f,
                    "journal line {line}: duplicate entry for member {member}"
                )
            }
            SweepError::TrailingGarbage { offset } => write!(
                f,
                "journal ends mid-record at byte {offset} (torn final write); partial line dropped"
            ),
            SweepError::TooFewSamples { completed, members } => write!(
                f,
                "only {completed} of {members} members completed; refusing to reduce fewer \
                 than 2 samples to a statistic"
            ),
        }
    }
}

impl std::error::Error for SweepError {}

/// Tuning knobs of a sweep run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepConfig {
    /// Extra attempts granted to a `Failed`/`TimedOut` member (0 =
    /// single attempt).
    pub retries: u32,
    /// Event budget of the first attempt; each retry doubles it
    /// (saturating). Budgets count simulation events, never wall-clock
    /// time, so truncation is exactly reproducible.
    pub base_budget: u64,
    /// Worker threads; `None` uses [`scheduler::default_threads`].
    pub threads: Option<usize>,
    /// Per-member sharded execution: `Some(n)` runs every member
    /// through the sharded engine on `n` worker threads
    /// (`engine::run_sharded_bounded`). Results are independent of `n`,
    /// but multi-component members follow the componentized-seed
    /// semantics rather than the legacy serial stream, so the member
    /// hash carries a `sharded` marker (see [`hash::member_hash_with`])
    /// and serial journals are not silently replayed. `None` keeps the
    /// legacy serial engine.
    pub shards: Option<usize>,
    /// Mid-member checkpoint cadence in *events* (never a wall clock):
    /// `Some(n)` pauses every member each `n` events and persists an
    /// engine snapshot to [`SweepConfig::snapshot_dir`], so a killed
    /// sweep resumes long members mid-flight. Requires `snapshot_dir`;
    /// `None` (the default) runs members straight through.
    pub checkpoint_every: Option<u64>,
    /// Directory holding one checkpoint file per member (keyed by
    /// member hash). Only consulted when `checkpoint_every` is set.
    pub snapshot_dir: Option<std::path::PathBuf>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            retries: 1,
            // Generous runaway protection: far above any experiment in
            // the tree, small enough to cut an infinite loop short.
            base_budget: 1_000_000_000,
            threads: None,
            shards: None,
            checkpoint_every: None,
            snapshot_dir: None,
        }
    }
}

/// Builds the member list of a seed sweep: `base` with each seed of
/// `seeds` substituted in (the common shape of every figure experiment).
pub fn seed_members(base: &Scenario, seeds: &[u64]) -> Vec<Scenario> {
    seeds
        .iter()
        .map(|&seed| {
            let mut sc = base.clone();
            sc.seed = seed;
            sc
        })
        .collect()
}

/// Runs `members` under the sweep supervisor.
///
/// With a `journal` path, every concluded member is checkpointed by an
/// atomic file replace before the sweep moves on; with `resume`, an
/// existing journal's trustworthy entries are skipped instead of rerun
/// (corrupt lines quarantine only themselves; a stale or unreadable
/// journal is a typed error). The returned report is byte-identically
/// serializable regardless of thread count and of how many times the
/// sweep was killed and resumed along the way.
///
/// # Errors
///
/// [`SweepError::Io`]/[`SweepError::BadHeader`]/[`SweepError::StaleJournal`]
/// for journal problems that make checkpointing impossible or untrustworthy.
/// Member failures are *not* errors — they are recorded outcomes in the
/// report.
pub fn run_sweep(
    members: &[Scenario],
    cfg: &SweepConfig,
    journal_path: Option<&Path>,
    resume: bool,
) -> Result<SweepReport, SweepError> {
    let member_hashes: Vec<u64> = members
        .iter()
        .map(|sc| hash::member_hash_with(sc, cfg.base_budget, cfg.shards.is_some()))
        .collect();
    let sweep_hash = hash::sweep_hash(&member_hashes);

    let snapshot_dir_text = cfg.snapshot_dir.as_ref().map(|p| p.display().to_string());

    let mut concluded: Vec<Option<MemberReport>> = members.iter().map(|_| None).collect();
    if resume {
        if let Some(path) = journal_path {
            if let Some(replay) = journal::load(path, sweep_hash, &member_hashes)? {
                concluded = replay.members;
            }
        }
    }
    // Establish the checkpoint file up front (fresh runs overwrite any
    // previous journal; resumes rewrite the recovered subset, which
    // also sheds quarantined lines).
    if let Some(path) = journal_path {
        journal::persist(path, sweep_hash, snapshot_dir_text.as_deref(), &concluded)?;
    }

    let pending: Vec<usize> = (0..members.len())
        .filter(|&i| concluded.get(i).map(|slot| slot.is_none()).unwrap_or(false))
        .collect();

    let threads = cfg.threads.unwrap_or_else(scheduler::default_threads);
    let checkpoint = Mutex::new((concluded, None::<SweepError>));
    scheduler::run_indexed(pending.len(), threads, |k| {
        let index = *pending.get(k).expect("k < pending.len() by construction");
        let scenario = members
            .get(index)
            .expect("pending indexes come from 0..members.len()");
        let member_hash = *member_hashes
            .get(index)
            .expect("one hash per member by construction");
        let report = run_member(scenario, index, member_hash, cfg, &mut []);
        // Checkpoint before the member is considered done: insert the
        // report, then atomically replace the journal. Serialized by
        // the mutex; only the first persist failure is kept (later
        // members still run — losing durability does not lose results).
        let mut state = checkpoint.lock().expect("no panic holds the journal lock");
        let (slots, first_error) = &mut *state;
        if let Some(slot) = slots.get_mut(index) {
            *slot = Some(report);
        }
        if let Some(path) = journal_path {
            if first_error.is_none() {
                if let Err(e) =
                    journal::persist(path, sweep_hash, snapshot_dir_text.as_deref(), slots)
                {
                    *first_error = Some(e);
                }
            }
        }
    });

    let (slots, first_error) = checkpoint
        .into_inner()
        .expect("worker scope joined without poisoning");
    if let Some(e) = first_error {
        return Err(e);
    }

    // Every slot is now concluded: resumed members kept their journal
    // entry, pending members were just run.
    let report_members: Vec<MemberReport> = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or(MemberReport {
                member: i,
                hash: member_hashes.get(i).copied().unwrap_or_default(),
                attempts: Vec::new(),
            })
        })
        .collect();

    Ok(SweepReport {
        sweep_hash,
        members: report_members,
    })
}

/// Runs (or resumes) a single sweep member under the full attempt
/// supervisor — retry ladder, panic isolation, and mid-member
/// checkpoint supervision when [`SweepConfig::checkpoint_every`] /
/// [`SweepConfig::snapshot_dir`] are set — streaming progress to
/// `observers`.
///
/// This is the one-member entry point for job-level supervisors (the
/// results server) that own their *own* journal and drive members
/// individually instead of through [`run_sweep`]'s scheduler. The
/// member hash is computed exactly as [`run_sweep`] computes it, so a
/// checkpoint written under `run_sweep` resumes here and vice versa,
/// and the returned [`MemberReport`] is byte-identically serializable
/// either way. Observers are write-only sinks and cannot perturb the
/// run (the engine's observer contract), so attaching a progress
/// channel keeps the report bit-identical to an unobserved run.
pub fn run_one_member(
    scenario: &Scenario,
    index: usize,
    cfg: &SweepConfig,
    observers: &mut [&mut dyn SimObserver],
) -> MemberReport {
    let member_hash = hash::member_hash_with(scenario, cfg.base_budget, cfg.shards.is_some());
    run_member(scenario, index, member_hash, cfg, observers)
}

/// Runs one member's attempt loop: first attempt at the base budget,
/// then — for `Failed`/`TimedOut` outcomes — up to `retries` more with
/// a doubling event budget, recording every attempt.
///
/// With checkpoint supervision configured, each attempt pauses every
/// [`SweepConfig::checkpoint_every`] events and persists an engine
/// snapshot; a timed-out attempt's last checkpoint carries into the
/// retry (which resumes it under the doubled budget instead of
/// replaying the prefix), and the checkpoint is discarded once the
/// member concludes. The report records nothing about checkpointing —
/// a resumed member's report is byte-identical to an uninterrupted
/// one.
fn run_member(
    scenario: &Scenario,
    index: usize,
    member_hash: u64,
    cfg: &SweepConfig,
    observers: &mut [&mut dyn SimObserver],
) -> MemberReport {
    let supervision = match (&cfg.snapshot_dir, cfg.checkpoint_every) {
        (Some(dir), Some(every)) if every > 0 => Some((dir.as_path(), every)),
        _ => None,
    };
    let mut attempts = Vec::new();
    let mut budget = cfg.base_budget;
    for attempt in 0..=cfg.retries {
        let run = match supervision {
            Some((dir, every)) => run_checkpointed(
                scenario,
                budget,
                cfg.shards,
                dir,
                every,
                member_hash,
                attempt,
                observers,
            ),
            None => run_isolated(scenario, budget, cfg.shards, observers),
        };
        let (outcome, done) = match run {
            RunOutcome::Ok(result) => (AttemptOutcome::Ok(MemberMetrics::of(&result)), true),
            RunOutcome::Failed(message) => (AttemptOutcome::Failed(message), false),
            RunOutcome::TimedOut { events } => (AttemptOutcome::TimedOut { events }, false),
        };
        attempts.push(AttemptRecord { budget, outcome });
        if done {
            break;
        }
        budget = budget.saturating_mul(2);
    }
    // The member is concluded (the caller journals it next); its
    // checkpoint has served its purpose.
    if let Some((dir, _)) = supervision {
        checkpoint::discard(dir, member_hash);
    }
    MemberReport {
        member: index,
        hash: member_hash,
        attempts,
    }
}

/// One checkpoint-supervised attempt: panic-isolated like
/// [`run_isolated`], but run as a chain of pause/snapshot/resume legs.
#[allow(clippy::too_many_arguments)]
fn run_checkpointed(
    scenario: &Scenario,
    budget: u64,
    shards: Option<usize>,
    dir: &Path,
    every: u64,
    member_hash: u64,
    attempt: u32,
    observers: &mut [&mut dyn SimObserver],
) -> RunOutcome {
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        checkpointed_legs(
            scenario,
            budget,
            shards,
            dir,
            every,
            member_hash,
            attempt,
            observers,
        )
    }));
    match run {
        Ok(outcome) => outcome,
        Err(payload) => {
            // A panicking attempt cannot vouch for what it left on
            // disk; drop the checkpoint so the retry starts clean.
            checkpoint::discard(dir, member_hash);
            RunOutcome::Failed(crate::runner::panic_message(&*payload))
        }
    }
}

/// The leg chain of one checkpointed attempt: resume from the latest
/// trustworthy checkpoint (falling back to a clean start on *any*
/// defect — typed errors all the way down, never a panic), then
/// alternate run-to-pause with atomic snapshot writes until the engine
/// finishes or exhausts its budget.
#[allow(clippy::too_many_arguments)]
fn checkpointed_legs(
    scenario: &Scenario,
    budget: u64,
    shards: Option<usize>,
    dir: &Path,
    every: u64,
    member_hash: u64,
    attempt: u32,
    observers: &mut [&mut dyn SimObserver],
) -> RunOutcome {
    use nomc_sim::engine;

    // Recover a prior checkpoint, if it can be trusted. A defective
    // file (corrupt, version-skewed, wrong member) is discarded and the
    // attempt degrades to a clean start — by the engine's snapshot
    // contract the results are byte-identical either way, so
    // corruption costs time, never correctness.
    let recovered = match checkpoint::load(dir, member_hash) {
        Ok(found) => found,
        Err(_) => {
            checkpoint::discard(dir, member_hash);
            None
        }
    };

    let mut resumed = None;
    if let Some(rec) = recovered {
        // A checkpoint written by a *later* attempt must not leak into
        // an earlier one: a resumed sweep replays the attempt ladder
        // from 0, and attempt `k` has to reproduce the uninterrupted
        // attempt `k` exactly. The file is left in place — this attempt
        // overwrites it at its own first pause.
        if rec.attempt <= attempt {
            match engine::restore(&rec.payload) {
                Ok(mut snap) => {
                    // Graft this attempt's budget onto the saved state
                    // (a retry resumes a timed-out attempt's checkpoint
                    // under the doubled budget).
                    snap.set_budget(budget);
                    let target = rec.events_done.saturating_add(every);
                    match engine::resume_bounded(scenario, snap, observers, target) {
                        Ok(progress) => resumed = Some((target, progress)),
                        Err(_) => checkpoint::discard(dir, member_hash),
                    }
                }
                Err(_) => checkpoint::discard(dir, member_hash),
            }
        }
    }

    let (mut target, mut progress) = match resumed {
        Some(pair) => pair,
        None => {
            let target = every;
            let progress = match shards {
                Some(_) => engine::run_sharded_until(scenario, observers, budget, target),
                None => engine::run_until(scenario, observers, budget, target),
            };
            (target, progress)
        }
    };

    loop {
        match progress {
            engine::RunProgress::Paused(snap) => {
                let payload = engine::snapshot(&snap);
                // A failed save loses durability, not the run: the
                // member keeps executing with an older (or no)
                // checkpoint to fall back on after a crash.
                let _ = checkpoint::save(dir, member_hash, attempt, target, &payload);
                target = target.saturating_add(every);
                match engine::resume_bounded(scenario, *snap, observers, target) {
                    Ok(next) => progress = next,
                    // Unreachable in practice (the snapshot came from
                    // this very scenario moments ago), but a typed
                    // failure stays a recorded failure, not a panic.
                    Err(e) => return RunOutcome::Failed(e.to_string()),
                }
            }
            engine::RunProgress::Done(done) => {
                return if done.exhausted {
                    RunOutcome::TimedOut {
                        events: done.result.events,
                    }
                } else {
                    RunOutcome::Ok(done.result)
                };
            }
        }
    }
}

#[cfg(test)]
mod tests;
