//! Crash-safe sweep orchestration: journaled checkpoints, deterministic
//! retries, and a work-stealing scheduler.
//!
//! The reproduction's figures come from long multi-seed parameter
//! sweeps. A sweep member (one scenario at one seed) already survives
//! its own faults — `catch_unwind` isolation and deterministic event
//! budgets live in [`crate::runner`] — but this module makes the *batch
//! itself* survive the process dying:
//!
//! * [`journal`] — an append-only JSONL checkpoint, atomically replaced
//!   (tmp-write + `fsync` + `rename`) after every concluded member, so
//!   a SIGKILL'd sweep resumes from its last member instead of seed 1;
//! * [`hash`] — FNV-1a content keys over (serialized scenario, seed,
//!   event budget) that bind journal entries to exactly the sweep that
//!   wrote them, detecting stale journals after scenario edits;
//! * [`scheduler`] — a shared-atomic-index work pool replacing the old
//!   static `chunks_mut` split, keeping every thread busy through the
//!   chunk tail while results stay slot-ordered and bit-identical for
//!   any thread count;
//! * [`report`] — per-member attempt histories with reducers that
//!   refuse (typed error, never a panic, never silent narrowing) to
//!   summarize a sweep where fewer than two members completed.
//!
//! Retries are deterministic: a `Failed`/`TimedOut` member is re-run up
//! to [`SweepConfig::retries`] times with a doubling *event* budget —
//! never a wall clock — and the full history lands in the report.
//!
//! # Examples
//!
//! ```no_run
//! use nomc_experiments::sweep::{self, SweepConfig};
//! # fn base() -> nomc_sim::Scenario { unimplemented!() }
//!
//! let members = sweep::seed_members(&base(), &[1, 2, 3, 4, 5]);
//! let report = sweep::run_sweep(
//!     &members,
//!     &SweepConfig::default(),
//!     Some(std::path::Path::new("sweep.jsonl")),
//!     true, // resume if the journal already covers some members
//! )?;
//! println!("{:?} -> {:?}", report.counts(), report.throughput_stat());
//! # Ok::<(), nomc_experiments::sweep::SweepError>(())
//! ```

pub mod hash;
pub mod journal;
pub mod report;
pub mod scheduler;

pub use report::{
    AttemptOutcome, AttemptRecord, MemberMetrics, MemberReport, OutcomeCounts, SweepReport,
};

use crate::runner::{run_isolated, RunOutcome};
use nomc_sim::Scenario;
use std::path::Path;
use std::sync::Mutex;

/// Why a sweep (or one of its journal lines) could not be processed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// A filesystem operation failed.
    Io {
        /// Path the operation touched.
        path: String,
        /// The underlying error text.
        message: String,
    },
    /// The journal's header line is missing or unreadable; the file
    /// cannot be trusted at all.
    BadHeader {
        /// 1-based line number (always 1 today).
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The journal was written for a different sweep (edited scenarios,
    /// seeds, budget or member count).
    StaleJournal {
        /// This sweep's hash.
        expected: u64,
        /// The hash the journal header carries.
        found: u64,
    },
    /// A member line was unparsable or structurally invalid; only that
    /// member is quarantined (it reruns).
    CorruptLine {
        /// 1-based journal line number.
        line: usize,
        /// Parse/validation failure text.
        reason: String,
    },
    /// A member line's content hash does not match the member it names.
    HashMismatch {
        /// 1-based journal line number.
        line: usize,
        /// The member the line names.
        member: usize,
        /// The hash this sweep computes for that member.
        expected: u64,
        /// The hash the line carries.
        found: u64,
    },
    /// Two journal lines conclude the same member; the later one is
    /// quarantined.
    DuplicateMember {
        /// 1-based journal line number of the duplicate.
        line: usize,
        /// The member both lines name.
        member: usize,
    },
    /// Too few members completed to reduce to a statistic.
    TooFewSamples {
        /// Members whose final attempt completed.
        completed: usize,
        /// Total members in the sweep.
        members: usize,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Io { path, message } => write!(f, "journal I/O on {path}: {message}"),
            SweepError::BadHeader { line, reason } => {
                write!(f, "journal line {line}: bad header: {reason}")
            }
            SweepError::StaleJournal { expected, found } => write!(
                f,
                "stale journal: sweep hash {found:#018x} does not match this sweep \
                 ({expected:#018x}); the scenarios, seeds or budget changed since it was written"
            ),
            SweepError::CorruptLine { line, reason } => {
                write!(
                    f,
                    "journal line {line}: corrupt entry quarantined: {reason}"
                )
            }
            SweepError::HashMismatch {
                line,
                member,
                expected,
                found,
            } => write!(
                f,
                "journal line {line}: member {member} hash {found:#018x} does not match \
                 {expected:#018x}; entry quarantined"
            ),
            SweepError::DuplicateMember { line, member } => {
                write!(
                    f,
                    "journal line {line}: duplicate entry for member {member}"
                )
            }
            SweepError::TooFewSamples { completed, members } => write!(
                f,
                "only {completed} of {members} members completed; refusing to reduce fewer \
                 than 2 samples to a statistic"
            ),
        }
    }
}

impl std::error::Error for SweepError {}

/// Tuning knobs of a sweep run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepConfig {
    /// Extra attempts granted to a `Failed`/`TimedOut` member (0 =
    /// single attempt).
    pub retries: u32,
    /// Event budget of the first attempt; each retry doubles it
    /// (saturating). Budgets count simulation events, never wall-clock
    /// time, so truncation is exactly reproducible.
    pub base_budget: u64,
    /// Worker threads; `None` uses [`scheduler::default_threads`].
    pub threads: Option<usize>,
    /// Per-member sharded execution: `Some(n)` runs every member
    /// through the sharded engine on `n` worker threads
    /// (`engine::run_sharded_bounded`). Results are independent of `n`,
    /// but multi-component members follow the componentized-seed
    /// semantics rather than the legacy serial stream, so the member
    /// hash carries a `sharded` marker (see [`hash::member_hash_with`])
    /// and serial journals are not silently replayed. `None` keeps the
    /// legacy serial engine.
    pub shards: Option<usize>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            retries: 1,
            // Generous runaway protection: far above any experiment in
            // the tree, small enough to cut an infinite loop short.
            base_budget: 1_000_000_000,
            threads: None,
            shards: None,
        }
    }
}

/// Builds the member list of a seed sweep: `base` with each seed of
/// `seeds` substituted in (the common shape of every figure experiment).
pub fn seed_members(base: &Scenario, seeds: &[u64]) -> Vec<Scenario> {
    seeds
        .iter()
        .map(|&seed| {
            let mut sc = base.clone();
            sc.seed = seed;
            sc
        })
        .collect()
}

/// Runs `members` under the sweep supervisor.
///
/// With a `journal` path, every concluded member is checkpointed by an
/// atomic file replace before the sweep moves on; with `resume`, an
/// existing journal's trustworthy entries are skipped instead of rerun
/// (corrupt lines quarantine only themselves; a stale or unreadable
/// journal is a typed error). The returned report is byte-identically
/// serializable regardless of thread count and of how many times the
/// sweep was killed and resumed along the way.
///
/// # Errors
///
/// [`SweepError::Io`]/[`SweepError::BadHeader`]/[`SweepError::StaleJournal`]
/// for journal problems that make checkpointing impossible or untrustworthy.
/// Member failures are *not* errors — they are recorded outcomes in the
/// report.
pub fn run_sweep(
    members: &[Scenario],
    cfg: &SweepConfig,
    journal_path: Option<&Path>,
    resume: bool,
) -> Result<SweepReport, SweepError> {
    let member_hashes: Vec<u64> = members
        .iter()
        .map(|sc| hash::member_hash_with(sc, cfg.base_budget, cfg.shards.is_some()))
        .collect();
    let sweep_hash = hash::sweep_hash(&member_hashes);

    let mut concluded: Vec<Option<MemberReport>> = members.iter().map(|_| None).collect();
    if resume {
        if let Some(path) = journal_path {
            if let Some(replay) = journal::load(path, sweep_hash, &member_hashes)? {
                concluded = replay.members;
            }
        }
    }
    // Establish the checkpoint file up front (fresh runs overwrite any
    // previous journal; resumes rewrite the recovered subset, which
    // also sheds quarantined lines).
    if let Some(path) = journal_path {
        journal::persist(path, sweep_hash, &concluded)?;
    }

    let pending: Vec<usize> = (0..members.len())
        .filter(|&i| concluded.get(i).map(|slot| slot.is_none()).unwrap_or(false))
        .collect();

    let threads = cfg.threads.unwrap_or_else(scheduler::default_threads);
    let checkpoint = Mutex::new((concluded, None::<SweepError>));
    scheduler::run_indexed(pending.len(), threads, |k| {
        let index = *pending.get(k).expect("k < pending.len() by construction");
        let scenario = members
            .get(index)
            .expect("pending indexes come from 0..members.len()");
        let member_hash = *member_hashes
            .get(index)
            .expect("one hash per member by construction");
        let report = run_member(scenario, index, member_hash, cfg);
        // Checkpoint before the member is considered done: insert the
        // report, then atomically replace the journal. Serialized by
        // the mutex; only the first persist failure is kept (later
        // members still run — losing durability does not lose results).
        let mut state = checkpoint.lock().expect("no panic holds the journal lock");
        let (slots, first_error) = &mut *state;
        if let Some(slot) = slots.get_mut(index) {
            *slot = Some(report);
        }
        if let Some(path) = journal_path {
            if first_error.is_none() {
                if let Err(e) = journal::persist(path, sweep_hash, slots) {
                    *first_error = Some(e);
                }
            }
        }
    });

    let (slots, first_error) = checkpoint
        .into_inner()
        .expect("worker scope joined without poisoning");
    if let Some(e) = first_error {
        return Err(e);
    }

    // Every slot is now concluded: resumed members kept their journal
    // entry, pending members were just run.
    let report_members: Vec<MemberReport> = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or(MemberReport {
                member: i,
                hash: member_hashes.get(i).copied().unwrap_or_default(),
                attempts: Vec::new(),
            })
        })
        .collect();

    Ok(SweepReport {
        sweep_hash,
        members: report_members,
    })
}

/// Runs one member's attempt loop: first attempt at the base budget,
/// then — for `Failed`/`TimedOut` outcomes — up to `retries` more with
/// a doubling event budget, recording every attempt.
fn run_member(
    scenario: &Scenario,
    index: usize,
    member_hash: u64,
    cfg: &SweepConfig,
) -> MemberReport {
    let mut attempts = Vec::new();
    let mut budget = cfg.base_budget;
    for _attempt in 0..=cfg.retries {
        let (outcome, done) = match run_isolated(scenario, budget, cfg.shards) {
            RunOutcome::Ok(result) => (AttemptOutcome::Ok(MemberMetrics::of(&result)), true),
            RunOutcome::Failed(message) => (AttemptOutcome::Failed(message), false),
            RunOutcome::TimedOut { events } => (AttemptOutcome::TimedOut { events }, false),
        };
        attempts.push(AttemptRecord { budget, outcome });
        if done {
            break;
        }
        budget = budget.saturating_mul(2);
    }
    MemberReport {
        member: index,
        hash: member_hash,
        attempts,
    }
}

#[cfg(test)]
mod tests;
