//! Multi-seed, multi-point execution utilities.
//!
//! Every sweep point (a scenario at one parameter value and one seed) is
//! an independent deterministic simulation, so the harness parallelizes
//! across points while each simulation itself stays single-threaded and
//! reproducible. All batch entry points share one parallel-execution
//! path: the work-stealing [`crate::sweep::scheduler`], whose
//! slot-ordered results are bit-identical for any thread count.
//!
//! Batch robustness: [`run_outcomes`] isolates each member behind
//! `catch_unwind` and a deterministic event budget, so one panicking or
//! runaway scenario is reported as its own [`RunOutcome`] instead of
//! taking the whole sweep down. The budget counts simulation events —
//! never wall-clock time — so a truncated member is exactly as
//! reproducible as a completed one.

use crate::ExpConfig;
use nomc_sim::{engine, Scenario, SimObserver, SimResult};

/// Mean and (population) standard deviation of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Stat {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl Stat {
    /// Computes mean/std of `values`.
    ///
    /// Returns the zero stat for an empty slice.
    pub fn of(values: &[f64]) -> Stat {
        if values.is_empty() {
            return Stat::default();
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        Stat {
            mean,
            std: var.sqrt(),
        }
    }

    /// Half-width of the ~95 % confidence interval of the mean
    /// (`t · s / √n` with a small-sample Student-t table). Zero for
    /// fewer than two samples.
    pub fn ci95_half_width(&self, n: usize) -> f64 {
        if n < 2 {
            return 0.0;
        }
        // Two-sided 95 % t-quantiles for n-1 degrees of freedom.
        const T: [f64; 10] = [
            12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
        ];
        let t = T.get(n - 2).copied().unwrap_or(1.96);
        // `std` here is the population σ estimate; convert to the sample
        // (n-1) estimator for the CI.
        let sample_std = self.std * ((n as f64) / (n as f64 - 1.0)).sqrt();
        t * sample_std / (n as f64).sqrt()
    }
}

/// Runs `make_scenario(seed)` for every seed of `cfg`, in parallel, and
/// returns the results in seed order.
///
/// The closure builds the scenario (including any seed-dependent
/// topology); duration/warmup from `cfg` are applied on top.
pub fn run_seeds<F>(cfg: &ExpConfig, make_scenario: F) -> Vec<SimResult>
where
    F: Fn(u64) -> Scenario + Sync,
{
    let scenarios: Vec<Scenario> = cfg
        .seeds
        .iter()
        .map(|&s| {
            let mut sc = make_scenario(s);
            sc.duration = cfg.duration;
            sc.warmup = cfg.warmup;
            sc.seed = s;
            sc
        })
        .collect();
    run_parallel(&scenarios)
}

/// Runs a batch of scenarios in parallel on the work-stealing
/// scheduler ([`crate::sweep::scheduler`]), preserving order.
///
/// Results are slot-ordered, so they are bit-identical for any thread
/// count; only wall-clock completion order varies.
pub fn run_parallel(scenarios: &[Scenario]) -> Vec<SimResult> {
    crate::sweep::scheduler::run_indexed(
        scenarios.len(),
        crate::sweep::scheduler::default_threads(),
        |i| engine::run(&scenarios[i]),
    )
}

/// How one member of an isolated batch ([`run_outcomes`]) ended.
#[derive(Debug, PartialEq)]
pub enum RunOutcome {
    /// The simulation drained naturally within the event budget.
    Ok(SimResult),
    /// The simulation panicked; the payload is the panic message. The
    /// panic was confined to this member — the rest of the batch ran.
    Failed(String),
    /// The event budget expired before the run drained; the member was
    /// cut off deterministically (no wall clock involved).
    TimedOut {
        /// Events handled before the budget cut in.
        events: u64,
    },
}

impl RunOutcome {
    /// The completed result, when the member finished normally.
    pub fn result(&self) -> Option<&SimResult> {
        match self {
            RunOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }

    /// `true` for [`RunOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, RunOutcome::Ok(_))
    }
}

/// Runs a batch of scenarios in parallel with per-member isolation:
/// each member runs under `catch_unwind` and the `max_events` budget,
/// and the returned outcomes preserve order. Use `u64::MAX` for an
/// effectively unbounded budget.
///
/// Unlike [`run_parallel`], a panicking member cannot abort the batch:
/// it is reported as [`RunOutcome::Failed`] while every other member
/// still completes.
pub fn run_outcomes(scenarios: &[Scenario], max_events: u64) -> Vec<RunOutcome> {
    crate::sweep::scheduler::run_indexed(
        scenarios.len(),
        crate::sweep::scheduler::default_threads(),
        |i| run_isolated(&scenarios[i], max_events, None, &mut []),
    )
}

/// One member: budgeted, with the panic boundary right around the
/// engine call. `AssertUnwindSafe` is sound here because nothing
/// crosses the boundary on the panic path — the scenario is borrowed
/// immutably, the engine's state dies with the unwind, and observers
/// are write-only sinks whose partial output is discarded with the
/// failed attempt.
///
/// With `shards: Some(n)` the member runs through the sharded engine on
/// `n` worker threads ([`engine::run_sharded_bounded`]); `None` keeps
/// the legacy serial [`engine::run_bounded`]. `observers` stream the
/// attempt's progress (batch paths pass `&mut []`; the results server
/// feeds its per-job event channel through here).
///
/// Also the attempt primitive of [`crate::sweep`]'s retry loop.
pub(crate) fn run_isolated(
    sc: &Scenario,
    max_events: u64,
    shards: Option<usize>,
    observers: &mut [&mut dyn SimObserver],
) -> RunOutcome {
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match shards {
        Some(threads) => engine::run_sharded_bounded(sc, observers, max_events, threads),
        None => engine::run_bounded(sc, observers, max_events),
    }));
    match run {
        Ok(bounded) if bounded.exhausted => RunOutcome::TimedOut {
            events: bounded.result.events,
        },
        Ok(bounded) => RunOutcome::Ok(bounded.result),
        Err(payload) => RunOutcome::Failed(panic_message(payload.as_ref())),
    }
}

/// Best-effort extraction of a panic payload's message (the standard
/// `panic!`/`expect` payloads are `&str` or `String`).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Convenience: runs the seeds and reduces each result to a scalar,
/// returning its [`Stat`].
pub fn stat_over_seeds<F, G>(cfg: &ExpConfig, make_scenario: F, metric: G) -> Stat
where
    F: Fn(u64) -> Scenario + Sync,
    G: Fn(&SimResult) -> f64,
{
    let results = run_seeds(cfg, make_scenario);
    let values: Vec<f64> = results.iter().map(metric).collect();
    Stat::of(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomc_topology::{paper, spectrum::ChannelPlan};
    use nomc_units::{Dbm, Megahertz};

    fn scenario(seed: u64) -> Scenario {
        let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
        let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
        b.seed(seed);
        b.build().expect("builder-validated test scenario")
    }

    #[test]
    fn stat_of_values() {
        let s = Stat::of(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(Stat::of(&[]), Stat::default());
    }

    #[test]
    fn ci95_behaviour() {
        let s = Stat::of(&[10.0, 12.0, 14.0]);
        let ci = s.ci95_half_width(3);
        // t(2 df) = 4.303, sample std = 2 → 4.303·2/√3 ≈ 4.97.
        assert!((ci - 4.969).abs() < 0.01, "{ci}");
        assert_eq!(s.ci95_half_width(1), 0.0);
        // More samples shrink the interval.
        let s10 = Stat::of(&[10.0, 12.0, 14.0, 10.0, 12.0, 14.0, 10.0, 12.0, 14.0, 12.0]);
        assert!(s10.ci95_half_width(10) < ci);
    }

    #[test]
    fn run_seeds_is_deterministic_and_ordered() {
        let cfg = ExpConfig {
            duration: nomc_units::SimDuration::from_secs(2),
            warmup: nomc_units::SimDuration::from_secs(1),
            seeds: vec![1, 2, 3],
        };
        let a = run_seeds(&cfg, scenario);
        let b = run_seeds(&cfg, scenario);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        // Different seeds really produce different runs.
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn panicking_member_is_failed_while_batch_completes() {
        let mut bad = scenario(2);
        // Corrupt the invariant the builder guarantees (one behavior per
        // network): engine construction panics on the missing entry.
        bad.behaviors.pop();
        let batch = vec![scenario(1), bad, scenario(3)];
        // Quiet the default panic printer for the intentional panic; the
        // hook is process-global, so restore it right after.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = run_outcomes(&batch, u64::MAX);
        std::panic::set_hook(prev);
        assert_eq!(out.len(), 3);
        assert!(out[0].is_ok(), "{:?}", out[0]);
        assert!(matches!(out[1], RunOutcome::Failed(_)), "{:?}", out[1]);
        assert!(out[2].is_ok(), "{:?}", out[2]);
        // The survivors are the same results an unbounded run produces.
        assert_eq!(out[0].result(), Some(&engine::run(&batch[0])));
    }

    #[test]
    fn event_budget_times_out_deterministically() {
        let sc = scenario(7);
        let full = engine::run(&sc);
        assert!(full.events > 200, "budget test needs a non-trivial run");
        let out = run_outcomes(std::slice::from_ref(&sc), 200);
        assert_eq!(out, vec![RunOutcome::TimedOut { events: 200 }]);
        // A budget past the natural event count changes nothing.
        let unbounded = run_outcomes(std::slice::from_ref(&sc), full.events + 1);
        assert_eq!(unbounded[0].result(), Some(&full));
    }

    #[test]
    fn stat_over_seeds_reduces() {
        let cfg = ExpConfig {
            duration: nomc_units::SimDuration::from_secs(2),
            warmup: nomc_units::SimDuration::from_secs(1),
            seeds: vec![1, 2],
        };
        let s = stat_over_seeds(&cfg, scenario, SimResult::total_throughput);
        assert!(s.mean > 100.0, "mean {}", s.mean);
    }
}
