//! Figs. 9-10 — effect of the link's transmission power on the
//! CCA-threshold sweep (no co-channel interference).
//!
//! Fig. 9: relaxing helps at every power, but the absolute throughput
//! depends on the link's ability to decode under interference.
//! Fig. 10: PRR stays ≈ 100 % for powers ≥ −15 dBm, ≈ 80 % at −22 dBm
//! (vs 0 dBm interferers), and collapses at −33 dBm.

use crate::experiments::{common, fig06};
use crate::report::{f1, pct, Report};
use crate::ExpConfig;
use nomc_units::Dbm;

/// The paper's swept link powers (dBm).
pub const POWERS: [f64; 5] = [-8.0, -11.0, -15.0, -22.0, -33.0];

/// Runs the experiment (returns the Fig. 9 and Fig. 10 reports).
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let mut columns9 = vec!["CCA thr (dBm)".to_string()];
    let mut columns10 = vec!["CCA thr (dBm)".to_string()];
    for p in POWERS {
        columns9.push(format!("tput@{p}dBm"));
        columns10.push(format!("PRR@{p}dBm"));
    }
    let sweeps: Vec<Vec<fig06::SweepPoint>> = POWERS
        .iter()
        .map(|&p| fig06::sweep(cfg, Dbm::new(p)))
        .collect();
    let col9: Vec<&str> = columns9.iter().map(String::as_str).collect();
    let col10: Vec<&str> = columns10.iter().map(String::as_str).collect();
    let mut fig9 = Report::new(
        "fig09",
        "Link received throughput vs CCA threshold at different TX powers",
        &col9,
    );
    let mut fig10 = Report::new(
        "fig10",
        "Link PRR vs CCA threshold at different TX powers",
        &col10,
    );
    for (i, thr) in common::cca_sweep().into_iter().enumerate() {
        let mut row9 = vec![f1(thr)];
        let mut row10 = vec![f1(thr)];
        for sweep in &sweeps {
            row9.push(f1(sweep[i].received));
            row10.push(pct(sweep[i].prr));
        }
        fig9.row(row9);
        fig10.row(row10);
    }
    fig9.note(
        "relaxing the threshold improves throughput at every power; the gain \
         size depends on the link's decoding margin (paper Fig. 9)",
    );
    fig10.note(
        "paper Fig. 10: PRR ≈ 100 % for ≥ −15 dBm, > 80 % at −22 dBm vs 0 dBm \
         interferers, collapsing at −33 dBm",
    );
    vec![fig9, fig10]
}

/// Relaxed-threshold PRR at one power (used by tests and EXPERIMENTS.md).
pub fn relaxed_prr(cfg: &ExpConfig, power: f64) -> f64 {
    let sweep = fig06::sweep(cfg, Dbm::new(power));
    sweep.last().expect("non-empty").prr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prr_ordering_matches_paper() {
        let cfg = ExpConfig::quick();
        let strong = relaxed_prr(&cfg, -11.0);
        let mid = relaxed_prr(&cfg, -22.0);
        let weak = relaxed_prr(&cfg, -33.0);
        assert!(strong > 0.97, "strong {strong}");
        assert!((0.65..=1.0).contains(&mid), "mid {mid}");
        assert!(weak < mid, "weak {weak} !< mid {mid}");
    }

    #[test]
    fn relaxing_helps_at_reduced_power() {
        let cfg = ExpConfig::quick();
        let sweep = fig06::sweep(&cfg, Dbm::new(-15.0));
        let default = sweep.iter().find(|p| p.threshold == -77.0).unwrap();
        let relaxed = sweep.last().unwrap();
        assert!(
            relaxed.received > default.received,
            "no gain at -15 dBm: {} vs {}",
            relaxed.received,
            default.received
        );
    }
}
