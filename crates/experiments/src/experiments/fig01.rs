//! Fig. 1 — aggregate throughput on a 12 MHz band vs. channel
//! centre-frequency distance, with the default ZigBee MAC (fixed
//! −77 dBm CCA threshold).
//!
//! Paper observation: orthogonal CFD = 9 MHz wastes the band (one
//! channel); the ZigBee default 5 MHz is conservative; 3 MHz maximizes
//! aggregate throughput; 2 MHz is worse again because inter-channel
//! interference bites.

use crate::experiments::common;
use crate::report::{bar, f1, Report};
use crate::runner;
use crate::ExpConfig;

/// The swept CFDs and channel counts for the 12 MHz band. The paper's
/// §III-A text gives 1 ch @ 9 MHz and 2 ch @ 5 MHz; the remaining counts
/// are reverse-engineered from Fig. 1's stacked bars (the CFD 3 MHz bar
/// stacks five networks, the CFD 2 MHz bar six — the legend tops out at
/// N5).
pub const CFDS: [(f64, usize); 5] = [(9.0, 1), (5.0, 2), (4.0, 3), (3.0, 5), (2.0, 6)];

/// Paper Fig. 1 aggregate throughputs, read off the figure (pkts/s).
pub const PAPER_TOTALS: [f64; 5] = [250.0, 500.0, 750.0, 1350.0, 1150.0];

/// One Fig. 1 sweep point: `count` networks spaced `cfd` apart on the
/// §III line geometry (separate 4-mote networks, default ZigBee MAC).
pub fn scenario(cfd: f64, count: usize, seed: u64) -> nomc_sim::Scenario {
    let plan = nomc_topology::spectrum::ChannelPlan::with_count(
        common::band_start(),
        nomc_units::Megahertz::new(cfd),
        count,
    );
    let deployment = nomc_topology::paper::line_deployment(&plan, nomc_units::Dbm::new(0.0));
    let mut b = nomc_sim::Scenario::builder(deployment);
    b.seed(seed);
    b.build().expect("valid Fig. 1 scenario")
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let mut report = Report::new(
        "fig01",
        "Aggregate throughput vs CFD on a 12 MHz band (default ZigBee MAC)",
        &[
            "CFD (MHz)",
            "channels",
            "measured total (pkt/s)",
            "per-channel (pkt/s)",
            "paper total",
            "",
        ],
    );
    let mut totals = Vec::new();
    for (i, &(cfd, count)) in CFDS.iter().enumerate() {
        let results = runner::run_seeds(cfg, |seed| scenario(cfd, count, seed));
        let total = common::mean_total_throughput(&results);
        totals.push(total);
        report.row([
            f1(cfd),
            count.to_string(),
            f1(total),
            f1(total / count as f64),
            f1(PAPER_TOTALS[i]),
            bar(total, 1500.0, 30),
        ]);
    }
    let best = CFDS[argmax(&totals)].0;
    report.note(format!(
        "measured optimum at CFD = {best} MHz (paper: 3 MHz); orthogonal 9 MHz \
         and ZigBee-default 5 MHz leave most of the band idle"
    ));
    report.note(
        "channel counts follow the paper's §III text for 9/5/4 MHz and its \
         Fig. 1 bar stacks for 3/2 MHz (see CFDS); absolute packets/s depend \
         on the simulated stack overheads — compare shapes",
    );
    vec![report]
}

fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let cfg = ExpConfig::quick();
        let report = &run(&cfg)[0];
        assert_eq!(report.rows.len(), 5);
        let totals: Vec<f64> = report
            .rows
            .iter()
            .map(|r| r[2].parse::<f64>().unwrap())
            .collect();
        // CFD 3 beats orthogonal 9 MHz and the ZigBee default 5 MHz, and
        // CFD 2 does not beat CFD 3 (the paper's trade-off).
        let by_cfd: std::collections::HashMap<&str, f64> = report
            .rows
            .iter()
            .map(|r| (r[0].as_str(), r[2].parse().unwrap()))
            .collect();
        assert!(by_cfd["3.0"] > by_cfd["9.0"] * 2.0, "{totals:?}");
        assert!(by_cfd["3.0"] > by_cfd["5.0"], "{totals:?}");
        assert!(by_cfd["3.0"] > by_cfd["2.0"], "{totals:?}");
    }
}
