//! Fig. 4 — collided-packet receive rate (CPRR) vs channel
//! centre-frequency distance: the paper's core feasibility result for
//! non-orthogonal concurrency.
//!
//! Expected shape (paper): CFD ≥ 4 MHz → 100 %, 3 MHz → ≈ 97 %,
//! 2 MHz → ≈ 70 %, 1 MHz → < 20 %; the attacker's own CPRR tracks
//! slightly above the normal sender's.

use crate::experiments::fig03;
use crate::report::{bar, pct, Report};
use crate::runner;
use crate::ExpConfig;

/// The swept CFDs (MHz).
pub const CFDS: [f64; 5] = [5.0, 4.0, 3.0, 2.0, 1.0];

/// Paper CPRR values for the normal sender at each CFD.
pub const PAPER_CPRR: [f64; 5] = [1.0, 1.0, 0.97, 0.70, 0.18];

/// CPRR of normal sender and attacker at one CFD, averaged over seeds.
pub fn cprr_at(cfg: &ExpConfig, cfd: f64) -> (f64, f64) {
    let results = runner::run_seeds(cfg, |seed| fig03::scenario(cfd, seed));
    let mut normal = 0.0;
    let mut attacker = 0.0;
    for r in &results {
        normal += r.links[0].cprr().unwrap_or(0.0);
        attacker += r.links[1].cprr().unwrap_or(0.0);
    }
    let n = results.len() as f64;
    (normal / n, attacker / n)
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let mut report = Report::new(
        "fig04",
        "CPRR vs channel frequency distance (collision experiment)",
        &[
            "CFD (MHz)",
            "normal CPRR",
            "attacker CPRR",
            "paper (normal)",
            "",
        ],
    );
    for (i, &cfd) in CFDS.iter().enumerate() {
        let (normal, attacker) = cprr_at(cfg, cfd);
        report.row([
            format!("{cfd}"),
            pct(normal),
            pct(attacker),
            pct(PAPER_CPRR[i]),
            bar(normal, 1.0, 25),
        ]);
    }
    report.note(
        "this experiment calibrates the default ACR curve \
         (nomc_phy::coupling::AcrCurve::cc2420_calibrated); every other \
         experiment reuses that single calibration",
    );
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cprr_bands_match_paper() {
        let cfg = ExpConfig::quick();
        let (c5, _) = cprr_at(&cfg, 5.0);
        let (c3, _) = cprr_at(&cfg, 3.0);
        let (c2, _) = cprr_at(&cfg, 2.0);
        let (c1, _) = cprr_at(&cfg, 1.0);
        assert!(c5 > 0.99, "CFD 5: {c5}");
        assert!(c3 > 0.93, "CFD 3: {c3}");
        assert!((0.55..=0.85).contains(&c2), "CFD 2: {c2}");
        assert!(c1 < 0.30, "CFD 1: {c1}");
        // Monotone in CFD.
        assert!(c5 >= c3 && c3 > c2 && c2 > c1);
    }

    #[test]
    fn attacker_tracks_at_or_above_normal() {
        let cfg = ExpConfig::quick();
        let (normal, attacker) = cprr_at(&cfg, 2.0);
        assert!(
            attacker > normal - 0.1,
            "attacker {attacker} vs normal {normal}"
        );
    }
}
