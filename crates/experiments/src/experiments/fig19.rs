//! Fig. 19 — the headline §VI-B comparison on a 15 MHz band
//! (2458-2473 MHz): the default ZigBee design (4 channels at CFD 5 MHz,
//! fixed −77 dBm CCA) vs. the non-orthogonal DCN design (6 channels at
//! CFD 3 MHz, DCN on every network).
//!
//! Paper: ≈ 58 % overall throughput improvement, and each individual
//! DCN network also modestly outperforms a ZigBee one (≈ 5.4 %) because
//! CFD 5 MHz "cannot guarantee the orthogonality" under a fixed
//! threshold.

use crate::experiments::common;
use crate::report::{f1, pct, Report};
use crate::runner;
use crate::ExpConfig;
use nomc_sim::{NetworkBehavior, Scenario};
use nomc_topology::paper;
use nomc_topology::paper::paper_labels;
use nomc_units::Dbm;

/// Builds the ZigBee arm: 4 channels @ 5 MHz, fixed threshold, in the
/// same dense region as the DCN arm.
pub fn zigbee_scenario(seed: u64) -> Scenario {
    let plan = common::plan_15mhz_zigbee();
    let deployment =
        paper::vi_a_deployment(&mut common::topology_rng(seed), &plan, 2, Dbm::new(0.0));
    let mut b = Scenario::builder(deployment);
    b.seed(seed);
    b.build().expect("valid ZigBee scenario")
}

/// Builds the DCN arm: 6 channels @ 3 MHz, DCN everywhere.
pub fn dcn_scenario(seed: u64) -> Scenario {
    let plan = common::plan_15mhz_dcn();
    let deployment =
        paper::vi_a_deployment(&mut common::topology_rng(seed), &plan, 2, Dbm::new(0.0));
    let mut b = Scenario::builder(deployment);
    b.behavior_all(NetworkBehavior::dcn_default()).seed(seed);
    b.build().expect("valid DCN scenario")
}

/// Aggregate and per-network means for both arms.
pub struct Fig19Outcome {
    /// Per-network ZigBee throughputs (4 entries).
    pub zigbee: Vec<f64>,
    /// Per-network DCN throughputs (6 entries).
    pub dcn: Vec<f64>,
}

impl Fig19Outcome {
    /// Overall gain of the DCN design.
    pub fn overall_gain(&self) -> f64 {
        self.dcn.iter().sum::<f64>() / self.zigbee.iter().sum::<f64>() - 1.0
    }

    /// Mean per-network gain.
    pub fn per_network_gain(&self) -> f64 {
        let z = self.zigbee.iter().sum::<f64>() / self.zigbee.len() as f64;
        let d = self.dcn.iter().sum::<f64>() / self.dcn.len() as f64;
        d / z - 1.0
    }
}

/// Runs both arms.
pub fn outcome(cfg: &ExpConfig) -> Fig19Outcome {
    let z = runner::run_seeds(cfg, zigbee_scenario);
    let d = runner::run_seeds(cfg, dcn_scenario);
    Fig19Outcome {
        zigbee: (0..4)
            .map(|i| common::mean_network_throughput(&z, i))
            .collect(),
        dcn: (0..6)
            .map(|i| common::mean_network_throughput(&d, i))
            .collect(),
    }
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let o = outcome(cfg);
    let mut report = Report::new(
        "fig19",
        "ZigBee design (4ch @ 5 MHz, fixed CCA) vs DCN design (6ch @ 3 MHz) on 15 MHz",
        &["network", "ZigBee (pkt/s)", "DCN (pkt/s)"],
    );
    let zl = paper_labels(4);
    let dl = paper_labels(6);
    for i in 0..6 {
        report.row([
            dl[i].clone(),
            if i < 4 {
                format!("{} ({})", f1(o.zigbee[i]), zl[i])
            } else {
                "—".to_string()
            },
            f1(o.dcn[i]),
        ]);
    }
    report.row([
        "TOTAL".to_string(),
        f1(o.zigbee.iter().sum()),
        f1(o.dcn.iter().sum()),
    ]);
    report.note(format!(
        "overall gain {} (paper: ≈ 58 %); per-network gain {} (paper: ≈ 5.4 %)",
        pct(o.overall_gain()),
        pct(o.per_network_gain())
    ));
    report.note(
        "the ZigBee column lists its 4 networks against the DCN design's 6; \
         the ZigBee arm loses a little to non-orthogonal leakage at 5 MHz under \
         its fixed threshold, the DCN arm recovers it and adds two channels",
    );
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcn_design_wins_big() {
        let cfg = ExpConfig::quick();
        let o = outcome(&cfg);
        let gain = o.overall_gain();
        assert!(gain > 0.25, "overall gain {gain} too small (paper ≈ 0.58)");
        assert_eq!(o.zigbee.len(), 4);
        assert_eq!(o.dcn.len(), 6);
    }
}
