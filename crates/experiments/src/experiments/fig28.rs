//! Figs. 28-29 — packet recovery under severe inter-channel
//! interference (§VII-A).
//!
//! The link transmits at −22 dBm against 0 dBm neighbour-channel
//! interferers. Relaxing the CCA threshold now costs ≈ 20 % of packets
//! to CRC failures — but most failed packets carry only a small fraction
//! of error bits (Fig. 29: 87 % of CRC-failed packets have ≤ 10 % error
//! bits), so a PPR-style block recovery scheme rescues nearly all of
//! them (the "Recoverable" line of Fig. 28).

use crate::experiments::common;
use crate::report::{f1, pct, Report};
use crate::runner;
use crate::ExpConfig;
use nomc_recovery::{fraction_at_or_below, recoverable_by_fraction};
use nomc_sim::{metrics::ErrorRecord, Scenario};
use nomc_units::Dbm;

/// Link power for the severe-interference study.
pub const LINK_POWER_DBM: f64 = -22.0;

/// Builds the severe-interference scenario at one threshold.
pub fn scenario(threshold: f64, seed: u64) -> Scenario {
    let (mut sc, _) = common::fig5_scenario(Dbm::new(threshold), Dbm::new(LINK_POWER_DBM), seed);
    sc.record_error_positions = true;
    sc
}

/// One sweep point: sent / received / recoverable rates (pkt/s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPoint {
    /// CCA threshold (dBm).
    pub threshold: f64,
    /// Frames sent per second.
    pub sent: f64,
    /// Frames received (CRC-clean) per second.
    pub received: f64,
    /// Received plus block-recoverable CRC failures, per second.
    pub recoverable: f64,
}

/// Runs the sweep and collects the error records of the most relaxed
/// point for the Fig. 29 CDF.
pub fn sweep(cfg: &ExpConfig) -> (Vec<RecoveryPoint>, Vec<ErrorRecord>) {
    let link_idx = common::fig5_scenario(Dbm::new(-77.0), Dbm::new(LINK_POWER_DBM), 0).1;
    let mut points = Vec::new();
    let mut last_records: Vec<ErrorRecord> = Vec::new();
    for thr in common::cca_sweep() {
        let results = runner::run_seeds(cfg, |seed| scenario(thr, seed));
        let n = results.len() as f64;
        let (mut sent, mut received, mut recoverable) = (0.0, 0.0, 0.0);
        let mut records = Vec::new();
        for r in &results {
            let link = r
                .links
                .iter()
                .find(|l| l.network == link_idx)
                .expect("link present");
            sent += link.send_rate(r.measured);
            received += link.throughput(r.measured);
            let mut rescued = 0u64;
            for rec in &link.error_records {
                if recoverable_by_fraction(rec.error_fraction(), 0.25) {
                    rescued += 1;
                }
            }
            recoverable += link.throughput(r.measured) + rescued as f64 / r.measured.as_secs_f64();
            records.extend(link.error_records.iter().cloned());
        }
        points.push(RecoveryPoint {
            threshold: thr,
            sent: sent / n,
            received: received / n,
            recoverable: recoverable / n,
        });
        last_records = records;
    }
    (points, last_records)
}

/// Runs the experiment (Fig. 28 and Fig. 29 reports).
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let (points, records) = sweep(cfg);
    let mut fig28 = Report::new(
        "fig28",
        "Packet recovery under severe interference (link −22 dBm vs 0 dBm interferers)",
        &["CCA thr (dBm)", "sent/s", "received/s", "recoverable/s"],
    );
    for p in &points {
        fig28.row([
            f1(p.threshold),
            f1(p.sent),
            f1(p.received),
            f1(p.recoverable),
        ]);
    }
    let relaxed = points.last().expect("non-empty");
    fig28.note(format!(
        "at the most relaxed threshold the link loses {} of its packets to CRC \
         failures, but block recovery closes the gap to {} (paper: ~20 % loss, \
         'Recoverable' ≈ sent)",
        pct(1.0 - relaxed.received / relaxed.sent),
        pct(relaxed.recoverable / relaxed.sent)
    ));

    let fractions: Vec<f64> = records.iter().map(ErrorRecord::error_fraction).collect();
    let mut fig29 = Report::new(
        "fig29",
        "CDF of error-bit fraction over CRC-failed packets",
        &["error-bit fraction ≤", "cumulative fraction of packets"],
    );
    for x in [0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 1.0] {
        let y = fraction_at_or_below(&fractions, x).unwrap_or(0.0);
        fig29.row([format!("{x}"), pct(y)]);
    }
    fig29.note(format!(
        "paper's headline point: (0.1, 0.87) — measured: (0.1, {}) over {} \
         CRC-failed packets",
        pct(fraction_at_or_below(&fractions, 0.1).unwrap_or(0.0)),
        fractions.len()
    ));
    vec![fig28, fig29]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_closes_most_of_the_gap() {
        let cfg = ExpConfig::quick();
        let (points, records) = sweep(&cfg);
        let relaxed = points.last().unwrap();
        // Severe interference must actually cause losses…
        assert!(
            relaxed.received < 0.97 * relaxed.sent,
            "no loss to recover: sent {} received {}",
            relaxed.sent,
            relaxed.received
        );
        // …and recovery must close most of the gap.
        let gap = relaxed.sent - relaxed.received;
        let closed = relaxed.recoverable - relaxed.received;
        assert!(
            closed > 0.6 * gap,
            "recovery too weak: closed {closed} of {gap}"
        );
        assert!(!records.is_empty());
    }

    #[test]
    fn most_failures_have_few_error_bits() {
        let cfg = ExpConfig::quick();
        let (_, records) = sweep(&cfg);
        let fractions: Vec<f64> = records.iter().map(ErrorRecord::error_fraction).collect();
        let at10 = fraction_at_or_below(&fractions, 0.1).unwrap_or(0.0);
        assert!(
            at10 > 0.6,
            "paper reports 0.87 at 10% error bits; measured {at10}"
        );
    }
}
