//! Figs. 6-7 — CCA-threshold sweep without co-channel interference.
//!
//! One link surrounded by four neighbour-channel interferer networks
//! (Fig. 5 configuration): relaxing the link's CCA threshold converts
//! "backoff on tolerable neighbour-channel energy" into transmissions.
//! Fig. 6 plots the link's sent/received packets; Fig. 7 the overall
//! (all-network) throughput, which also rises — the concurrency is real,
//! not stolen from the neighbours.

use crate::experiments::common;
use crate::report::{f1, pct, Report};
use crate::runner;
use crate::ExpConfig;
use nomc_units::Dbm;

/// Measured point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// CCA threshold (dBm).
    pub threshold: f64,
    /// Link frames sent per second.
    pub sent: f64,
    /// Link frames received per second.
    pub received: f64,
    /// Link PRR.
    pub prr: f64,
    /// All-network throughput.
    pub overall: f64,
}

/// Runs the sweep at the given link power.
pub fn sweep(cfg: &ExpConfig, link_power: Dbm) -> Vec<SweepPoint> {
    common::cca_sweep()
        .into_iter()
        .map(|thr| {
            let results = runner::run_seeds(cfg, |seed| {
                common::fig5_scenario(Dbm::new(thr), link_power, seed).0
            });
            let link_idx = common::fig5_scenario(Dbm::new(thr), link_power, 0).1;
            let n = results.len() as f64;
            let mut sent = 0.0;
            let mut received = 0.0;
            let mut overall = 0.0;
            for r in &results {
                let link = r
                    .links
                    .iter()
                    .find(|l| l.network == link_idx)
                    .expect("link present");
                sent += link.send_rate(r.measured);
                received += link.throughput(r.measured);
                overall += r.total_throughput();
            }
            let (sent, received, overall) = (sent / n, received / n, overall / n);
            SweepPoint {
                threshold: thr,
                sent,
                received,
                prr: if sent > 0.0 { received / sent } else { 0.0 },
                overall,
            }
        })
        .collect()
}

/// Runs the experiment (returns the Fig. 6 and Fig. 7 reports).
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let points = sweep(cfg, Dbm::new(0.0));
    let mut fig6 = Report::new(
        "fig06",
        "Link sent/received vs CCA threshold (no co-channel interference)",
        &["CCA thr (dBm)", "sent/s", "received/s", "PRR"],
    );
    let mut fig7 = Report::new(
        "fig07",
        "Overall throughput vs the link's CCA threshold (no co-channel interference)",
        &["CCA thr (dBm)", "overall (pkt/s)"],
    );
    for p in &points {
        fig6.row([f1(p.threshold), f1(p.sent), f1(p.received), pct(p.prr)]);
        fig7.row([f1(p.threshold), f1(p.overall)]);
    }
    let default = points
        .iter()
        .find(|p| p.threshold.to_bits() == f64::to_bits(-77.0))
        .expect("default in sweep");
    let relaxed = points.last().expect("non-empty sweep");
    fig6.note(format!(
        "relaxing from the −77 dBm default to −20 dBm raises the link from \
         {:.0} to {:.0} pkt/s with PRR ≈ {} (paper: ~75 → ~150 pkt/s at ~100 % PRR)",
        default.sent,
        relaxed.sent,
        pct(relaxed.prr)
    ));
    fig6.note(
        "the flat region below −95 dBm reproduces the CC2420 CCA-threshold \
         register clamp; the ~50 pkt/s floor is the transmit-anyway \
         backoff-exhaustion rate (see CcaFailurePolicy)",
    );
    fig7.note(format!(
        "overall throughput grows from {:.0} to {:.0} pkt/s — the link's gain is \
         genuine concurrency, not throughput stolen from the neighbour channels \
         (paper Fig. 7: ~850 → ~1400)",
        points.first().expect("non-empty").overall,
        relaxed.overall
    ));
    vec![fig6, fig7]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxing_raises_link_and_overall() {
        let cfg = ExpConfig::quick();
        let points = sweep(&cfg, Dbm::new(0.0));
        let lo = points.iter().find(|p| p.threshold == -95.0).unwrap();
        let default = points.iter().find(|p| p.threshold == -77.0).unwrap();
        let hi = points.iter().find(|p| p.threshold == -30.0).unwrap();
        assert!(
            hi.sent > default.sent && default.sent > lo.sent,
            "sent not monotone-ish: {} / {} / {}",
            lo.sent,
            default.sent,
            hi.sent
        );
        assert!(hi.sent > 1.3 * default.sent, "gain too small");
        assert!(hi.prr > 0.95, "PRR {}", hi.prr);
        assert!(hi.overall > lo.overall, "overall should rise");
    }

    #[test]
    fn clamped_region_is_flat() {
        let cfg = ExpConfig::quick();
        let points = sweep(&cfg, Dbm::new(0.0));
        let a = points.iter().find(|p| p.threshold == -120.0).unwrap();
        let b = points.iter().find(|p| p.threshold == -100.0).unwrap();
        assert!(
            (a.sent - b.sent).abs() < 1.0,
            "clamp should make −120 and −100 identical: {} vs {}",
            a.sent,
            b.sent
        );
    }
}
