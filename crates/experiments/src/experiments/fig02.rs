//! Fig. 2 — the "uniqueness of 802.15.4" contrast (after Mishra et al.
//! for the 802.11b half): normalized link throughput under an
//! adjacent-channel interferer, as a function of channel separation.
//!
//! In 802.11b the receiver's correlator locks onto foreign-channel
//! packets out to three channels (15 MHz) away, deafening it to its own
//! traffic; in 802.15.4 a foreign-channel packet is never a sync target,
//! so throughput recovers as soon as the coupled energy is tolerable.

use crate::report::{bar, Report};
use crate::runner;
use crate::ExpConfig;
use nomc_phy::AcrCurve;
use nomc_radio::RadioConfig;
use nomc_sim::scenario::Propagation;
use nomc_sim::{NetworkBehavior, Scenario};
use nomc_topology::{paper, Deployment, LinkSpec, NetworkSpec, Point};
use nomc_units::{Dbm, Megahertz};

/// Channel separations to sweep, in 5 MHz "channel" steps (the 802.11b
/// grid Fig. 2 uses).
pub const SEPARATIONS_CH: [u32; 5] = [0, 1, 2, 3, 4];

/// Which PHY personality the run models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phy {
    Ieee802154,
    Dot11bLike,
}

fn deployment(separation_mhz: f64) -> Deployment {
    let base = Megahertz::new(2437.0);
    // Link of interest.
    let link = NetworkSpec::new(
        base,
        vec![LinkSpec::new(
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Dbm::new(0.0),
        )],
    );
    // Exactly-zero separation means co-channel; bit-test keeps the
    // comparison total (see DESIGN.md §8).
    if separation_mhz.abs().to_bits() == 0 {
        // Co-channel interferer: merge into the same network.
        let mut net = link;
        net.links.push(LinkSpec::new(
            Point::new(0.5, 3.0),
            Point::new(2.5, 3.0),
            Dbm::new(0.0),
        ));
        return Deployment::new(vec![net]);
    }
    let interferer = paper::standard_network(
        Point::new(1.0, 3.5),
        Megahertz::new(base.value() + separation_mhz),
        Dbm::new(0.0),
    );
    Deployment::new(vec![link, interferer])
}

fn scenario(phy: Phy, separation_mhz: f64, seed: u64) -> Scenario {
    let mut b = Scenario::builder(deployment(separation_mhz));
    b.behavior_all(NetworkBehavior::zigbee_default()).seed(seed);
    if phy == Phy::Dot11bLike {
        b.radio(RadioConfig::dot11b_like())
            .propagation(Propagation {
                acr: AcrCurve::dot11b_like(),
                ..Propagation::testbed_default()
            });
    }
    b.build().expect("valid Fig. 2 scenario")
}

fn link_throughput(cfg: &ExpConfig, phy: Phy, separation_mhz: f64) -> f64 {
    let results = runner::run_seeds(cfg, |seed| scenario(phy, separation_mhz, seed));
    results
        .iter()
        .map(|r| r.links[0].throughput(r.measured))
        .sum::<f64>()
        / results.len() as f64
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let mut report = Report::new(
        "fig02",
        "Uniqueness of 802.15.4: normalized throughput vs channel separation",
        &["separation (channels)", "802.11b-like", "", "802.15.4", ""],
    );
    // Baselines: an undisturbed link for each PHY.
    let base_wifi = link_throughput(cfg, Phy::Dot11bLike, 60.0);
    let base_zig = link_throughput(cfg, Phy::Ieee802154, 60.0);
    for &ch in &SEPARATIONS_CH {
        let sep = f64::from(ch) * 5.0;
        let wifi = link_throughput(cfg, Phy::Dot11bLike, sep) / base_wifi;
        let zig = link_throughput(cfg, Phy::Ieee802154, sep) / base_zig;
        report.row([
            ch.to_string(),
            format!("{wifi:.2}"),
            bar(wifi, 1.0, 20),
            format!("{zig:.2}"),
            bar(zig, 1.0, 20),
        ]);
    }
    report.note(
        "paper (Fig. 2, after Mishra et al.): 802.11b throughput stays depressed \
         out to ~3 channels (15 MHz) because receivers decode foreign-channel \
         packets; 802.15.4 recovers by 1-2 channels because foreign packets are \
         never sync targets",
    );
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot11b_suffers_farther_than_802154() {
        let cfg = ExpConfig::quick();
        let report = &run(&cfg)[0];
        // At 2-channel separation (10 MHz) the 802.15.4 link is healthy
        // while the 802.11b-like link is still visibly depressed.
        let row = &report.rows[2];
        let wifi: f64 = row[1].parse().unwrap();
        let zig: f64 = row[3].parse().unwrap();
        assert!(zig > 0.9, "802.15.4 at 10 MHz: {zig}");
        assert!(wifi < zig, "802.11b {wifi} vs 802.15.4 {zig}");
    }
}
