//! Fig. 8 — the CCA-threshold sweep *with* co-channel interference:
//! three extra links share the link-of-interest's channel. Relaxing the
//! threshold past the weakest co-channel competitor's received signal
//! strength stops deferring to it, and co-channel collisions destroy the
//! gain — the central constraint DCN's threshold rule encodes.

use crate::experiments::common;
use crate::report::{f1, pct, Report};
use crate::runner;
use crate::ExpConfig;
use nomc_phy::{LogDistance, PathLoss};
use nomc_units::Dbm;

/// The sweep with co-channel links present (link at 0 dBm).
pub fn sweep(cfg: &ExpConfig) -> Vec<(f64, f64, f64)> {
    common::cca_sweep()
        .into_iter()
        .map(|thr| {
            let results = runner::run_seeds(cfg, |seed| {
                common::fig8_scenario(Dbm::new(thr), Dbm::new(0.0), seed).0
            });
            let link_idx = common::fig8_scenario(Dbm::new(thr), Dbm::new(0.0), 0).1;
            let n = results.len() as f64;
            let mut sent = 0.0;
            let mut received = 0.0;
            for r in &results {
                let link = r
                    .links
                    .iter()
                    .find(|l| l.network == link_idx && l.link_in_network == 0)
                    .expect("link of interest present");
                sent += link.send_rate(r.measured);
                received += link.throughput(r.measured);
            }
            (thr, sent / n, received / n)
        })
        .collect()
}

/// Mean received signal strength (no shadowing) of the *weakest*
/// co-channel competitor at the link-of-interest's transmitter — the
/// paper's "Min RSS" vertical line.
pub fn min_cochannel_rss() -> Dbm {
    let (sc, link_idx) = common::fig8_scenario(Dbm::new(-77.0), Dbm::new(0.0), 0);
    let net = &sc.deployment.networks[link_idx];
    let our_tx = net.links[0].tx;
    let pl = LogDistance::indoor_2_4ghz();
    net.links[1..]
        .iter()
        .map(|l| l.tx_power - pl.loss(l.tx.distance_to(our_tx)))
        .reduce(Dbm::min)
        .expect("co-channel links exist")
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let points = sweep(cfg);
    let min_rss = min_cochannel_rss();
    let mut report = Report::new(
        "fig08",
        "Link throughput vs CCA threshold (with 3 co-channel links)",
        &["CCA thr (dBm)", "sent/s", "received/s", "PRR"],
    );
    for &(thr, sent, received) in &points {
        report.row([
            f1(thr),
            f1(sent),
            f1(received),
            pct(if sent > 0.0 { received / sent } else { 0.0 }),
        ]);
    }
    report.note(format!(
        "weakest co-channel competitor RSS at the sender ≈ {min_rss} — relaxing \
         past it introduces co-channel collisions and received throughput stops \
         improving / degrades (paper: 'relaxing CCA-threshold will not always \
         benefit the throughput')"
    ));
    vec![report]
}

/// The best received throughput and the received throughput at the most
/// relaxed threshold — used to assert the collapse.
pub fn peak_vs_relaxed(points: &[(f64, f64, f64)]) -> (f64, f64) {
    let peak = points.iter().map(|p| p.2).fold(0.0, f64::max);
    let relaxed = points.last().expect("non-empty").2;
    (peak, relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxing_past_min_rss_stops_helping() {
        let cfg = ExpConfig::quick();
        let points = sweep(&cfg);
        let (peak, relaxed) = peak_vs_relaxed(&points);
        // Unlike Fig. 6, fully relaxed is clearly below the peak.
        assert!(
            relaxed < 0.85 * peak,
            "expected co-channel collapse: peak {peak}, relaxed {relaxed}"
        );
        // And the peak is better than the over-conservative floor.
        let floor = points.first().unwrap().2;
        assert!(peak > 1.2 * floor, "peak {peak} vs floor {floor}");
    }

    #[test]
    fn min_rss_is_plausible() {
        let rss = min_cochannel_rss();
        assert!(
            (-70.0..=-45.0).contains(&rss.value()),
            "min co-channel RSS {rss}"
        );
    }
}
