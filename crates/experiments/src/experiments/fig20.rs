//! Figs. 20-21 — impact of one network's transmission power under DCN.
//!
//! N0 (the middle-frequency network of the §VI-B six-network line) sweeps
//! its power from −33 to −0.6 dBm while the others stay at −0.6 dBm.
//! Fig. 20: N0's throughput rises in two phases (SINR-limited below
//! ≈ −15 dBm, CCA-relaxation-limited above). Fig. 21: the other networks
//! are essentially unaffected — CFD 3 MHz tolerates the strong co-channel
//! power.

use crate::experiments::common;
use crate::report::{f1, Report};
use crate::runner;
use crate::ExpConfig;
use nomc_sim::{NetworkBehavior, Scenario};
use nomc_topology::paper;
use nomc_units::{Dbm, Megahertz};

/// N0's swept powers (dBm), as in the paper.
pub const POWERS: [f64; 5] = [-33.0, -15.0, -6.0, -3.0, -0.6];

/// Index of N0 in the 6-network plan (middle frequency).
pub fn n0_index() -> usize {
    common::plan_15mhz_dcn().middle_index()
}

/// Scenario with N0 at `power` and the other five networks at −0.6 dBm,
/// DCN everywhere.
pub fn scenario(power: f64, seed: u64) -> Scenario {
    let plan = common::plan_15mhz_dcn();
    let mut deployment = paper::line_deployment(&plan, Dbm::new(-0.6));
    let n0 = plan.middle_index();
    for link in &mut deployment.networks[n0].links {
        link.tx_power = Dbm::new(power);
    }
    debug_assert_eq!(deployment.networks[n0].frequency, Megahertz::new(2464.0));
    let mut b = Scenario::builder(deployment);
    b.behavior_all(NetworkBehavior::dcn_default()).seed(seed);
    b.build().expect("valid Fig. 20 scenario")
}

/// Runs the experiment (Fig. 20 and Fig. 21 reports).
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let n0 = n0_index();
    let mut fig20 = Report::new(
        "fig20",
        "Throughput of N0 vs its transmission power (others at −0.6 dBm, DCN)",
        &["N0 power (dBm)", "N0 throughput (pkt/s)"],
    );
    let mut fig21 = Report::new(
        "fig21",
        "Throughput of the other networks vs N0's transmission power",
        &["N0 power (dBm)", "others total (pkt/s)"],
    );
    for &p in &POWERS {
        let results = runner::run_seeds(cfg, |seed| scenario(p, seed));
        let n0_tput = common::mean_network_throughput(&results, n0);
        let others = common::mean_total_throughput(&results) - n0_tput;
        fig20.row([f1(p), f1(n0_tput)]);
        fig21.row([f1(p), f1(others)]);
    }
    fig20.note(
        "paper: below ≈ −15 dBm throughput is PRR-limited (better SINR with more \
         power); above it, PRR is already ~100 % and extra power only lets DCN \
         set a higher threshold (Eq. 4), buying more concurrency",
    );
    fig21.note(
        "paper: N0's high co-channel power does not trouble the neighbouring \
         channels — CFD 3 MHz tolerates it",
    );
    vec![fig20, fig21]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n0_throughput_rises_with_power() {
        let cfg = ExpConfig::quick();
        let n0 = n0_index();
        let lo =
            common::mean_network_throughput(&runner::run_seeds(&cfg, |s| scenario(-33.0, s)), n0);
        let hi =
            common::mean_network_throughput(&runner::run_seeds(&cfg, |s| scenario(-0.6, s)), n0);
        assert!(hi > 1.5 * lo, "lo {lo} hi {hi}");
    }

    #[test]
    fn others_unaffected_by_n0_power() {
        let cfg = ExpConfig::quick();
        let n0 = n0_index();
        let at = |p: f64| {
            let r = runner::run_seeds(&cfg, |s| scenario(p, s));
            common::mean_total_throughput(&r) - common::mean_network_throughput(&r, n0)
        };
        let weak = at(-33.0);
        let strong = at(-0.6);
        let ratio = strong / weak;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "others changed too much: {weak} -> {strong}"
        );
    }
}
