//! Ablations of the reproduction's own design choices (DESIGN.md §6) and
//! of DCN's parameters beyond what the paper sweeps.

use crate::experiments::{common, fig03};
use crate::report::{f1, pct, Report};
use crate::runner;
use crate::ExpConfig;
use nomc_core::DcnConfig;
use nomc_phy::Shadowing;
use nomc_radio::RadioConfig;
use nomc_sim::{Scenario, ThresholdMode};
use nomc_units::{Db, Dbm, SimDuration};

/// Ablation: per-packet shadowing σ. Without it the O-QPSK BER cliff
/// makes CPRR a step function of CFD; the paper's smooth measured curve
/// (Fig. 4) needs σ ≈ 4 dB.
pub fn shadowing(cfg: &ExpConfig) -> Report {
    let mut report = Report::new(
        "ablation_shadowing",
        "CPRR vs CFD under different shadowing σ",
        &["σ (dB)", "CPRR @ 1 MHz", "CPRR @ 2 MHz", "CPRR @ 3 MHz"],
    );
    for sigma in [0.0, 2.0, 4.0, 6.0] {
        let cprr = |cfd: f64| {
            let results = runner::run_seeds(cfg, |seed| {
                let mut sc = fig03::scenario(cfd, seed);
                sc.propagation.shadowing = Shadowing::new(Db::new(sigma));
                sc
            });
            results
                .iter()
                .map(|r| r.links[0].cprr().unwrap_or(0.0))
                .sum::<f64>()
                / results.len() as f64
        };
        report.row([f1(sigma), pct(cprr(1.0)), pct(cprr(2.0)), pct(cprr(3.0))]);
    }
    report.note(
        "σ = 0 produces a near-step CPRR transition; σ ≈ 4 dB reproduces the \
         paper's smooth 70 %/97 % intermediate points — evidence the measured \
         curve is the BER cliff convolved with per-packet fading",
    );
    report
}

/// Ablation: receiver capture model — the §III-B uniqueness claim as a
/// controlled experiment on identical geometry.
pub fn capture(cfg: &ExpConfig) -> Report {
    let mut report = Report::new(
        "ablation_capture",
        "802.15.4 vs 802.11b-like receiver on the same two-link collision setup",
        &["receiver model", "normal-link throughput (pkt/s)", "CPRR"],
    );
    for (name, dot11b) in [("802.15.4", false), ("802.11b-like", true)] {
        let results = runner::run_seeds(cfg, |seed| {
            let mut sc = fig03::scenario(3.0, seed);
            if dot11b {
                sc.radio = RadioConfig::dot11b_like();
                sc.propagation.acr = nomc_phy::AcrCurve::dot11b_like();
            }
            sc
        });
        let n = results.len() as f64;
        let tput = results
            .iter()
            .map(|r| r.links[0].throughput(r.measured))
            .sum::<f64>()
            / n;
        let cprr = results
            .iter()
            .map(|r| r.links[0].cprr().unwrap_or(0.0))
            .sum::<f64>()
            / n;
        report.row([name.to_string(), f1(tput), pct(cprr)]);
    }
    report.note(
        "with an 802.11b-like receiver the victim loses packets both to \
         correlator capture by the foreign channel and to the flatter channel \
         filter — non-orthogonal concurrency only works for 802.15.4",
    );
    report
}

/// Ablation: DCN's Case-II window `T_U`.
pub fn t_update(cfg: &ExpConfig) -> Report {
    let mut report = Report::new(
        "ablation_tu",
        "DCN Case-II window T_U on the §VI-A CFD 3 MHz deployment",
        &["T_U (s)", "overall throughput (pkt/s)"],
    );
    for tu in [1u64, 3, 10] {
        let results = runner::run_seeds(cfg, |seed| {
            let mut sc = common::vi_a_scenario(3.0, 5, &[], seed);
            let dcn_cfg = DcnConfig {
                t_update: SimDuration::from_secs(tu),
                ..DcnConfig::paper_default()
            };
            for b in &mut sc.behaviors {
                b.threshold = ThresholdMode::Dcn(dcn_cfg);
            }
            sc
        });
        report.row([tu.to_string(), f1(common::mean_total_throughput(&results))]);
    }
    report.note(
        "shorter T_U adapts (and relaxes) faster; very long T_U keeps the \
         threshold pinned near the initialization value — the paper's 3 s is \
         a reasonable middle",
    );
    report
}

/// Ablation: a safety margin below the derived threshold.
pub fn margin(cfg: &ExpConfig) -> Report {
    let mut report = Report::new(
        "ablation_margin",
        "Safety margin below DCN's derived threshold (§VI-A CFD 3 MHz)",
        &["margin (dB)", "overall throughput (pkt/s)", "overall PRR"],
    );
    for m in [0.0, 2.0, 5.0] {
        let results = runner::run_seeds(cfg, |seed| {
            let mut sc = common::vi_a_scenario(3.0, 5, &[], seed);
            let dcn_cfg = DcnConfig {
                safety_margin: Db::new(m),
                ..DcnConfig::paper_default()
            };
            for b in &mut sc.behaviors {
                b.threshold = ThresholdMode::Dcn(dcn_cfg);
            }
            sc
        });
        let tput = common::mean_total_throughput(&results);
        let prr = results
            .iter()
            .map(|r| r.total_prr().unwrap_or(0.0))
            .sum::<f64>()
            / results.len() as f64;
        report.row([f1(m), f1(tput), pct(prr)]);
    }
    report.note(
        "a margin trades concurrency (throughput) for co-channel safety (PRR); \
         the paper uses none",
    );
    report
}

/// Ablation: the channel-access-failure policy, isolated on a channel
/// that is always busy.
pub fn failure_policy(cfg: &ExpConfig) -> Report {
    let mut report = Report::new(
        "ablation_failure_policy",
        "CCA-exhaustion policy on a permanently-busy channel",
        &["policy", "link sent (pkt/s)"],
    );
    for (name, policy) in [
        (
            "transmit-anyway",
            nomc_mac::CcaFailurePolicy::TransmitAnyway,
        ),
        ("drop-packet", nomc_mac::CcaFailurePolicy::DropPacket),
    ] {
        let results = runner::run_seeds(cfg, |seed| {
            let (mut sc, link_idx) = common::fig5_scenario(Dbm::new(-150.0), Dbm::new(0.0), seed);
            // Unclamp the register so −150 dBm really is below noise.
            sc.radio.cca_threshold_range = (Dbm::new(-150.0), Dbm::new(0.0));
            sc.radio.rssi = nomc_radio::rssi::RssiRegister::ideal();
            sc.behaviors[link_idx].mac.on_failure = policy;
            sc
        });
        let link_idx = common::fig5_scenario(Dbm::new(-150.0), Dbm::new(0.0), 0).1;
        let sent = results
            .iter()
            .map(|r| {
                r.links
                    .iter()
                    .find(|l| l.network == link_idx)
                    .expect("link")
                    .send_rate(r.measured)
            })
            .sum::<f64>()
            / results.len() as f64;
        report.row([name.to_string(), f1(sent)]);
    }
    report.note(
        "the ~50 pkt/s transmit-anyway floor is what the paper's Fig. 6 shows \
         at over-conservative thresholds; a strictly standard-compliant stack \
         (drop) would send nothing there",
    );
    report
}

/// Ablation: the CC2420 CCA-threshold register clamp.
pub fn clamp(cfg: &ExpConfig) -> Report {
    let mut report = Report::new(
        "ablation_clamp",
        "CCA-threshold register clamp at a −120 dBm requested threshold",
        &["register model", "link sent (pkt/s)"],
    );
    for (name, clamped) in [("CC2420 clamp [−95, 0]", true), ("unclamped", false)] {
        let results = runner::run_seeds(cfg, |seed| {
            let (mut sc, _) = common::fig5_scenario(Dbm::new(-120.0), Dbm::new(0.0), seed);
            if !clamped {
                sc.radio.cca_threshold_range = (Dbm::new(-150.0), Dbm::new(0.0));
                sc.radio.rssi = nomc_radio::rssi::RssiRegister::ideal();
            }
            sc
        });
        let link_idx = common::fig5_scenario(Dbm::new(-120.0), Dbm::new(0.0), 0).1;
        let sent = results
            .iter()
            .map(|r| {
                r.links
                    .iter()
                    .find(|l| l.network == link_idx)
                    .expect("link")
                    .send_rate(r.measured)
            })
            .sum::<f64>()
            / results.len() as f64;
        report.row([name.to_string(), f1(sent)]);
    }
    report.note(
        "with the register clamp, −120 dBm behaves exactly like −95 dBm \
         (the flat left side of Figs. 6-8); without it the noise floor keeps \
         CCA busy forever and only forced transmissions leave",
    );
    report
}

/// Extension: the §VII-C oracle interference classifier as an upper
/// bound on DCN (on the §VI-A deployment, where weak co-channel
/// competitors bound DCN's threshold).
pub fn oracle(cfg: &ExpConfig) -> Report {
    let mut report = Report::new(
        "ablation_oracle",
        "§VII-C extension: perfect co-/inter-channel classification at CCA time",
        &["scheme", "overall throughput (pkt/s)"],
    );
    type Arm = (&'static str, fn(u64) -> Scenario);
    let arms: [Arm; 3] = [
        ("fixed −77 dBm", |seed| {
            common::vi_a_scenario(3.0, 5, &[], seed)
        }),
        ("DCN", |seed| {
            common::vi_a_scenario(3.0, 5, &[0, 1, 2, 3, 4], seed)
        }),
        ("DCN + oracle classifier", |seed| {
            let mut sc = common::vi_a_scenario(3.0, 5, &[], seed);
            for b in &mut sc.behaviors {
                b.threshold = ThresholdMode::DcnOracle(DcnConfig::paper_default());
            }
            sc
        }),
    ];
    for (name, build) in arms {
        let results = runner::run_seeds(cfg, build);
        report.row([
            name.to_string(),
            f1(common::mean_total_throughput(&results)),
        ]);
    }
    report.note(
        "the oracle ignores inter-channel energy entirely at CCA time, \
         upper-bounding what the paper's future-work interference classifier \
         could achieve",
    );
    report
}

/// Extension: acknowledged (ZigBee reliable unicast) transfers on the
/// §VI-A deployment — do DCN's concurrency gains survive ACK traffic?
pub fn acknowledged(cfg: &ExpConfig) -> Report {
    let mut report = Report::new(
        "ablation_ack",
        "Acknowledged transfers on the §VI-A CFD 3 MHz deployment",
        &[
            "scheme",
            "unique deliveries (pkt/s)",
            "retransmission rate",
            "abandoned rate",
        ],
    );
    for (name, dcn) in [("fixed −77 dBm + ACK", false), ("DCN + ACK", true)] {
        let results = runner::run_seeds(cfg, |seed| {
            let dcn_on: Vec<usize> = if dcn { (0..5).collect() } else { Vec::new() };
            let mut sc = common::vi_a_scenario(3.0, 5, &dcn_on, seed);
            for b in &mut sc.behaviors {
                b.mac.acknowledged = true;
            }
            sc
        });
        let n = results.len() as f64;
        let delivered = common::mean_total_throughput(&results);
        let (mut retrans, mut abandoned, mut sent) = (0.0, 0.0, 0.0);
        for r in &results {
            for l in &r.links {
                retrans += l.retransmissions as f64 / n;
                abandoned += l.abandoned as f64 / n;
                sent += l.sent as f64 / n;
            }
        }
        report.row([
            name.to_string(),
            f1(delivered),
            pct(retrans / sent.max(1.0)),
            pct(abandoned / sent.max(1.0)),
        ]);
    }
    report.note(
        "the ACK/retry machinery costs airtime, but DCN's concurrency gain          carries over to reliable unicast; retransmissions stay moderate          because inter-channel interference rarely corrupts frames at CFD 3",
    );
    report
}

/// Runs all ablations.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    vec![
        shadowing(cfg),
        capture(cfg),
        t_update(cfg),
        margin(cfg),
        failure_policy(cfg),
        clamp(cfg),
        oracle(cfg),
        acknowledged(cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shadowing_sharpens_the_transition() {
        let cfg = ExpConfig::quick();
        let report = shadowing(&cfg);
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        // σ = 0 (row 0): CPRR is a near-step function of CFD — each CFD
        // sits at an extreme.
        let cprr2_sigma0 = parse(&report.rows[0][2]);
        assert!(
            !(20.0..=90.0).contains(&cprr2_sigma0),
            "σ=0 CPRR@2MHz should be extreme, got {cprr2_sigma0}"
        );
        // σ = 4 (row 2): the paper's smooth intermediate value appears.
        let cprr2_sigma4 = parse(&report.rows[2][2]);
        assert!(
            (40.0..=90.0).contains(&cprr2_sigma4),
            "σ=4 CPRR@2MHz should be intermediate, got {cprr2_sigma4}"
        );
    }

    #[test]
    fn dot11b_receiver_is_much_worse() {
        let cfg = ExpConfig::quick();
        let report = capture(&cfg);
        let t154: f64 = report.rows[0][1].parse().unwrap();
        let t11b: f64 = report.rows[1][1].parse().unwrap();
        assert!(
            t11b < 0.7 * t154,
            "802.11b-like {t11b} should lose badly to 802.15.4 {t154}"
        );
    }

    #[test]
    fn drop_policy_sends_nothing_when_blocked() {
        let cfg = ExpConfig::quick();
        let report = failure_policy(&cfg);
        let anyway: f64 = report.rows[0][1].parse().unwrap();
        let drop: f64 = report.rows[1][1].parse().unwrap();
        assert!(anyway > 20.0, "transmit-anyway floor {anyway}");
        assert!(drop < 5.0, "drop policy should send ~0, got {drop}");
    }

    #[test]
    fn ack_mode_preserves_dcn_gain() {
        let cfg = ExpConfig::quick();
        let report = acknowledged(&cfg);
        let fixed: f64 = report.rows[0][1].parse().unwrap();
        let dcn: f64 = report.rows[1][1].parse().unwrap();
        assert!(
            dcn > 1.05 * fixed,
            "DCN+ACK {dcn} should beat fixed+ACK {fixed}"
        );
    }

    #[test]
    fn oracle_at_least_matches_dcn() {
        let cfg = ExpConfig::quick();
        let report = oracle(&cfg);
        let dcn: f64 = report.rows[1][1].parse().unwrap();
        let oracle: f64 = report.rows[2][1].parse().unwrap();
        assert!(
            oracle > 0.95 * dcn,
            "oracle {oracle} should not lose to DCN {dcn}"
        );
    }
}
