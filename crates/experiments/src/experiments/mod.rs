//! One module per paper table/figure, plus ablations.
//!
//! Every module exposes `run(cfg: &ExpConfig) -> Vec<Report>`; modules
//! that regenerate several related figures from the same runs (e.g.
//! Figs. 6-7, Figs. 16-18) return several reports.

pub mod ablations;
pub mod cases;
pub mod common;
pub mod extensions;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig06;
pub mod fig08;
pub mod fig09;
pub mod fig12;
pub mod fig14;
pub mod fig16;
pub mod fig19;
pub mod fig20;
pub mod fig28;
pub mod fig30;
pub mod table1;

use crate::report::Report;
use crate::ExpConfig;

/// Everything, in paper order — the `all_experiments` binary and the
/// EXPERIMENTS.md generator iterate this.
pub fn all(cfg: &ExpConfig) -> Vec<Report> {
    let mut out = Vec::new();
    out.extend(fig01::run(cfg));
    out.extend(fig02::run(cfg));
    out.extend(fig03::run(cfg));
    out.extend(fig04::run(cfg));
    out.extend(fig06::run(cfg));
    out.extend(fig08::run(cfg));
    out.extend(fig09::run(cfg));
    out.extend(fig12::run(cfg));
    out.extend(fig14::run(cfg));
    out.extend(fig16::run(cfg));
    out.extend(fig19::run(cfg));
    out.extend(fig20::run(cfg));
    out.extend(table1::run(cfg));
    out.extend(cases::run(cfg));
    out.extend(fig28::run(cfg));
    out.extend(fig30::run(cfg));
    out.extend(extensions::run(cfg));
    out.extend(ablations::run(cfg));
    out
}
