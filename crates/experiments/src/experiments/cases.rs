//! Figs. 25-27 — the three general network configurations (§VI-B-4),
//! each compared across three designs:
//!
//! * **ZigBee** — 4 channels @ 5 MHz, fixed −77 dBm threshold,
//! * **w/o DCN** — 6 channels @ 3 MHz, fixed threshold (non-orthogonal
//!   channels alone),
//! * **with DCN** — 6 channels @ 3 MHz, DCN everywhere.
//!
//! Per-node powers are random in [−22, 0] dBm, per the paper. Paper
//! triples (pkt/s): Case I 983/1326/1521, Case II 980/1382/1526,
//! Case III 983/1282/1361.

use crate::experiments::common;
use crate::report::{f1, pct, Report};
use crate::runner;
use crate::ExpConfig;
use nomc_sim::{NetworkBehavior, Scenario};
use nomc_topology::spectrum::ChannelPlan;
use nomc_topology::{paper, Deployment};

/// Which §VI-B-4 topology case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Case {
    /// All networks in one interfering region (Fig. 22).
    DenseRegion,
    /// Networks separated into per-room clusters (Fig. 23).
    Clustered,
    /// Random topology over a large region (Fig. 24).
    Random,
}

impl Case {
    /// Paper figure id.
    pub fn fig_id(self) -> &'static str {
        match self {
            Case::DenseRegion => "fig25",
            Case::Clustered => "fig26",
            Case::Random => "fig27",
        }
    }

    /// Short name.
    pub fn name(self) -> &'static str {
        match self {
            Case::DenseRegion => "Case I (one interfering region)",
            Case::Clustered => "Case II (separated clusters)",
            Case::Random => "Case III (random topology)",
        }
    }

    /// Paper triple (ZigBee, w/o DCN, with DCN).
    pub fn paper_triple(self) -> (f64, f64, f64) {
        match self {
            Case::DenseRegion => (983.0, 1326.0, 1521.0),
            Case::Clustered => (980.0, 1382.0, 1526.0),
            Case::Random => (983.0, 1282.0, 1361.0),
        }
    }

    fn deployment(self, plan: &ChannelPlan, seed: u64) -> Deployment {
        let mut rng = common::topology_rng(seed);
        let powers = (-22.0, 0.0);
        match self {
            Case::DenseRegion => paper::case1_deployment(&mut rng, plan, 2, powers),
            Case::Clustered => paper::case2_deployment(&mut rng, plan, 2, powers),
            Case::Random => paper::case3_deployment(&mut rng, plan, 2, powers),
        }
    }
}

/// The three designs compared in each case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Design {
    /// 4 channels @ 5 MHz, fixed threshold.
    Zigbee,
    /// 6 channels @ 3 MHz, fixed threshold.
    NonOrthogonalFixed,
    /// 6 channels @ 3 MHz, DCN.
    Dcn,
}

/// Builds the scenario for one (case, design, seed).
pub fn scenario(case: Case, design: Design, seed: u64) -> Scenario {
    let plan = match design {
        Design::Zigbee => common::plan_15mhz_zigbee(),
        _ => common::plan_15mhz_dcn(),
    };
    let mut b = Scenario::builder(case.deployment(&plan, seed));
    if design == Design::Dcn {
        b.behavior_all(NetworkBehavior::dcn_default());
    }
    b.seed(seed);
    b.build().expect("valid case scenario")
}

/// Mean total throughput of one (case, design).
pub fn throughput(cfg: &ExpConfig, case: Case, design: Design) -> f64 {
    let results = runner::run_seeds(cfg, |seed| scenario(case, design, seed));
    common::mean_total_throughput(&results)
}

/// Runs one case's comparison.
pub fn run_case(cfg: &ExpConfig, case: Case) -> Report {
    let zigbee = throughput(cfg, case, Design::Zigbee);
    let fixed = throughput(cfg, case, Design::NonOrthogonalFixed);
    let dcn = throughput(cfg, case, Design::Dcn);
    let (pz, pf, pd) = case.paper_triple();
    let mut report = Report::new(
        case.fig_id(),
        &format!("{} — ZigBee vs w/o DCN vs with DCN", case.name()),
        &["design", "measured (pkt/s)", "paper (pkt/s)"],
    );
    report.row(["ZigBee (4ch@5MHz)".to_string(), f1(zigbee), f1(pz)]);
    report.row(["w/o DCN (6ch@3MHz)".to_string(), f1(fixed), f1(pf)]);
    report.row(["with DCN (6ch@3MHz)".to_string(), f1(dcn), f1(pd)]);
    report.note(format!(
        "DCN vs ZigBee: {} (paper {}); DCN vs w/o DCN (the relaxing gain): {} (paper {})",
        pct(dcn / zigbee - 1.0),
        pct(pd / pz - 1.0),
        pct(dcn / fixed - 1.0),
        pct(pd / pf - 1.0)
    ));
    report
}

/// Runs all three cases.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    vec![
        run_case(cfg, Case::DenseRegion),
        run_case(cfg, Case::Clustered),
        run_case(cfg, Case::Random),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcn_beats_zigbee_in_every_case() {
        let cfg = ExpConfig::quick();
        for case in [Case::DenseRegion, Case::Clustered, Case::Random] {
            let z = throughput(&cfg, case, Design::Zigbee);
            let d = throughput(&cfg, case, Design::Dcn);
            assert!(d > 1.15 * z, "{}: DCN {d} vs ZigBee {z}", case.name());
        }
    }

    #[test]
    fn relaxing_gain_largest_in_dense_case() {
        let cfg = ExpConfig::quick();
        let gain = |case| {
            throughput(&cfg, case, Design::Dcn) / throughput(&cfg, case, Design::NonOrthogonalFixed)
        };
        let dense = gain(Case::DenseRegion);
        let random = gain(Case::Random);
        assert!(
            dense > random - 0.02,
            "dense gain {dense} should exceed random-topology gain {random}"
        );
    }
}
