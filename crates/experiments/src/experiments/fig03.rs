//! Fig. 3 — the collision-generation methodology: an "attacker" paced at
//! full channel occupancy guarantees that every packet of the normal
//! sender collides. This module renders a short timeline as text,
//! demonstrating the mechanism the CPRR experiments (Fig. 4) rely on.

use crate::experiments::common;
use crate::report::Report;
use crate::ExpConfig;
use nomc_sim::{engine, NetworkBehavior, Scenario, TrafficModel};
use nomc_topology::paper;
use nomc_units::{Dbm, Megahertz, SimDuration};

/// Builds the two-link collision scenario at the given CFD.
pub fn scenario(cfd: f64, seed: u64) -> Scenario {
    let (deployment, normal_idx, attacker_idx) =
        paper::fig4_deployment(Megahertz::new(2460.0), Megahertz::new(cfd), Dbm::new(0.0));
    let mut b = Scenario::builder(deployment);
    let frame = nomc_radio::frame::FrameSpec::default_data_frame();
    b.behavior(
        normal_idx,
        NetworkBehavior {
            traffic: TrafficModel::Interval(SimDuration::from_millis(9)),
            ..NetworkBehavior::attacker(SimDuration::from_millis(9))
        },
    )
    .behavior(
        attacker_idx,
        NetworkBehavior::attacker(common::attacker_interval(frame)),
    )
    .record_timeline(true)
    .seed(seed);
    b.build().expect("valid Fig. 3/4 scenario")
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let mut sc = scenario(3.0, cfg.seeds[0]);
    sc.duration = SimDuration::from_millis(2200);
    sc.warmup = SimDuration::from_millis(2000);
    let result = engine::run(&sc);
    let mut report = Report::new(
        "fig03",
        "Collision timeline: attacker occupies the adjacent channel continuously",
        &["t_start (ms)", "t_end (ms)", "link", "collided", "outcome"],
    );
    for rec in result.timeline.iter().take(14) {
        report.row([
            format!("{:.2}", rec.start.as_secs_f64() * 1e3),
            format!("{:.2}", rec.end.as_secs_f64() * 1e3),
            if rec.link == 0 { "normal" } else { "attacker" }.to_string(),
            if rec.collided { "yes" } else { "no" }.to_string(),
            format!("{:?}", rec.outcome),
        ]);
    }
    let normal_collided = result
        .timeline
        .iter()
        .filter(|r| r.link == 0)
        .filter(|r| r.collided)
        .count();
    let normal_total = result.timeline.iter().filter(|r| r.link == 0).count();
    report.note(format!(
        "{normal_collided}/{normal_total} normal-sender packets collided in the \
         window — the attacker's pacing makes collisions unconditional, as the \
         paper's Fig. 3 illustrates"
    ));
    vec![report]
}

/// Used by tests and Fig. 4: fraction of normal-sender packets collided.
pub fn collision_coverage(result: &nomc_sim::SimResult) -> f64 {
    let l = &result.links[0];
    if l.sent == 0 {
        return 0.0;
    }
    l.collided as f64 / l.sent as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner;

    #[test]
    fn every_normal_packet_collides() {
        let cfg = ExpConfig::quick();
        let results = runner::run_seeds(&cfg, |s| scenario(3.0, s));
        for r in &results {
            assert!(
                collision_coverage(r) > 0.99,
                "collision coverage {}",
                collision_coverage(r)
            );
        }
    }

    #[test]
    fn timeline_report_renders() {
        let cfg = ExpConfig::quick();
        let report = &run(&cfg)[0];
        assert!(!report.rows.is_empty());
        assert!(report.rows.iter().any(|r| r[2] == "attacker"));
    }
}
