//! Figs. 16-18 — DCN on *all* five §VI-A networks, CFD = 2 and 3 MHz.
//!
//! Fig. 16 (CFD 2) and Fig. 17 (CFD 3) show per-network throughput with
//! and without the scheme: every network improves, the middle networks
//! most. Fig. 18 aggregates: CFD 3 + DCN is the best configuration and
//! clearly beats CFD 2 + DCN (paper: ≈ 1300 pkt/s ≈ 1.37×).

use crate::experiments::common;
use crate::report::{f1, pct, Report};
use crate::runner;
use crate::ExpConfig;
use nomc_topology::paper::paper_labels;

/// Per-network with/without throughputs for one CFD.
#[derive(Debug, Clone, PartialEq)]
pub struct CfdOutcome {
    /// CFD in MHz.
    pub cfd: f64,
    /// Per-network throughput without DCN (deployment order).
    pub without: Vec<f64>,
    /// Per-network throughput with DCN on all networks.
    pub with: Vec<f64>,
}

impl CfdOutcome {
    /// Aggregate throughput without DCN.
    pub fn total_without(&self) -> f64 {
        self.without.iter().sum()
    }

    /// Aggregate throughput with DCN.
    pub fn total_with(&self) -> f64 {
        self.with.iter().sum()
    }
}

/// Runs one CFD arm with and without DCN on all 5 networks.
pub fn outcome(cfg: &ExpConfig, cfd: f64) -> CfdOutcome {
    let base = runner::run_seeds(cfg, |seed| common::vi_a_scenario(cfd, 5, &[], seed));
    let all: Vec<usize> = (0..5).collect();
    let dcn = runner::run_seeds(cfg, |seed| common::vi_a_scenario(cfd, 5, &all, seed));
    CfdOutcome {
        cfd,
        without: (0..5)
            .map(|i| common::mean_network_throughput(&base, i))
            .collect(),
        with: (0..5)
            .map(|i| common::mean_network_throughput(&dcn, i))
            .collect(),
    }
}

/// Runs the experiment (Fig. 16, Fig. 17, Fig. 18 reports).
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let o2 = outcome(cfg, 2.0);
    let o3 = outcome(cfg, 3.0);
    let labels = paper_labels(5);
    let mut reports = Vec::new();
    for o in [&o2, &o3] {
        let id = if o.cfd.to_bits() == f64::to_bits(2.0) {
            "fig16"
        } else {
            "fig17"
        };
        let mut r = Report::new(
            id,
            &format!(
                "Per-network throughput, DCN on all networks (CFD = {} MHz)",
                o.cfd
            ),
            &["network", "w/o DCN", "with DCN", "gain"],
        );
        for (i, label) in labels.iter().enumerate() {
            r.row([
                label.clone(),
                f1(o.without[i]),
                f1(o.with[i]),
                pct(o.with[i] / o.without[i] - 1.0),
            ]);
        }
        r.note(
            "paper: every network improves when all run DCN; middle-frequency \
             networks (more neighbour-channel interference) gain most",
        );
        reports.push(r);
    }
    let mut fig18 = Report::new(
        "fig18",
        "Overall throughput vs CFD (DCN on all networks)",
        &["CFD (MHz)", "w/o DCN", "with DCN", "DCN gain"],
    );
    for o in [&o2, &o3] {
        fig18.row([
            f1(o.cfd),
            f1(o.total_without()),
            f1(o.total_with()),
            pct(o.total_with() / o.total_without() - 1.0),
        ]);
    }
    fig18.note(format!(
        "CFD 3 + DCN / CFD 2 + DCN = {:.2}× (paper: 1.37×) — CFD 3 is selected \
         for the non-orthogonal design",
        o3.total_with() / o2.total_with()
    ));
    reports.push(fig18);
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcn_improves_every_network_at_cfd3() {
        let cfg = ExpConfig::quick();
        let o = outcome(&cfg, 3.0);
        for i in 0..5 {
            assert!(
                o.with[i] > 0.95 * o.without[i],
                "network {i} regressed: {} -> {}",
                o.without[i],
                o.with[i]
            );
        }
        assert!(o.total_with() > 1.1 * o.total_without());
    }

    #[test]
    fn cfd3_beats_cfd2_with_dcn() {
        let cfg = ExpConfig::quick();
        let o2 = outcome(&cfg, 2.0);
        let o3 = outcome(&cfg, 3.0);
        assert!(
            o3.total_with() > 1.1 * o2.total_with(),
            "CFD3 {} vs CFD2 {}",
            o3.total_with(),
            o2.total_with()
        );
    }
}
