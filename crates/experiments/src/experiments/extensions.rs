//! Beyond the paper: energy accounting, the analytic channel planner,
//! and online recovery-demand detection (§VII-A future work).

use crate::experiments::{common, fig19};
use crate::report::{f1, pct, Report};
use crate::runner;
use crate::ExpConfig;
use nomc_phy::planning::CprrModel;
use nomc_recovery::{AdaptiveRecovery, FrameOutcome};
use nomc_sim::metrics::TxOutcome;
use nomc_sim::{energy, SimResult};
use nomc_units::{Db, Dbm, Megahertz};

/// Radio energy per delivered packet: ZigBee design vs DCN design.
///
/// On CC2420-class radios TX draws *less* current than RX, so the
/// figure of merit is energy per *delivered* packet: DCN delivers more
/// packets from the same always-on radios.
pub fn energy_comparison(cfg: &ExpConfig) -> Report {
    let mut report = Report::new(
        "ext_energy",
        "Radio energy per delivered packet: ZigBee vs DCN design (15 MHz band)",
        &[
            "design",
            "delivered (pkt/s)",
            "radio energy (mJ/s/node)",
            "energy per delivered pkt (mJ)",
        ],
    );
    let frame = nomc_radio::frame::FrameSpec::default_data_frame();
    let mut add = |name: &str, results: &[SimResult]| {
        let n = results.len() as f64;
        let mut delivered = 0.0; // pkt/s, averaged over seeds
        let mut energy_rate = 0.0; // mJ/s summed over senders, averaged
        let mut senders_per_run = 0.0;
        for r in results {
            delivered += r.total_throughput() / n;
            senders_per_run += r.mac_stats.len() as f64 / n;
            for (stats, &power) in r.mac_stats.iter().zip(&r.tx_powers) {
                let e = energy::transmitter_energy(stats, frame.airtime(), power, r.measured);
                energy_rate += e.total_mj / r.measured.as_secs_f64() / n;
            }
        }
        report.row([
            name.to_string(),
            f1(delivered),
            f1(energy_rate / senders_per_run.max(1.0)),
            format!("{:.3}", energy_rate / delivered),
        ]);
    };
    add(
        "ZigBee (4ch@5MHz)",
        &runner::run_seeds(cfg, fig19::zigbee_scenario),
    );
    add(
        "DCN (6ch@3MHz)",
        &runner::run_seeds(cfg, fig19::dcn_scenario),
    );
    report.note(
        "with always-on CSMA receivers, per-node radio power is nearly constant \
         (RX-dominated), so DCN's extra deliveries directly cut the energy cost \
         per delivered packet",
    );
    report
}

/// Validates the analytic CPRR planner against the simulated Fig. 4.
pub fn planner_validation(cfg: &ExpConfig) -> Report {
    let mut report = Report::new(
        "ext_planner",
        "Analytic CPRR model vs simulated Fig. 4",
        &["CFD (MHz)", "analytic CPRR", "simulated CPRR"],
    );
    // Fig. 4's geometry puts the interferer ≈ 9 dB above the signal.
    let model = CprrModel {
        power_delta: Db::new(-9.1),
        ..CprrModel::calibrated_default()
    };
    for cfd in [1.0, 2.0, 3.0, 4.0, 5.0] {
        let analytic = model.predicted_cprr(Megahertz::new(cfd));
        let (simulated, _) = crate::experiments::fig04::cprr_at(cfg, cfd);
        report.row([f1(cfd), pct(analytic), pct(simulated)]);
    }
    if let Some(cfd) = model.min_cfd_for_cprr(0.95) {
        report.note(format!(
            "the planner's smallest CFD for ≥95 % CPRR is {cfd} — recovering the \
             paper's 3 MHz design choice without running a testbed"
        ));
    }
    report
}

/// §VII-A future work: online recovery-demand detection on the severe-
/// interference link.
pub fn adaptive_recovery(cfg: &ExpConfig) -> Report {
    let mut report = Report::new(
        "ext_adaptive_recovery",
        "Online recovery-demand detection (severe-interference link)",
        &[
            "link power (dBm)",
            "CRC-failure rate",
            "frames with recovery active",
            "decision flips",
        ],
    );
    for power in [-22.0, -6.0] {
        let results = runner::run_seeds(cfg, |seed| {
            let (mut sc, _) = common::fig5_scenario(Dbm::new(-20.0), Dbm::new(power), seed);
            sc.record_timeline = true;
            sc
        });
        let link_idx = common::fig5_scenario(Dbm::new(-20.0), Dbm::new(power), 0).1;
        let n = results.len() as f64;
        let mut fail_rate = 0.0;
        let mut active_fraction = 0.0;
        let mut flips = 0.0;
        for r in &results {
            // Feed the link's frame outcomes, in order, to the detector.
            let link_global = r
                .links
                .iter()
                .position(|l| l.network == link_idx)
                .expect("link present");
            let mut detector = AdaptiveRecovery::practical_default();
            let mut active = 0u64;
            let mut total = 0u64;
            let mut failures = 0u64;
            for rec in r.timeline.iter().filter(|t| t.link == link_global) {
                let outcome = match rec.outcome {
                    TxOutcome::CrcFailed => FrameOutcome::CrcFailed,
                    _ => FrameOutcome::Ok,
                };
                if outcome == FrameOutcome::CrcFailed {
                    failures += 1;
                }
                if detector.observe(outcome) {
                    active += 1;
                }
                total += 1;
            }
            fail_rate += failures as f64 / total.max(1) as f64;
            active_fraction += active as f64 / total.max(1) as f64;
            flips += detector.switch_count() as f64;
        }
        report.row([
            f1(power),
            pct(fail_rate / n),
            pct(active_fraction / n),
            f1(flips / n),
        ]);
    }
    report.note(
        "the detector keeps recovery on for the damaged −22 dBm link and (near-)\
         off for the healthy −6 dBm one, with stable decisions — the \"online \
         dynamic recovery scheme\" the paper sketches as future work",
    );
    report
}

/// Channel-assignment study: three co-located *pairs* of networks in
/// separate clusters. The naive plan-order assignment hands adjacent
/// channels to co-located networks; the optimizer pushes each hot pair
/// to a large CFD.
pub fn assignment_study(cfg: &ExpConfig) -> Report {
    use nomc_phy::{AcrCurve, LogDistance};
    use nomc_sim::Scenario;
    use nomc_topology::assignment::{apply_assignment, optimize_assignment};
    use nomc_topology::placement::{sample_link, Region};
    use nomc_topology::{Deployment, LinkSpec, NetworkSpec, Point};

    fn clustered_pairs(seed: u64) -> Deployment {
        let plan = common::plan_15mhz_dcn();
        let mut rng = common::topology_rng(seed);
        let cluster_centers = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 9.0),
        ];
        let networks = plan
            .channels()
            .iter()
            .enumerate()
            .map(|(i, &freq)| {
                let c = cluster_centers[i / 2];
                let region = Region::new(c.offset(-1.5, -1.5), 3.0, 3.0);
                let links = (0..2)
                    .map(|_| {
                        let (tx, rx) = sample_link(&mut rng, &region, 2.0);
                        LinkSpec::new(tx, rx, Dbm::new(0.0))
                    })
                    .collect();
                NetworkSpec::new(freq, links)
            })
            .collect();
        Deployment::new(networks)
    }

    fn scenario(optimized: bool, seed: u64) -> Scenario {
        let mut deployment = clustered_pairs(seed);
        if optimized {
            let assignment = optimize_assignment(
                &deployment.networks,
                &common::plan_15mhz_dcn(),
                &LogDistance::indoor_2_4ghz(),
                &AcrCurve::cc2420_calibrated(),
            );
            apply_assignment(&mut deployment.networks, &assignment);
        }
        let mut b = Scenario::builder(deployment);
        b.behavior_all(nomc_sim::NetworkBehavior::dcn_default())
            .seed(seed);
        b.build().expect("valid assignment scenario")
    }

    let mut report = Report::new(
        "ext_assignment",
        "Interference-aware channel assignment (3 clusters × 2 co-located networks)",
        &["assignment", "overall throughput (pkt/s)", "overall PRR"],
    );
    for (name, optimized) in [("plan order (naive)", false), ("optimized", true)] {
        let results = runner::run_seeds(cfg, |seed| scenario(optimized, seed));
        let tput = common::mean_total_throughput(&results);
        let prr = results
            .iter()
            .map(|r| r.total_prr().unwrap_or(0.0))
            .sum::<f64>()
            / results.len() as f64;
        report.row([name.to_string(), f1(tput), pct(prr)]);
    }
    report.note(
        "the optimizer separates each co-located pair by ≥ 9 MHz instead of          the naive 3 MHz, trading spectral adjacency against physical          adjacency — the deployment-time decision the paper leaves to the          operator",
    );
    report
}

/// Convergecast study: three 3-hop chains delivering to a sink, under
/// three channel policies — the data-collection workload the paper's
/// introduction motivates, with TMCP-style per-chain partitioning (the
/// related work's approach) as the orthogonal baseline.
pub fn convergecast_study(cfg: &ExpConfig) -> Report {
    use nomc_sim::{Scenario, TrafficModel};
    use nomc_topology::tree::{build, Chain, ChannelPolicy};
    use nomc_topology::Point;

    fn chains() -> Vec<nomc_topology::tree::Chain> {
        (0..6)
            .map(|i| {
                let angle = i as f64 * std::f64::consts::TAU / 6.0;
                Chain::straight(
                    Point::new(6.0 * angle.cos(), 6.0 * angle.sin()),
                    Point::ORIGIN,
                    3,
                    Dbm::new(0.0),
                )
            })
            .collect()
    }

    fn scenario(
        policy: ChannelPolicy,
        channels: Vec<Megahertz>,
        dcn: bool,
        seed: u64,
    ) -> (Scenario, Vec<usize>) {
        let cc = build(&chains(), &channels, policy);
        let mut b = Scenario::builder(cc.deployment.clone());
        if dcn {
            b.behavior_all(nomc_sim::NetworkBehavior::dcn_default());
        }
        for &(link, from) in &cc.forwards {
            b.link_traffic(link, TrafficModel::Forward { from_link: from });
        }
        b.seed(seed);
        (b.build().expect("valid convergecast"), cc.sink_links)
    }

    fn sink_rate(
        cfg: &ExpConfig,
        policy: ChannelPolicy,
        channels: Vec<Megahertz>,
        dcn: bool,
    ) -> f64 {
        let sinks = scenario(policy, channels.clone(), dcn, 0).1;
        let results =
            runner::run_seeds(cfg, |seed| scenario(policy, channels.clone(), dcn, seed).0);
        results
            .iter()
            .map(|r| {
                sinks
                    .iter()
                    .map(|&l| r.links[l].throughput(r.measured))
                    .sum::<f64>()
            })
            .sum::<f64>()
            / results.len() as f64
    }

    let mut report = Report::new(
        "ext_convergecast",
        "Convergecast to a sink (6 chains × 3 hops, 15 MHz band): channel policies",
        &["policy", "sink deliveries (pkt/s)"],
    );
    let single = sink_rate(
        cfg,
        ChannelPolicy::SingleChannel,
        vec![Megahertz::new(2458.0)],
        false,
    );
    // TMCP-style: only 4 ZigBee-grid channels fit the band, so six
    // chains must share (cycling assignment).
    let tmcp = sink_rate(
        cfg,
        ChannelPolicy::PerChain,
        common::plan_15mhz_zigbee().channels().to_vec(),
        false,
    );
    // Non-orthogonal: 6 channels at 3 MHz — every chain gets its own —
    // with DCN handling the inter-channel leakage.
    let dcn = sink_rate(
        cfg,
        ChannelPolicy::PerChain,
        common::plan_15mhz_dcn().channels().to_vec(),
        true,
    );
    report.row(["single channel".to_string(), f1(single)]);
    report.row([
        "per-chain, 4 ch @ 5 MHz (TMCP-style; chains share)".to_string(),
        f1(tmcp),
    ]);
    report.row([
        "per-chain, 6 ch @ 3 MHz + DCN (one each)".to_string(),
        f1(dcn),
    ]);
    report.note(
        "channel scarcity is TMCP's own complaint: with only 4 orthogonal-ish \
         channels, two chain pairs must share and collide; the non-orthogonal \
         plan gives every chain a private channel and DCN absorbs the leakage \
         — the paper's §I argument, replayed on its motivating workload",
    );
    report
}

/// Fixed fault-study timeline: the fault instant. The timeline is
/// deliberately *not* taken from [`ExpConfig`] — recovery is measured
/// against absolute fault times, so the run layout is part of the
/// experiment definition.
pub const FAULT_AT_SECS: u64 = 6;
/// Crash-to-reboot outage of the killed DCN sender.
pub const REBOOT_AFTER_MILLIS: u64 = 400;
/// Length of the pulsed-jammer window starting at the fault instant.
pub const JAM_WINDOW_MILLIS: u64 = 1500;
/// Jammer pulse period; the duty cycle sets the on-time within it.
pub const JAM_PERIOD_MILLIS: u64 = 250;
/// Total run length (warmup 2 s, fault at 6 s, tail to 12 s).
pub const FAULT_RUN_SECS: u64 = 12;
/// Recovery-metric bin width.
pub const RECOVERY_BIN_MILLIS: u64 = 250;

/// The fault-study scenario: two DCN networks 3 MHz apart (the golden-
/// trace topology) with a hardened adjustor (silence watchdog armed),
/// where link 0's sender is killed at the fault instant and rebooted
/// `REBOOT_AFTER_MILLIS` later while a wideband jammer pulses on its
/// channel at `duty_pct` % for `JAM_WINDOW_MILLIS`.
pub fn fault_recovery_scenario(duty_pct: u64, seed: u64) -> nomc_sim::Scenario {
    use nomc_sim::{CrashFault, FaultPlan, JammerFault, NetworkBehavior, Scenario, ThresholdMode};
    use nomc_topology::{paper, spectrum::ChannelPlan};
    use nomc_units::{SimDuration, SimTime};

    let plan = ChannelPlan::with_count(common::band_start(), Megahertz::new(3.0), 2);
    let jam_freq = plan
        .channels()
        .first()
        .copied()
        .expect("plan has 2 channels");
    let fault_at = SimTime::ZERO + SimDuration::from_secs(FAULT_AT_SECS);
    let mut faults = FaultPlan {
        crashes: vec![CrashFault {
            node: 0,
            at: fault_at,
            down_for: SimDuration::from_millis(REBOOT_AFTER_MILLIS),
        }],
        ..FaultPlan::default()
    };
    let on = SimDuration::from_millis(JAM_PERIOD_MILLIS * duty_pct.min(100) / 100);
    if !on.is_zero() {
        for k in 0..JAM_WINDOW_MILLIS / JAM_PERIOD_MILLIS {
            faults.jammers.push(JammerFault {
                frequency: jam_freq,
                // Well above the ZigBee default CCA threshold (−77 dBm)
                // yet ~20 dB under the short links' received signal, so
                // frames that do go out still decode.
                power: Dbm::new(-70.0),
                at: fault_at + SimDuration::from_millis(k * JAM_PERIOD_MILLIS),
                duration: on,
            });
        }
    }
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    b.behavior_all(NetworkBehavior {
        threshold: ThresholdMode::Dcn(nomc_core::DcnConfig::hardened()),
        ..NetworkBehavior::zigbee_default()
    })
    .duration(nomc_units::SimDuration::from_secs(FAULT_RUN_SECS))
    .warmup(nomc_units::SimDuration::from_secs(2))
    .seed(seed)
    .faults(faults);
    b.build()
        .expect("builder-validated fault-recovery scenario")
}

/// Runs one fault-recovery scenario with its meter attached and returns
/// the meter (bins + report) alongside the result.
pub fn measure_fault_recovery(sc: &nomc_sim::Scenario) -> (nomc_sim::RecoveryMeter, SimResult) {
    use nomc_units::{SimDuration, SimTime};
    let mut meter = nomc_sim::RecoveryMeter::new(
        0,
        SimDuration::from_millis(RECOVERY_BIN_MILLIS),
        SimTime::ZERO + SimDuration::from_secs(FAULT_AT_SECS),
        sc.warmup,
    );
    let result = nomc_sim::engine::run_with(sc, &mut [&mut meter]);
    (meter, result)
}

/// Robustness study: kill-and-reboot one DCN sender while a wideband
/// jammer pulses on its channel, sweeping the jammer duty cycle.
/// Reports the pre-fault baseline, the dip floor, the time until
/// goodput is back at ≥ 90 % of baseline, and how far the CCA threshold
/// strayed while recovering.
pub fn fault_recovery(cfg: &ExpConfig) -> Report {
    let mut report = Report::new(
        "ext_fault_recovery",
        "Fault injection: sender kill+reboot under a pulsed jammer (recovery vs duty cycle)",
        &[
            "jammer duty",
            "baseline (pkt/bin)",
            "dip (pkt/bin)",
            "recover (ms)",
            "thr excursion (dB)",
        ],
    );
    for duty in [0u64, 25, 50, 75] {
        let n = cfg.seeds.len() as f64;
        let mut baseline = 0.0;
        let mut dip = 0.0;
        // Exact integer-nanosecond accumulation; converted to ms once
        // for display (see DESIGN.md §8 on unit-safety fixes).
        let mut recover_total = nomc_units::SimDuration::ZERO;
        let mut recovered = 0usize;
        let mut excursion = 0.0f64;
        for &seed in &cfg.seeds {
            let sc = fault_recovery_scenario(duty, seed);
            let (meter, _) = measure_fault_recovery(&sc);
            let r = meter.report();
            baseline += r.baseline_per_bin / n;
            dip += r.dip_per_bin as f64 / n;
            if let Some(t) = r.time_to_recover {
                recover_total += t;
                recovered += 1;
            }
            excursion = excursion.max(r.threshold_excursion.value());
        }
        let recover = if recovered == cfg.seeds.len() {
            f1(recover_total.as_secs_f64() * 1e3 / recovered.max(1) as f64)
        } else {
            format!("unrecovered ({recovered}/{})", cfg.seeds.len())
        };
        report.row([
            format!("{duty} %"),
            f1(baseline),
            f1(dip),
            recover,
            f1(excursion),
        ]);
    }
    report.note(
        "the rebooted sender re-enters the DCN initializing phase and re-learns \
         the (jammed) channel; goodput dips while the jammer pulses but returns \
         to the pre-fault baseline without operator action — graceful \
         degradation from the same Eq. 2 machinery that set the threshold",
    );
    report
}

/// Runs all extension studies.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    vec![
        energy_comparison(cfg),
        planner_validation(cfg),
        adaptive_recovery(cfg),
        assignment_study(cfg),
        convergecast_study(cfg),
        fault_recovery(cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcn_wins_on_energy_per_packet() {
        let cfg = ExpConfig::quick();
        let report = energy_comparison(&cfg);
        let zig: f64 = report.rows[0][3].parse().unwrap();
        let dcn: f64 = report.rows[1][3].parse().unwrap();
        assert!(dcn < zig, "DCN {dcn} mJ/pkt should beat ZigBee {zig}");
    }

    #[test]
    fn analytic_model_tracks_simulation() {
        let cfg = ExpConfig::quick();
        let report = planner_validation(&cfg);
        for row in &report.rows {
            let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap() / 100.0;
            let analytic = parse(&row[1]);
            let simulated = parse(&row[2]);
            assert!(
                (analytic - simulated).abs() < 0.25,
                "CFD {}: analytic {analytic} vs simulated {simulated}",
                row[0]
            );
        }
    }

    #[test]
    fn nonorthogonal_convergecast_wins_under_channel_scarcity() {
        let cfg = ExpConfig::quick();
        let report = convergecast_study(&cfg);
        let single: f64 = report.rows[0][1].parse().unwrap();
        let tmcp: f64 = report.rows[1][1].parse().unwrap();
        let dcn: f64 = report.rows[2][1].parse().unwrap();
        assert!(
            tmcp > 1.2 * single,
            "TMCP {tmcp} should beat single {single}"
        );
        assert!(
            dcn > 1.1 * tmcp,
            "6-channel DCN {dcn} should beat 4-channel TMCP {tmcp}"
        );
    }

    #[test]
    fn optimized_assignment_does_not_lose() {
        let cfg = ExpConfig::quick();
        let report = assignment_study(&cfg);
        let naive: f64 = report.rows[0][1].parse().unwrap();
        let optimized: f64 = report.rows[1][1].parse().unwrap();
        assert!(
            optimized > 0.97 * naive,
            "optimized {optimized} vs naive {naive}"
        );
    }

    #[test]
    fn kill_reboot_under_half_duty_jammer_recovers_within_two_t_i() {
        use nomc_units::SimDuration;
        let sc = fault_recovery_scenario(50, 42);
        let (meter, result) = measure_fault_recovery(&sc);
        let r = meter.report();
        assert!(r.baseline_per_bin > 0.0, "no pre-fault goodput");
        assert!(
            (r.dip_per_bin as f64) < r.baseline_per_bin,
            "the fault must actually dent goodput (dip {} vs baseline {})",
            r.dip_per_bin,
            r.baseline_per_bin
        );
        // ISSUE acceptance: time-to-recover ≤ 2·T_I = 2 s.
        let recover = r.time_to_recover.expect("goodput must recover in-run");
        assert!(
            recover <= SimDuration::from_secs(2),
            "recovered only after {recover}"
        );
        // …and the post-fault steady state (the last 2 s, past both the
        // jam window and the re-initializing phase) is within 10 % of
        // the pre-fault baseline.
        let bins = meter.bins();
        let tail: Vec<u64> = bins.iter().rev().take(8).copied().collect();
        assert_eq!(tail.len(), 8, "run long enough for a steady tail");
        let tail_mean = tail.iter().sum::<u64>() as f64 / tail.len() as f64;
        assert!(
            (tail_mean - r.baseline_per_bin).abs() <= 0.1 * r.baseline_per_bin,
            "post-fault {} pkt/bin vs pre-fault {} pkt/bin",
            tail_mean,
            r.baseline_per_bin
        );
        // The killed node's adjustor really went through reboot re-init.
        assert!(result.events > 0);
    }

    #[test]
    fn detector_separates_damaged_from_healthy() {
        let cfg = ExpConfig::quick();
        let report = adaptive_recovery(&cfg);
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let damaged_active = parse(&report.rows[0][2]);
        let healthy_active = parse(&report.rows[1][2]);
        assert!(
            damaged_active > healthy_active + 20.0,
            "damaged {damaged_active}% vs healthy {healthy_active}%"
        );
    }
}
