//! Shared scenario builders for the experiment modules.

use nomc_rngcore::SeedableRng;
use nomc_sim::rng::Xoshiro256StarStar;
use nomc_sim::{NetworkBehavior, Scenario, SimResult, ThresholdMode};
use nomc_topology::spectrum::{ChannelPlan, FitPolicy};
use nomc_topology::{paper, Deployment};
use nomc_units::{Dbm, Megahertz, SimDuration};

/// Start of the paper's §VI-B band: 2458 MHz.
pub fn band_start() -> Megahertz {
    Megahertz::new(2458.0)
}

/// The paper's §VI-B DCN plan: 6 channels at CFD = 3 MHz over 15 MHz.
pub fn plan_15mhz_dcn() -> ChannelPlan {
    ChannelPlan::fit(
        band_start(),
        Megahertz::new(15.0),
        Megahertz::new(3.0),
        FitPolicy::InclusiveEnds,
    )
    .expect("valid plan")
}

/// The paper's §VI-B ZigBee baseline: 4 channels at CFD = 5 MHz.
pub fn plan_15mhz_zigbee() -> ChannelPlan {
    ChannelPlan::fit(
        band_start(),
        Megahertz::new(15.0),
        Megahertz::new(5.0),
        FitPolicy::InclusiveEnds,
    )
    .expect("valid plan")
}

/// The §VII-B wide-band plan: 7 channels at CFD = 3 MHz over 18 MHz.
pub fn plan_18mhz() -> ChannelPlan {
    ChannelPlan::fit(
        band_start(),
        Megahertz::new(18.0),
        Megahertz::new(3.0),
        FitPolicy::InclusiveEnds,
    )
    .expect("valid plan")
}

/// Topology RNG derived from a run seed — topology and event randomness
/// stay decoupled so "same topology, new noise" comparisons are possible.
pub fn topology_rng(seed: u64) -> Xoshiro256StarStar {
    Xoshiro256StarStar::seed_from_u64(seed.wrapping_mul(0x9E37_79B9) ^ 0xD0C5)
}

/// §VI-A deployment: `count` networks at `cfd` in the dense shared
/// region, fixed 0 dBm, 2 links per network.
pub fn vi_a_deployment(cfd: f64, count: usize, seed: u64) -> Deployment {
    let plan = ChannelPlan::with_count(band_start(), Megahertz::new(cfd), count);
    paper::vi_a_deployment(&mut topology_rng(seed), &plan, 2, Dbm::new(0.0))
}

/// A §VI-A scenario with DCN enabled on the networks in `dcn_on`.
///
/// The §VI-A sweeps only read aggregate counters, so per-packet
/// bit-error records are opted out to keep the many-network runs lean.
pub fn vi_a_scenario(cfd: f64, count: usize, dcn_on: &[usize], seed: u64) -> Scenario {
    let mut b = Scenario::builder(vi_a_deployment(cfd, count, seed));
    for &i in dcn_on {
        b.behavior(i, NetworkBehavior::dcn_default());
    }
    b.seed(seed).record_error_records(false);
    b.build().expect("valid §VI-A scenario")
}

/// The §VI-B controlled six-network deployment (line, 4.5 m spacing,
/// 0 dBm) used for Fig. 19-21 power/fairness studies and Table I.
pub fn band15_line_deployment() -> Deployment {
    paper::line_deployment(&plan_15mhz_dcn(), Dbm::new(0.0))
}

/// Scenario over [`band15_line_deployment`] with DCN on every network.
///
/// As with [`vi_a_scenario`], bit-error records are opted out — the
/// Fig. 19-21 / Table I studies only use aggregate counters.
pub fn band15_line_dcn(seed: u64) -> Scenario {
    let mut b = Scenario::builder(band15_line_deployment());
    b.behavior_all(NetworkBehavior::dcn_default())
        .seed(seed)
        .record_error_records(false);
    b.build().expect("valid §VI-B scenario")
}

/// A Fig. 5 scenario (single link + 4 neighbour-channel interferers at
/// CFD ±3/±6 MHz) with the link's CCA threshold fixed to `threshold` and
/// the link transmitting at `link_power`.
///
/// Returns the scenario and the link's network index.
pub fn fig5_scenario(threshold: Dbm, link_power: Dbm, seed: u64) -> (Scenario, usize) {
    let (deployment, link_idx) = paper::fig5_deployment(
        Megahertz::new(2464.0),
        Megahertz::new(3.0),
        link_power,
        Dbm::new(0.0),
    );
    let mut b = Scenario::builder(deployment);
    b.behavior(
        link_idx,
        NetworkBehavior {
            threshold: ThresholdMode::Fixed(threshold),
            ..NetworkBehavior::zigbee_default()
        },
    )
    .seed(seed);
    (b.build().expect("valid Fig. 5 scenario"), link_idx)
}

/// Same as [`fig5_scenario`] but with three extra co-channel links
/// (the paper's Fig. 8 configuration).
pub fn fig8_scenario(threshold: Dbm, link_power: Dbm, seed: u64) -> (Scenario, usize) {
    let (deployment, link_idx) = paper::fig8_deployment(
        Megahertz::new(2464.0),
        Megahertz::new(3.0),
        link_power,
        Dbm::new(0.0),
    );
    let mut b = Scenario::builder(deployment);
    b.behavior(
        link_idx,
        NetworkBehavior {
            threshold: ThresholdMode::Fixed(threshold),
            ..NetworkBehavior::zigbee_default()
        },
    )
    .seed(seed);
    (b.build().expect("valid Fig. 8 scenario"), link_idx)
}

/// The CCA-threshold sweep grid used by Figs. 6-10 and 28 (dBm).
pub fn cca_sweep() -> Vec<f64> {
    vec![
        -120.0, -110.0, -100.0, -95.0, -90.0, -85.0, -80.0, -77.0, -74.0, -70.0, -65.0, -60.0,
        -55.0, -50.0, -45.0, -40.0, -30.0, -20.0,
    ]
}

/// Mean throughput of network `index` over several results.
pub fn mean_network_throughput(results: &[SimResult], index: usize) -> f64 {
    results
        .iter()
        .map(|r| r.network_throughput(index))
        .sum::<f64>()
        / results.len() as f64
}

/// Mean total throughput over several results.
pub fn mean_total_throughput(results: &[SimResult]) -> f64 {
    results.iter().map(SimResult::total_throughput).sum::<f64>() / results.len() as f64
}

/// Attacker pacing: one frame per airtime + 300 µs — "1 packet each
/// 3 ms"-style full channel occupancy for the default frame.
pub fn attacker_interval(frame: nomc_radio::frame::FrameSpec) -> SimDuration {
    frame.airtime() + SimDuration::from_micros(300)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_have_paper_counts() {
        assert_eq!(plan_15mhz_dcn().channels().len(), 6);
        assert_eq!(plan_15mhz_zigbee().channels().len(), 4);
        assert_eq!(plan_18mhz().channels().len(), 7);
    }

    #[test]
    fn via_scenario_wires_dcn() {
        let sc = vi_a_scenario(3.0, 5, &[2], 1);
        assert!(matches!(sc.behaviors[2].threshold, ThresholdMode::Dcn(_)));
        assert!(matches!(sc.behaviors[0].threshold, ThresholdMode::Fixed(_)));
        assert_eq!(sc.deployment.networks.len(), 5);
    }

    #[test]
    fn via_topology_is_seed_stable() {
        assert_eq!(vi_a_deployment(3.0, 5, 7), vi_a_deployment(3.0, 5, 7));
        assert_ne!(vi_a_deployment(3.0, 5, 7), vi_a_deployment(3.0, 5, 8));
    }

    #[test]
    fn fig5_scenario_shape() {
        let (sc, idx) = fig5_scenario(Dbm::new(-77.0), Dbm::new(0.0), 1);
        assert_eq!(sc.deployment.networks.len(), 5);
        assert_eq!(sc.deployment.networks[idx].links.len(), 1);
        let (sc8, idx8) = fig8_scenario(Dbm::new(-77.0), Dbm::new(0.0), 1);
        assert_eq!(sc8.deployment.networks[idx8].links.len(), 4);
    }

    #[test]
    fn sweep_covers_paper_range() {
        let sweep = cca_sweep();
        assert_eq!(*sweep.first().unwrap(), -120.0);
        assert_eq!(*sweep.last().unwrap(), -20.0);
        assert!(sweep.contains(&-77.0));
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
    }
}
