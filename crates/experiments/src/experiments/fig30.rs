//! Fig. 30 — wider bandwidth (§VII-B): 18 MHz supporting 7 channels at
//! CFD 3 MHz. More neighbour-channel pressure means more concurrency for
//! DCN to unlock; the paper measures a 13 % relaxing gain (vs 10 % on
//! 12 MHz) with the middle networks improving most.

use crate::experiments::common;
use crate::report::{f1, pct, Report};
use crate::runner;
use crate::ExpConfig;
use nomc_sim::{NetworkBehavior, Scenario};
use nomc_topology::paper;
use nomc_topology::paper::paper_labels;
use nomc_units::Dbm;

/// Builds the 7-network scenario (line geometry, 0 dBm).
pub fn scenario(dcn: bool, seed: u64) -> Scenario {
    let plan = common::plan_18mhz();
    let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
    if dcn {
        b.behavior_all(NetworkBehavior::dcn_default());
    }
    b.seed(seed);
    b.build().expect("valid Fig. 30 scenario")
}

/// Per-network with/without throughputs.
pub fn outcome(cfg: &ExpConfig) -> (Vec<f64>, Vec<f64>) {
    let base = runner::run_seeds(cfg, |s| scenario(false, s));
    let dcn = runner::run_seeds(cfg, |s| scenario(true, s));
    (
        (0..7)
            .map(|i| common::mean_network_throughput(&base, i))
            .collect(),
        (0..7)
            .map(|i| common::mean_network_throughput(&dcn, i))
            .collect(),
    )
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let (without, with) = outcome(cfg);
    let labels = paper_labels(7);
    let mut report = Report::new(
        "fig30",
        "18 MHz band, 7 networks at CFD 3 MHz: throughput gain from DCN",
        &["network", "w/o DCN", "with DCN", "gain"],
    );
    for i in 0..7 {
        report.row([
            labels[i].clone(),
            f1(without[i]),
            f1(with[i]),
            pct(with[i] / without[i] - 1.0),
        ]);
    }
    let t0: f64 = without.iter().sum();
    let t1: f64 = with.iter().sum();
    report.row(["TOTAL".into(), f1(t0), f1(t1), pct(t1 / t0 - 1.0)]);
    report.note(
        "paper: ≈ 13 % overall relaxing gain on 18 MHz vs ≈ 10 % on 12 MHz — \
         wider bands create more neighbour-channel interference for DCN to \
         convert into concurrency; middle networks gain most",
    );
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcn_gains_overall_and_middle_most() {
        let cfg = ExpConfig::quick();
        let (without, with) = outcome(&cfg);
        let t0: f64 = without.iter().sum();
        let t1: f64 = with.iter().sum();
        assert!(t1 > 1.03 * t0, "no overall gain: {t0} -> {t1}");
        // The middle network's gain beats the average edge gain.
        let mid_gain = with[3] / without[3] - 1.0;
        let edge_gain = 0.5 * (with[0] / without[0] + with[6] / without[6]) - 1.0;
        assert!(
            mid_gain > edge_gain - 0.03,
            "middle {mid_gain} vs edge {edge_gain}"
        );
    }
}
