//! Figs. 14-15 — applying DCN *only* to the middle-frequency network N0
//! of the five-network §VI-A deployment, at CFD = 2 and 3 MHz.
//!
//! Paper: N0 improves ≈ 27 % at both CFDs (reaching ≈ 250 pkt/s at
//! CFD 3 — near the orthogonal bound), while the other four networks
//! lose ≈ 5 % to the extra inter-channel interference N0 now generates.

use crate::experiments::common;
use crate::report::{f1, pct, Report};
use crate::runner;
use crate::ExpConfig;

/// Index of N0 (middle frequency) in the 5-network §VI-A deployment.
pub const N0: usize = 2;

/// Measured outcome of one CFD arm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arm {
    /// N0 throughput without DCN anywhere.
    pub n0_without: f64,
    /// N0 throughput with DCN on N0 only.
    pub n0_with: f64,
    /// Sum of the other networks without DCN anywhere.
    pub others_without: f64,
    /// Sum of the other networks with DCN on N0 only.
    pub others_with: f64,
}

/// Runs one CFD arm.
pub fn arm(cfg: &ExpConfig, cfd: f64) -> Arm {
    let base = runner::run_seeds(cfg, |seed| common::vi_a_scenario(cfd, 5, &[], seed));
    let dcn = runner::run_seeds(cfg, |seed| common::vi_a_scenario(cfd, 5, &[N0], seed));
    let n0_without = common::mean_network_throughput(&base, N0);
    let n0_with = common::mean_network_throughput(&dcn, N0);
    Arm {
        n0_without,
        n0_with,
        others_without: common::mean_total_throughput(&base) - n0_without,
        others_with: common::mean_total_throughput(&dcn) - n0_with,
    }
}

/// Runs the experiment (returns the Fig. 14 and Fig. 15 reports).
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let arms: Vec<(f64, Arm)> = [2.0, 3.0].iter().map(|&c| (c, arm(cfg, c))).collect();
    let mut fig14 = Report::new(
        "fig14",
        "Throughput of N0 with DCN applied only on N0",
        &["CFD (MHz)", "w/o DCN", "with DCN", "gain", "paper gain"],
    );
    let mut fig15 = Report::new(
        "fig15",
        "Throughput of the other four networks (DCN only on N0)",
        &["CFD (MHz)", "w/o DCN", "with DCN", "change", "paper change"],
    );
    for &(cfd, a) in &arms {
        fig14.row([
            f1(cfd),
            f1(a.n0_without),
            f1(a.n0_with),
            pct(a.n0_with / a.n0_without - 1.0),
            "≈ +27%".to_string(),
        ]);
        fig15.row([
            f1(cfd),
            f1(a.others_without),
            f1(a.others_with),
            pct(a.others_with / a.others_without - 1.0),
            "≈ −5%".to_string(),
        ]);
    }
    fig14.note(
        "the dense shared-region §VI-A geometry suppresses the fixed-threshold \
         baseline more than the paper's testbed did, so the measured N0 gain \
         exceeds the paper's 27 % — the direction and the who-wins ordering hold",
    );
    fig15.note(
        "N0's extra transmissions cost its neighbours a few percent, as in the \
         paper's Fig. 15",
    );
    vec![fig14, fig15]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcn_on_n0_helps_n0_and_dings_others() {
        let cfg = ExpConfig::quick();
        let a = arm(&cfg, 3.0);
        assert!(
            a.n0_with > 1.1 * a.n0_without,
            "N0 gain too small: {} -> {}",
            a.n0_without,
            a.n0_with
        );
        assert!(
            a.others_with < 1.02 * a.others_without,
            "others should not improve: {} -> {}",
            a.others_without,
            a.others_with
        );
    }
}
