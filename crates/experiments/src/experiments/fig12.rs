//! Fig. 12 — how the CCA-Adjustor places the initial threshold for
//! overlapped vs. separated interference distributions (Eq. 2).
//!
//! This is a unit-level demonstration of the initializing phase, run
//! directly against the `nomc-core` adjustor rather than through the
//! simulator.

use crate::report::Report;
use crate::ExpConfig;
use nomc_core::{CcaAdjustor, DcnConfig};
use nomc_mac::CcaThresholdProvider;
use nomc_units::{Dbm, SimTime};

/// Feeds an adjustor the given co-channel RSSIs and in-channel power
/// samples, then completes initialization.
pub fn initialize_with(cochannel: &[f64], power: &[f64]) -> Dbm {
    let mut dcn = CcaAdjustor::new(DcnConfig::paper_default(), Dbm::new(-77.0));
    for (i, &p) in power.iter().enumerate() {
        dcn.on_power_sense(Dbm::new(p), SimTime::from_millis(1 + i as u64));
    }
    for (i, &s) in cochannel.iter().enumerate() {
        dcn.on_cochannel_packet(Dbm::new(s), SimTime::from_millis(100 + i as u64));
    }
    dcn.on_tick(SimTime::from_secs(1));
    dcn.threshold(SimTime::from_secs(1))
}

/// Runs the experiment.
pub fn run(_cfg: &ExpConfig) -> Vec<Report> {
    let mut report = Report::new(
        "fig12",
        "Eq. 2 threshold placement for overlapped vs separated distributions",
        &[
            "case",
            "co-channel RSSIs (dBm)",
            "in-channel powers (dBm)",
            "CCA_I",
        ],
    );
    // Paper Fig. 12(1): distributions overlap — min co-channel RSSI is
    // below the strongest inter-channel sample, so it wins.
    let overlapped = initialize_with(&[-55.0, -62.0, -68.0], &[-60.0, -65.0, -72.0]);
    report.row([
        "overlapped".to_string(),
        "{-55, -62, -68}".to_string(),
        "{-60, -65, -72}".to_string(),
        overlapped.to_string(),
    ]);
    // Paper Fig. 12(2): clearly separated — threshold drops to the top of
    // the inter-channel distribution, guarding the gap.
    let separated = initialize_with(&[-45.0, -50.0, -52.0], &[-70.0, -74.0, -78.0]);
    report.row([
        "separated".to_string(),
        "{-45, -50, -52}".to_string(),
        "{-70, -74, -78}".to_string(),
        separated.to_string(),
    ]);
    report.note(
        "CCA_I = min{ S_1, …, max{P_1, …} }: overlapped → bound by the weakest \
         co-channel sender (−68 dBm); separated → bound by the strongest \
         in-channel sample (−70 dBm), below the gap where a new co-channel \
         competitor could appear",
    );
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlapped_bound_by_min_rssi() {
        assert_eq!(
            initialize_with(&[-55.0, -62.0, -68.0], &[-60.0, -65.0, -72.0]),
            Dbm::new(-68.0)
        );
    }

    #[test]
    fn separated_bound_by_max_power() {
        assert_eq!(
            initialize_with(&[-45.0, -50.0, -52.0], &[-70.0, -74.0, -78.0]),
            Dbm::new(-70.0)
        );
    }

    #[test]
    fn report_has_two_cases() {
        let r = &run(&ExpConfig::quick())[0];
        assert_eq!(r.rows.len(), 2);
    }
}
