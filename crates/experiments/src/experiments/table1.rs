//! Table I — fairness of the DCN design: per-network throughput of the
//! six §VI-B networks (CFD 3 MHz, DCN everywhere).
//!
//! Paper row: N0 259.3, N1 260.8, N2 261.9, N3 272.5, N4 272.9,
//! N5 273.4 pkt/s — ≈ 4 % spread, the middle-frequency networks
//! slightly lower because they face inter-channel interference from
//! both sides.

use crate::experiments::common;
use crate::report::{f1, pct, Report};
use crate::runner;
use crate::ExpConfig;
use nomc_topology::paper::paper_labels;

/// Paper Table I values, by paper label N0..N5.
pub const PAPER: [f64; 6] = [259.3, 260.8, 261.9, 272.5, 272.9, 273.4];

/// Per-network throughput by *paper label order* (N0 first).
pub fn by_label(cfg: &ExpConfig) -> Vec<(String, f64)> {
    let results = runner::run_seeds(cfg, common::band15_line_dcn);
    let labels = paper_labels(6);
    let mut rows: Vec<(String, f64)> = (0..6)
        .map(|i| {
            (
                labels[i].clone(),
                common::mean_network_throughput(&results, i),
            )
        })
        .collect();
    rows.sort_by_key(|(l, _)| l.clone());
    rows
}

/// Max/min spread of a throughput vector.
pub fn spread(values: &[f64]) -> f64 {
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    max / min - 1.0
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let rows = by_label(cfg);
    let mut report = Report::new(
        "table1",
        "Fairness: per-network throughput (6 networks, CFD 3 MHz, DCN)",
        &["network", "measured (pkt/s)", "paper (pkt/s)"],
    );
    for (i, (label, tput)) in rows.iter().enumerate() {
        report.row([label.clone(), f1(*tput), f1(PAPER[i])]);
    }
    let values: Vec<f64> = rows.iter().map(|r| r.1).collect();
    report.note(format!(
        "measured spread {} (paper ≈ 4 %): DCN keeps the networks close even \
         though middle and edge channels face different interference",
        pct(spread(&values))
    ));
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fairness_spread_is_small() {
        let cfg = ExpConfig::quick();
        let rows = by_label(&cfg);
        let values: Vec<f64> = rows.iter().map(|r| r.1).collect();
        assert_eq!(values.len(), 6);
        assert!(
            spread(&values) < 0.15,
            "unfair spread {} over {values:?}",
            spread(&values)
        );
        // All networks near the saturated per-network rate.
        for v in &values {
            assert!(*v > 180.0, "network too slow: {v}");
        }
    }

    #[test]
    fn labels_are_paper_order() {
        let cfg = ExpConfig::quick();
        let rows = by_label(&cfg);
        let labels: Vec<&str> = rows.iter().map(|r| r.0.as_str()).collect();
        assert_eq!(labels, ["N0", "N1", "N2", "N3", "N4", "N5"]);
    }
}
