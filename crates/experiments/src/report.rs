//! Experiment reports: tables, ASCII charts, markdown and JSON output.

use std::fmt;

/// A rendered experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Experiment id (`fig04`, `table1`, …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Table rows (already formatted cells).
    pub rows: Vec<Vec<String>>,
    /// Paper-vs-measured commentary and caveats.
    pub notes: Vec<String>,
}

nomc_json::json_struct!(Report {
    id: String,
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
});

impl Report {
    /// Starts a report.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width mismatch in report {}",
            self.id
        );
        self.rows.push(row);
        self
    }

    /// Appends a commentary note.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// Renders as a GitHub-flavoured markdown section (used to build
    /// EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push('|');
        for c in &self.columns {
            out.push_str(&format!(" {c} |"));
        }
        out.push_str("\n|");
        for _ in &self.columns {
            out.push_str("---|");
        }
        out.push('\n');
        for r in &self.rows {
            out.push('|');
            for c in r {
                out.push_str(&format!(" {c} |"));
            }
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
        }
        out
    }

    /// Serializes to pretty JSON.
    pub fn to_json_string(&self) -> String {
        nomc_json::ToJson::to_json(self).dump_pretty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        // Compute column widths.
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                write!(f, "{:<w$}  ", cell, w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.columns)?;
        let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        line(f, &rule)?;
        for row in &self.rows {
            line(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "note: {n}")?;
        }
        Ok(())
    }
}

/// Formats a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats a mean ± standard deviation pair.
pub fn pm(mean: f64, std: f64) -> String {
    format!("{mean:.1} ± {std:.1}")
}

/// Renders a horizontal ASCII bar of `value` scaled to `max` over
/// `width` characters — a poor man's figure.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || !value.is_finite() {
        return String::new();
    }
    let n = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    "#".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("fig00", "Sample", &["x", "y"]);
        r.row(["1", "2.0"]).row(["10", "20.0"]).note("a note");
        r
    }

    #[test]
    fn display_contains_all_cells() {
        let text = sample().to_string();
        assert!(text.contains("fig00"));
        assert!(text.contains("20.0"));
        assert!(text.contains("note: a note"));
    }

    #[test]
    fn markdown_table_shape() {
        let md = sample().to_markdown();
        assert!(md.starts_with("### fig00"));
        assert!(md.contains("| x | y |"));
        assert!(md.contains("| 10 | 20.0 |"));
        assert!(md.contains("- a note"));
    }

    #[test]
    fn json_round_trips_enough() {
        let j = sample().to_json_string();
        let v: nomc_json::Json = j.parse().unwrap();
        assert_eq!(v["id"], "fig00");
        assert_eq!(v["rows"][1][0], "10");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Report::new("x", "t", &["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(pct(0.384), "38.4%");
        assert_eq!(pm(10.0, 0.5), "10.0 ± 0.5");
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
