//! # nomc-experiments
//!
//! The reproduction harness: one module (and one runnable binary) per
//! table/figure of *"Design of Non-orthogonal Multi-channel Sensor
//! Networks"* (ICDCS 2010), plus ablations of the reproduction's own
//! design choices.
//!
//! Every experiment follows the same contract:
//!
//! * it is a pure function of an [`ExpConfig`] (duration, seeds,
//!   fidelity), deterministic for a given config,
//! * it returns a [`report::Report`] — a table of measured values next
//!   to the paper's reported values, with commentary notes,
//! * `cargo run -p nomc-experiments --bin <id>` prints it, and
//!   `--bin all_experiments` regenerates the whole evaluation section.
//!
//! # Examples
//!
//! ```no_run
//! use nomc_experiments::{experiments::fig04, ExpConfig};
//!
//! for report in fig04::run(&ExpConfig::quick()) {
//!     println!("{report}");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod runner;
pub mod sweep;

use nomc_units::SimDuration;

/// Shared experiment configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpConfig {
    /// Simulated time per run.
    pub duration: SimDuration,
    /// Measurement warmup (excluded from metrics; long enough for DCN's
    /// initializing phase plus queue settling).
    pub warmup: SimDuration,
    /// Seeds to average over; more seeds → tighter error bars.
    pub seeds: Vec<u64>,
}

impl ExpConfig {
    /// Full-fidelity configuration: 20 simulated seconds × 5 seeds.
    pub fn full() -> Self {
        ExpConfig {
            duration: SimDuration::from_secs(20),
            warmup: SimDuration::from_secs(5),
            seeds: vec![1, 2, 3, 4, 5],
        }
    }

    /// Fast configuration for CI / smoke tests: 6 s × 2 seeds.
    pub fn quick() -> Self {
        ExpConfig {
            duration: SimDuration::from_secs(6),
            warmup: SimDuration::from_secs(2),
            seeds: vec![1, 2],
        }
    }

    /// Picks [`ExpConfig::quick`] when `--quick` appears in the process
    /// arguments or `NOMC_QUICK` is set, else [`ExpConfig::full`].
    pub fn from_env() -> Self {
        let quick =
            std::env::args().any(|a| a == "--quick") || std::env::var_os("NOMC_QUICK").is_some();
        if quick {
            ExpConfig::quick()
        } else {
            ExpConfig::full()
        }
    }
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_sane() {
        for c in [ExpConfig::full(), ExpConfig::quick()] {
            assert!(c.warmup < c.duration);
            assert!(!c.seeds.is_empty());
        }
    }
}
