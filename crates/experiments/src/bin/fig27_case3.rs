//! Fig. 27: Case III (random topology).
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::cases::run(&cfg) {
        if report.id == "fig27" {
            println!("{report}");
        }
    }
}
