//! Fig. 10: PRR vs CCA threshold at different TX powers.
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::fig09::run(&cfg) {
        if report.id == "fig10" {
            println!("{report}");
        }
    }
}
