//! Figs. 16-18: DCN on all networks, CFD 2 vs 3 MHz.
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::fig16::run(&cfg) {
        println!("{report}");
    }
}
