//! Fig. 3: attacker/normal-sender collision timeline.
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::fig03::run(&cfg) {
        println!("{report}");
    }
}
