//! Fig. 1: aggregate throughput vs CFD on a 12 MHz band.
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::fig01::run(&cfg) {
        println!("{report}");
    }
}
