//! Beyond-the-paper studies: energy per delivered packet, the analytic
//! channel planner, and online recovery-demand detection.
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::extensions::run(&cfg) {
        println!("{report}");
    }
}
