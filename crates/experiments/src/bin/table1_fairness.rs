//! Table I: fairness across the six DCN networks.
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::table1::run(&cfg) {
        println!("{report}");
    }
}
