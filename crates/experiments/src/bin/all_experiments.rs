//! Regenerates every table and figure of the paper in one run and
//! (optionally) writes the markdown summary used by EXPERIMENTS.md.
//!
//! Usage: `all_experiments [--quick] [--markdown <path>] [--json <path>]`

use std::io::Write;

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    let reports = nomc_experiments::experiments::all(&cfg);
    for report in &reports {
        println!("{report}");
    }
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = flag_value(&args, "--markdown") {
        let mut out = String::from("# Generated experiment results\n\n");
        for report in &reports {
            out.push_str(&report.to_markdown());
            out.push('\n');
        }
        std::fs::write(&path, out).expect("write markdown");
        eprintln!("wrote {path}");
    }
    if let Some(path) = flag_value(&args, "--json") {
        let json: Vec<String> = reports.iter().map(|r| r.to_json_string()).collect();
        let mut f = std::fs::File::create(&path).expect("create json file");
        writeln!(f, "[{}]", json.join(",\n")).expect("write json");
        eprintln!("wrote {path}");
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
