//! Fig. 12: Eq. 2 initial threshold placement.
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::fig12::run(&cfg) {
        println!("{report}");
    }
}
