//! Figs. 14-15: DCN applied only on network N0.
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::fig14::run(&cfg) {
        println!("{report}");
    }
}
