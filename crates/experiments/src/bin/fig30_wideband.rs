//! Fig. 30: 18 MHz band with 7 networks.
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::fig30::run(&cfg) {
        println!("{report}");
    }
}
