//! Fig. 29: CDF of error-bit fractions of CRC-failed packets.
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::fig28::run(&cfg) {
        if report.id == "fig29" {
            println!("{report}");
        }
    }
}
