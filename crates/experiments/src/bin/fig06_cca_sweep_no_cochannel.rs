//! Fig. 6: link sent/received vs CCA threshold (no co-channel).
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::fig06::run(&cfg) {
        if report.id == "fig06" {
            println!("{report}");
        }
    }
}
