//! Fig. 8: CCA sweep with co-channel interference.
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::fig08::run(&cfg) {
        println!("{report}");
    }
}
