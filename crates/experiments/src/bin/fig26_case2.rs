//! Fig. 26: Case II (separated clusters).
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::cases::run(&cfg) {
        if report.id == "fig26" {
            println!("{report}");
        }
    }
}
