//! Fig. 4: collided-packet receive rate vs CFD.
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::fig04::run(&cfg) {
        println!("{report}");
    }
}
