//! Fig. 2: 802.11b vs 802.15.4 under adjacent-channel interference.
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::fig02::run(&cfg) {
        println!("{report}");
    }
}
