//! Fig. 20: N0 throughput vs its TX power.
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::fig20::run(&cfg) {
        if report.id == "fig20" {
            println!("{report}");
        }
    }
}
