//! ext_fault_recovery: one DCN sender killed and rebooted under a
//! pulsed wideband jammer, sweeping the jammer duty cycle against
//! recovery time (robustness study — beyond the paper).
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    println!(
        "{}",
        nomc_experiments::experiments::extensions::fault_recovery(&cfg)
    );
}
