//! Fig. 7: overall throughput vs CCA threshold (no co-channel).
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::fig06::run(&cfg) {
        if report.id == "fig07" {
            println!("{report}");
        }
    }
}
