//! Fig. 19: ZigBee design vs DCN design on 15 MHz.
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::fig19::run(&cfg) {
        println!("{report}");
    }
}
