//! Ablations of reproduction design choices and DCN parameters.
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::ablations::run(&cfg) {
        println!("{report}");
    }
}
