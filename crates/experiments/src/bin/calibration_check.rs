//! Calibration self-check: verifies that the simulator still reproduces
//! the paper's anchor values (Fig. 4 CPRR bands, saturated throughput
//! scale, Fig. 6 threshold response, headline Fig. 19 gain). Exits
//! non-zero on any failure, so CI can gate on it.
//!
//! Pass `--quick` for the fast configuration.

use nomc_experiments::experiments::{common, fig04, fig06, fig19};
use nomc_experiments::{runner, ExpConfig};
use nomc_sim::SimResult;
use nomc_units::Dbm;

struct Check {
    name: &'static str,
    pass: bool,
    detail: String,
}

fn check(name: &'static str, pass: bool, detail: String) -> Check {
    Check { name, pass, detail }
}

fn main() -> std::process::ExitCode {
    let cfg = ExpConfig::from_env();
    let mut checks: Vec<Check> = Vec::new();

    // 1. Saturated per-network throughput sits in the paper's range.
    let sat = runner::stat_over_seeds(
        &cfg,
        |seed| {
            let plan = nomc_topology::spectrum::ChannelPlan::with_count(
                common::band_start(),
                nomc_units::Megahertz::new(5.0),
                1,
            );
            let mut b = nomc_sim::Scenario::builder(nomc_topology::paper::line_deployment(
                &plan,
                Dbm::new(0.0),
            ));
            b.seed(seed);
            b.build().expect("valid")
        },
        SimResult::total_throughput,
    );
    checks.push(check(
        "saturated 2-link network ≈ 230-300 pkt/s",
        (230.0..=300.0).contains(&sat.mean),
        format!("measured {:.1} ± {:.1}", sat.mean, sat.std),
    ));

    // 2. Fig. 4 CPRR bands.
    let bands = [
        (5.0, 0.99, 1.01),
        (4.0, 0.98, 1.01),
        (3.0, 0.93, 1.0),
        (2.0, 0.50, 0.85),
        (1.0, 0.0, 0.30),
    ];
    for (cfd, lo, hi) in bands {
        let (cprr, _) = fig04::cprr_at(&cfg, cfd);
        checks.push(check(
            match cfd as u32 {
                5 => "CPRR @ 5 MHz ≈ 100 %",
                4 => "CPRR @ 4 MHz ≈ 100 %",
                3 => "CPRR @ 3 MHz ≈ 97 %",
                2 => "CPRR @ 2 MHz ≈ 70 %",
                _ => "CPRR @ 1 MHz < 30 %",
            },
            (lo..=hi).contains(&cprr),
            format!("measured {:.1} %", cprr * 100.0),
        ));
    }

    // 3. Fig. 6: relaxing the threshold meaningfully raises the link.
    let sweep = fig06::sweep(&cfg, Dbm::new(0.0));
    let default = sweep
        .iter()
        .find(|p| p.threshold.to_bits() == f64::to_bits(-77.0))
        .expect("-77 in sweep");
    let relaxed = sweep.last().expect("non-empty sweep");
    checks.push(check(
        "CCA relaxation gain ≥ 30 % at ~100 % PRR",
        relaxed.sent > 1.3 * default.sent && relaxed.prr > 0.95,
        format!(
            "{:.0} → {:.0} pkt/s, PRR {:.1} %",
            default.sent,
            relaxed.sent,
            relaxed.prr * 100.0
        ),
    ));

    // 4. Headline: DCN design beats ZigBee design substantially.
    let o = fig19::outcome(&cfg);
    checks.push(check(
        "Fig. 19 headline gain in 30-90 % band (paper ≈ 58 %)",
        (0.30..=0.90).contains(&o.overall_gain()),
        format!("measured {:.1} %", o.overall_gain() * 100.0),
    ));

    // Report.
    let mut ok = true;
    println!(
        "calibration self-check ({} seeds × {:.0}s):\n",
        cfg.seeds.len(),
        cfg.duration.as_secs_f64()
    );
    for c in &checks {
        println!(
            "  [{}] {:<45} {}",
            if c.pass { "PASS" } else { "FAIL" },
            c.name,
            c.detail
        );
        ok &= c.pass;
    }
    if ok {
        println!("\nall {} checks passed", checks.len());
        std::process::ExitCode::SUCCESS
    } else {
        println!("\nCALIBRATION DRIFT DETECTED");
        std::process::ExitCode::FAILURE
    }
}
