//! Fig. 18: overall throughput vs CFD with DCN.
//!
//! Pass `--quick` (or set `NOMC_QUICK`) for a fast low-fidelity run.

fn main() {
    let cfg = nomc_experiments::ExpConfig::from_env();
    for report in nomc_experiments::experiments::fig16::run(&cfg) {
        if report.id == "fig18" {
            println!("{report}");
        }
    }
}
