//! RSSI register semantics.
//!
//! The CC2420's `RSSI.RSSI_VAL` is an 8-bit signed register holding the
//! average received power over the last 8 symbol periods (128 µs), in
//! 1 dB steps, with a usable range of roughly −100 dBm to 0 dBm. DCN
//! reads this register in two ways (per the paper's §V-B): the RSSI byte
//! appended to received co-channel packets, and explicit in-channel power
//! sensing during the initializing phase.

use nomc_units::{Db, Dbm, SimDuration};

/// Models the quantization and clamping a real RSSI register applies to
/// the "true" channel power the simulator computes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RssiRegister {
    floor: Dbm,
    ceiling: Dbm,
    step_db: Db,
    averaging_window: SimDuration,
}

nomc_json::json_struct!(RssiRegister {
    floor: Dbm,
    ceiling: Dbm,
    step_db: Db,
    averaging_window: SimDuration,
});

impl RssiRegister {
    /// The CC2420 profile: [−100, 0] dBm, 1 dB steps, 128 µs averaging.
    pub fn cc2420() -> Self {
        RssiRegister {
            floor: Dbm::new(-100.0),
            ceiling: Dbm::new(0.0),
            step_db: Db::new(1.0),
            averaging_window: SimDuration::from_micros(128),
        }
    }

    /// An ideal register: no clamping, no quantization. Useful to isolate
    /// register effects in ablation runs.
    pub fn ideal() -> Self {
        RssiRegister {
            floor: Dbm::new(-200.0),
            ceiling: Dbm::new(100.0),
            step_db: Db::ZERO,
            averaging_window: SimDuration::from_micros(128),
        }
    }

    /// What the register reads when the true average power is `actual`.
    ///
    /// # Examples
    ///
    /// ```
    /// use nomc_radio::rssi::RssiRegister;
    /// use nomc_units::Dbm;
    /// let r = RssiRegister::cc2420();
    /// assert_eq!(r.read(Dbm::new(-76.4)), Dbm::new(-76.0));
    /// assert_eq!(r.read(Dbm::new(-130.0)), Dbm::new(-100.0));
    /// ```
    #[inline]
    pub fn read(&self, actual: Dbm) -> Dbm {
        let clamped = actual.clamp(self.floor, self.ceiling);
        let step = self.step_db.value();
        if step > 0.0 {
            Dbm::new((clamped.value() / step).round() * step)
        } else {
            clamped
        }
    }

    /// The lowest value the register can report.
    pub fn floor(&self) -> Dbm {
        self.floor
    }

    /// The averaging window (8 symbols on CC2420).
    pub fn averaging_window(&self) -> SimDuration {
        self.averaging_window
    }
}

impl Default for RssiRegister {
    fn default() -> Self {
        RssiRegister::cc2420()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_to_range() {
        let r = RssiRegister::cc2420();
        assert_eq!(r.read(Dbm::new(-150.0)), Dbm::new(-100.0));
        assert_eq!(r.read(Dbm::new(20.0)), Dbm::new(0.0));
    }

    #[test]
    fn quantizes_to_one_db() {
        let r = RssiRegister::cc2420();
        assert_eq!(r.read(Dbm::new(-77.49)), Dbm::new(-77.0));
        assert_eq!(r.read(Dbm::new(-77.51)), Dbm::new(-78.0));
    }

    #[test]
    fn ideal_register_is_transparent() {
        let r = RssiRegister::ideal();
        assert_eq!(r.read(Dbm::new(-123.456)), Dbm::new(-123.456));
    }

    #[test]
    fn window_is_8_symbols() {
        assert_eq!(
            RssiRegister::cc2420().averaging_window(),
            SimDuration::from_micros(128)
        );
    }
}
