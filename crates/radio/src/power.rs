//! Transmit power levels.
//!
//! The CC2420 PA has 8 documented register settings between 0 dBm and
//! −25 dBm; MicaZ deployments (and the paper) additionally quote
//! intermediate and lower effective radiated powers (−0.6, −22, −33 dBm …)
//! that arise from antenna and matching differences. We therefore model a
//! transmit power as an arbitrary dBm value, with helpers to quantize to
//! the nearest CC2420 register level when hardware fidelity matters.

use nomc_units::Dbm;

/// CC2420 current draw (mA at 3 V) per datasheet operating conditions.
pub mod current {
    use nomc_units::Dbm;

    /// RX / listen current: 18.8 mA.
    pub const RX_MA: f64 = 18.8;

    /// Idle (voltage-regulator on) current: 0.426 mA.
    pub const IDLE_MA: f64 = 0.426;

    /// TX current as a function of output power, interpolated from the
    /// datasheet's PA operating points (8.5 mA at −25 dBm to 17.4 mA at
    /// 0 dBm).
    pub fn tx_ma(power: Dbm) -> f64 {
        const TABLE: [(f64, f64); 8] = [
            (-25.0, 8.5),
            (-15.0, 9.9),
            (-10.0, 11.2),
            (-7.0, 12.5),
            (-5.0, 13.9),
            (-3.0, 15.2),
            (-1.0, 16.5),
            (0.0, 17.4),
        ];
        let p = power.value();
        if p <= TABLE[0].0 {
            return TABLE[0].1;
        }
        if p >= TABLE[TABLE.len() - 1].0 {
            return TABLE[TABLE.len() - 1].1;
        }
        for w in TABLE.windows(2) {
            let ((p0, i0), (p1, i1)) = (w[0], w[1]);
            if p >= p0 && p <= p1 {
                return i0 + (i1 - i0) * (p - p0) / (p1 - p0);
            }
        }
        unreachable!("power {p} not bracketed")
    }
}

/// The CC2420 `PA_LEVEL` register settings and their nominal output
/// powers, per the datasheet.
pub const CC2420_PA_LEVELS: [(u8, f64); 8] = [
    (31, 0.0),
    (27, -1.0),
    (23, -3.0),
    (19, -5.0),
    (15, -7.0),
    (11, -10.0),
    (7, -15.0),
    (3, -25.0),
];

/// A transmitter output power.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct TxPower(Dbm);

impl TxPower {
    /// Full power: 0 dBm.
    pub fn max() -> Self {
        TxPower(Dbm::new(0.0))
    }

    /// An arbitrary output power in dBm.
    ///
    /// # Panics
    ///
    /// Panics if `dbm` is above +10 dBm or below −60 dBm — outside any
    /// plausible mote PA range, almost certainly a sign/ordering bug.
    pub fn new(dbm: Dbm) -> Self {
        assert!(
            (-60.0..=10.0).contains(&dbm.value()),
            "implausible TX power {dbm}"
        );
        TxPower(dbm)
    }

    /// The output power in dBm.
    pub fn dbm(self) -> Dbm {
        self.0
    }

    /// Quantizes to the nearest CC2420 `PA_LEVEL`, returning the register
    /// value and its nominal power.
    pub fn nearest_cc2420_level(self) -> (u8, Dbm) {
        let mut best = CC2420_PA_LEVELS[0];
        for &(reg, p) in &CC2420_PA_LEVELS {
            if (p - self.0.value()).abs() < (best.1 - self.0.value()).abs() {
                best = (reg, p);
            }
        }
        (best.0, Dbm::new(best.1))
    }
}

impl Default for TxPower {
    fn default() -> Self {
        TxPower::max()
    }
}

impl From<Dbm> for TxPower {
    fn from(dbm: Dbm) -> Self {
        TxPower::new(dbm)
    }
}

impl std::fmt::Display for TxPower {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TX {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_is_zero_dbm() {
        assert_eq!(TxPower::max().dbm(), Dbm::new(0.0));
        assert_eq!(TxPower::default(), TxPower::max());
    }

    #[test]
    fn quantization_picks_nearest() {
        assert_eq!(TxPower::new(Dbm::new(-0.6)).nearest_cc2420_level().0, 27);
        assert_eq!(TxPower::new(Dbm::new(-0.3)).nearest_cc2420_level().0, 31);
        assert_eq!(TxPower::new(Dbm::new(-4.2)).nearest_cc2420_level().0, 19);
        assert_eq!(TxPower::new(Dbm::new(-33.0)).nearest_cc2420_level().0, 3);
    }

    #[test]
    fn paper_power_values_accepted() {
        // The paper sweeps these exact values.
        for p in [
            -33.0, -22.0, -15.0, -11.0, -8.0, -6.0, -5.0, -3.0, -2.0, -0.6, 0.0,
        ] {
            let _ = TxPower::new(Dbm::new(p));
        }
    }

    #[test]
    #[should_panic(expected = "implausible")]
    fn absurd_power_rejected() {
        let _ = TxPower::new(Dbm::new(30.0));
    }

    #[test]
    fn tx_current_interpolates_and_clamps() {
        assert!((current::tx_ma(Dbm::new(0.0)) - 17.4).abs() < 1e-9);
        assert!((current::tx_ma(Dbm::new(-25.0)) - 8.5).abs() < 1e-9);
        assert!((current::tx_ma(Dbm::new(-40.0)) - 8.5).abs() < 1e-9);
        let mid = current::tx_ma(Dbm::new(-2.0));
        assert!(mid > 15.2 && mid < 16.5, "{mid}");
        // Monotone in power.
        let mut prev = 0.0;
        for p in [-30.0, -20.0, -10.0, -5.0, -1.0, 0.0] {
            let i = current::tx_ma(Dbm::new(p));
            assert!(i >= prev);
            prev = i;
        }
    }
}
