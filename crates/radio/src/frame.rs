//! Frame geometry and concrete MPDU images.
//!
//! Most of the simulation only needs frame *sizes* (for airtime and
//! bit-error budgets); the packet-recovery experiments additionally need
//! concrete *bytes* so that FCS verification and block re-checksumming
//! operate on real data. [`FrameSpec`] provides the former,
//! [`FrameSpec::build_mpdu`] the latter.

use crate::crc;
use crate::timing;

/// Sizes of a data frame, from which all airtime/bit budgets derive.
///
/// # Examples
///
/// ```
/// use nomc_radio::frame::FrameSpec;
/// let spec = FrameSpec::default_data_frame();
/// assert_eq!(spec.mpdu_bytes(), 51);
/// assert_eq!(spec.ppdu_bytes(), 57);
/// assert_eq!(spec.psdu_bits(), 51 * 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameSpec {
    /// MAC header bytes (FCF + seq + addressing). 9 bytes models the
    /// short-address data frames TinyOS sends.
    pub mac_header_bytes: u32,
    /// MAC payload bytes.
    pub payload_bytes: u32,
}

/// The FCS length (CRC-16) in bytes.
pub const FCS_BYTES: u32 = 2;

/// The maximum MPDU the standard allows (`aMaxPHYPacketSize`).
pub const MAX_MPDU_BYTES: u32 = 127;

nomc_json::json_struct!(FrameSpec {
    mac_header_bytes: u32,
    payload_bytes: u32,
});

impl FrameSpec {
    /// Creates a frame spec.
    ///
    /// # Errors
    ///
    /// Returns an error if the resulting MPDU would exceed
    /// [`MAX_MPDU_BYTES`].
    pub fn new(mac_header_bytes: u32, payload_bytes: u32) -> Result<Self, FrameTooLong> {
        let spec = FrameSpec {
            mac_header_bytes,
            payload_bytes,
        };
        if spec.mpdu_bytes() > MAX_MPDU_BYTES {
            return Err(FrameTooLong(spec.mpdu_bytes()));
        }
        Ok(spec)
    }

    /// The saturated-traffic data frame used throughout the reproduction:
    /// 9-byte MAC header + 40-byte payload + FCS = 51-byte MPDU
    /// (57-byte PPDU, 1.824 ms on air). Sized, together with
    /// [`nomc-mac`'s post-TX processing gap], so a single link tops out
    /// near the paper's ~150 packets/s (Fig. 6) and a saturated 2-link
    /// network near its ~260-270 packets/s (Table I).
    ///
    /// [`nomc-mac`'s post-TX processing gap]: FrameSpec
    pub fn default_data_frame() -> Self {
        FrameSpec::new(9, 40).expect("default frame fits")
    }

    /// MPDU length: MAC header + payload + FCS.
    pub fn mpdu_bytes(self) -> u32 {
        self.mac_header_bytes + self.payload_bytes + FCS_BYTES
    }

    /// Full PPDU length on air, including preamble/SFD/length header.
    pub fn ppdu_bytes(self) -> u32 {
        timing::PPDU_HEADER_BYTES + self.mpdu_bytes()
    }

    /// Number of PSDU bits subject to demodulation errors after sync
    /// (the MPDU; the sync header's robustness is modelled separately).
    pub fn psdu_bits(self) -> u32 {
        self.mpdu_bytes() * 8
    }

    /// On-air duration of the whole PPDU.
    pub fn airtime(self) -> nomc_units::SimDuration {
        timing::airtime(self.ppdu_bytes())
    }

    /// Builds a concrete MPDU image (with valid FCS) for this spec.
    ///
    /// The header encodes `src` and `seq`; the payload is a deterministic
    /// pattern derived from both, so two frames never share bytes by
    /// accident and recovery experiments can verify reassembly.
    pub fn build_mpdu(self, src: u32, seq: u32) -> Vec<u8> {
        let mut body = Vec::with_capacity((self.mac_header_bytes + self.payload_bytes) as usize);
        body.push(0x41); // FCF low: data frame, intra-PAN
        body.push(0x88); // FCF high: short addressing
        body.push(seq as u8);
        body.extend_from_slice(&(src as u16).to_le_bytes());
        body.extend_from_slice(&seq.to_le_bytes());
        while body.len() < self.mac_header_bytes as usize {
            body.push(0);
        }
        body.truncate(self.mac_header_bytes as usize);
        let mut state = (u64::from(src) << 32) | u64::from(seq);
        for _ in 0..self.payload_bytes {
            // splitmix64 step keeps the payload cheap and deterministic.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            body.push((z ^ (z >> 31)) as u8);
        }
        crc::append_fcs(&body)
    }
}

impl Default for FrameSpec {
    fn default() -> Self {
        FrameSpec::default_data_frame()
    }
}

/// Error: the requested frame would exceed the 127-byte MPDU limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTooLong(pub u32);

impl std::fmt::Display for FrameTooLong {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MPDU of {} bytes exceeds the 127-byte limit", self.0)
    }
}

impl std::error::Error for FrameTooLong {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_frame_sizes() {
        let s = FrameSpec::default_data_frame();
        assert_eq!(s.mpdu_bytes(), 51);
        assert_eq!(s.ppdu_bytes(), 57);
        assert_eq!(s.airtime().as_micros(), 57 * 32);
    }

    #[test]
    fn max_frame_accepted_oversize_rejected() {
        assert!(FrameSpec::new(9, 116).is_ok()); // 127-byte MPDU
        let err = FrameSpec::new(9, 117).unwrap_err();
        assert_eq!(err, FrameTooLong(128));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn built_mpdu_has_declared_length_and_valid_fcs() {
        let s = FrameSpec::default_data_frame();
        let mpdu = s.build_mpdu(7, 1234);
        assert_eq!(mpdu.len() as u32, s.mpdu_bytes());
        assert!(crc::verify_fcs(&mpdu));
    }

    #[test]
    fn mpdu_is_deterministic_and_distinct() {
        let s = FrameSpec::default_data_frame();
        assert_eq!(s.build_mpdu(1, 2), s.build_mpdu(1, 2));
        assert_ne!(s.build_mpdu(1, 2), s.build_mpdu(1, 3));
        assert_ne!(s.build_mpdu(1, 2), s.build_mpdu(2, 2));
    }

    #[test]
    fn header_encodes_src_and_seq() {
        let s = FrameSpec::default_data_frame();
        let mpdu = s.build_mpdu(0x0BEE, 0x0102_0304);
        assert_eq!(mpdu[2], 0x04); // low byte of seq
        assert_eq!(u16::from_le_bytes([mpdu[3], mpdu[4]]), 0x0BEE);
    }
}
