//! CRC-16/ITU-T (a.k.a. CRC-16/KERMIT-family, polynomial 0x1021), the FCS
//! of IEEE 802.15.4 MAC frames.
//!
//! 802.15.4 specifies the ITU-T CRC-16 with generator
//! `x^16 + x^12 + x^5 + 1`, zero initial value, LSB-first processing and
//! no final XOR. The packet-recovery experiments (Figs. 28-29) depend on
//! real checksums: a corrupted frame passes or fails FCS exactly as a
//! mote's would.

/// Computes the IEEE 802.15.4 FCS over `data`.
///
/// # Examples
///
/// ```
/// use nomc_radio::crc::crc16_itut;
/// // Appending the (little-endian) FCS makes the total check come out 0.
/// let mut frame = b"hello 802.15.4".to_vec();
/// let fcs = crc16_itut(&frame);
/// frame.extend_from_slice(&fcs.to_le_bytes());
/// assert!(nomc_radio::crc::verify_fcs(&frame));
/// ```
pub fn crc16_itut(data: &[u8]) -> u16 {
    let mut crc: u16 = 0x0000;
    for &byte in data {
        crc ^= u16::from(byte);
        for _ in 0..8 {
            if crc & 0x0001 != 0 {
                crc = (crc >> 1) ^ 0x8408; // 0x1021 bit-reversed
            } else {
                crc >>= 1;
            }
        }
    }
    crc
}

/// Verifies a frame whose last two bytes are the little-endian FCS over
/// the preceding bytes.
///
/// Returns `false` for frames shorter than the FCS itself.
pub fn verify_fcs(frame_with_fcs: &[u8]) -> bool {
    if frame_with_fcs.len() < 2 {
        return false;
    }
    let (body, fcs) = frame_with_fcs.split_at(frame_with_fcs.len() - 2);
    crc16_itut(body) == u16::from_le_bytes([fcs[0], fcs[1]])
}

/// Appends the FCS to `body`, producing a complete MPDU image.
pub fn append_fcs(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 2);
    out.extend_from_slice(body);
    out.extend_from_slice(&crc16_itut(body).to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector_123456789() {
        // CRC-16/KERMIT check value for "123456789" is 0x2189.
        assert_eq!(crc16_itut(b"123456789"), 0x2189);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc16_itut(&[]), 0x0000);
    }

    #[test]
    fn verify_round_trip() {
        for body in [&b""[..], b"a", b"some longer payload 0123456789"] {
            assert!(verify_fcs(&append_fcs(body)));
        }
    }

    #[test]
    fn single_bit_flip_detected() {
        let frame = append_fcs(b"payload under test");
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut corrupted = frame.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(!verify_fcs(&corrupted), "missed flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn short_frames_fail() {
        assert!(!verify_fcs(&[]));
        assert!(!verify_fcs(&[0x12]));
    }

    #[test]
    fn two_bit_flips_usually_detected() {
        // CRC-16 detects all 2-bit errors within its burst guarantees; do a
        // spot check over a few hundred pairs.
        let frame = append_fcs(b"0123456789abcdef");
        let bits = frame.len() * 8;
        let mut missed = 0;
        for i in (0..bits).step_by(7) {
            for j in ((i + 1)..bits).step_by(11) {
                let mut c = frame.clone();
                c[i / 8] ^= 1 << (i % 8);
                c[j / 8] ^= 1 << (j % 8);
                if verify_fcs(&c) {
                    missed += 1;
                }
            }
        }
        assert_eq!(missed, 0);
    }
}
