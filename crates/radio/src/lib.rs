//! # nomc-radio
//!
//! A CC2420-class IEEE 802.15.4 transceiver model: PPDU framing and FCS
//! ([`frame`], [`crc`]), the 2.4 GHz PHY's symbol timing ([`timing`]),
//! transmit power levels ([`power`]), the RSSI register's clamping and
//! quantization semantics ([`rssi`]), and a bundled [`RadioConfig`] that
//! the simulator hands to every node.
//!
//! The paper's DCN scheme lives entirely above this layer — it only reads
//! RSSI values of received co-channel packets and in-channel sensed power,
//! and writes the CCA threshold. This crate pins down exactly what those
//! reads and writes mean on CC2420-era hardware.
//!
//! # Examples
//!
//! ```
//! use nomc_radio::{frame::FrameSpec, timing, RadioConfig};
//!
//! let spec = FrameSpec::default_data_frame();
//! let airtime = timing::airtime(spec.ppdu_bytes());
//! assert_eq!(airtime.as_micros(), (6 + 51) as u64 * 32);
//!
//! let radio = RadioConfig::cc2420();
//! assert_eq!(radio.default_cca_threshold.value(), -77.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod frame;
pub mod power;
pub mod rssi;
pub mod timing;

use nomc_phy::{BerModel, CaptureModel};
use nomc_units::{Db, Dbm};

/// The static configuration of one radio, bundling the hardware-ish
/// parameters the simulator and MAC need.
#[derive(Debug, Clone, PartialEq)]
pub struct RadioConfig {
    /// Minimum co-channel received power for frame sync (−95 dBm on CC2420).
    pub sensitivity: Dbm,
    /// Factory-default CCA threshold (−77 dBm per the paper / datasheet).
    pub default_cca_threshold: Dbm,
    /// The demodulator's SINR → BER characteristic.
    pub ber_model: BerModel,
    /// Which transmissions can capture the receiver's correlator.
    pub capture_model: CaptureModel,
    /// RSSI register behaviour (clamping + quantization).
    pub rssi: rssi::RssiRegister,
    /// Valid range the CCA threshold register can actually express.
    pub cca_threshold_range: (Dbm, Dbm),
    /// Effective SINR bonus the preamble correlator enjoys over payload
    /// demodulation: the preamble/SFD is a *known* sequence, so the sync
    /// correlator detects it several dB below the payload's decoding
    /// threshold. This is why most interference-induced losses are CRC
    /// failures (recoverable, §VII-A) rather than missed preambles.
    pub sync_margin: Db,
}

nomc_json::json_struct!(RadioConfig {
    sensitivity: Dbm,
    default_cca_threshold: Dbm,
    ber_model: BerModel,
    capture_model: CaptureModel,
    rssi: rssi::RssiRegister,
    cca_threshold_range: (Dbm, Dbm),
    sync_margin: Db,
});

impl RadioConfig {
    /// The CC2420 profile used throughout the reproduction.
    pub fn cc2420() -> Self {
        RadioConfig {
            sensitivity: Dbm::new(-95.0),
            default_cca_threshold: Dbm::new(-77.0),
            ber_model: BerModel::Oqpsk802154,
            capture_model: CaptureModel::ieee802154(),
            rssi: rssi::RssiRegister::cc2420(),
            cca_threshold_range: (Dbm::new(-95.0), Dbm::new(0.0)),
            sync_margin: Db::new(8.0),
        }
    }

    /// An 802.11b-like profile for the Fig. 2 uniqueness comparison: same
    /// timing/geometry, but the receiver syncs to adjacent-channel packets
    /// and demodulates with the DBPSK curve.
    pub fn dot11b_like() -> Self {
        RadioConfig {
            ber_model: BerModel::Dsss80211b,
            capture_model: CaptureModel::dot11b_like(),
            sync_margin: Db::new(3.0),
            ..RadioConfig::cc2420()
        }
    }

    /// Clamps a requested CCA threshold into the register's expressible
    /// range, mirroring what writing the CC2420 `CCA_THR` register does.
    pub fn clamp_cca_threshold(&self, requested: Dbm) -> Dbm {
        requested.clamp(self.cca_threshold_range.0, self.cca_threshold_range.1)
    }
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig::cc2420()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc2420_profile_values() {
        let r = RadioConfig::cc2420();
        assert_eq!(r.sensitivity, Dbm::new(-95.0));
        assert_eq!(r.default_cca_threshold, Dbm::new(-77.0));
        assert_eq!(r.ber_model, BerModel::Oqpsk802154);
    }

    #[test]
    fn cca_threshold_clamps_to_register_range() {
        let r = RadioConfig::cc2420();
        assert_eq!(r.clamp_cca_threshold(Dbm::new(-120.0)), Dbm::new(-95.0));
        assert_eq!(r.clamp_cca_threshold(Dbm::new(10.0)), Dbm::new(0.0));
        assert_eq!(r.clamp_cca_threshold(Dbm::new(-77.0)), Dbm::new(-77.0));
    }

    #[test]
    fn sync_margin_profiles() {
        assert_eq!(RadioConfig::cc2420().sync_margin, Db::new(8.0));
        assert_eq!(RadioConfig::dot11b_like().sync_margin, Db::new(3.0));
    }

    #[test]
    fn dot11b_profile_differs_only_in_receiver() {
        let a = RadioConfig::cc2420();
        let b = RadioConfig::dot11b_like();
        assert_eq!(a.sensitivity, b.sensitivity);
        assert_ne!(a.ber_model, b.ber_model);
        assert_ne!(a.capture_model, b.capture_model);
    }
}
