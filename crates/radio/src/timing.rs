//! IEEE 802.15.4 2.4 GHz PHY timing.
//!
//! The 2.4 GHz O-QPSK PHY runs at 62 500 symbols/s; each symbol carries
//! 4 bits, so a byte is 2 symbols = 32 µs and the data rate is 250 kb/s.
//! All MAC timing (backoff period, CCA duration, turnaround) is specified
//! in symbol units by the standard.

use nomc_units::SimDuration;

/// One PHY symbol: 16 µs.
pub const SYMBOL: SimDuration = SimDuration::from_micros(16);

/// One octet on air: 2 symbols = 32 µs.
pub const BYTE: SimDuration = SimDuration::from_micros(32);

/// The CSMA/CA unit backoff period: `aUnitBackoffPeriod` = 20 symbols
/// = 320 µs.
pub const UNIT_BACKOFF: SimDuration = SimDuration::from_micros(320);

/// CCA detection time: 8 symbols = 128 µs (also the RSSI averaging
/// window of the CC2420).
pub const CCA_DURATION: SimDuration = SimDuration::from_micros(128);

/// RX-to-TX (and TX-to-RX) turnaround: `aTurnaroundTime` = 12 symbols
/// = 192 µs.
pub const TURNAROUND: SimDuration = SimDuration::from_micros(192);

/// The PPDU overhead preceding the PSDU: 4 preamble bytes + 1 SFD byte
/// + 1 frame-length byte.
pub const PPDU_HEADER_BYTES: u32 = 6;

/// The preamble + SFD portion a receiver must correlate against to sync:
/// 5 bytes = 40 bits.
pub const SYNC_HEADER_BYTES: u32 = 5;

/// On-air duration of a PPDU of `ppdu_bytes` total bytes (including the
/// 6-byte PPDU header).
///
/// # Examples
///
/// ```
/// use nomc_radio::timing::airtime;
/// // A 133-byte PPDU (maximum frame) lasts 4.256 ms.
/// assert_eq!(airtime(133).as_micros(), 4256);
/// ```
pub fn airtime(ppdu_bytes: u32) -> SimDuration {
    BYTE * u64::from(ppdu_bytes)
}

/// On-air duration of just the sync header (preamble + SFD).
pub fn sync_header_duration() -> SimDuration {
    BYTE * u64::from(SYNC_HEADER_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_byte_relation() {
        assert_eq!(BYTE.as_nanos(), SYMBOL.as_nanos() * 2);
    }

    #[test]
    fn standard_constants() {
        assert_eq!(UNIT_BACKOFF.as_micros(), 320);
        assert_eq!(CCA_DURATION.as_micros(), 128);
        assert_eq!(TURNAROUND.as_micros(), 192);
    }

    #[test]
    fn airtime_scales_linearly() {
        assert_eq!(airtime(0), SimDuration::ZERO);
        assert_eq!(airtime(1), BYTE);
        assert_eq!(airtime(99).as_micros(), 99 * 32);
    }

    #[test]
    fn sync_header_is_five_bytes() {
        assert_eq!(sync_header_duration().as_micros(), 160);
    }
}
