//! The wall-clock edge: per-connection read/write deadlines.
//!
//! This is the **only** module in the workspace's report path allowed
//! to read the wall clock, and the only place `nomc-serve` does: socket
//! I/O against real clients genuinely happens in real time (a slowloris
//! peer is defined by wall-clock behavior), while everything behind the
//! I/O edge — simulation, retries, budgets, checkpoints — stays in
//! deterministic event time. The determinism lint enforces the boundary:
//! `crates/serve/src/` is in its scope, and the single aliased import
//! below carries the one accounted allow (inventoried in
//! `crates/lint/allows_golden.json`; see DESIGN.md §15).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use std::time::Instant as WallClock; // nomc-lint: allow(determinism)

/// A TCP stream whose every read and write is bounded by a rolling
/// deadline.
///
/// The deadline covers the whole current exchange (request read +
/// response write), so a peer trickling one byte per poll — or never
/// reading its response — is disconnected when the budget expires, not
/// when the OS gives up. Long-lived streams (the `/events` feed) call
/// [`DeadlineStream::renew`] before each write: the deadline then
/// bounds per-write progress instead of total connection lifetime.
pub struct DeadlineStream {
    stream: TcpStream,
    deadline: WallClock,
    budget: Duration,
}

/// The typed timeout error every expired deadline maps to.
fn timeout_error() -> io::Error {
    io::Error::new(
        io::ErrorKind::TimedOut,
        "per-connection I/O deadline expired",
    )
}

/// Whether an I/O error is the platform's read/write-timeout signal
/// (`WouldBlock` on Unix sockets with `SO_RCVTIMEO`, `TimedOut`
/// elsewhere).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

impl DeadlineStream {
    /// Wraps `stream` with `budget` of wall time for the exchange.
    ///
    /// # Errors
    ///
    /// An [`io::Error`] when the deadline cannot be represented.
    pub fn new(stream: TcpStream, budget: Duration) -> io::Result<DeadlineStream> {
        let deadline = WallClock::now()
            .checked_add(budget)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "deadline overflow"))?;
        Ok(DeadlineStream {
            stream,
            deadline,
            budget,
        })
    }

    /// Restarts the deadline window (the `/events` feed renews before
    /// each write so streaming a long job is bounded per write, not in
    /// total).
    pub fn renew(&mut self) {
        if let Some(deadline) = WallClock::now().checked_add(self.budget) {
            self.deadline = deadline;
        }
    }

    /// Wall time left before the deadline.
    ///
    /// # Errors
    ///
    /// The typed timeout error when the deadline has already expired.
    fn remaining(&self) -> io::Result<Duration> {
        let left = self.deadline.saturating_duration_since(WallClock::now());
        if left.is_zero() {
            return Err(timeout_error());
        }
        Ok(left)
    }

    /// Reads some bytes into `buf` (0 = clean EOF), waiting at most the
    /// remaining deadline.
    ///
    /// # Errors
    ///
    /// The typed timeout error on deadline expiry, or the underlying
    /// socket error.
    pub fn read_some(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            let left = self.remaining()?;
            self.stream.set_read_timeout(Some(left))?;
            match self.stream.read(buf) {
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if is_timeout(&e) => return Err(timeout_error()),
                other => return other,
            }
        }
    }

    /// Writes all of `bytes`, waiting at most the remaining deadline
    /// across however many partial writes the socket takes.
    ///
    /// # Errors
    ///
    /// The typed timeout error on deadline expiry, `WriteZero` when the
    /// peer closed mid-response, or the underlying socket error.
    pub fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut rest = bytes;
        while !rest.is_empty() {
            let left = self.remaining()?;
            self.stream.set_write_timeout(Some(left))?;
            match self.stream.write(rest) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer closed mid-response",
                    ))
                }
                Ok(n) => rest = rest.get(n..).unwrap_or_default(),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if is_timeout(&e) => return Err(timeout_error()),
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn silent_peer_times_out_instead_of_hanging() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // The peer connects and says nothing.
        let _peer = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        let mut conn = DeadlineStream::new(accepted, Duration::from_millis(60)).unwrap();
        let mut buf = [0u8; 16];
        let err = conn.read_some(&mut buf).expect_err("must time out");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // Once expired, every further call fails fast.
        let err = conn.read_some(&mut buf).expect_err("stays expired");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // Until the window is renewed.
        conn.renew();
        assert!(conn.write_all(b"ok").is_ok());
    }
}
