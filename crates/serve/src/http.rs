//! A total, std-only HTTP/1.1 codec for the results server.
//!
//! The workspace is hermetic (no external crates), so the server parses
//! its own wire format. The parser is *total*: every possible byte
//! sequence produces either a complete message, a "need more bytes"
//! signal, or a typed [`HttpError`] — never a panic and never an
//! unbounded buffer. Truncated input is [`Parsed::Partial`] (the caller
//! reads more, under its I/O deadline); garbage is a typed error mapped
//! to a 4xx/5xx status; oversized heads and bodies are rejected at
//! fixed limits before any allocation proportional to the claim.
//!
//! Deliberately out of scope (typed rejections, not silent guesses):
//! chunked transfer encoding, continuation lines, and methods other
//! than `GET`/`POST`.

/// Largest accepted request/status line + header block, in bytes.
/// Anything still headerless past this is load, not a client.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Largest accepted body. Scenario JSONs are tens of KiB; 4 MiB leaves
/// two orders of magnitude of slack while bounding per-connection
/// memory.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Largest accepted request target.
pub const MAX_TARGET_BYTES: usize = 1024;

/// The request methods the server implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`.
    Get,
    /// `POST`.
    Post,
}

/// A fully parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request target (always starts with `/`).
    pub target: String,
    /// Headers in arrival order, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A fully parsed response (the `nomc submit` client side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes (empty when the header
    /// is absent).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header value for `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a byte sequence is not (and will never become) a valid message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request/status line is malformed.
    BadRequestLine {
        /// What was wrong with it.
        reason: String,
    },
    /// A syntactically valid method the server does not implement.
    UnsupportedMethod {
        /// The method token.
        method: String,
    },
    /// A version other than HTTP/1.0 or HTTP/1.1.
    BadVersion {
        /// The version token.
        version: String,
    },
    /// The request target exceeds [`MAX_TARGET_BYTES`].
    TargetTooLong {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// No end-of-headers within [`MAX_HEAD_BYTES`] — a runaway or
    /// slowloris head.
    HeadTooLarge {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// A malformed header line.
    BadHeader {
        /// 1-based line number within the message head.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// A missing, duplicated, or non-numeric `Content-Length`.
    BadContentLength {
        /// What was wrong with it.
        reason: String,
    },
    /// The declared body length exceeds [`MAX_BODY_BYTES`]. Rejected
    /// from the header alone — the body is never buffered.
    BodyTooLarge {
        /// The limit that was exceeded.
        limit: usize,
        /// The declared length.
        length: u64,
    },
    /// A `Transfer-Encoding` header (chunked bodies are not
    /// implemented; senders must use `Content-Length`).
    UnsupportedTransferEncoding,
}

impl HttpError {
    /// The response status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::UnsupportedMethod { .. } => 405,
            HttpError::HeadTooLarge { .. } => 431,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::UnsupportedTransferEncoding => 501,
            HttpError::BadRequestLine { .. }
            | HttpError::BadVersion { .. }
            | HttpError::TargetTooLong { .. }
            | HttpError::BadHeader { .. }
            | HttpError::BadContentLength { .. } => 400,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequestLine { reason } => write!(f, "bad request line: {reason}"),
            HttpError::UnsupportedMethod { method } => {
                write!(f, "unsupported method `{method}` (GET and POST only)")
            }
            HttpError::BadVersion { version } => {
                write!(f, "unsupported version `{version}` (HTTP/1.0 or HTTP/1.1)")
            }
            HttpError::TargetTooLong { limit } => {
                write!(f, "request target longer than {limit} bytes")
            }
            HttpError::HeadTooLarge { limit } => {
                write!(f, "no end of headers within {limit} bytes")
            }
            HttpError::BadHeader { line, reason } => {
                write!(f, "bad header on line {line}: {reason}")
            }
            HttpError::BadContentLength { reason } => write!(f, "bad Content-Length: {reason}"),
            HttpError::BodyTooLarge { limit, length } => {
                write!(
                    f,
                    "declared body of {length} bytes exceeds the {limit}-byte limit"
                )
            }
            HttpError::UnsupportedTransferEncoding => {
                write!(
                    f,
                    "Transfer-Encoding is not supported; send a Content-Length body"
                )
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// The outcome of parsing a byte prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed<T> {
    /// A complete message; `consumed` bytes belong to it (pipelined
    /// bytes past `consumed` are the next message's prefix).
    Complete {
        /// The parsed message.
        value: T,
        /// Bytes of `buf` the message occupied.
        consumed: usize,
    },
    /// The bytes so far are a valid prefix; read more.
    Partial,
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Splits a validated head into its first line and header lines.
///
/// # Errors
///
/// [`HttpError::BadRequestLine`] when the head is not UTF-8 (HTTP heads
/// are ASCII; anything else is garbage, not a protocol).
fn head_lines(head: &[u8]) -> Result<Vec<&str>, HttpError> {
    let text = std::str::from_utf8(head).map_err(|_| HttpError::BadRequestLine {
        reason: "head is not valid UTF-8".to_string(),
    })?;
    Ok(text.split("\r\n").collect())
}

/// Parses the shared header-line section (everything after line 1).
fn parse_headers(lines: &[&str]) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::with_capacity(lines.len());
    for (i, raw) in lines.iter().enumerate() {
        let line = i + 2; // 1-based; line 1 is the request/status line
        let Some((name, value)) = raw.split_once(':') else {
            return Err(HttpError::BadHeader {
                line,
                reason: "missing `:`".to_string(),
            });
        };
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b))
        {
            return Err(HttpError::BadHeader {
                line,
                reason: format!("invalid field name {name:?}"),
            });
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(headers)
}

/// The body length a header set declares.
///
/// # Errors
///
/// [`HttpError::UnsupportedTransferEncoding`], or
/// [`HttpError::BadContentLength`] on duplicates and non-numbers, or
/// [`HttpError::BodyTooLarge`] past [`MAX_BODY_BYTES`] — all decided
/// from the head alone, before buffering any body byte.
fn declared_body_len(headers: &[(String, String)]) -> Result<usize, HttpError> {
    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(HttpError::UnsupportedTransferEncoding);
    }
    let mut lengths = headers.iter().filter(|(n, _)| n == "content-length");
    let Some((_, first)) = lengths.next() else {
        return Ok(0);
    };
    if lengths.next().is_some() {
        return Err(HttpError::BadContentLength {
            reason: "duplicate header".to_string(),
        });
    }
    let length: u64 = first.parse().map_err(|_| HttpError::BadContentLength {
        reason: format!("not a non-negative integer: {first:?}"),
    })?;
    if length > MAX_BODY_BYTES as u64 {
        return Err(HttpError::BodyTooLarge {
            limit: MAX_BODY_BYTES,
            length,
        });
    }
    Ok(length as usize)
}

/// Locates the head, enforcing [`MAX_HEAD_BYTES`]; `Ok(None)` means
/// "valid prefix, read more".
fn bounded_head(buf: &[u8]) -> Result<Option<usize>, HttpError> {
    match find_head_end(buf) {
        Some(end) if end + 4 > MAX_HEAD_BYTES => Err(HttpError::HeadTooLarge {
            limit: MAX_HEAD_BYTES,
        }),
        Some(end) => Ok(Some(end)),
        None if buf.len() > MAX_HEAD_BYTES => Err(HttpError::HeadTooLarge {
            limit: MAX_HEAD_BYTES,
        }),
        None => Ok(None),
    }
}

/// Assembles the complete message once `head_end` is known: computes
/// the declared body length and either waits for it or slices it off.
fn complete<T>(
    buf: &[u8],
    head_end: usize,
    headers: Vec<(String, String)>,
    build: impl FnOnce(Vec<(String, String)>, Vec<u8>) -> T,
) -> Result<Parsed<T>, HttpError> {
    let body_len = declared_body_len(&headers)?;
    let consumed = head_end + 4 + body_len;
    let Some(body) = buf.get(head_end + 4..consumed) else {
        return Ok(Parsed::Partial);
    };
    Ok(Parsed::Complete {
        value: build(headers, body.to_vec()),
        consumed,
    })
}

/// Parses a request from the front of `buf`.
///
/// Total over arbitrary bytes: returns [`Parsed::Partial`] while `buf`
/// is a valid prefix, a typed [`HttpError`] the moment it cannot become
/// a valid request (the connection should answer with
/// [`HttpError::status`] and close), and never panics.
///
/// # Errors
///
/// Every [`HttpError`] variant, as described on the variant.
pub fn parse_request(buf: &[u8]) -> Result<Parsed<Request>, HttpError> {
    let Some(head_end) = bounded_head(buf)? else {
        return Ok(Parsed::Partial);
    };
    let lines = head_lines(buf.get(..head_end).unwrap_or_default())?;
    let (first, rest) = lines
        .split_first()
        .ok_or_else(|| HttpError::BadRequestLine {
            reason: "empty head".to_string(),
        })?;
    let mut parts = first.split(' ');
    let (method_token, target, version) =
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v), None) => (m, t, v),
            _ => {
                return Err(HttpError::BadRequestLine {
                    reason: format!("expected `METHOD target HTTP/x.y`, got {first:?}"),
                })
            }
        };
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(HttpError::BadVersion {
            version: version.to_string(),
        });
    }
    let method = match method_token {
        "GET" => Method::Get,
        "POST" => Method::Post,
        other if !other.is_empty() && other.bytes().all(|b| b.is_ascii_uppercase()) => {
            return Err(HttpError::UnsupportedMethod {
                method: other.to_string(),
            })
        }
        other => {
            return Err(HttpError::BadRequestLine {
                reason: format!("malformed method token {other:?}"),
            })
        }
    };
    if target.len() > MAX_TARGET_BYTES {
        return Err(HttpError::TargetTooLong {
            limit: MAX_TARGET_BYTES,
        });
    }
    if !target.starts_with('/') || !target.bytes().all(|b| (0x21..=0x7e).contains(&b)) {
        return Err(HttpError::BadRequestLine {
            reason: format!("malformed target {target:?}"),
        });
    }
    let target = target.to_string();
    let headers = parse_headers(rest)?;
    complete(buf, head_end, headers, |headers, body| Request {
        method,
        target,
        headers,
        body,
    })
}

/// Parses a response from the front of `buf` (the client side of
/// [`parse_request`], same totality contract).
///
/// A response without `Content-Length` completes with an empty body at
/// the end of its head — callers streaming an unframed body (the
/// `/events` feed) read the remainder raw.
///
/// # Errors
///
/// Every [`HttpError`] variant, as described on the variant.
pub fn parse_response(buf: &[u8]) -> Result<Parsed<ClientResponse>, HttpError> {
    let Some(head_end) = bounded_head(buf)? else {
        return Ok(Parsed::Partial);
    };
    let lines = head_lines(buf.get(..head_end).unwrap_or_default())?;
    let (first, rest) = lines
        .split_first()
        .ok_or_else(|| HttpError::BadRequestLine {
            reason: "empty head".to_string(),
        })?;
    let mut parts = first.splitn(3, ' ');
    let (version, code) = match (parts.next(), parts.next()) {
        (Some(v), Some(c)) => (v, c),
        _ => {
            return Err(HttpError::BadRequestLine {
                reason: format!("expected `HTTP/x.y code reason`, got {first:?}"),
            })
        }
    };
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(HttpError::BadVersion {
            version: version.to_string(),
        });
    }
    let status: u16 = match code.parse() {
        Ok(c) if (100..=599).contains(&c) => c,
        _ => {
            return Err(HttpError::BadRequestLine {
                reason: format!("bad status code {code:?}"),
            })
        }
    };
    let headers = parse_headers(rest)?;
    complete(buf, head_end, headers, |headers, body| ClientResponse {
        status,
        headers,
        body,
    })
}

/// A response under construction (the server side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (beyond the always-present `Content-Type`,
    /// `Content-Length` and `Connection: close`).
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &nomc_json::Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: value.dump().into_bytes(),
        }
    }

    /// A JSON response from pre-rendered bytes (served byte-identically
    /// to what is on disk).
    pub fn raw_json(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body,
        }
    }

    /// The error response a parse failure maps to.
    pub fn for_parse_error(e: &HttpError) -> Response {
        Response::json(
            e.status(),
            &nomc_json::Json::object([("error", nomc_json::Json::Str(e.to_string()))]),
        )
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.headers.push((name, value));
        self
    }

    /// Renders the response bytes (always `Connection: close`: one
    /// exchange per connection keeps the server's resource lifecycle
    /// trivially bounded).
    pub fn render(&self) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// Renders a client request (the `nomc submit` side).
pub fn render_request(method: Method, target: &str, body: &[u8]) -> Vec<u8> {
    let verb = match method {
        Method::Get => "GET",
        Method::Post => "POST",
    };
    let mut out = format!(
        "{verb} {target} HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// The standard reason phrase for the statuses the server emits.
fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POST: &[u8] = b"POST /jobs HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 9\r\n\r\n{\"a\":1}\r\n";
    const GET: &[u8] = b"GET /healthz HTTP/1.1\r\n\r\n";

    fn parse_complete(buf: &[u8]) -> (Request, usize) {
        match parse_request(buf).expect("parses") {
            Parsed::Complete { value, consumed } => (value, consumed),
            Parsed::Partial => panic!("unexpectedly partial"),
        }
    }

    #[test]
    fn parses_post_with_body() {
        let (req, consumed) = parse_complete(POST);
        assert_eq!(consumed, POST.len());
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.target, "/jobs");
        assert_eq!(req.header("content-length"), Some("9"));
        assert_eq!(req.body, b"{\"a\":1}\r\n");
    }

    #[test]
    fn parses_get_without_body() {
        let (req, consumed) = parse_complete(GET);
        assert_eq!(consumed, GET.len());
        assert_eq!(req.method, Method::Get);
        assert!(req.body.is_empty());
    }

    #[test]
    fn every_truncation_is_partial_or_typed_never_panics() {
        // The totality sweep of the satellite task: every prefix of a
        // valid request parses to Partial (strictly — a prefix of a
        // valid message can always become one), except prefixes that
        // already contain the full head + body of a shorter valid parse.
        for cut in 0..POST.len() {
            let prefix = &POST[..cut];
            assert_eq!(
                parse_request(prefix),
                Ok(Parsed::Partial),
                "prefix of {cut} bytes"
            );
        }
        for cut in 0..GET.len() {
            assert_eq!(parse_request(&GET[..cut]), Ok(Parsed::Partial));
        }
    }

    #[test]
    fn every_single_byte_flip_is_total() {
        // Flip each head byte through a handful of hostile values; the
        // parser must return Complete, Partial, or a typed error —
        // never panic. (Body bytes are opaque, so flips there stay
        // Complete.)
        for pos in 0..POST.len() {
            for flip in [0u8, b' ', b'\r', b'\n', 0xff, b':', b'/'] {
                let mut bytes = POST.to_vec();
                bytes[pos] = flip;
                let _ = parse_request(&bytes);
            }
        }
    }

    #[test]
    fn oversized_content_length_is_rejected_from_the_header() {
        let req = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(
            parse_request(req.as_bytes()),
            Err(HttpError::BodyTooLarge {
                limit: MAX_BODY_BYTES,
                length: MAX_BODY_BYTES as u64 + 1,
            })
        );
        // Overflowing u64 entirely is a typed error too.
        let req = "POST /jobs HTTP/1.1\r\nContent-Length: 99999999999999999999999\r\n\r\n";
        assert!(matches!(
            parse_request(req.as_bytes()),
            Err(HttpError::BadContentLength { .. })
        ));
        // So is a duplicate.
        let req = "POST /jobs HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n";
        assert!(matches!(
            parse_request(req.as_bytes()),
            Err(HttpError::BadContentLength { .. })
        ));
    }

    #[test]
    fn slowloris_head_is_cut_off_at_the_limit() {
        // A head that never terminates must be rejected once it passes
        // the limit instead of buffering forever.
        let mut creep = b"GET / HTTP/1.1\r\n".to_vec();
        while creep.len() <= MAX_HEAD_BYTES {
            assert_eq!(parse_request(&creep), Ok(Parsed::Partial));
            creep.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        assert_eq!(
            parse_request(&creep),
            Err(HttpError::HeadTooLarge {
                limit: MAX_HEAD_BYTES
            })
        );
    }

    #[test]
    fn pipelined_second_message_and_garbage_are_separated() {
        // Two pipelined requests: the first parse consumes exactly the
        // first message; the rest parses independently.
        let mut bytes = GET.to_vec();
        bytes.extend_from_slice(POST);
        let (first, consumed) = parse_complete(&bytes);
        assert_eq!(first.target, "/healthz");
        let (second, rest) = parse_complete(&bytes[consumed..]);
        assert_eq!(second.target, "/jobs");
        assert_eq!(consumed + rest, bytes.len());

        // Garbage after a valid message fails only the *next* parse.
        let mut bytes = GET.to_vec();
        bytes.extend_from_slice(b"\x00\x01\x02 total garbage\r\n\r\n");
        let (_, consumed) = parse_complete(&bytes);
        assert!(parse_request(&bytes[consumed..]).is_err());
    }

    #[test]
    fn garbage_first_bytes_are_typed_errors() {
        for garbage in [
            &b"\x16\x03\x01\x02\x00\r\n\r\n"[..], // TLS ClientHello prefix
            b"DELETE /jobs HTTP/1.1\r\n\r\n",
            b"GET /jobs HTTP/2.0\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nBad Header Line\r\n\r\n",
            b"GET / HTTP/1.1\r\n: novalue\r\n\r\n",
            b"lowercase / HTTP/1.1\r\n\r\n",
        ] {
            assert!(parse_request(garbage).is_err(), "{garbage:?}");
        }
        assert_eq!(
            parse_request(b"DELETE /jobs HTTP/1.1\r\n\r\n")
                .expect_err("unsupported")
                .status(),
            405
        );
    }

    #[test]
    fn target_length_limit() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_TARGET_BYTES));
        assert_eq!(
            parse_request(long.as_bytes()),
            Err(HttpError::TargetTooLong {
                limit: MAX_TARGET_BYTES
            })
        );
    }

    #[test]
    fn transfer_encoding_is_refused() {
        let req = b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert_eq!(
            parse_request(req),
            Err(HttpError::UnsupportedTransferEncoding)
        );
        assert_eq!(HttpError::UnsupportedTransferEncoding.status(), 501);
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::json(
            429,
            &nomc_json::Json::object([("error", nomc_json::Json::Str("queue full".into()))]),
        )
        .with_header("Retry-After", "2".to_string());
        let bytes = resp.render();
        let parsed = match parse_response(&bytes).expect("parses") {
            Parsed::Complete { value, .. } => value,
            Parsed::Partial => panic!("complete render must parse completely"),
        };
        assert_eq!(parsed.status, 429);
        assert_eq!(parsed.header("retry-after"), Some("2"));
        assert_eq!(parsed.header("connection"), Some("close"));
        assert_eq!(parsed.body, resp.body);
        // Truncations of the response are Partial, same as requests.
        for cut in 0..bytes.len() {
            assert_eq!(parse_response(&bytes[..cut]), Ok(Parsed::Partial));
        }
    }

    #[test]
    fn request_render_parses_back() {
        let bytes = render_request(Method::Post, "/jobs", b"{}");
        let (req, consumed) = parse_complete(&bytes);
        assert_eq!(consumed, bytes.len());
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"{}");
    }
}
