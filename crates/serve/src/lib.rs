//! `nomc-serve`: a crash-safe, deterministic results server.
//!
//! The server turns the sweep subsystem into a network service without
//! giving up any of its guarantees:
//!
//! - **Determinism.** A job is a content-addressed sweep; its report
//!   is byte-identical however it is produced — straight through,
//!   resumed after a SIGKILL, or re-served from cache. The only
//!   wall-clock reads in the crate sit at the socket edge
//!   ([`deadline`]); everything behind it runs in simulation event
//!   time.
//! - **Crash safety.** Specs, journals, and reports are written with
//!   atomic replace; boot recovery replays the state directory, so a
//!   killed server restarted on the same `--state-dir` resumes
//!   in-flight jobs (mid-member, via engine checkpoints) and re-serves
//!   completed ones byte-identically.
//! - **Admission control.** Submissions are deduplicated by content
//!   key and bounded by a queue cap; overflow is shed with
//!   `429 Retry-After`, drain mode refuses new work with `503`, and a
//!   hostile or broken client can at worst burn one connection until
//!   its I/O deadline expires.
//!
//! The HTTP layer ([`http`]) is a total, `std`-only HTTP/1.1 subset
//! codec: every byte sequence parses to a message, a typed error, or
//! "need more bytes" — never a panic. See DESIGN.md §15 for the full
//! protocol and recovery contract.

pub mod deadline;
pub mod http;
pub mod jobs;
pub mod registry;
pub mod server;

pub use jobs::{JobSpec, JobState, SpecError, MAX_RETRIES};
pub use registry::{Admission, Registry};
pub use server::{signals, ServeConfig, ServeError, Server};
