//! In-memory job registry: admission control, the bounded work queue,
//! and per-job event logs.
//!
//! The registry is the server's single source of truth *between*
//! restarts; everything durable (specs, journals, reports) lives on
//! disk and is replayed into a fresh registry at boot. Admission is
//! where backpressure happens: a full queue sheds the request with a
//! typed [`Admission::Shed`] (the HTTP layer turns it into
//! `429 Retry-After`), it never blocks the accept loop and never
//! queues unboundedly.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::jobs::{self, JobEvent, JobSpec, JobState};

/// An append-only, closable line log one job streams its progress
/// through. Writers push; any number of `/events` readers poll with
/// [`EventLog::wait_from`] using their own cursors.
#[derive(Debug, Default)]
pub struct EventLog {
    state: Mutex<LogState>,
    grew: Condvar,
}

#[derive(Debug, Default)]
struct LogState {
    lines: Vec<String>,
    closed: bool,
}

impl EventLog {
    /// A fresh, open, empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// A log that is already closed (restored `Done` jobs stream
    /// nothing further).
    pub fn closed() -> EventLog {
        let log = EventLog::default();
        log.close();
        log
    }

    /// Appends a line. Pushing to a closed log is a silent no-op: the
    /// log closes when the job's story is over, and stragglers have
    /// nothing to add to it.
    pub fn push(&self, line: String) {
        let mut state = self.state.lock().expect("event log lock is never poisoned");
        if !state.closed {
            state.lines.push(line);
            self.grew.notify_all();
        }
    }

    /// Marks the log complete; every waiting and future reader sees
    /// end-of-stream once it has drained the lines already present.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("event log lock is never poisoned");
        state.closed = true;
        self.grew.notify_all();
    }

    /// Returns the lines after `cursor`, the advanced cursor, and
    /// whether the log is closed. Blocks up to `max_wait` when there
    /// is nothing new yet.
    pub fn wait_from(&self, cursor: usize, max_wait: Duration) -> (Vec<String>, usize, bool) {
        let mut state = self.state.lock().expect("event log lock is never poisoned");
        if state.lines.len() <= cursor && !state.closed {
            let (next, _timed_out) = self
                .grew
                .wait_timeout(state, max_wait)
                .expect("event log lock is never poisoned");
            state = next;
        }
        let fresh: Vec<String> = state.lines.get(cursor..).unwrap_or_default().to_vec();
        (fresh, state.lines.len(), state.closed)
    }
}

/// The admission decision for one `POST /jobs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// New work: the job was enqueued and the caller owns persisting
    /// its spec.
    New,
    /// The content key already exists; serve from the registry (and
    /// disk) instead of re-simulating.
    Cached {
        /// The existing job's state at admission time.
        state: JobState,
    },
    /// The queue is full; the caller is told when to come back.
    Shed {
        /// Suggested `Retry-After`, scaled to the backlog.
        retry_after_secs: u64,
    },
    /// The server is draining and accepts no new work.
    Draining,
}

struct JobEntry {
    spec: Option<JobSpec>,
    state: JobState,
    error: Option<String>,
    events: Arc<EventLog>,
}

struct Inner {
    jobs: BTreeMap<u64, JobEntry>,
    queue: VecDeque<u64>,
    draining: bool,
}

/// Live queue / running / done / failed counts for `/healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Jobs admitted but not yet picked up.
    pub queued: usize,
    /// Jobs a worker is currently sweeping.
    pub running: usize,
    /// Jobs whose report is on disk.
    pub done: usize,
    /// Jobs ended by a non-retryable error.
    pub failed: usize,
    /// Whether the server is refusing new work.
    pub draining: bool,
}

/// The shared registry. All locking is internal; every method takes
/// `&self`.
pub struct Registry {
    inner: Mutex<Inner>,
    work: Condvar,
    max_queue: usize,
}

impl Registry {
    /// A registry shedding submissions beyond `max_queue` queued jobs.
    pub fn new(max_queue: usize) -> Registry {
        Registry {
            inner: Mutex::new(Inner {
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                draining: false,
            }),
            work: Condvar::new(),
            max_queue,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("registry lock is never poisoned")
    }

    /// Decides what to do with a submission of job `id`.
    pub fn admit(&self, id: u64, spec: JobSpec) -> Admission {
        let mut inner = self.lock();
        if inner.draining {
            return Admission::Draining;
        }
        if let Some(entry) = inner.jobs.get(&id) {
            return Admission::Cached {
                state: entry.state.clone(),
            };
        }
        if inner.queue.len() >= self.max_queue {
            // Scale the hint to the backlog: a longer queue means a
            // longer wait before a retry can possibly be admitted.
            return Admission::Shed {
                retry_after_secs: inner.queue.len().max(1) as u64,
            };
        }
        inner.jobs.insert(
            id,
            JobEntry {
                spec: Some(spec),
                state: JobState::Queued,
                error: None,
                events: Arc::new(EventLog::new()),
            },
        );
        inner.queue.push_back(id);
        self.work.notify_one();
        Admission::New
    }

    /// Registers a job recovered from disk whose report already
    /// exists. Its event log is born closed.
    pub fn restore_done(&self, id: u64) {
        let mut inner = self.lock();
        inner.jobs.insert(
            id,
            JobEntry {
                spec: None,
                state: JobState::Done,
                error: None,
                events: Arc::new(EventLog::closed()),
            },
        );
    }

    /// Re-enqueues a job recovered from disk that never concluded
    /// (killed mid-run or drained). Bypasses the admission cap: the
    /// work was already accepted in a previous life.
    pub fn restore_pending(&self, id: u64, spec: JobSpec) {
        let mut inner = self.lock();
        inner.jobs.insert(
            id,
            JobEntry {
                spec: Some(spec),
                state: JobState::Queued,
                error: None,
                events: Arc::new(EventLog::new()),
            },
        );
        inner.queue.push_back(id);
        self.work.notify_one();
    }

    /// Blocks until there is a job to run (returning its id and spec)
    /// or the server is draining (returning `None`, which tells the
    /// worker to exit).
    pub fn next_job(&self) -> Option<(u64, JobSpec)> {
        let mut inner = self.lock();
        loop {
            if inner.draining {
                return None;
            }
            if let Some(id) = inner.queue.pop_front() {
                let spec = inner.jobs.get(&id).and_then(|entry| entry.spec.clone());
                if let Some(spec) = spec {
                    return Some((id, spec));
                }
                // A queued id without a spec is a bug upstream; skip it
                // rather than wedge the worker.
                continue;
            }
            inner = self
                .work
                .wait(inner)
                .expect("registry lock is never poisoned");
        }
    }

    /// Applies a lifecycle event to job `id` and returns the new
    /// state. Workers only emit edges the lifecycle allows, so an
    /// illegal pair here is a supervisor bug worth stopping on.
    pub fn apply(&self, id: u64, event: &JobEvent) -> JobState {
        let mut inner = self.lock();
        let entry = inner
            .jobs
            .get_mut(&id)
            .expect("workers only apply events to registered jobs");
        let next =
            jobs::apply(&entry.state, event).expect("workers only emit legal lifecycle edges");
        entry.state = next.clone();
        next
    }

    /// Fails job `id` with `message` and closes its event log.
    pub fn fail(&self, id: u64, message: String) {
        let mut inner = self.lock();
        if let Some(entry) = inner.jobs.get_mut(&id) {
            if let Ok(next) = jobs::apply(&entry.state, &JobEvent::Fail) {
                entry.state = next;
            }
            entry.error = Some(message);
            entry.events.close();
        }
    }

    /// The state (and failure message, if any) of job `id`.
    pub fn state(&self, id: u64) -> Option<(JobState, Option<String>)> {
        let inner = self.lock();
        inner
            .jobs
            .get(&id)
            .map(|entry| (entry.state.clone(), entry.error.clone()))
    }

    /// The event log of job `id`, shareable with any number of
    /// streaming readers.
    pub fn events(&self, id: u64) -> Option<Arc<EventLog>> {
        let inner = self.lock();
        inner.jobs.get(&id).map(|entry| Arc::clone(&entry.events))
    }

    /// Starts the drain: no new admissions, workers exit once their
    /// current job steps off, and every non-running job's event stream
    /// is ended (the running job's worker closes its own on requeue).
    pub fn drain(&self) {
        let mut inner = self.lock();
        inner.draining = true;
        for entry in inner.jobs.values() {
            if !matches!(entry.state, JobState::Running { .. }) {
                entry.events.close();
            }
        }
        self.work.notify_all();
    }

    /// Whether a drain has started (workers poll this between
    /// members).
    pub fn draining(&self) -> bool {
        self.lock().draining
    }

    /// Live counts for `/healthz`.
    pub fn stats(&self) -> Stats {
        let inner = self.lock();
        let mut stats = Stats {
            queued: 0,
            running: 0,
            done: 0,
            failed: 0,
            draining: inner.draining,
        };
        for entry in inner.jobs.values() {
            match entry.state {
                JobState::Queued => stats.queued += 1,
                JobState::Running { .. } => stats.running += 1,
                JobState::Done => stats.done += 1,
                JobState::Failed => stats.failed += 1,
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomc_topology::{paper, spectrum::ChannelPlan};
    use nomc_units::{Dbm, Megahertz, SimDuration};

    fn spec(seed: u64) -> JobSpec {
        let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
        let mut b = nomc_sim::Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
        b.duration(SimDuration::from_secs(2))
            .warmup(SimDuration::from_secs(1));
        JobSpec {
            scenario: b.build().expect("valid test scenario"),
            seeds: vec![seed],
            budget: 10_000,
            retries: 0,
            shards: None,
            checkpoint_every: None,
        }
    }

    #[test]
    fn admission_dedupes_sheds_and_drains() {
        let reg = Registry::new(1);
        assert_eq!(reg.admit(1, spec(1)), Admission::New);
        assert_eq!(
            reg.admit(1, spec(1)),
            Admission::Cached {
                state: JobState::Queued
            }
        );
        // Queue is full (job 1 still queued): a *different* job sheds.
        assert_eq!(
            reg.admit(2, spec(2)),
            Admission::Shed {
                retry_after_secs: 1
            }
        );
        reg.drain();
        assert_eq!(reg.admit(3, spec(3)), Admission::Draining);
        // Draining also wakes pollers with None.
        assert!(reg.next_job().is_none());
    }

    #[test]
    fn lifecycle_flows_through_the_registry() {
        let reg = Registry::new(4);
        assert_eq!(reg.admit(7, spec(7)), Admission::New);
        let (id, job) = reg.next_job().expect("queued work");
        assert_eq!(id, 7);
        assert_eq!(job.seeds, vec![7]);
        assert_eq!(
            reg.apply(7, &JobEvent::Start { total: 1 }),
            JobState::Running { done: 0, total: 1 }
        );
        assert_eq!(
            reg.apply(7, &JobEvent::MemberDone),
            JobState::Running { done: 1, total: 1 }
        );
        assert_eq!(reg.apply(7, &JobEvent::Finish), JobState::Done);
        assert_eq!(reg.state(7), Some((JobState::Done, None)));
        assert_eq!(reg.stats().done, 1);
    }

    #[test]
    fn failed_jobs_keep_their_message_and_close_their_log() {
        let reg = Registry::new(4);
        reg.admit(9, spec(9));
        let log = reg.events(9).expect("registered");
        reg.fail(9, "disk full".into());
        let (state, error) = reg.state(9).expect("registered");
        assert_eq!(state, JobState::Failed);
        assert_eq!(error.as_deref(), Some("disk full"));
        let (_, _, closed) = log.wait_from(0, Duration::from_millis(1));
        assert!(closed);
    }

    #[test]
    fn event_log_cursors_see_every_line_once_and_the_close() {
        let log = EventLog::new();
        log.push("a".into());
        log.push("b".into());
        let (lines, cursor, closed) = log.wait_from(0, Duration::from_millis(1));
        assert_eq!(lines, vec!["a".to_string(), "b".to_string()]);
        assert!(!closed);
        // Nothing new: times out empty.
        let (lines, cursor2, closed) = log.wait_from(cursor, Duration::from_millis(1));
        assert!(lines.is_empty() && cursor2 == cursor && !closed);
        log.push("c".into());
        log.close();
        log.push("dropped".into());
        let (lines, _, closed) = log.wait_from(cursor, Duration::from_millis(1));
        assert_eq!(lines, vec!["c".to_string()]);
        assert!(closed);
    }

    #[test]
    fn restored_jobs_join_the_registry_correctly() {
        let reg = Registry::new(0); // cap of zero: nothing new admits…
        assert!(matches!(reg.admit(1, spec(1)), Admission::Shed { .. }));
        // …but recovered pending work bypasses the cap.
        reg.restore_pending(2, spec(2));
        reg.restore_done(3);
        assert_eq!(reg.state(2), Some((JobState::Queued, None)));
        assert_eq!(reg.state(3), Some((JobState::Done, None)));
        let (_, _, closed) = reg
            .events(3)
            .expect("registered")
            .wait_from(0, Duration::from_millis(1));
        assert!(closed);
        let (id, _) = reg.next_job().expect("restored job is queued");
        assert_eq!(id, 2);
    }
}
