//! The results server: accept loop, request routing, worker pool, and
//! crash recovery.
//!
//! Every durable fact lives on disk under the state directory
//! (`jobs/<id>/{spec.json,journal.jsonl,report.json,snapshots/}`), all
//! of it written with the sweep subsystem's atomic replace — so a
//! SIGKILL at any instant leaves only complete files. Boot replays the
//! directory into the in-memory [`Registry`]: jobs with a report are
//! served from cache byte-identically, jobs without one re-enter the
//! queue and resume from their journal (and mid-member checkpoints).
//!
//! Simulation stays deterministic end to end: the worker drives
//! [`sweep::run_one_member`] in journal slot order, observers are
//! write-only, and the only wall-clock reads in the crate are at the
//! socket edge ([`crate::deadline`]).

use std::fmt;
use std::fs;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use nomc_experiments::sweep::{
    self, journal, AttemptOutcome, MemberReport, SweepError, SweepReport,
};
use nomc_json::{Json, ToJson};
use nomc_sim::events::Event;
use nomc_sim::{SimObserver, SimResult};
use nomc_units::SimTime;

use crate::deadline::DeadlineStream;
use crate::http::{self, Method, Parsed, Request, Response};
use crate::jobs::{self, JobEvent, JobSpec};
use crate::registry::{Admission, Registry};

/// Emit a progress event line every this many simulation events.
const PROGRESS_EVERY: u64 = 100_000;
/// Concurrent connection cap; excess connections get a best-effort 503.
const MAX_CONNS: usize = 64;
/// Accept-loop poll cadence.
const POLL: Duration = Duration::from_millis(25);
/// Drain waits at most this many polls for in-flight connections.
const DRAIN_POLLS: usize = 600;

/// SIGTERM/SIGINT → drain flag, kept `std`-only.
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static DRAIN_REQUESTED: AtomicBool = AtomicBool::new(false);

    /// Whether a termination signal has asked for a graceful drain.
    pub fn drain_requested() -> bool {
        DRAIN_REQUESTED.load(Ordering::Relaxed)
    }

    /// Installs SIGTERM/SIGINT handlers that flip the drain flag (the
    /// accept loop polls it). Async-signal-safe: the handler is one
    /// atomic store.
    #[cfg(unix)]
    pub fn install_drain_handler() {
        extern "C" fn on_signal(_signum: i32) {
            DRAIN_REQUESTED.store(true, Ordering::Relaxed);
        }
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    /// No signals to hook on non-Unix targets; `drain()` still works.
    #[cfg(not(unix))]
    pub fn install_drain_handler() {}
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port; the chosen
    /// address is published to `<state_dir>/serve.addr`).
    pub addr: String,
    /// Durable state root. Reusing a previous run's directory resumes
    /// its jobs.
    pub state_dir: PathBuf,
    /// Queued-job cap; submissions beyond it are shed with 429.
    pub max_queue: usize,
    /// Worker threads sweeping jobs.
    pub workers: usize,
    /// Per-connection I/O deadline (the only wall-clock budget in the
    /// system).
    pub io_budget: Duration,
}

impl ServeConfig {
    /// A config with the documented defaults (queue 16, 2 workers,
    /// 10 s I/O budget).
    pub fn new(addr: impl Into<String>, state_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            addr: addr.into(),
            state_dir: state_dir.into(),
            max_queue: 16,
            workers: 2,
            io_budget: Duration::from_secs(10),
        }
    }
}

/// Why the server could not start or persist.
#[derive(Debug)]
pub enum ServeError {
    /// An I/O failure outside the sweep subsystem.
    Io {
        /// What the server was doing.
        context: String,
        /// The OS error text.
        message: String,
    },
    /// A journal/report persistence failure (typed by the sweep
    /// subsystem).
    State(SweepError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { context, message } => write!(f, "{context}: {message}"),
            ServeError::State(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SweepError> for ServeError {
    fn from(e: SweepError) -> ServeError {
        ServeError::State(e)
    }
}

/// Everything a connection or worker thread needs.
struct Ctx {
    registry: Registry,
    state_dir: PathBuf,
    io_budget: Duration,
}

/// A running server; drop-in handle for tests, the CLI, and benches.
pub struct Server {
    addr: SocketAddr,
    drain: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Boots a server: recovers jobs from `state_dir`, binds, publishes
    /// the bound address to `<state_dir>/serve.addr`, and spawns the
    /// accept loop and worker pool.
    ///
    /// # Errors
    ///
    /// [`ServeError`] when the state directory or socket cannot be set
    /// up.
    pub fn start(cfg: ServeConfig) -> Result<Server, ServeError> {
        let io_err = |context: &str, e: &std::io::Error| ServeError::Io {
            context: context.to_string(),
            message: e.to_string(),
        };
        fs::create_dir_all(cfg.state_dir.join("jobs"))
            .map_err(|e| io_err("creating state directory", &e))?;

        let registry = Registry::new(cfg.max_queue);
        recover(&cfg.state_dir, &registry);

        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| io_err("binding listen socket", &e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| io_err("reading bound address", &e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| io_err("configuring listener", &e))?;
        // Publish the bound address so `--addr 127.0.0.1:0` runs are
        // discoverable (atomic replace: readers never see a torn file).
        journal::write_atomic(&cfg.state_dir.join("serve.addr"), &format!("{addr}\n"))?;

        let ctx = Arc::new(Ctx {
            registry,
            state_dir: cfg.state_dir.clone(),
            io_budget: cfg.io_budget,
        });
        let workers: Vec<JoinHandle<()>> = (0..cfg.workers.max(1))
            .map(|_| {
                let ctx = Arc::clone(&ctx);
                thread::spawn(move || worker_loop(&ctx))
            })
            .collect();
        let drain = Arc::new(AtomicBool::new(false));
        let accept = {
            let ctx = Arc::clone(&ctx);
            let drain = Arc::clone(&drain);
            thread::spawn(move || accept_loop(&listener, &ctx, &drain))
        };
        Ok(Server {
            addr,
            drain,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful drain: stop accepting, finish or requeue
    /// in-flight work, end event streams.
    pub fn drain(&self) {
        self.drain.store(true, Ordering::Relaxed);
    }

    /// Waits for the accept loop and every worker to exit (they do
    /// once a drain is requested via [`Server::drain`] or a signal).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Replays the state directory into a fresh registry: reports are
/// cache entries, spec-only jobs re-enter the queue (in id order, so
/// recovery is deterministic). Unreadable entries are warned about and
/// skipped — recovery never takes the server down.
fn recover(state_dir: &Path, registry: &Registry) {
    let jobs_dir = state_dir.join("jobs");
    let entries = match fs::read_dir(&jobs_dir) {
        Ok(entries) => entries,
        Err(_) => return,
    };
    let mut ids: Vec<u64> = entries
        .flatten()
        .filter_map(|e| e.file_name().to_str().and_then(jobs::parse_id))
        .collect();
    ids.sort_unstable();
    for id in ids {
        let paths = jobs::paths(state_dir, id);
        if paths.report.exists() {
            registry.restore_done(id);
            continue;
        }
        let parsed = fs::read_to_string(&paths.spec)
            .map_err(|e| e.to_string())
            .and_then(|text| nomc_json::from_str::<JobSpec>(&text).map_err(|e| e.to_string()));
        match parsed {
            Ok(spec) => registry.restore_pending(id, spec),
            Err(e) => {
                eprintln!(
                    "nomc-serve: skipping unrecoverable job {}: {e}",
                    jobs::id_hex(id)
                );
            }
        }
    }
}

/// Accepts connections until a drain is requested (via the handle or a
/// signal), then runs the drain protocol: stop accepting, drain the
/// registry (workers exit, event streams end), and give in-flight
/// connections a bounded window to finish.
fn accept_loop(listener: &TcpListener, ctx: &Arc<Ctx>, drain: &Arc<AtomicBool>) {
    let active = Arc::new(AtomicUsize::new(0));
    loop {
        if drain.load(Ordering::Relaxed) || signals::drain_requested() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if active.load(Ordering::Relaxed) >= MAX_CONNS {
                    // Best-effort shed; if the peer is gone, so be it.
                    let _ = overloaded(stream, ctx.io_budget);
                    continue;
                }
                active.fetch_add(1, Ordering::Relaxed);
                let ctx = Arc::clone(ctx);
                let active = Arc::clone(&active);
                thread::spawn(move || {
                    handle_conn(&ctx, stream);
                    active.fetch_sub(1, Ordering::Relaxed);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
    ctx.registry.drain();
    for _ in 0..DRAIN_POLLS {
        if active.load(Ordering::Relaxed) == 0 {
            break;
        }
        thread::sleep(POLL);
    }
}

/// Sheds a connection accepted over the cap with a best-effort 503.
fn overloaded(stream: TcpStream, budget: Duration) -> std::io::Result<()> {
    let body = Json::object([("error", Json::Str("connection limit reached".into()))]);
    DeadlineStream::new(stream, budget)?.write_all(&Response::json(503, &body).render())
}

/// Serves one connection: read a request under the deadline, route it,
/// write the response. Exactly one exchange per connection
/// (`Connection: close`), so resource lifetimes are trivially bounded.
fn handle_conn(ctx: &Ctx, stream: TcpStream) {
    let Ok(mut conn) = DeadlineStream::new(stream, ctx.io_budget) else {
        return;
    };
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match http::parse_request(&buf) {
            Ok(Parsed::Complete { value, .. }) => {
                respond(ctx, &value, &mut conn);
                return;
            }
            Ok(Parsed::Partial) => match conn.read_some(&mut chunk) {
                // EOF before a complete request: nothing to answer.
                Ok(0) => return,
                Ok(n) => buf.extend_from_slice(chunk.get(..n).unwrap_or_default()),
                Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {
                    let body = Json::object([("error", Json::Str(e.to_string()))]);
                    let _ = conn.write_all(&Response::json(408, &body).render());
                    return;
                }
                Err(_) => return,
            },
            Err(e) => {
                let _ = conn.write_all(&Response::for_parse_error(&e).render());
                return;
            }
        }
    }
}

/// Routes a parsed request. The event stream writes the connection
/// directly; everything else renders a single [`Response`].
fn respond(ctx: &Ctx, req: &Request, conn: &mut DeadlineStream) {
    if let Some(rest) = req.target.strip_prefix("/jobs/") {
        if let Some(id_text) = rest.strip_suffix("/events") {
            if matches!(req.method, Method::Get) {
                stream_events(ctx, id_text, conn);
                return;
            }
        }
    }
    let response = route(ctx, req);
    let _ = conn.write_all(&response.render());
}

/// The non-streaming routes.
fn route(ctx: &Ctx, req: &Request) -> Response {
    match (&req.method, req.target.as_str()) {
        (Method::Post, "/jobs") => submit(ctx, &req.body),
        (Method::Get, "/jobs") => method_not_allowed("POST"),
        (Method::Get, "/healthz") => healthz(ctx),
        (method, target) => {
            if let Some(rest) = target.strip_prefix("/jobs/") {
                if !matches!(method, Method::Get) {
                    return method_not_allowed("GET");
                }
                if let Some(id_text) = rest.strip_suffix("/report") {
                    return job_report(ctx, id_text);
                }
                return job_status(ctx, rest);
            }
            not_found()
        }
    }
}

fn not_found() -> Response {
    Response::json(
        404,
        &Json::object([("error", Json::Str("no such resource".into()))]),
    )
}

fn method_not_allowed(allow: &'static str) -> Response {
    Response::json(
        405,
        &Json::object([("error", Json::Str("method not allowed".into()))]),
    )
    .with_header("Allow", allow.to_string())
}

/// `GET /healthz`: liveness plus queue statistics.
fn healthz(ctx: &Ctx) -> Response {
    let stats = ctx.registry.stats();
    Response::json(
        200,
        &Json::object([
            ("status", Json::Str("ok".into())),
            ("queued", (stats.queued as u64).to_json()),
            ("running", (stats.running as u64).to_json()),
            ("done", (stats.done as u64).to_json()),
            ("failed", (stats.failed as u64).to_json()),
            ("draining", Json::Bool(stats.draining)),
        ]),
    )
}

/// `POST /jobs`: parse, validate, content-address, admit.
fn submit(ctx: &Ctx, body: &[u8]) -> Response {
    let bad_request =
        |reason: String| Response::json(400, &Json::object([("error", Json::Str(reason))]));
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(e) => return bad_request(format!("body is not UTF-8: {e}")),
    };
    let spec: JobSpec = match nomc_json::from_str(text) {
        Ok(spec) => spec,
        Err(e) => return bad_request(format!("bad job spec: {e}")),
    };
    if let Err(e) = spec.validate() {
        return bad_request(format!("rejected job spec: {e}"));
    }
    let id = jobs::job_id(&spec);
    let hex = jobs::id_hex(id);
    let spec_text = nomc_json::to_string(&spec);
    match ctx.registry.admit(id, spec) {
        Admission::Cached { state } => Response::json(
            200,
            &Json::object([
                ("job", Json::Str(hex)),
                ("state", Json::Str(state.name().into())),
                ("cached", Json::Bool(true)),
            ]),
        ),
        Admission::Shed { retry_after_secs } => Response::json(
            429,
            &Json::object([
                ("error", Json::Str("queue full".into())),
                ("retry_after_secs", retry_after_secs.to_json()),
            ]),
        )
        .with_header("Retry-After", retry_after_secs.to_string()),
        Admission::Draining => Response::json(
            503,
            &Json::object([("error", Json::Str("server is draining".into()))]),
        ),
        Admission::New => {
            // The job is only acknowledged once its spec is durable:
            // an ack followed by a crash must still produce the report
            // on the next boot.
            let paths = jobs::paths(&ctx.state_dir, id);
            let persisted = fs::create_dir_all(&paths.snapshots)
                .map_err(|e| e.to_string())
                .and_then(|()| {
                    journal::write_atomic(&paths.spec, &spec_text).map_err(|e| e.to_string())
                });
            if let Err(e) = persisted {
                let message = format!("persisting spec: {e}");
                ctx.registry.fail(id, message.clone());
                return Response::json(500, &Json::object([("error", Json::Str(message))]));
            }
            Response::json(
                202,
                &Json::object([
                    ("job", Json::Str(hex)),
                    ("state", Json::Str("queued".into())),
                    ("cached", Json::Bool(false)),
                ]),
            )
        }
    }
}

/// `GET /jobs/<id>`: lifecycle status; embeds the parsed report once
/// done.
fn job_status(ctx: &Ctx, id_text: &str) -> Response {
    let Some(id) = jobs::parse_id(id_text) else {
        return not_found();
    };
    let Some((state, error)) = ctx.registry.state(id) else {
        return not_found();
    };
    let mut fields: Vec<(&'static str, Json)> = vec![
        ("job", Json::Str(jobs::id_hex(id))),
        ("state", Json::Str(state.name().into())),
    ];
    if let jobs::JobState::Running { done, total } = state {
        fields.push(("members_done", (done as u64).to_json()));
        fields.push(("members_total", (total as u64).to_json()));
    }
    if let Some(message) = error {
        fields.push(("error", Json::Str(message)));
    }
    if matches!(state, jobs::JobState::Done) {
        let paths = jobs::paths(&ctx.state_dir, id);
        match fs::read_to_string(&paths.report).map_err(|e| e.to_string()) {
            Ok(text) => match Json::parse(&text) {
                Ok(report) => fields.push(("report", report)),
                Err(e) => fields.push(("report_error", Json::Str(e.to_string()))),
            },
            Err(e) => fields.push(("report_error", Json::Str(e))),
        }
    }
    Response::json(200, &Json::object(fields))
}

/// `GET /jobs/<id>/report`: the report file's exact bytes (the cache
/// contract is byte identity, so the file is never re-serialized).
fn job_report(ctx: &Ctx, id_text: &str) -> Response {
    let Some(id) = jobs::parse_id(id_text) else {
        return not_found();
    };
    let Some((state, _error)) = ctx.registry.state(id) else {
        return not_found();
    };
    if !matches!(state, jobs::JobState::Done) {
        return Response::json(
            409,
            &Json::object([("state", Json::Str(state.name().into()))]),
        );
    }
    let paths = jobs::paths(&ctx.state_dir, id);
    match fs::read(&paths.report) {
        Ok(bytes) => Response::raw_json(200, bytes),
        Err(e) => Response::json(
            500,
            &Json::object([("error", Json::Str(format!("reading report: {e}")))]),
        ),
    }
}

/// `GET /jobs/<id>/events`: streams the job's progress log as JSONL,
/// ending when the job's story is over. The response has no
/// `Content-Length`; the `Connection: close` framing delimits it. The
/// deadline is renewed per write, so the stream is bounded by
/// per-write progress, not total duration.
fn stream_events(ctx: &Ctx, id_text: &str, conn: &mut DeadlineStream) {
    let log = jobs::parse_id(id_text).and_then(|id| ctx.registry.events(id));
    let Some(log) = log else {
        let _ = conn.write_all(&not_found().render());
        return;
    };
    let head =
        b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n";
    if conn.write_all(head).is_err() {
        return;
    }
    let mut cursor = 0usize;
    loop {
        let (lines, next, closed) = log.wait_from(cursor, Duration::from_millis(250));
        cursor = next;
        if !lines.is_empty() {
            let mut chunk = String::new();
            for line in &lines {
                chunk.push_str(line);
                chunk.push('\n');
            }
            conn.renew();
            if conn.write_all(chunk.as_bytes()).is_err() {
                return;
            }
        }
        if closed {
            return;
        }
    }
}

/// Worker: pull queued jobs until the registry drains.
fn worker_loop(ctx: &Ctx) {
    while let Some((id, spec)) = ctx.registry.next_job() {
        run_job(ctx, id, &spec);
    }
}

/// Streams coarse progress out of the engine. A write-only observer
/// over an `mpsc` sender: it cannot perturb the run (the engine's
/// observer contract) and it keeps no shared state, so attaching it
/// changes no report byte.
struct Progress {
    sender: mpsc::Sender<String>,
    member: usize,
    seen: u64,
}

impl SimObserver for Progress {
    fn on_event(&mut self, _now: SimTime, _event: &Event) {
        self.seen += 1;
        if self.seen.is_multiple_of(PROGRESS_EVERY) {
            let _ = self.sender.send(format!(
                "{{\"event\":\"progress\",\"member\":{},\"events\":{}}}",
                self.member, self.seen
            ));
        }
    }

    fn on_run_end(&mut self, _result: &SimResult) {
        let _ = self.sender.send(format!(
            "{{\"event\":\"attempt_end\",\"member\":{},\"events\":{}}}",
            self.member, self.seen
        ));
        self.seen = 0;
    }
}

/// The wire tag of a member's concluding attempt.
fn outcome_tag(report: &MemberReport) -> &'static str {
    match report.attempts.last().map(|a| &a.outcome) {
        Some(AttemptOutcome::Ok(_)) => "ok",
        Some(AttemptOutcome::Failed(_)) => "failed",
        Some(AttemptOutcome::TimedOut { .. }) => "timed_out",
        None => "empty",
    }
}

/// Runs one job end to end: recover its journal, sweep the unfinished
/// members in slot order (checkpoint-supervised), journal each
/// conclusion atomically, then persist the report and close the story.
/// Checks the drain flag between members; a drained job requeues and
/// resumes on the next boot.
fn run_job(ctx: &Ctx, id: u64, spec: &JobSpec) {
    let paths = jobs::paths(&ctx.state_dir, id);
    // Idempotent: `submit` also creates this (before acking), but a
    // worker can pick the job up before that write lands, and restored
    // jobs arrive without passing through `submit` at all.
    if let Err(e) = fs::create_dir_all(&paths.snapshots) {
        ctx.registry
            .fail(id, format!("creating job directory: {e}"));
        return;
    }
    let members = spec.members();
    let member_hashes = spec.member_hashes();
    let total = members.len();
    // The journal speaks the sweep subsystem's dialect: its header key
    // is the sweep hash of the member list, not the job id (which also
    // folds in the retry budget).
    let sweep_hash = sweep::hash::sweep_hash(&member_hashes);

    ctx.registry.apply(id, &JobEvent::Start { total });
    let log = ctx
        .registry
        .events(id)
        .expect("running jobs are registered");

    // All progress lines flow through one channel so their order is
    // total; a forwarder thread owns the log end.
    let (tx, rx) = mpsc::channel::<String>();
    let forwarder = {
        let log = Arc::clone(&log);
        thread::spawn(move || {
            for line in rx {
                log.push(line);
            }
        })
    };
    let finish = |tx: mpsc::Sender<String>, forwarder: JoinHandle<()>| {
        drop(tx);
        let _ = forwarder.join();
    };
    let _ = tx.send(format!(
        "{{\"event\":\"started\",\"job\":\"{}\",\"members\":{total}}}",
        jobs::id_hex(id)
    ));

    // Recover concluded members from the journal, if one survives.
    let mut concluded: Vec<Option<MemberReport>> = vec![None; total];
    match journal::load(&paths.journal, sweep_hash, &member_hashes) {
        Ok(Some(replay)) => {
            for quarantined in &replay.quarantined {
                if matches!(quarantined, SweepError::TrailingGarbage { .. }) {
                    let _ = tx.send(format!(
                        "{{\"event\":\"journal_note\",\"note\":\"{quarantined} (expected after a crash)\"}}"
                    ));
                } else {
                    eprintln!("nomc-serve: job {}: {quarantined}", jobs::id_hex(id));
                }
            }
            concluded = replay.members;
        }
        Ok(None) => {}
        Err(e) => {
            // A stale or unreadable journal reruns the job from
            // scratch; determinism makes that merely slower, not
            // different.
            eprintln!(
                "nomc-serve: job {}: discarding journal: {e}",
                jobs::id_hex(id)
            );
        }
    }

    let snapshot_dir_text = spec
        .checkpoint_every
        .map(|_| paths.snapshots.display().to_string());
    if let Err(e) = journal::persist(
        &paths.journal,
        sweep_hash,
        snapshot_dir_text.as_deref(),
        &concluded,
    ) {
        ctx.registry.fail(id, format!("persisting journal: {e}"));
        finish(tx, forwarder);
        return;
    }

    let cfg = sweep::SweepConfig {
        retries: spec.retries,
        base_budget: spec.budget,
        threads: Some(1),
        shards: spec.shards,
        checkpoint_every: spec.checkpoint_every,
        snapshot_dir: spec.checkpoint_every.map(|_| paths.snapshots.clone()),
    };

    for (index, scenario) in members.iter().enumerate() {
        if concluded.get(index).map(Option::is_some).unwrap_or(false) {
            ctx.registry.apply(id, &JobEvent::MemberDone);
            let _ = tx.send(format!(
                "{{\"event\":\"member\",\"member\":{index},\"outcome\":\"recovered\"}}"
            ));
            continue;
        }
        if ctx.registry.draining() {
            // Mid-drain: step off between members. The journal already
            // holds everything concluded, so the next boot resumes
            // exactly here.
            ctx.registry.apply(id, &JobEvent::Requeue);
            let _ = tx.send("{\"event\":\"requeued\"}".to_string());
            finish(tx, forwarder);
            log.close();
            return;
        }
        let mut progress = Progress {
            sender: tx.clone(),
            member: index,
            seen: 0,
        };
        let report = sweep::run_one_member(scenario, index, &cfg, &mut [&mut progress]);
        let tag = outcome_tag(&report);
        let attempts = report.attempts.len();
        if let Some(slot) = concluded.get_mut(index) {
            *slot = Some(report);
        }
        if let Err(e) = journal::persist(
            &paths.journal,
            sweep_hash,
            snapshot_dir_text.as_deref(),
            &concluded,
        ) {
            ctx.registry.fail(id, format!("persisting journal: {e}"));
            finish(tx, forwarder);
            return;
        }
        ctx.registry.apply(id, &JobEvent::MemberDone);
        let _ = tx.send(format!(
            "{{\"event\":\"member\",\"member\":{index},\"outcome\":\"{tag}\",\"attempts\":{attempts}}}"
        ));
    }

    // Assemble the report exactly as `run_sweep` would, so the bytes
    // match a CLI sweep of the same members.
    let report_members: Vec<MemberReport> = concluded
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or(MemberReport {
                member: i,
                hash: member_hashes.get(i).copied().unwrap_or_default(),
                attempts: Vec::new(),
            })
        })
        .collect();
    let report = SweepReport {
        sweep_hash,
        members: report_members,
    };
    if let Err(e) = journal::write_atomic(&paths.report, &report.to_json_string()) {
        ctx.registry.fail(id, format!("persisting report: {e}"));
        finish(tx, forwarder);
        return;
    }
    ctx.registry.apply(id, &JobEvent::Finish);
    let _ = tx.send("{\"event\":\"done\"}".to_string());
    finish(tx, forwarder);
    log.close();
}
