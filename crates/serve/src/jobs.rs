//! Job specs, content-addressed job identity, and the job lifecycle
//! state machine.
//!
//! A job is a multi-seed sweep of one scenario, submitted as JSON. Its
//! identity is a content key (FNV-1a over every member's sweep hash
//! plus the retry budget), so resubmitting the same work — byte-for-
//! byte or semantically equal after JSON normalization — lands on the
//! same job and is served from cache instead of re-simulated.
//! `checkpoint_every` is deliberately *excluded* from the key: the
//! engine's resume contract makes the report byte-identical regardless
//! of checkpoint cadence, so two specs differing only there are the
//! same work.
//!
//! The lifecycle (`Queued → Running → Done/Failed`, with
//! `Running → Queued` on drain) is a closed state machine: every
//! (state, event) pair is enumerated in [`apply`], illegal pairs are
//! typed errors, and the exhaustive-dispatch lint watches this file so
//! a new event variant cannot be silently dropped.

use std::fmt;
use std::path::{Path, PathBuf};

use nomc_experiments::sweep;
use nomc_sim::Scenario;

/// Hard cap on per-member retry attempts: each retry doubles the event
/// budget, so 16 retries already multiply it by 65536 — anything above
/// is a typo, not a plan.
pub const MAX_RETRIES: u32 = 16;

/// A submitted job: one scenario swept over `seeds`, each member run
/// with `budget` events (doubling per retry), optionally sharded and
/// checkpoint-supervised.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The base scenario; each member clones it with one of `seeds`.
    pub scenario: Scenario,
    /// Sweep seeds, one member per seed. Must be non-empty and free of
    /// duplicates (duplicate members would share a journal slot key).
    pub seeds: Vec<u64>,
    /// First-attempt event budget per member.
    pub budget: u64,
    /// Extra attempts for `Failed`/`TimedOut` members (0 = single
    /// attempt), capped at [`MAX_RETRIES`].
    pub retries: u32,
    /// `Some(n)`: run members through the sharded engine on `n`
    /// threads. Folded into the content key (sharded and serial
    /// results follow different seed semantics).
    pub shards: Option<usize>,
    /// `Some(n)`: checkpoint each attempt every `n` events so a killed
    /// server resumes mid-member instead of replaying it. `None`
    /// disables mid-member snapshots (whole members still journal).
    pub checkpoint_every: Option<u64>,
}

nomc_json::json_struct!(JobSpec {
    scenario: Scenario,
    seeds: Vec<u64>,
    budget: u64 = 1_000_000_000,
    retries: u32 = 1,
    shards: Option<usize> = None,
    checkpoint_every: Option<u64> = Some(200_000),
});

/// Why a [`JobSpec`] was refused at admission.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The embedded scenario failed its own validation.
    BadScenario {
        /// The scenario's validation message.
        reason: String,
    },
    /// `seeds` was empty — a job must have at least one member.
    NoSeeds,
    /// `seeds` contained the same seed twice.
    DuplicateSeed {
        /// The repeated seed.
        seed: u64,
    },
    /// `budget` was zero — no member could ever conclude.
    ZeroBudget,
    /// `retries` exceeded [`MAX_RETRIES`].
    TooManyRetries {
        /// The requested retry count.
        requested: u32,
    },
    /// `shards` was `Some(0)` — a sharded run needs at least one
    /// worker.
    ZeroShards,
    /// `checkpoint_every` was `Some(0)` — a zero-event checkpoint
    /// cadence would snapshot before any progress, forever.
    ZeroCheckpointEvery,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::BadScenario { reason } => write!(f, "invalid scenario: {reason}"),
            SpecError::NoSeeds => write!(f, "seeds must name at least one member"),
            SpecError::DuplicateSeed { seed } => {
                write!(f, "seed {seed} appears more than once")
            }
            SpecError::ZeroBudget => write!(f, "budget must be at least 1 event"),
            SpecError::TooManyRetries { requested } => {
                write!(f, "retries {requested} exceeds the cap of {MAX_RETRIES}")
            }
            SpecError::ZeroShards => write!(f, "shards must be at least 1 when set"),
            SpecError::ZeroCheckpointEvery => {
                write!(f, "checkpoint_every must be at least 1 event when set")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl JobSpec {
    /// Checks the spec against every admission rule.
    ///
    /// # Errors
    ///
    /// The first violated rule as a typed [`SpecError`].
    pub fn validate(&self) -> Result<(), SpecError> {
        self.scenario
            .validate()
            .map_err(|e| SpecError::BadScenario {
                reason: e.to_string(),
            })?;
        if self.seeds.is_empty() {
            return Err(SpecError::NoSeeds);
        }
        let mut sorted = self.seeds.clone();
        sorted.sort_unstable();
        if let Some(dup) = sorted
            .windows(2)
            .find(|w| w.first() == w.get(1))
            .and_then(|w| w.first())
        {
            return Err(SpecError::DuplicateSeed { seed: *dup });
        }
        if self.budget == 0 {
            return Err(SpecError::ZeroBudget);
        }
        if self.retries > MAX_RETRIES {
            return Err(SpecError::TooManyRetries {
                requested: self.retries,
            });
        }
        if self.shards == Some(0) {
            return Err(SpecError::ZeroShards);
        }
        if self.checkpoint_every == Some(0) {
            return Err(SpecError::ZeroCheckpointEvery);
        }
        Ok(())
    }

    /// The per-member scenarios, in seed order (the journal slot
    /// order).
    pub fn members(&self) -> Vec<Scenario> {
        sweep::seed_members(&self.scenario, &self.seeds)
    }

    /// The per-member content hashes, computed exactly as
    /// [`sweep::run_sweep`] computes them so journals and checkpoints
    /// written by either supervisor interoperate.
    pub fn member_hashes(&self) -> Vec<u64> {
        self.members()
            .iter()
            .map(|sc| sweep::hash::member_hash_with(sc, self.budget, self.shards.is_some()))
            .collect()
    }
}

/// The job's content key: FNV-1a over the sweep hash of every member
/// plus the retry budget (retries shape the report's attempt ladder;
/// checkpoint cadence does not, and is excluded).
pub fn job_id(spec: &JobSpec) -> u64 {
    let hashes = spec.member_hashes();
    let mut h = sweep::hash::Fnv1a::new();
    h.write_u64(sweep::hash::sweep_hash(&hashes));
    h.write_u64(u64::from(spec.retries));
    h.finish()
}

/// A job id rendered the way every URL and directory name spells it:
/// 16 lowercase hex digits, zero-padded.
pub fn id_hex(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a job id back from its canonical 16-hex-digit spelling.
/// Anything else — wrong length, uppercase trickery is fine but
/// non-hex bytes are not — is `None`, which routes to 404 rather than
/// a parse panic.
pub fn parse_id(text: &str) -> Option<u64> {
    if text.len() != 16 {
        return None;
    }
    u64::from_str_radix(text, 16).ok()
}

/// Where one job lives under the server's state directory.
#[derive(Debug, Clone)]
pub struct JobPaths {
    /// `<state>/jobs/<id>` — the job's own directory.
    pub dir: PathBuf,
    /// The submitted spec, persisted before the job is acknowledged so
    /// a restart can re-run it.
    pub spec: PathBuf,
    /// The per-member sweep journal (same format `nomc sweep` writes).
    pub journal: PathBuf,
    /// The final report; its existence *is* the "done" marker on disk.
    pub report: PathBuf,
    /// Mid-member engine snapshots (drained once the job concludes).
    pub snapshots: PathBuf,
}

/// Computes the on-disk layout of job `id` under `state_dir`.
pub fn paths(state_dir: &Path, id: u64) -> JobPaths {
    let dir = state_dir.join("jobs").join(id_hex(id));
    JobPaths {
        spec: dir.join("spec.json"),
        journal: dir.join("journal.jsonl"),
        report: dir.join("report.json"),
        snapshots: dir.join("snapshots"),
        dir,
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is sweeping its members.
    Running {
        /// Members concluded so far.
        done: usize,
        /// Total members.
        total: usize,
    },
    /// The report is on disk and byte-stable.
    Done,
    /// The job hit a non-retryable error; see the stored message.
    Failed,
}

impl JobState {
    /// The state's wire name (the `state` field of every status
    /// response).
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running { .. } => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// A lifecycle event applied to a [`JobState`] via [`apply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobEvent {
    /// A worker picked the job up.
    Start {
        /// Total members it will sweep.
        total: usize,
    },
    /// One member concluded (ran now or recovered from the journal).
    MemberDone,
    /// The server is draining; the job goes back to the queue and
    /// resumes on the next boot.
    Requeue,
    /// Every member concluded and the report is persisted.
    Finish,
    /// A non-retryable error (I/O, corrupt state) ended the job.
    Fail,
}

/// An illegal (state, event) pair — a supervisor bug surfaced as data
/// instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionError {
    /// The state the event was applied to.
    pub from: JobState,
    /// The event that had no legal edge from it.
    pub event: JobEvent,
}

impl fmt::Display for TransitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no transition for event {:?} in state {:?}",
            self.event, self.from
        )
    }
}

impl std::error::Error for TransitionError {}

/// Applies one lifecycle event. Every (state, event) pair is named:
/// the six legal edges produce the next state, the fourteen illegal
/// ones are typed errors, and there is deliberately no catch-all arm —
/// adding a [`JobEvent`] variant fails this build (and the
/// exhaustive-dispatch lint) until its handling is decided.
///
/// # Errors
///
/// [`TransitionError`] for every pair outside the lifecycle diagram.
pub fn apply(state: &JobState, event: &JobEvent) -> Result<JobState, TransitionError> {
    let illegal = || {
        Err(TransitionError {
            from: state.clone(),
            event: event.clone(),
        })
    };
    match (state, event) {
        (JobState::Queued, JobEvent::Start { total }) => Ok(JobState::Running {
            done: 0,
            total: *total,
        }),
        (JobState::Queued, JobEvent::Fail) => Ok(JobState::Failed),
        (JobState::Running { done, total }, JobEvent::MemberDone) => Ok(JobState::Running {
            done: done.saturating_add(1),
            total: *total,
        }),
        (JobState::Running { .. }, JobEvent::Finish) => Ok(JobState::Done),
        (JobState::Running { .. }, JobEvent::Requeue) => Ok(JobState::Queued),
        (JobState::Running { .. }, JobEvent::Fail) => Ok(JobState::Failed),
        (JobState::Queued, JobEvent::MemberDone | JobEvent::Requeue | JobEvent::Finish) => {
            illegal()
        }
        (JobState::Running { .. }, JobEvent::Start { .. }) => illegal(),
        (
            JobState::Done,
            JobEvent::Start { .. }
            | JobEvent::MemberDone
            | JobEvent::Requeue
            | JobEvent::Finish
            | JobEvent::Fail,
        ) => illegal(),
        (
            JobState::Failed,
            JobEvent::Start { .. }
            | JobEvent::MemberDone
            | JobEvent::Requeue
            | JobEvent::Finish
            | JobEvent::Fail,
        ) => illegal(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomc_topology::{paper, spectrum::ChannelPlan};
    use nomc_units::{Dbm, Megahertz, SimDuration};

    fn test_scenario() -> Scenario {
        let plan = ChannelPlan::with_count(Megahertz::new(2460.0), Megahertz::new(5.0), 1);
        let mut b = Scenario::builder(paper::line_deployment(&plan, Dbm::new(0.0)));
        b.duration(SimDuration::from_secs(2))
            .warmup(SimDuration::from_secs(1));
        b.build().expect("valid test scenario")
    }

    fn spec() -> JobSpec {
        JobSpec {
            scenario: test_scenario(),
            seeds: vec![1, 2, 3],
            budget: 50_000,
            retries: 1,
            shards: None,
            checkpoint_every: Some(10_000),
        }
    }

    #[test]
    fn valid_spec_passes_and_id_is_stable() {
        let s = spec();
        s.validate().unwrap();
        assert_eq!(job_id(&s), job_id(&s.clone()));
        let hex = id_hex(job_id(&s));
        assert_eq!(hex.len(), 16);
        assert_eq!(parse_id(&hex), Some(job_id(&s)));
    }

    #[test]
    fn every_admission_rule_fires() {
        let mut s = spec();
        s.seeds.clear();
        assert_eq!(s.validate(), Err(SpecError::NoSeeds));

        let mut s = spec();
        s.seeds = vec![7, 1, 7];
        assert_eq!(s.validate(), Err(SpecError::DuplicateSeed { seed: 7 }));

        let mut s = spec();
        s.budget = 0;
        assert_eq!(s.validate(), Err(SpecError::ZeroBudget));

        let mut s = spec();
        s.retries = 17;
        assert_eq!(
            s.validate(),
            Err(SpecError::TooManyRetries { requested: 17 })
        );

        let mut s = spec();
        s.shards = Some(0);
        assert_eq!(s.validate(), Err(SpecError::ZeroShards));

        let mut s = spec();
        s.checkpoint_every = Some(0);
        assert_eq!(s.validate(), Err(SpecError::ZeroCheckpointEvery));
    }

    #[test]
    fn id_depends_on_content_not_checkpoint_cadence() {
        let base = spec();

        // Checkpoint cadence never changes report bytes, so it must
        // not split the cache.
        let mut cadence = base.clone();
        cadence.checkpoint_every = None;
        assert_eq!(job_id(&base), job_id(&cadence));

        // Everything that *does* shape the report splits the key.
        let mut other = base.clone();
        other.seeds = vec![1, 2, 4];
        assert_ne!(job_id(&base), job_id(&other));
        let mut other = base.clone();
        other.budget += 1;
        assert_ne!(job_id(&base), job_id(&other));
        let mut other = base.clone();
        other.retries += 1;
        assert_ne!(job_id(&base), job_id(&other));
        let mut other = base.clone();
        other.shards = Some(2);
        assert_ne!(job_id(&base), job_id(&other));
    }

    #[test]
    fn spec_round_trips_through_json_with_defaults() {
        let s = spec();
        let text = nomc_json::to_string(&s);
        let back: JobSpec = nomc_json::from_str(&text).unwrap();
        assert_eq!(back, s);

        // A minimal submission gets the documented defaults.
        let scenario_json = nomc_json::to_string(&s.scenario);
        let minimal = format!("{{\"scenario\":{scenario_json},\"seeds\":[9]}}");
        let parsed: JobSpec = nomc_json::from_str(&minimal).unwrap();
        assert_eq!(parsed.budget, 1_000_000_000);
        assert_eq!(parsed.retries, 1);
        assert_eq!(parsed.shards, None);
        assert_eq!(parsed.checkpoint_every, Some(200_000));
    }

    #[test]
    fn lifecycle_walks_its_legal_edges_and_rejects_the_rest() {
        let queued = JobState::Queued;
        let running = apply(&queued, &JobEvent::Start { total: 3 }).unwrap();
        assert_eq!(running, JobState::Running { done: 0, total: 3 });
        let after_one = apply(&running, &JobEvent::MemberDone).unwrap();
        assert_eq!(after_one, JobState::Running { done: 1, total: 3 });
        assert_eq!(
            apply(&after_one, &JobEvent::Finish).unwrap(),
            JobState::Done
        );
        assert_eq!(
            apply(&after_one, &JobEvent::Requeue).unwrap(),
            JobState::Queued
        );
        assert_eq!(
            apply(&after_one, &JobEvent::Fail).unwrap(),
            JobState::Failed
        );
        assert_eq!(apply(&queued, &JobEvent::Fail).unwrap(), JobState::Failed);

        for bad in [
            apply(&queued, &JobEvent::MemberDone),
            apply(&queued, &JobEvent::Finish),
            apply(&JobState::Done, &JobEvent::Start { total: 1 }),
            apply(&JobState::Done, &JobEvent::Finish),
            apply(&JobState::Failed, &JobEvent::MemberDone),
            apply(&running, &JobEvent::Start { total: 1 }),
        ] {
            let err = bad.unwrap_err();
            assert!(err.to_string().contains("no transition"));
        }
    }

    #[test]
    fn paths_follow_the_hex_id() {
        let p = paths(Path::new("/tmp/state"), 0xabc);
        assert!(p.dir.ends_with("jobs/0000000000000abc"));
        assert!(p.spec.ends_with("spec.json"));
        assert!(p.journal.ends_with("journal.jsonl"));
        assert!(p.report.ends_with("report.json"));
        assert!(p.snapshots.ends_with("snapshots"));
    }
}
